// afpga_flowd: the compile-as-a-service daemon. Binds a FlowServer on a
// Unix-domain socket and/or TCP, prints one flushed "listening" line per
// bound endpoint (scripts wait for it before launching clients), then serves
// until either a client issues the wire Drain verb or the process receives
// SIGINT/SIGTERM. Both paths drain gracefully: accepted jobs finish and
// every claimed result stream flushes before the listeners close. A second
// signal skips the drain wait and stops immediately.
//
// Usage:
//   afpga_flowd --unix PATH [--tcp [HOST:]PORT] [--threads N]
//               [--max-pending N] [--retry-ms N] [--cache-dir DIR]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "cad/flow_server.hpp"

namespace {

volatile std::sig_atomic_t g_signals = 0;

void on_signal(int) { g_signals = g_signals + 1; }

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: afpga_flowd --unix PATH [--tcp [HOST:]PORT] [--threads N]\n"
                 "                   [--max-pending N] [--retry-ms N] [--cache-dir DIR]\n");
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    afpga::cad::FlowServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage();
            return argv[++i];
        };
        if (arg == "--unix") {
            opts.unix_path = next();
        } else if (arg == "--tcp") {
            opts.tcp = true;
            const std::string spec = next();
            const std::size_t colon = spec.rfind(':');
            if (colon == std::string::npos) {
                opts.tcp_port = static_cast<std::uint16_t>(std::atoi(spec.c_str()));
            } else {
                opts.tcp_host = spec.substr(0, colon);
                opts.tcp_port = static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1));
            }
        } else if (arg == "--threads") {
            opts.service.threads = static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--max-pending") {
            opts.max_pending = static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--retry-ms") {
            opts.retry_after_ms = static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--cache-dir") {
            opts.service.artifact_cache_dir = next();
        } else {
            usage();
        }
    }
    if (opts.unix_path.empty() && !opts.tcp) usage();

    try {
        afpga::cad::FlowServer server(std::move(opts));
        server.start();
        if (!server.unix_path().empty()) {
            std::printf("afpga_flowd: listening on unix %s\n", server.unix_path().c_str());
        }
        if (server.tcp_port() != 0) {
            std::printf("afpga_flowd: listening on tcp port %u\n", unsigned{server.tcp_port()});
        }
        std::fflush(stdout);

        std::signal(SIGINT, on_signal);
        std::signal(SIGTERM, on_signal);

        // Serve until a Drain verb settles or a signal arrives; a second
        // signal abandons the drain wait.
        bool signalled = false;
        for (;;) {
            if (g_signals > 0 && !signalled) {
                signalled = true;
                std::printf("afpga_flowd: signal received, draining\n");
                std::fflush(stdout);
                server.drain();
            }
            if (g_signals > 1) {
                std::printf("afpga_flowd: second signal, stopping now\n");
                break;
            }
            if (server.is_drained()) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        server.stop();
        const afpga::cad::FlowServerStats st = server.stats();
        std::printf("afpga_flowd: drained; %llu submits, %llu results streamed, "
                    "%llu busy, %llu protocol errors\n",
                    static_cast<unsigned long long>(st.submits_accepted),
                    static_cast<unsigned long long>(st.results_streamed),
                    static_cast<unsigned long long>(st.submits_rejected_busy),
                    static_cast<unsigned long long>(st.protocol_errors));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "afpga_flowd: %s\n", e.what());
        return 1;
    }
}
