#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md, ROADMAP.md, CHANGES.md and docs/*.md for markdown links
and inline references,
resolves every relative target against the file's directory (anchors and
external URLs are skipped), and exits non-zero listing any target that does
not exist. Wired both as a ctest (docs_links) and as a CI step, so a page
rename that orphans a link fails before it lands.

Usage: check_doc_links.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root):
    files = [os.path.join(root, name)
             for name in ("README.md", "ROADMAP.md", "CHANGES.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    dead = []
    checked = 0
    for path in doc_files(root):
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for target in LINK_RE.findall(line):
                    if target.startswith(SKIP_PREFIXES):
                        continue
                    resolved = os.path.normpath(
                        os.path.join(base, target.split("#", 1)[0]))
                    checked += 1
                    if not os.path.exists(resolved):
                        rel = os.path.relpath(path, root)
                        dead.append(f"{rel}:{lineno}: dead link -> {target}")
    for d in dead:
        print(d, file=sys.stderr)
    print(f"check_doc_links: {checked} relative links checked, "
          f"{len(dead)} dead")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
