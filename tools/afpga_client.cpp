// afpga_client: CLI front-end for a running afpga_flowd. Three verbs:
//
//   compile  generate a demo design, submit it, stream the result back:
//              afpga_client compile --unix /tmp/afpga.sock --design qdi_adder:4
//                  --fabric 10 --cw 12 --seed 7 [--priority P] [--check]
//                  [--out FILE]
//            --check recompiles the identical job in-process and demands the
//            remote result blob be byte-identical (exit 1 when it is not) —
//            the same bit-identity bar the bench and CI gate on.
//   report   print the server's FlowService report JSON.
//   drain    ask the server to drain (afpga_flowd exits once it settles).
//
// Design specs: qdi_adder:N, mp_adder:N, wchb_fifo:BxD, mp_fifo:BxD,
// mousetrap_fifo:BxD.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "cad/flow.hpp"
#include "cad/flow_client.hpp"
#include "cad/serialize.hpp"

using namespace afpga;

namespace {

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: afpga_client VERB (--unix PATH | --tcp HOST:PORT) [flags]\n"
                 "  compile --design SPEC [--fabric N] [--cw N] [--seed S]\n"
                 "          [--priority P] [--check] [--out FILE]\n"
                 "  report\n"
                 "  drain\n"
                 "design specs: qdi_adder:N mp_adder:N wchb_fifo:BxD mp_fifo:BxD\n"
                 "              mousetrap_fifo:BxD\n");
    std::exit(2);
}

struct Design {
    netlist::Netlist nl;
    asynclib::MappingHints hints;
};

Design make_design(const std::string& spec) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) usage();
    const std::string kind = spec.substr(0, colon);
    const std::string dims = spec.substr(colon + 1);
    const std::size_t x = dims.find('x');
    const std::size_t n = static_cast<std::size_t>(std::atoi(dims.c_str()));
    const std::size_t d =
        x == std::string::npos ? 0 : static_cast<std::size_t>(std::atoi(dims.c_str() + x + 1));
    Design out;
    if (kind == "qdi_adder" && x == std::string::npos && n > 0) {
        auto a = asynclib::make_qdi_adder(n);
        out.nl = std::move(a.nl);
        out.hints = std::move(a.hints);
    } else if (kind == "mp_adder" && x == std::string::npos && n > 0) {
        auto a = asynclib::make_micropipeline_adder(n);
        out.nl = std::move(a.nl);
    } else if (kind == "wchb_fifo" && n > 0 && d > 0) {
        auto f = asynclib::make_wchb_fifo(n, d);
        out.nl = std::move(f.nl);
        out.hints = std::move(f.hints);
    } else if (kind == "mp_fifo" && n > 0 && d > 0) {
        auto f = asynclib::make_micropipeline_fifo(n, d);
        out.nl = std::move(f.nl);
    } else if (kind == "mousetrap_fifo" && n > 0 && d > 0) {
        auto f = asynclib::make_mousetrap_fifo(n, d);
        out.nl = std::move(f.nl);
    } else {
        usage();
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    const std::string verb = argv[1];
    std::string unix_path;
    std::string tcp_host;
    std::uint16_t tcp_port = 0;
    std::string design_spec;
    std::uint32_t fabric = 10;
    std::uint32_t cw = 12;
    std::uint64_t seed = 7;
    int priority = 0;
    bool do_check = false;
    std::string out_file;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage();
            return argv[++i];
        };
        if (arg == "--unix") {
            unix_path = next();
        } else if (arg == "--tcp") {
            const std::string spec = next();
            const std::size_t colon = spec.rfind(':');
            if (colon == std::string::npos) usage();
            tcp_host = spec.substr(0, colon);
            tcp_port = static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1));
        } else if (arg == "--design") {
            design_spec = next();
        } else if (arg == "--fabric") {
            fabric = static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--cw") {
            cw = static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
        } else if (arg == "--priority") {
            priority = std::atoi(next().c_str());
        } else if (arg == "--check") {
            do_check = true;
        } else if (arg == "--out") {
            out_file = next();
        } else {
            usage();
        }
    }
    if (unix_path.empty() && tcp_host.empty()) usage();

    try {
        cad::FlowClient client = unix_path.empty()
                                     ? cad::FlowClient::connect_tcp(tcp_host, tcp_port,
                                                                    "afpga_client")
                                     : cad::FlowClient::connect_unix(unix_path, "afpga_client");

        if (verb == "report") {
            std::printf("%s\n", client.report_json().c_str());
            return 0;
        }
        if (verb == "drain") {
            const std::uint64_t total = client.drain_server();
            std::printf("afpga_client: server draining (%llu jobs accepted in total)\n",
                        static_cast<unsigned long long>(total));
            return 0;
        }
        if (verb != "compile") usage();
        if (design_spec.empty()) usage();

        Design design = make_design(design_spec);
        core::ArchSpec arch;
        arch.width = arch.height = fabric;
        arch.channel_width = cw;
        cad::FlowOptions opts;
        opts.seed = seed;

        cad::RemoteJobSpec job;
        job.name = design_spec;
        job.priority = priority;
        job.nl = &design.nl;
        job.hints = &design.hints;
        job.arch = arch;
        job.opts = opts;

        const std::uint64_t id = client.submit(job);
        std::printf("afpga_client: submitted %s as job %llu (lane %u)\n", design_spec.c_str(),
                    static_cast<unsigned long long>(id), client.lane());
        const cad::RemoteFlowResult res = client.wait(id, design_spec);
        if (!res.ok()) {
            std::fprintf(stderr, "afpga_client: job %llu failed: %s\n",
                         static_cast<unsigned long long>(id), res.error.c_str());
            return 1;
        }
        std::printf("afpga_client: job %llu ok: wall %.1f ms, queue %.1f ms, "
                    "start_seq %llu, result %zu bytes\n",
                    static_cast<unsigned long long>(id), res.wall_ms, res.queue_ms,
                    static_cast<unsigned long long>(res.start_seq), res.result_blob.size());

        if (!out_file.empty()) {
            std::ofstream out(out_file, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "afpga_client: cannot write %s\n", out_file.c_str());
                return 1;
            }
            out.write(reinterpret_cast<const char*>(res.result_blob.data()),
                      static_cast<std::streamsize>(res.result_blob.size()));
            std::printf("afpga_client: wrote %s\n", out_file.c_str());
        }

        if (do_check) {
            const cad::FlowResult local = cad::run_flow(design.nl, design.hints, arch, opts);
            const std::vector<std::uint8_t> local_blob =
                cad::ArtifactCodec<cad::BitstreamArtifact>::encode_blob(
                    cad::BitstreamArtifact{*local.bits, local.pad_names});
            if (local_blob != res.result_blob) {
                std::fprintf(stderr,
                             "afpga_client: CHECK FAILED: remote result (%zu bytes) is not "
                             "byte-identical to the in-process compile (%zu bytes)\n",
                             res.result_blob.size(), local_blob.size());
                return 1;
            }
            std::printf("afpga_client: check ok: remote result byte-identical to the "
                        "in-process compile\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "afpga_client: %s\n", e.what());
        return 1;
    }
}
