/// \file
/// Experiment-grid execution over the FlowService.
///
/// The paper's tables are grids — designs x architectures x styles x seeds.
/// Benches express each grid as a FlowJob set, push it through one shared
/// FlowService (machine-width parallelism, per-arch RR reuse, cross-job
/// artifact caching) and read the results back in submit order, so the
/// table-building code stays a simple loop while the compiles saturate the
/// hardware.
///
/// Threading: run_grid blocks until the whole grid is finished; the
/// returned pointers alias the service's result slots and stay valid for
/// the service's lifetime.
#pragma once

#include <vector>

#include "cad/flow_service.hpp"

namespace afpga::eval {

/// Submit `jobs` to `svc`, block until all finish, and return the results
/// in job order. Failures are reported per job (FlowJobStatus::Failed),
/// never thrown.
[[nodiscard]] std::vector<const cad::FlowJobResult*> run_grid(cad::FlowService& svc,
                                                              std::vector<cad::FlowJob> jobs);

}  // namespace afpga::eval
