// The comparison point the paper motivates itself against (ref. [3],
// "Implementing asynchronous circuits on LUT based FPGAs"): a plain
// synchronous island FPGA whose logic cell is a single-output LUT4 with no
// Interconnection Matrix, no multi-output LUT and no PDE.
//
// Mapping asynchronous logic onto it wastes resources in exactly the ways
// the paper lists: every C-element burns a whole LUT4 with its feedback
// routed through the general network, dual-rail pairs cannot share a cell,
// validity functions need their own LUT, and matched delays must be built
// from LUT buffer chains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "cad/flow_service.hpp"
#include "netlist/netlist.hpp"

namespace afpga::eval {

struct Lut4MapResult {
    std::size_t luts = 0;             ///< LUT4 cells needed
    std::size_t luts_for_memory = 0;  ///< of which implement C-elements/latches
    std::size_t luts_for_delay = 0;   ///< buffer-chain cells emulating matched delays
    std::size_t feedback_nets = 0;    ///< memory loops through general routing
    std::size_t lut_bits_used = 0;    ///< truth-table bits that matter
    std::size_t lut_bits_total = 0;   ///< 16 per LUT
    double bit_utilization = 0.0;
    std::size_t clbs = 0;             ///< 2-LUT CLBs (for area comparison)
};

/// Map `nl` onto LUT4 cells by recursive Shannon decomposition of every
/// gate function (memory elements mapped as looped LUTs; DELAY cells as
/// chains of `delay / lut4_delay_ps` buffer LUTs).
[[nodiscard]] Lut4MapResult map_to_lut4(const netlist::Netlist& nl,
                                        std::int64_t lut4_delay_ps = 150);

/// Side-by-side comparison row data: our fabric vs the LUT4 baseline for the
/// same netlist (LE count comes from the caller's techmap run).
struct BaselineComparison {
    std::string design;
    std::size_t our_les = 0;
    std::size_t our_plbs = 0;
    Lut4MapResult lut4;
    /// LUT4 cells per LE-equivalent (an LE is two LUT6 halves + LUT2).
    double overhead_factor = 0.0;
};

/// One design of a baseline-comparison grid. Netlist and hints are
/// borrowed; they must stay alive until compare_designs returns.
struct BaselineDesign {
    std::string name;
    const netlist::Netlist* nl = nullptr;
    const asynclib::MappingHints* hints = nullptr;  ///< optional
};

/// Build the paper's our-fabric-vs-LUT4 comparison for a whole design set:
/// every design is compiled on `arch` as one FlowJob on `svc` (so the grid
/// runs at machine width and shares cached stage products), then mapped to
/// the LUT4 baseline. Rows come back in `designs` order. Throws
/// base::Error when any flow fails — the comparison needs every design
/// implemented.
[[nodiscard]] std::vector<BaselineComparison> compare_designs(
    cad::FlowService& svc, const std::vector<BaselineDesign>& designs,
    const core::ArchSpec& arch, const cad::FlowOptions& opts = {});

}  // namespace afpga::eval
