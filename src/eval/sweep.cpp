#include "eval/sweep.hpp"

#include <utility>

namespace afpga::eval {

std::vector<const cad::FlowJobResult*> run_grid(cad::FlowService& svc,
                                                std::vector<cad::FlowJob> jobs) {
    const std::vector<cad::FlowJobId> ids = svc.submit_grid(std::move(jobs));
    std::vector<const cad::FlowJobResult*> out;
    out.reserve(ids.size());
    for (cad::FlowJobId id : ids) out.push_back(&svc.wait(id));
    return out;
}

}  // namespace afpga::eval
