// Evaluation metrics: the paper's filling ratio plus the usual FPGA
// implementation quality numbers (utilisation, wirelength, configuration
// size).
//
// The paper reports a single "overall filling ratio" (51% micropipeline,
// 76% QDI) without a formula. The numbers themselves identify the metric:
// an LE exposes 4 outputs (O0, O1, O2, O3); a QDI dual-rail function fills
// 3 of them (two rails + the LUT2 validity, 75%), while bundled-data logic
// fills 1-2 (no validity, no second rail), about 50%. We therefore use
//   - outputs (headline): used LE outputs over 4 x occupied LEs;
// and also report
//   - plb_resources: used LE outputs + used PDEs over everything an
//     occupied PLB provisions (2 LEs x 4 outputs + 1 PDE);
//   - halves: used LUT6 function slots over slots in occupied LEs;
//   - plb_density: ideal PLB count over occupied PLB count.
#pragma once

#include <cstdint>
#include <string>

#include "cad/flow.hpp"

namespace afpga::eval {

struct FillingRatio {
    double outputs = 0.0;        ///< headline: used outputs / (4 x occupied LEs)
    double plb_resources = 0.0;  ///< incl. idle LEs and PDE slot of occupied PLBs
    double halves = 0.0;
    double plb_density = 0.0;
    std::size_t occupied_plbs = 0;
    std::size_t used_le_outputs = 0;
    std::size_t used_les = 0;
    std::size_t used_pdes = 0;
};

[[nodiscard]] FillingRatio filling_ratio(const cad::FlowResult& fr);

struct Utilization {
    std::size_t plbs_used = 0;
    std::size_t plbs_total = 0;
    std::size_t les_used = 0;
    std::size_t les_total = 0;
    std::size_t pads_used = 0;
    std::size_t pads_total = 0;
    std::size_t wires_used = 0;
    std::size_t wires_total = 0;
    double channel_occupancy = 0.0;  ///< wires_used / wires_total
    std::size_t routed_nets = 0;
    std::size_t config_bits_total = 0;
    std::size_t routing_switches_on = 0;
    double placement_wirelength = 0.0;
    std::int64_t max_net_delay_ps = 0;  ///< worst routed sink delay
};

[[nodiscard]] Utilization utilization(const cad::FlowResult& fr);

/// One-paragraph textual summary for benches.
[[nodiscard]] std::string summarize(const cad::FlowResult& fr);

}  // namespace afpga::eval
