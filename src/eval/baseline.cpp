#include "eval/baseline.hpp"

#include "base/check.hpp"
#include "cad/techmap.hpp"
#include "eval/metrics.hpp"
#include "eval/sweep.hpp"

namespace afpga::eval {

namespace {

using netlist::TruthTable;

/// LUT4 cells needed for an n-input function (recursive Shannon).
std::size_t luts_for_function(const TruthTable& tt) {
    const TruthTable pruned = tt.prune_support(nullptr);
    if (pruned.arity() <= 4) return pruned.is_constant() && pruned.arity() == 0 ? 0 : 1;
    // Decompose about the last variable: two cofactor networks + a 3-input
    // mux cell (which itself fits a LUT4... the mux can absorb nothing else).
    const TruthTable f0 = pruned.cofactor(pruned.arity() - 1, false);
    const TruthTable f1 = pruned.cofactor(pruned.arity() - 1, true);
    return luts_for_function(f0) + luts_for_function(f1) + 1;
}

std::size_t meaningful_bits(const TruthTable& tt) {
    // Bits that the pruned function actually distinguishes.
    return std::size_t{1} << tt.prune_support(nullptr).arity();
}

}  // namespace

Lut4MapResult map_to_lut4(const netlist::Netlist& nl, std::int64_t lut4_delay_ps) {
    base::check(lut4_delay_ps > 0, "map_to_lut4: bad delay");
    // Reuse the techmapper's normalisation (buffer folding, constant
    // propagation, per-cell function extraction) with pairing disabled: the
    // resulting one-function-per-LE list is exactly the function list a
    // LUT4 mapper starts from.
    cad::TechmapOptions opts;
    opts.use_rail_pair_hints = false;
    opts.absorb_validity = false;
    opts.greedy_pairing = false;
    const cad::MappedDesign md = cad::techmap(nl, {}, opts);

    Lut4MapResult r;
    for (const cad::LeInst& le : md.les) {
        const cad::LeFunc& f = le.full7 ? *le.full7 : *le.a;
        const std::size_t n = luts_for_function(f.tt);
        r.luts += n;
        if (f.has_feedback) {
            r.luts_for_memory += n;
            ++r.feedback_nets;
        }
        r.lut_bits_used += meaningful_bits(f.tt);
        // A >4-input function split over n LUTs still only "uses" its own
        // information content; the totals count the cells provisioned.
    }
    for (const cad::PdeInst& p : md.pdes) {
        const auto cells = static_cast<std::size_t>(
            (p.required_delay_ps + lut4_delay_ps - 1) / lut4_delay_ps);
        r.luts += cells;
        r.luts_for_delay += cells;
        r.lut_bits_used += 2 * cells;  // a buffer distinguishes 2 rows
    }
    r.lut_bits_total = 16 * r.luts;
    r.bit_utilization = r.lut_bits_total
                            ? static_cast<double>(r.lut_bits_used) /
                                  static_cast<double>(r.lut_bits_total)
                            : 0.0;
    r.clbs = (r.luts + 1) / 2;
    return r;
}

std::vector<BaselineComparison> compare_designs(cad::FlowService& svc,
                                                const std::vector<BaselineDesign>& designs,
                                                const core::ArchSpec& arch,
                                                const cad::FlowOptions& opts) {
    std::vector<cad::FlowJob> jobs;
    jobs.reserve(designs.size());
    for (const BaselineDesign& d : designs) {
        cad::FlowJob j;
        j.name = d.name;
        j.nl = d.nl;
        j.hints = d.hints;
        j.arch = arch;
        j.opts = opts;
        jobs.push_back(std::move(j));
    }
    const auto results = run_grid(svc, std::move(jobs));

    std::vector<BaselineComparison> rows;
    rows.reserve(designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        base::check(results[i]->ok(), "compare_designs: flow failed for '" +
                                          designs[i].name + "': " + results[i]->error);
        const FillingRatio f = filling_ratio(results[i]->result);
        BaselineComparison row;
        row.design = designs[i].name;
        row.our_les = f.used_les;
        row.our_plbs = f.occupied_plbs;
        row.lut4 = map_to_lut4(*designs[i].nl);
        // An LE provides two LUT6 halves; a CLB of the baseline provides
        // two LUT4s.
        row.overhead_factor = row.our_les ? static_cast<double>(row.lut4.luts) /
                                                static_cast<double>(2 * row.our_les)
                                          : 0.0;
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace afpga::eval
