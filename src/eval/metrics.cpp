#include "eval/metrics.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace afpga::eval {

FillingRatio filling_ratio(const cad::FlowResult& fr) {
    FillingRatio r;
    const auto& arch = fr.arch;
    std::size_t usable_outputs = 0;
    std::size_t usable_halves = 0;
    std::size_t used_halves = 0;

    for (const cad::Cluster& cl : fr.packed.clusters) {
        if (cl.le_indices.empty() && !cl.pde_index) continue;
        ++r.occupied_plbs;
        // Provisioned hardware in this occupied PLB.
        usable_outputs += arch.les_per_plb * 4 + 1;  // 4 outputs per LE + the PDE
        usable_halves += arch.les_per_plb * 2;
        for (std::size_t li : cl.le_indices) {
            const cad::LeInst& le = fr.mapped.les[li];
            ++r.used_les;
            r.used_le_outputs += le.used_outputs();
            used_halves += (le.a ? 1 : 0) + (le.b ? 1 : 0) + (le.full7 ? 2 : 0);
        }
        if (cl.pde_index) ++r.used_pdes;
    }
    const std::size_t used_total = r.used_le_outputs + r.used_pdes;
    r.outputs = r.used_les ? static_cast<double>(r.used_le_outputs) /
                                 static_cast<double>(4 * r.used_les)
                           : 0.0;
    r.plb_resources = usable_outputs ? static_cast<double>(used_total) /
                                           static_cast<double>(usable_outputs)
                                     : 0.0;
    r.halves = usable_halves
                   ? static_cast<double>(used_halves) / static_cast<double>(usable_halves)
                   : 0.0;
    // Density: PLBs a perfect packing of the LEs would need vs PLBs used.
    const std::size_t ideal_plbs =
        (fr.mapped.les.size() + arch.les_per_plb - 1) / arch.les_per_plb;
    r.plb_density = r.occupied_plbs
                        ? static_cast<double>(std::max<std::size_t>(ideal_plbs, 1)) /
                              static_cast<double>(r.occupied_plbs)
                        : 0.0;
    return r;
}

Utilization utilization(const cad::FlowResult& fr) {
    Utilization u;
    const auto& arch = fr.arch;
    u.plbs_total = arch.width * arch.height;
    u.plbs_used = fr.bits ? fr.bits->occupied_plbs() : 0;
    u.les_total = u.plbs_total * arch.les_per_plb;
    for (const cad::Cluster& cl : fr.packed.clusters) u.les_used += cl.le_indices.size();
    const core::FabricGeometry geom(arch);
    u.pads_total = geom.num_pads();
    u.pads_used = fr.placement.pi_pad.size() + fr.placement.po_pad.size();
    u.routed_nets = fr.routing.trees.size();

    // Channel occupancy: distinct wire nodes used by route trees.
    if (fr.rr) {
        std::vector<bool> used(fr.rr->num_nodes(), false);
        for (const cad::RouteTree& t : fr.routing.trees) {
            for (std::uint32_t e : t.edges) {
                used[fr.rr->edge_source(e)] = true;
                used[fr.rr->edge_target(e)] = true;
            }
        }
        for (std::uint32_t n = 0; n < fr.rr->num_nodes(); ++n) {
            const auto k = fr.rr->node(n).kind;
            if ((k == core::RRKind::ChanX || k == core::RRKind::ChanY) && used[n])
                ++u.wires_used;
        }
        u.wires_total = fr.rr->num_wires();
        u.channel_occupancy =
            u.wires_total ? static_cast<double>(u.wires_used) /
                                static_cast<double>(u.wires_total)
                          : 0.0;
    }
    if (fr.bits) {
        u.config_bits_total = fr.bits->size_bits();
        u.routing_switches_on = fr.bits->num_enabled_edges();
    }
    u.placement_wirelength =
        cad::placement_wirelength(fr.packed, fr.mapped, arch, fr.placement);
    for (const cad::RouteTree& t : fr.routing.trees)
        for (const auto& s : t.sinks) u.max_net_delay_ps = std::max(u.max_net_delay_ps, s.delay_ps);
    return u;
}

std::string summarize(const cad::FlowResult& fr) {
    const FillingRatio f = filling_ratio(fr);
    const Utilization u = utilization(fr);
    std::string s;
    s += "PLBs " + std::to_string(u.plbs_used) + "/" + std::to_string(u.plbs_total);
    s += ", LEs " + std::to_string(u.les_used);
    s += ", filling " + base::format_percent(f.outputs);
    s += " (halves " + base::format_percent(f.halves) + ")";
    s += ", nets " + std::to_string(u.routed_nets);
    s += ", channel occ " + base::format_percent(u.channel_occupancy);
    s += ", max net delay " + std::to_string(u.max_net_delay_ps) + " ps";
    return s;
}

}  // namespace afpga::eval
