#include "core/bitstream.hpp"

#include "base/check.hpp"

namespace afpga::core {

using base::check;

Bitstream::Bitstream(const ArchSpec& arch, std::size_t num_rr_edges)
    : geom_(arch), pads_(geom_.num_pads(), PadMode::Unused), edges_(num_rr_edges) {
    arch.validate();
    plbs_.assign(geom_.num_plbs(), PlbConfig(arch));
}

PlbConfig& Bitstream::plb(PlbCoord c) {
    check(c.x < arch().width && c.y < arch().height, "Bitstream::plb: out of range");
    return plbs_[geom_.plb_index(c)];
}

const PlbConfig& Bitstream::plb(PlbCoord c) const {
    check(c.x < arch().width && c.y < arch().height, "Bitstream::plb: out of range");
    return plbs_[geom_.plb_index(c)];
}

void Bitstream::set_pad_mode(std::uint32_t pad, PadMode mode) {
    check(pad < pads_.size(), "set_pad_mode: out of range");
    pads_[pad] = mode;
}

PadMode Bitstream::pad_mode(std::uint32_t pad) const {
    check(pad < pads_.size(), "pad_mode: out of range");
    return pads_[pad];
}

void Bitstream::set_edge(std::uint32_t e, bool enabled) {
    check(e < edges_.size(), "set_edge: out of range");
    edges_.set(e, enabled);
}

bool Bitstream::edge(std::uint32_t e) const {
    check(e < edges_.size(), "edge: out of range");
    return edges_.get(e);
}

std::size_t Bitstream::occupied_plbs() const {
    std::size_t n = 0;
    for (const PlbConfig& p : plbs_)
        if (!p.is_blank(arch())) ++n;
    return n;
}

std::size_t Bitstream::size_bits() const {
    return 64 + 3 * 16 + 2 * 32 + geom_.num_plbs() * arch().plb_config_bits() +
           pads_.size() * 2 + edges_.size() + 32;
}

base::BitVector Bitstream::serialize() const {
    base::BitVector out;
    out.append_bits(arch().fingerprint(), 64);
    out.append_bits(arch().width, 16);
    out.append_bits(arch().height, 16);
    out.append_bits(arch().channel_width, 16);
    out.append_bits(pads_.size(), 32);
    out.append_bits(edges_.size(), 32);
    for (const PlbConfig& p : plbs_) p.serialize(arch(), out);
    for (PadMode m : pads_) out.append_bits(static_cast<std::uint64_t>(m), 2);
    for (std::size_t i = 0; i < edges_.size(); ++i) out.push_back(edges_.get(i));
    out.append_bits(out.crc32(), 32);
    return out;
}

Bitstream Bitstream::deserialize(const ArchSpec& arch, const base::BitVector& bits) {
    check(bits.size() >= 64 + 3 * 16 + 2 * 32 + 32, "Bitstream: truncated");
    std::size_t cur = 0;
    const std::uint64_t fp = bits.get_bits(cur, 64);
    cur += 64;
    check(fp == arch.fingerprint(), "Bitstream: architecture fingerprint mismatch");
    const auto w = bits.get_bits(cur, 16);
    cur += 16;
    const auto h = bits.get_bits(cur, 16);
    cur += 16;
    const auto cw = bits.get_bits(cur, 16);
    cur += 16;
    check(w == arch.width && h == arch.height && cw == arch.channel_width,
          "Bitstream: geometry mismatch");
    const auto n_pads = bits.get_bits(cur, 32);
    cur += 32;
    const auto n_edges = bits.get_bits(cur, 32);
    cur += 32;

    Bitstream bs(arch, n_edges);
    check(n_pads == bs.pads_.size(), "Bitstream: pad count mismatch");
    // Verify CRC before decoding the body.
    {
        base::BitVector body;
        for (std::size_t i = 0; i < bits.size() - 32; ++i) body.push_back(bits.get(i));
        const std::uint32_t stored =
            static_cast<std::uint32_t>(bits.get_bits(bits.size() - 32, 32));
        check(body.crc32() == stored, "Bitstream: CRC mismatch");
    }
    for (PlbConfig& p : bs.plbs_) p = PlbConfig::deserialize(arch, bits, cur);
    for (PadMode& m : bs.pads_) {
        const auto v = bits.get_bits(cur, 2);
        cur += 2;
        check(v <= 2, "Bitstream: bad pad mode");
        m = static_cast<PadMode>(v);
    }
    for (std::size_t i = 0; i < n_edges; ++i) {
        bs.edges_.set(i, bits.get(cur));
        ++cur;
    }
    return bs;
}

}  // namespace afpga::core
