// Architecture parameters of the multi-style asynchronous FPGA (Section 3).
//
// The paper's fabric is an island-style array of PLBs, each containing an
// Interconnection Matrix, two Logic Elements (multi-output LUT7-3 + LUT2-1)
// and a Programmable Delay Element. Everything here is parameterised so the
// ablation benches can vary one knob at a time (IM sparsity, PDE resolution,
// channel width, ...) while the defaults model the paper's architecture.
#pragma once

#include <cstdint>
#include <string>

namespace afpga::core {

/// How much of the IM crossbar is populated (abl-A in DESIGN.md).
enum class ImTopology : std::uint8_t {
    FullCrossbar,   ///< every source reaches every sink (the paper's flexible IM)
    Sparse50,       ///< every sink reaches a deterministic half of the sources
    Sparse25,       ///< a quarter
    NoFeedback,     ///< full, except LE outputs cannot reach LE inputs
                    ///< (removes the paper's looped-logic memory mechanism)
};

[[nodiscard]] std::string to_string(ImTopology t);

/// All architecture parameters, with the paper-modelled defaults.
struct ArchSpec {
    // --- array ------------------------------------------------------------
    std::uint32_t width = 8;          ///< PLB columns
    std::uint32_t height = 8;         ///< PLB rows
    std::uint32_t channel_width = 12; ///< routing tracks per channel
    /// Nets one channel track may carry. 1 models plain single-driver wires
    /// (the paper's fabric); >1 models each track as a bundle of identical
    /// wires, shrinking the RR graph while keeping congestion negotiation
    /// honest (the router reads this as the RR node capacity).
    std::uint32_t wire_capacity = 1;
    double fc_in = 0.5;               ///< fraction of tracks a PLB input pin taps
    double fc_out = 0.25;             ///< fraction of tracks a PLB output pin drives
    std::uint32_t pads_per_iob = 4;   ///< I/O pads per perimeter position

    // --- PLB (Fig. 1) -------------------------------------------------------
    std::uint32_t plb_inputs = 14;    ///< external input pins per PLB
    std::uint32_t plb_outputs = 8;    ///< external output pins per PLB
    std::uint32_t les_per_plb = 2;
    ImTopology im_topology = ImTopology::FullCrossbar;

    // --- LE (Fig. 2): LUT7-3 = two LUT6 halves + mux, plus a LUT2-1 --------
    std::uint32_t le_inputs = 7;      ///< i0..i5 shared by both halves, i6 = mux select
    static constexpr std::uint32_t kLeOutputs = 4;  ///< O0=A, O1=B, O2=mux7, O3=LUT2

    // --- PDE ----------------------------------------------------------------
    std::uint32_t pde_taps = 32;          ///< programmable tap count (0..taps-1)
    std::int64_t pde_quantum_ps = 250;    ///< delay per tap

    // --- delay model ---------------------------------------------------------
    std::int64_t lut_delay_ps = 100;   ///< LE LUT propagation
    std::int64_t lut2_delay_ps = 40;   ///< additional LUT2 stage after the LUT7-3
    std::int64_t im_delay_ps = 30;     ///< through the IM crossbar
    std::int64_t wire_delay_ps = 40;   ///< one channel segment
    std::int64_t pin_delay_ps = 20;    ///< CB connection (ipin/opin)

    // --- derived -------------------------------------------------------------
    [[nodiscard]] std::uint32_t im_num_sources() const noexcept {
        // PLB inputs + all LE outputs + PDE output + const0 + const1
        return plb_inputs + les_per_plb * kLeOutputs + 1 + 2;
    }
    [[nodiscard]] std::uint32_t im_num_sinks() const noexcept {
        // LE inputs + PDE input + PLB outputs
        return les_per_plb * le_inputs + 1 + plb_outputs;
    }
    /// Source index blocks inside the IM (see plb.hpp for the sink side).
    [[nodiscard]] std::uint32_t im_src_plb_input(std::uint32_t pin) const noexcept { return pin; }
    [[nodiscard]] std::uint32_t im_src_le_output(std::uint32_t le, std::uint32_t out) const noexcept {
        return plb_inputs + le * kLeOutputs + out;
    }
    [[nodiscard]] std::uint32_t im_src_pde_out() const noexcept {
        return plb_inputs + les_per_plb * kLeOutputs;
    }
    [[nodiscard]] std::uint32_t im_src_const0() const noexcept { return im_src_pde_out() + 1; }
    [[nodiscard]] std::uint32_t im_src_const1() const noexcept { return im_src_pde_out() + 2; }

    [[nodiscard]] std::uint32_t im_sink_le_input(std::uint32_t le, std::uint32_t pin) const noexcept {
        return le * le_inputs + pin;
    }
    [[nodiscard]] std::uint32_t im_sink_pde_in() const noexcept { return les_per_plb * le_inputs; }
    [[nodiscard]] std::uint32_t im_sink_plb_output(std::uint32_t pin) const noexcept {
        return im_sink_pde_in() + 1 + pin;
    }

    /// True if the IM topology lets `sink` listen to `source`.
    [[nodiscard]] bool im_connects(std::uint32_t source, std::uint32_t sink) const noexcept;

    /// Configuration bits per PLB (LE tables + IM selects + PDE tap).
    [[nodiscard]] std::size_t plb_config_bits() const noexcept;
    /// Bits of one IM sink select field.
    [[nodiscard]] std::size_t im_select_bits() const noexcept;
    /// Bits of the PDE tap field.
    [[nodiscard]] std::size_t pde_tap_bits() const noexcept;

    /// Validate parameter sanity (throws base::Error).
    void validate() const;

    /// Stable hash over all parameters (bitstream compatibility check).
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// The architecture as described in the paper (default-constructed ArchSpec).
[[nodiscard]] ArchSpec paper_arch();

/// Synchronous-baseline LE: see eval/baseline for the LUT4 island fabric used
/// to reproduce the paper's motivation (ref. [3]).

}  // namespace afpga::core
