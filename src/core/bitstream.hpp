// The configuration bitstream: every programmable bit of the fabric.
//
// Layout (all LSB-first):
//   header: arch fingerprint (64b), width/height/channel_width (16b each),
//           pad count (32b), edge count (32b)
//   body:   PLB configurations in raster order (x fastest),
//           pad modes (2b per pad),
//           routing switch states (1b per RR edge)
//   tail:   CRC-32 over header+body
#pragma once

#include <cstdint>
#include <vector>

#include "base/bitvector.hpp"
#include "core/fabric.hpp"
#include "core/plb.hpp"
#include "core/rrgraph.hpp"

namespace afpga::core {

class Bitstream {
public:
    /// A blank (unprogrammed) bitstream for the given fabric.
    Bitstream(const ArchSpec& arch, std::size_t num_rr_edges);

    [[nodiscard]] const ArchSpec& arch() const noexcept { return geom_.arch(); }

    [[nodiscard]] PlbConfig& plb(PlbCoord c);
    [[nodiscard]] const PlbConfig& plb(PlbCoord c) const;

    void set_pad_mode(std::uint32_t pad, PadMode mode);
    [[nodiscard]] PadMode pad_mode(std::uint32_t pad) const;

    void set_edge(std::uint32_t edge, bool enabled);
    [[nodiscard]] bool edge(std::uint32_t edge) const;
    [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
    [[nodiscard]] std::size_t num_enabled_edges() const noexcept { return edges_.count_ones(); }

    /// Number of PLBs with any configuration (occupancy metric).
    [[nodiscard]] std::size_t occupied_plbs() const;

    /// Total serialised size in bits (incl. header and CRC).
    [[nodiscard]] std::size_t size_bits() const;

    [[nodiscard]] base::BitVector serialize() const;
    /// Throws base::Error on fingerprint or CRC mismatch.
    static Bitstream deserialize(const ArchSpec& arch, const base::BitVector& bits);

    /// Configuration equality (assumes both sides target the same ArchSpec).
    friend bool operator==(const Bitstream& a, const Bitstream& b) noexcept {
        return a.plbs_ == b.plbs_ && a.pads_ == b.pads_ && a.edges_ == b.edges_;
    }

private:
    FabricGeometry geom_;
    std::vector<PlbConfig> plbs_;
    std::vector<PadMode> pads_;
    base::BitVector edges_;
};

}  // namespace afpga::core
