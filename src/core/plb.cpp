#include "core/plb.hpp"

#include "base/check.hpp"

namespace afpga::core {

using base::check;

void ImConfig::connect(const ArchSpec& arch, std::uint32_t sink, std::uint32_t source) {
    check(sink < arch.im_num_sinks(), "ImConfig::connect: bad sink");
    check(source < arch.im_num_sources(), "ImConfig::connect: bad source");
    check(arch.im_connects(source, sink),
          "ImConfig::connect: topology " + to_string(arch.im_topology) +
              " does not populate source " + std::to_string(source) + " -> sink " +
              std::to_string(sink));
    if (select.size() != arch.im_num_sinks()) select.assign(arch.im_num_sinks(), kImUnused);
    check(select[sink] == kImUnused || select[sink] == source,
          "ImConfig::connect: sink already driven by a different source");
    select[sink] = static_cast<std::uint8_t>(source);
}

bool PlbConfig::is_blank(const ArchSpec& arch) const {
    if (pde.tap != 0) return false;
    for (const LeConfig& l : le)
        if (!(l == LeConfig{})) return false;
    for (std::uint32_t s = 0; s < arch.im_num_sinks(); ++s)
        if (s < im.select.size() && im.select[s] != kImUnused) return false;
    return true;
}

void PlbConfig::serialize(const ArchSpec& arch, base::BitVector& out) const {
    check(le.size() == arch.les_per_plb, "PlbConfig::serialize: LE count mismatch");
    for (const LeConfig& l : le) {
        out.append_bits(l.tt_a, 64);
        out.append_bits(l.tt_b, 64);
        out.append_bits(l.lut2_tt, 4);
        out.append_bits(l.lut2_sel0, 2);
        out.append_bits(l.lut2_sel1, 2);
    }
    const std::size_t sel_bits = arch.im_select_bits();
    const std::uint64_t unused_code = (1ULL << sel_bits) - 1;
    for (std::uint32_t s = 0; s < arch.im_num_sinks(); ++s) {
        const std::uint8_t sel = s < im.select.size() ? im.select[s] : kImUnused;
        out.append_bits(sel == kImUnused ? unused_code : sel, sel_bits);
    }
    out.append_bits(pde.tap, arch.pde_tap_bits());
}

PlbConfig PlbConfig::deserialize(const ArchSpec& arch, const base::BitVector& in,
                                 std::size_t& cursor) {
    PlbConfig cfg(arch);
    for (LeConfig& l : cfg.le) {
        l.tt_a = in.get_bits(cursor, 64);
        cursor += 64;
        l.tt_b = in.get_bits(cursor, 64);
        cursor += 64;
        l.lut2_tt = static_cast<std::uint8_t>(in.get_bits(cursor, 4));
        cursor += 4;
        l.lut2_sel0 = static_cast<std::uint8_t>(in.get_bits(cursor, 2));
        cursor += 2;
        l.lut2_sel1 = static_cast<std::uint8_t>(in.get_bits(cursor, 2));
        cursor += 2;
    }
    const std::size_t sel_bits = arch.im_select_bits();
    const std::uint64_t unused_code = (1ULL << sel_bits) - 1;
    for (std::uint32_t s = 0; s < arch.im_num_sinks(); ++s) {
        const std::uint64_t v = in.get_bits(cursor, sel_bits);
        cursor += sel_bits;
        cfg.im.select[s] = v == unused_code ? kImUnused : static_cast<std::uint8_t>(v);
    }
    cfg.pde.tap = static_cast<std::uint8_t>(in.get_bits(cursor, arch.pde_tap_bits()));
    cursor += arch.pde_tap_bits();
    return cfg;
}

}  // namespace afpga::core
