#include "core/le.hpp"

#include <vector>

#include "base/check.hpp"

namespace afpga::core {

using base::check;
using netlist::Logic;
using netlist::TruthTable;

std::array<Logic, 4> LeEval::evaluate(const LeConfig& cfg, const std::array<Logic, 7>& in) {
    const TruthTable ta = TruthTable::from_bits(6, cfg.tt_a);
    const TruthTable tb = TruthTable::from_bits(6, cfg.tt_b);
    const std::span<const Logic> lo(in.data(), 6);
    const Logic a = netlist::eval_cell(netlist::CellFunc::Lut, lo, Logic::X, &ta);
    const Logic b = netlist::eval_cell(netlist::CellFunc::Lut, lo, Logic::X, &tb);
    Logic o2;
    if (in[6] == Logic::F)
        o2 = a;
    else if (in[6] == Logic::T)
        o2 = b;
    else
        o2 = (a == b) ? a : Logic::X;
    const std::array<Logic, 3> exported{a, b, o2};
    check(cfg.lut2_sel0 < 3 && cfg.lut2_sel1 < 3, "LeEval: bad LUT2 select");
    const TruthTable t2 = TruthTable::from_bits(2, cfg.lut2_tt);
    const std::array<Logic, 2> l2in{exported[cfg.lut2_sel0], exported[cfg.lut2_sel1]};
    const Logic o3 = netlist::eval_cell(netlist::CellFunc::Lut, l2in, Logic::X, &t2);
    return {a, b, o2, o3};
}

TruthTable LeEval::output_function(const LeConfig& cfg, std::uint32_t out) {
    check(out < 4, "LeEval: bad output index");
    const TruthTable ta = TruthTable::from_bits(6, cfg.tt_a).remap({0, 1, 2, 3, 4, 5}, 7);
    const TruthTable tb = TruthTable::from_bits(6, cfg.tt_b).remap({0, 1, 2, 3, 4, 5}, 7);
    const TruthTable i6 = TruthTable::identity(7, 6);
    switch (out) {
        case kLeOutA: return ta;
        case kLeOutB: return tb;
        case kLeOutMux7: return (~i6 & ta) | (i6 & tb);
        default: {
            const TruthTable o[3] = {ta, tb, (~i6 & ta) | (i6 & tb)};
            const TruthTable& x = o[cfg.lut2_sel0];
            const TruthTable& y = o[cfg.lut2_sel1];
            TruthTable r(7);
            for (std::uint32_t m = 0; m < 128; ++m) {
                const std::uint32_t row =
                    (x.eval(m) ? 1u : 0u) | (y.eval(m) ? 2u : 0u);
                r.set_row(m, (cfg.lut2_tt >> row) & 1u);
            }
            return r;
        }
    }
}

void LeProgram::set_half(LeConfig& cfg, bool half_b, const TruthTable& table,
                         const std::vector<std::size_t>& pin_map) {
    check(table.arity() <= 6, "set_half: function too wide for a LUT6 half");
    check(pin_map.size() == table.arity(), "set_half: pin map arity mismatch");
    for (std::size_t p : pin_map) check(p < 6, "set_half: pin must be one of i0..i5");
    const TruthTable expanded = table.remap(pin_map, 6);
    std::uint64_t bits = 0;
    for (std::uint32_t m = 0; m < 64; ++m)
        if (expanded.eval(m)) bits |= 1ULL << m;
    (half_b ? cfg.tt_b : cfg.tt_a) = bits;
}

void LeProgram::set_full7(LeConfig& cfg, const TruthTable& table,
                          const std::vector<std::size_t>& pin_map) {
    check(table.arity() == 7, "set_full7: need a 7-variable function");
    check(pin_map.size() == 7, "set_full7: pin map arity mismatch");
    std::size_t sel_var = 7;
    for (std::size_t i = 0; i < 7; ++i) {
        check(pin_map[i] < 7, "set_full7: bad pin");
        if (pin_map[i] == 6) {
            check(sel_var == 7, "set_full7: two variables mapped to i6");
            sel_var = i;
        }
    }
    check(sel_var != 7, "set_full7: no variable mapped to i6");
    const TruthTable f0 = table.cofactor(sel_var, false);
    const TruthTable f1 = table.cofactor(sel_var, true);
    // Remaining variables keep their pin mapping (all < 6).
    std::vector<std::size_t> sub_map;
    for (std::size_t i = 0; i < 7; ++i)
        if (i != sel_var) sub_map.push_back(pin_map[i]);
    set_half(cfg, false, f0, sub_map);
    set_half(cfg, true, f1, sub_map);
}

void LeProgram::set_lut2(LeConfig& cfg, const TruthTable& table2, std::uint32_t sel0,
                         std::uint32_t sel1) {
    check(table2.arity() == 2, "set_lut2: need a 2-variable function");
    check(sel0 < 3 && sel1 < 3, "set_lut2: selects must pick O0/O1/O2");
    cfg.lut2_tt = static_cast<std::uint8_t>(table2.bits64());
    cfg.lut2_sel0 = static_cast<std::uint8_t>(sel0);
    cfg.lut2_sel1 = static_cast<std::uint8_t>(sel1);
}

std::string describe(const LeConfig& cfg) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "LE{A=%016llx B=%016llx lut2=%x sel=(%u,%u)}",
                  static_cast<unsigned long long>(cfg.tt_a),
                  static_cast<unsigned long long>(cfg.tt_b), cfg.lut2_tt, cfg.lut2_sel0,
                  cfg.lut2_sel1);
    return buf;
}

}  // namespace afpga::core
