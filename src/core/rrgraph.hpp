// The routing-resource graph of the island fabric.
//
// Nodes are programmable sites a signal can occupy: PLB output pins (OPIN),
// PLB input pins (IPIN), pad pins, and unit-length channel wires (CHANX /
// CHANY). Directed edges are programmable switches: opin->wire (connection
// box, Fc_out), wire->ipin (connection box, Fc_in) and wire<->wire at the
// switch boxes (a Wilton-style turn pattern plus straight-through).
//
// Because the PLB's Interconnection Matrix is a crossbar, all input pins of a
// PLB are logically equivalent: the router may deliver a net to ANY free
// IPIN of the target PLB and the IM distributes it internally — this is the
// architectural payoff of the IM and is exploited by cad::Router.
//
// Construction is deterministic and optionally parallel: node ids are pure
// functions of their coordinates; each per-row edge-generation unit has an
// exact closed-form edge count, so the units write directly into disjoint
// pre-sized spans of the shared edge arrays, and a partitioned
// histogram/placement pass then stitches the edges into the CSR adjacency —
// every step is schedule-independent, so the serial build and the
// pool-backed build produce byte-identical node/edge arrays
// (content_fingerprint() pins this in the tests).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/fabric.hpp"

namespace afpga::base {
class ThreadPool;
}

namespace afpga::core {

enum class RRKind : std::uint8_t { Opin, Ipin, ChanX, ChanY };

[[nodiscard]] std::string to_string(RRKind k);

struct RRNode {
    RRKind kind = RRKind::ChanX;
    std::uint16_t x = 0;      ///< PLB x / pad index low half / channel coordinate
    std::uint16_t y = 0;
    std::uint16_t track = 0;  ///< wire track, or pin index for Opin/Ipin
    bool is_pad = false;      ///< pin nodes: belongs to an I/O pad, not a PLB
    std::int64_t delay_ps = 0;
};

/// Packed hot-path view of one RR node: position, kind and the pad flag in a
/// single 8-byte word. The router's wavefront loop (heuristic + bounding-box
/// tests) reads only these fields, and reading them through the dense
/// position-word array touches half the bytes per node that chasing RRNode
/// structs would (and never drags the cold delay field into cache).
struct RRNodeWord {
    std::uint64_t w = 0;

    RRNodeWord() = default;
    explicit constexpr RRNodeWord(std::uint64_t word) noexcept : w(word) {}
    static constexpr RRNodeWord pack(RRKind kind, std::uint16_t x, std::uint16_t y,
                                     bool is_pad) noexcept {
        return RRNodeWord{std::uint64_t{x} | (std::uint64_t{y} << 16) |
                          (static_cast<std::uint64_t>(kind) << 32) |
                          (std::uint64_t{is_pad} << 40)};
    }
    [[nodiscard]] constexpr std::uint32_t x() const noexcept {
        return static_cast<std::uint32_t>(w & 0xFFFF);
    }
    [[nodiscard]] constexpr std::uint32_t y() const noexcept {
        return static_cast<std::uint32_t>((w >> 16) & 0xFFFF);
    }
    [[nodiscard]] constexpr RRKind kind() const noexcept {
        return static_cast<RRKind>((w >> 32) & 0xFF);
    }
    [[nodiscard]] constexpr bool is_pad() const noexcept { return ((w >> 40) & 1) != 0; }
};

class RRGraph {
public:
    /// Serial build.
    explicit RRGraph(const ArchSpec& arch);
    /// Parallel build on `pool`: per-row edge generation into pre-sized
    /// disjoint spans plus a deterministic partitioned CSR stitch —
    /// byte-identical to the serial build, only faster.
    RRGraph(const ArchSpec& arch, base::ThreadPool& pool);

    [[nodiscard]] const ArchSpec& arch() const noexcept { return geom_.arch(); }
    [[nodiscard]] const FabricGeometry& geometry() const noexcept { return geom_; }

    [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t num_edges() const noexcept { return edge_to_.size(); }
    [[nodiscard]] const RRNode& node(std::uint32_t id) const { return nodes_.at(id); }

    [[nodiscard]] std::uint32_t edge_target(std::uint32_t edge) const { return edge_to_.at(edge); }
    [[nodiscard]] std::uint32_t edge_source(std::uint32_t edge) const {
        return edge_from_.at(edge);
    }

    // --- flat CSR adjacency (router hot path) --------------------------------
    /// One adjacency entry: the edge id and its target node.
    struct OutEdge {
        std::uint32_t edge;
        std::uint32_t to;
    };
    /// Outgoing adjacency of `node` as one contiguous span — the cache-dense
    /// view the router iterates instead of per-node edge-id vectors.
    [[nodiscard]] std::span<const OutEdge> out(std::uint32_t node) const noexcept {
        return {csr_adj_.data() + csr_first_[node], csr_first_[node + 1] - csr_first_[node]};
    }

    /// Range of the outgoing edge *ids* of one node, in creation order — a
    /// view over the CSR adjacency for callers (elaboration, stats) that only
    /// need the ids.
    class EdgeIdRange {
    public:
        class iterator {
        public:
            explicit iterator(const OutEdge* p) noexcept : p_(p) {}
            std::uint32_t operator*() const noexcept { return p_->edge; }
            iterator& operator++() noexcept {
                ++p_;
                return *this;
            }
            friend bool operator==(iterator a, iterator b) noexcept = default;

        private:
            const OutEdge* p_;
        };
        explicit EdgeIdRange(std::span<const OutEdge> s) noexcept : s_(s) {}
        [[nodiscard]] iterator begin() const noexcept { return iterator{s_.data()}; }
        [[nodiscard]] iterator end() const noexcept { return iterator{s_.data() + s_.size()}; }
        [[nodiscard]] std::size_t size() const noexcept { return s_.size(); }

    private:
        std::span<const OutEdge> s_;
    };
    /// Outgoing edges of `node` as edge ids (bounds-checked).
    [[nodiscard]] EdgeIdRange out_edges(std::uint32_t node) const {
        (void)nodes_.at(node);  // preserve the historical at() bounds check
        return EdgeIdRange{out(node)};
    }

    /// How many nets may legally occupy `node` (1 for pins; wire nodes carry
    /// ArchSpec::wire_capacity). Raw-indexed like out(): it sits in the
    /// router's per-edge hot loop.
    [[nodiscard]] std::uint16_t node_capacity(std::uint32_t n) const noexcept {
        return capacity_[n];
    }

    // --- SoA hot data (router wavefront loop) --------------------------------
    // Built once per graph from nodes_: dense side arrays holding exactly
    // what the per-node search touches, so the expansion loop never chases
    // RRNode structs. Raw-indexed like out()/node_capacity().

    /// Packed {x, y, kind, is_pad} word of `n` — the heuristic/bounding-box
    /// view of the node.
    [[nodiscard]] RRNodeWord node_word(std::uint32_t n) const noexcept { return hot_word_[n]; }
    /// The router's base cost of occupying `n`: max(delay_ps, 1) as a double,
    /// precomputed so the wavefront loop never converts or clamps.
    [[nodiscard]] double node_base_cost(std::uint32_t n) const noexcept { return base_cost_[n]; }
    /// The whole base-cost array (kernel microbenches / bulk scans).
    [[nodiscard]] std::span<const double> base_costs() const noexcept { return base_cost_; }
    /// The whole position-word array.
    [[nodiscard]] std::span<const RRNodeWord> node_words() const noexcept { return hot_word_; }

    // --- node lookup --------------------------------------------------------
    [[nodiscard]] std::uint32_t plb_opin(PlbCoord c, std::uint32_t pin) const;
    [[nodiscard]] std::uint32_t plb_ipin(PlbCoord c, std::uint32_t pin) const;
    [[nodiscard]] std::uint32_t pad_opin(std::uint32_t pad) const;  ///< input pad driver
    [[nodiscard]] std::uint32_t pad_ipin(std::uint32_t pad) const;  ///< output pad listener
    [[nodiscard]] std::uint32_t chanx(std::uint32_t ych, std::uint32_t x,
                                      std::uint32_t track) const;
    [[nodiscard]] std::uint32_t chany(std::uint32_t xch, std::uint32_t y,
                                      std::uint32_t track) const;

    /// For an IPIN node: the (PLB, pin) it belongs to.
    [[nodiscard]] PlbCoord ipin_plb(std::uint32_t node) const;
    [[nodiscard]] std::uint32_t pin_index(std::uint32_t node) const {
        return nodes_.at(node).track;
    }
    /// For a pad pin node: the pad index.
    [[nodiscard]] std::uint32_t pad_of(std::uint32_t node) const;

    // --- statistics (fig1 bench) ---------------------------------------------
    [[nodiscard]] std::size_t num_wires() const noexcept { return n_wires_; }
    [[nodiscard]] double avg_wire_fanout() const;

    /// Stable hash over the full node and edge content (not the ArchSpec):
    /// two graphs agree iff their arrays are byte-identical. Pins the
    /// serial-vs-parallel build equivalence in tests and benches.
    [[nodiscard]] std::uint64_t content_fingerprint() const noexcept;

private:
    /// Write cursor into the pre-sized edge arrays: each generation unit
    /// owns the disjoint range [at, end of unit) computed by the exact
    /// closed-form counts, so units can emit concurrently.
    struct EdgeSink {
        std::uint32_t* from;
        std::uint32_t* to;
        std::size_t at;
        void emit(std::uint32_t f, std::uint32_t t) noexcept {
            from[at] = f;
            to[at] = t;
            ++at;
        }
    };

    void build(base::ThreadPool* pool);
    void build_nodes();
    [[nodiscard]] std::size_t count_conn_row() const;
    [[nodiscard]] std::size_t count_pads() const;
    [[nodiscard]] std::size_t count_switch_row(std::uint32_t jy) const;
    void emit_conn_row(std::uint32_t y, EdgeSink& out) const;
    void emit_pads(EdgeSink& out) const;
    void emit_switch_row(std::uint32_t jy, EdgeSink& out) const;
    void build_csr(base::ThreadPool* pool);
    void connect_pin_to_channel(std::uint32_t pin_node, bool pin_drives, Side side,
                                std::uint32_t cx, std::uint32_t cy, std::uint32_t seed,
                                EdgeSink& out) const;

    FabricGeometry geom_;
    std::vector<RRNode> nodes_;
    std::vector<std::uint32_t> edge_from_;
    std::vector<std::uint32_t> edge_to_;
    std::vector<std::uint16_t> capacity_;   // node -> legal occupancy
    std::vector<std::uint32_t> csr_first_;  // node -> first index into csr_adj_
    std::vector<OutEdge> csr_adj_;          // adjacency flattened by source node
    std::vector<RRNodeWord> hot_word_;      // node -> packed {x,y,kind,is_pad}
    std::vector<double> base_cost_;         // node -> max(delay_ps,1) as double

    // dense lookup bases
    std::uint32_t base_plb_opin_ = 0;
    std::uint32_t base_plb_ipin_ = 0;
    std::uint32_t base_pad_opin_ = 0;
    std::uint32_t base_pad_ipin_ = 0;
    std::uint32_t base_chanx_ = 0;
    std::uint32_t base_chany_ = 0;
    std::size_t n_wires_ = 0;
};

}  // namespace afpga::core
