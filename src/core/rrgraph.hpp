// The routing-resource graph of the island fabric.
//
// Nodes are programmable sites a signal can occupy: PLB output pins (OPIN),
// PLB input pins (IPIN), pad pins, and unit-length channel wires (CHANX /
// CHANY). Directed edges are programmable switches: opin->wire (connection
// box, Fc_out), wire->ipin (connection box, Fc_in) and wire<->wire at the
// switch boxes (a Wilton-style turn pattern plus straight-through).
//
// Because the PLB's Interconnection Matrix is a crossbar, all input pins of a
// PLB are logically equivalent: the router may deliver a net to ANY free
// IPIN of the target PLB and the IM distributes it internally — this is the
// architectural payoff of the IM and is exploited by cad::Router.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/fabric.hpp"

namespace afpga::core {

enum class RRKind : std::uint8_t { Opin, Ipin, ChanX, ChanY };

[[nodiscard]] std::string to_string(RRKind k);

struct RRNode {
    RRKind kind = RRKind::ChanX;
    std::uint16_t x = 0;      ///< PLB x / pad index low half / channel coordinate
    std::uint16_t y = 0;
    std::uint16_t track = 0;  ///< wire track, or pin index for Opin/Ipin
    bool is_pad = false;      ///< pin nodes: belongs to an I/O pad, not a PLB
    std::int64_t delay_ps = 0;
};

class RRGraph {
public:
    explicit RRGraph(const ArchSpec& arch);

    [[nodiscard]] const ArchSpec& arch() const noexcept { return geom_.arch(); }
    [[nodiscard]] const FabricGeometry& geometry() const noexcept { return geom_; }

    [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t num_edges() const noexcept { return edge_to_.size(); }
    [[nodiscard]] const RRNode& node(std::uint32_t id) const { return nodes_.at(id); }

    /// Outgoing edges of `node` as indices into the global edge array.
    [[nodiscard]] const std::vector<std::uint32_t>& out_edges(std::uint32_t node) const {
        return out_edges_.at(node);
    }
    [[nodiscard]] std::uint32_t edge_target(std::uint32_t edge) const { return edge_to_.at(edge); }
    [[nodiscard]] std::uint32_t edge_source(std::uint32_t edge) const {
        return edge_from_.at(edge);
    }

    // --- flat CSR adjacency (router hot path) --------------------------------
    /// One adjacency entry: the edge id and its target node.
    struct OutEdge {
        std::uint32_t edge;
        std::uint32_t to;
    };
    /// Outgoing adjacency of `node` as one contiguous span — the cache-dense
    /// view the router iterates instead of the per-node edge-id vectors.
    [[nodiscard]] std::span<const OutEdge> out(std::uint32_t node) const noexcept {
        return {csr_adj_.data() + csr_first_[node], csr_first_[node + 1] - csr_first_[node]};
    }

    /// How many nets may legally occupy `node` (1 for pins; wire nodes carry
    /// ArchSpec::wire_capacity). Raw-indexed like out(): it sits in the
    /// router's per-edge hot loop.
    [[nodiscard]] std::uint16_t node_capacity(std::uint32_t n) const noexcept {
        return capacity_[n];
    }

    // --- node lookup --------------------------------------------------------
    [[nodiscard]] std::uint32_t plb_opin(PlbCoord c, std::uint32_t pin) const;
    [[nodiscard]] std::uint32_t plb_ipin(PlbCoord c, std::uint32_t pin) const;
    [[nodiscard]] std::uint32_t pad_opin(std::uint32_t pad) const;  ///< input pad driver
    [[nodiscard]] std::uint32_t pad_ipin(std::uint32_t pad) const;  ///< output pad listener
    [[nodiscard]] std::uint32_t chanx(std::uint32_t ych, std::uint32_t x,
                                      std::uint32_t track) const;
    [[nodiscard]] std::uint32_t chany(std::uint32_t xch, std::uint32_t y,
                                      std::uint32_t track) const;

    /// For an IPIN node: the (PLB, pin) it belongs to.
    [[nodiscard]] PlbCoord ipin_plb(std::uint32_t node) const;
    [[nodiscard]] std::uint32_t pin_index(std::uint32_t node) const {
        return nodes_.at(node).track;
    }
    /// For a pad pin node: the pad index.
    [[nodiscard]] std::uint32_t pad_of(std::uint32_t node) const;

    // --- statistics (fig1 bench) ---------------------------------------------
    [[nodiscard]] std::size_t num_wires() const noexcept { return n_wires_; }
    [[nodiscard]] double avg_wire_fanout() const;

private:
    void build();
    void build_csr();
    std::uint32_t add_node(const RRNode& n);
    void add_edge(std::uint32_t from, std::uint32_t to);
    void add_biedge(std::uint32_t a, std::uint32_t b);
    void connect_pin_to_channel(std::uint32_t pin_node, bool pin_drives, Side side,
                                std::uint32_t cx, std::uint32_t cy, std::uint32_t seed);

    FabricGeometry geom_;
    std::vector<RRNode> nodes_;
    std::vector<std::vector<std::uint32_t>> out_edges_;  // node -> edge ids
    std::vector<std::uint32_t> edge_from_;
    std::vector<std::uint32_t> edge_to_;
    std::vector<std::uint16_t> capacity_;   // node -> legal occupancy
    std::vector<std::uint32_t> csr_first_;  // node -> first index into csr_adj_
    std::vector<OutEdge> csr_adj_;          // adjacency flattened by source node

    // dense lookup bases
    std::uint32_t base_plb_opin_ = 0;
    std::uint32_t base_plb_ipin_ = 0;
    std::uint32_t base_pad_opin_ = 0;
    std::uint32_t base_pad_ipin_ = 0;
    std::uint32_t base_chanx_ = 0;
    std::uint32_t base_chany_ = 0;
    std::size_t n_wires_ = 0;
};

}  // namespace afpga::core
