// The Programmable Logic Block (Fig. 1): IM + two LEs + PDE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/bitvector.hpp"
#include "core/archspec.hpp"
#include "core/le.hpp"

namespace afpga::core {

/// Sentinel select for an unconfigured IM sink.
inline constexpr std::uint8_t kImUnused = 0xFF;

/// The Interconnection Matrix: one source select per sink.
///
/// Sources: PLB input pins, all LE outputs, the PDE output, const0/const1.
/// Sinks: LE input pins, the PDE input, PLB output pins. Index blocks are
/// defined by ArchSpec::im_src_* / im_sink_*. The IM is what lets looped
/// combinational logic (Muller gates) close inside the PLB.
struct ImConfig {
    std::vector<std::uint8_t> select;  ///< per sink; kImUnused if unconfigured

    explicit ImConfig(const ArchSpec& arch) : select(arch.im_num_sinks(), kImUnused) {}
    ImConfig() = default;

    /// Configure `sink` to listen to `source`; enforces the IM topology.
    void connect(const ArchSpec& arch, std::uint32_t sink, std::uint32_t source);
    [[nodiscard]] bool sink_used(std::uint32_t sink) const {
        return sink < select.size() && select[sink] != kImUnused;
    }

    friend bool operator==(const ImConfig&, const ImConfig&) noexcept = default;
};

/// The Programmable Delay Element: a tap-selectable transport delay.
struct PdeConfig {
    std::uint8_t tap = 0;  ///< delay = tap * arch.pde_quantum_ps

    [[nodiscard]] std::int64_t delay_ps(const ArchSpec& arch) const noexcept {
        return static_cast<std::int64_t>(tap) * arch.pde_quantum_ps;
    }
    friend bool operator==(const PdeConfig&, const PdeConfig&) noexcept = default;
};

/// Full configuration of one PLB.
struct PlbConfig {
    std::vector<LeConfig> le;  ///< arch.les_per_plb entries
    ImConfig im;
    PdeConfig pde;

    explicit PlbConfig(const ArchSpec& arch) : le(arch.les_per_plb), im(arch) {}
    PlbConfig() = default;

    /// True if nothing in this PLB is configured (all-default).
    [[nodiscard]] bool is_blank(const ArchSpec& arch) const;

    /// Append this PLB's configuration bits (fixed layout: LEs, IM, PDE).
    void serialize(const ArchSpec& arch, base::BitVector& out) const;
    /// Read back a configuration written by serialize().
    static PlbConfig deserialize(const ArchSpec& arch, const base::BitVector& in,
                                 std::size_t& cursor);

    friend bool operator==(const PlbConfig&, const PlbConfig&) noexcept = default;
};

}  // namespace afpga::core
