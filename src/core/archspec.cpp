#include "core/archspec.hpp"

#include <bit>

#include "base/check.hpp"

namespace afpga::core {

using base::check;

std::string to_string(ImTopology t) {
    switch (t) {
        case ImTopology::FullCrossbar: return "full-crossbar";
        case ImTopology::Sparse50: return "sparse-50";
        case ImTopology::Sparse25: return "sparse-25";
        case ImTopology::NoFeedback: return "no-feedback";
    }
    return "?";
}

bool ArchSpec::im_connects(std::uint32_t source, std::uint32_t sink) const noexcept {
    if (source >= im_num_sources() || sink >= im_num_sinks()) return false;
    // Constants are always reachable (needed to tie off unused inputs).
    const bool is_const = source == im_src_const0() || source == im_src_const1();
    switch (im_topology) {
        case ImTopology::FullCrossbar: return true;
        case ImTopology::Sparse50:
            return is_const || ((source + sink) % 2 == 0);
        case ImTopology::Sparse25:
            return is_const || ((source + sink) % 4 == 0);
        case ImTopology::NoFeedback: {
            const bool src_is_le = source >= plb_inputs && source < im_src_pde_out();
            const bool sink_is_le_input = sink < les_per_plb * le_inputs;
            return !(src_is_le && sink_is_le_input);
        }
    }
    return true;
}

std::size_t ArchSpec::im_select_bits() const noexcept {
    std::size_t bits = 1;
    while ((1u << bits) < im_num_sources() + 1) ++bits;  // +1 for "unused"
    return bits;
}

std::size_t ArchSpec::pde_tap_bits() const noexcept {
    std::size_t bits = 1;
    while ((1u << bits) < pde_taps) ++bits;
    return bits;
}

std::size_t ArchSpec::plb_config_bits() const noexcept {
    // Per LE: two LUT6 tables + LUT2 table + two 2-bit output selects.
    const std::size_t le_bits = 64 + 64 + 4 + 2 + 2;
    return les_per_plb * le_bits + im_num_sinks() * im_select_bits() + pde_tap_bits();
}

void ArchSpec::validate() const {
    check(width >= 1 && height >= 1, "ArchSpec: empty array");
    check(channel_width >= 2, "ArchSpec: channel too narrow");
    check(wire_capacity >= 1 && wire_capacity <= 64, "ArchSpec: 1..64 nets per track");
    check(fc_in > 0.0 && fc_in <= 1.0 && fc_out > 0.0 && fc_out <= 1.0, "ArchSpec: bad Fc");
    check(le_inputs == 7, "ArchSpec: the LE model is fixed at 7 inputs (LUT7-3)");
    check(les_per_plb >= 1 && les_per_plb <= 4, "ArchSpec: 1..4 LEs per PLB");
    check(plb_inputs >= le_inputs, "ArchSpec: PLB must expose at least one LE's inputs");
    check(plb_outputs >= les_per_plb, "ArchSpec: at least one output pin per LE");
    check(pde_taps >= 2 && pde_taps <= 64, "ArchSpec: 2..64 PDE taps");
    check(pde_quantum_ps > 0, "ArchSpec: PDE quantum must be positive");
    check(pads_per_iob >= 1, "ArchSpec: need at least one pad per IOB");
}

std::uint64_t ArchSpec::fingerprint() const noexcept {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
        h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
        return h;
    };
    std::uint64_t h = 0xA55A'FEED'0123'4567ULL;
    h = mix(h, width);
    h = mix(h, height);
    h = mix(h, channel_width);
    h = mix(h, wire_capacity);
    h = mix(h, static_cast<std::uint64_t>(fc_in * 1000));
    h = mix(h, static_cast<std::uint64_t>(fc_out * 1000));
    h = mix(h, pads_per_iob);
    h = mix(h, plb_inputs);
    h = mix(h, plb_outputs);
    h = mix(h, les_per_plb);
    h = mix(h, static_cast<std::uint64_t>(im_topology));
    h = mix(h, le_inputs);
    h = mix(h, pde_taps);
    h = mix(h, static_cast<std::uint64_t>(pde_quantum_ps));
    h = mix(h, static_cast<std::uint64_t>(lut_delay_ps));
    h = mix(h, static_cast<std::uint64_t>(lut2_delay_ps));
    h = mix(h, static_cast<std::uint64_t>(im_delay_ps));
    h = mix(h, static_cast<std::uint64_t>(wire_delay_ps));
    h = mix(h, static_cast<std::uint64_t>(pin_delay_ps));
    return h;
}

ArchSpec paper_arch() { return ArchSpec{}; }

}  // namespace afpga::core
