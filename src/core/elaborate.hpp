// Fabric elaboration: decode a configuration bitstream back into a flat,
// simulatable gate-level netlist with wire delays.
//
// This is the fidelity anchor of the reproduction: the CAD flow writes a
// bitstream; elaborate() reconstructs the implemented circuit FROM THE BITS
// ALONE (LE truth tables, IM selects, PDE taps, enabled routing switches) and
// the test suite checks that this reconstruction behaves exactly like the
// original source netlist under token simulation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bitstream.hpp"
#include "core/rrgraph.hpp"
#include "netlist/netlist.hpp"

namespace afpga::core {

/// Extra wire delay to apply to one cell input (resolved against the
/// elaborated netlist; sim::Simulator consumes these via set_sink_delay).
struct SinkDelayAnnotation {
    netlist::CellId cell;
    std::uint32_t pin = 0;
    std::int64_t delay_ps = 0;
};

/// The reconstructed circuit.
struct ElaboratedDesign {
    netlist::Netlist nl;
    std::vector<SinkDelayAnnotation> wire_delays;
    /// pad index -> PI net (input pads) — PIs are also in nl.primary_inputs().
    std::unordered_map<std::uint32_t, netlist::NetId> pad_to_pi;
    /// pad index -> PO name (output pads).
    std::unordered_map<std::uint32_t, std::string> pad_to_po;

    /// Apply wire_delays to a simulator built on `nl`.
    void annotate(class sim_applier&) = delete;  // see apply_wire_delays below
};

/// Resolve the annotations into (net, sink index, delay) triples suitable for
/// Simulator::set_sink_delay.
struct ResolvedSinkDelay {
    netlist::NetId net;
    std::size_t sink_idx = 0;
    std::int64_t delay_ps = 0;
};
[[nodiscard]] std::vector<ResolvedSinkDelay> resolve_wire_delays(const ElaboratedDesign& d);

/// Decode `bits` against the fabric `rr` describes. `pad_names` optionally
/// assigns user names to pads (pad index -> name); unnamed pads get
/// geometry-derived names.
[[nodiscard]] ElaboratedDesign elaborate(const RRGraph& rr, const Bitstream& bits,
                                         const std::unordered_map<std::uint32_t, std::string>&
                                             pad_names = {});

}  // namespace afpga::core
