// The Logic Element (Fig. 2): a multi-output LUT7-3 plus a LUT2-1.
//
// Realisation of "make externally available some internal signals of a LUT":
// the 7-input LUT is built from two 6-input halves A and B sharing inputs
// i0..i5, recombined by a 2:1 mux steered by i6; the three exported outputs
// are O0 = A, O1 = B and O2 = mux(i6, A, B). The LUT2-1 is "directly plugged
// to the multi-output LUT": its two inputs select among O0/O1/O2 and its
// output O3 typically computes the data-validity function (e.g. OR of the
// two rails of a dual-rail signal).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "netlist/cells.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::core {

/// Indices of the four LE outputs.
enum LeOutput : std::uint32_t {
    kLeOutA = 0,     ///< O0: LUT6 half A over i0..i5
    kLeOutB = 1,     ///< O1: LUT6 half B over i0..i5
    kLeOutMux7 = 2,  ///< O2: i6 ? B : A (the full LUT7 function)
    kLeOutLut2 = 3,  ///< O3: LUT2 over two of {O0, O1, O2}
};

/// Bit-exact configuration of one LE.
struct LeConfig {
    std::uint64_t tt_a = 0;   ///< LUT6 half A truth table (row m = bit m)
    std::uint64_t tt_b = 0;   ///< LUT6 half B truth table
    std::uint8_t lut2_tt = 0; ///< 4-bit LUT2 table
    std::uint8_t lut2_sel0 = 0;  ///< first LUT2 input: 0,1,2 -> O0,O1,O2
    std::uint8_t lut2_sel1 = 1;  ///< second LUT2 input

    friend bool operator==(const LeConfig&, const LeConfig&) noexcept = default;
};

/// Pure-function evaluation of a configured LE (three-valued, exact).
struct LeEval {
    /// Evaluate all four outputs for the given 7 input values.
    [[nodiscard]] static std::array<netlist::Logic, 4> evaluate(
        const LeConfig& cfg, const std::array<netlist::Logic, 7>& in);

    /// The function computed by output `out` as a truth table over i0..i6.
    [[nodiscard]] static netlist::TruthTable output_function(const LeConfig& cfg,
                                                             std::uint32_t out);
};

/// Helpers used by the technology mapper to fill an LE.
struct LeProgram {
    /// Program half A (or B) with a function of up to 6 variables; `table`'s
    /// variable i maps to LE input `pin_map[i]` (each < 6).
    static void set_half(LeConfig& cfg, bool half_b, const netlist::TruthTable& table,
                         const std::vector<std::size_t>& pin_map);

    /// Program the whole LE with a 7-variable function: half A gets the i6=0
    /// cofactor, half B the i6=1 cofactor; O2 is the function. `table`'s
    /// variable i maps to LE input `pin_map[i]` (exactly one maps to pin 6).
    static void set_full7(LeConfig& cfg, const netlist::TruthTable& table,
                          const std::vector<std::size_t>& pin_map);

    /// Program the LUT2 slot with a 2-input function of outputs
    /// (sel0, sel1) in {O0,O1,O2}.
    static void set_lut2(LeConfig& cfg, const netlist::TruthTable& table2, std::uint32_t sel0,
                         std::uint32_t sel1);
};

[[nodiscard]] std::string describe(const LeConfig& cfg);

}  // namespace afpga::core
