#include "core/elaborate.hpp"

#include <deque>
#include <functional>

#include "base/check.hpp"

namespace afpga::core {

using base::check;
using netlist::CellFunc;
using netlist::CellId;
using netlist::NetId;
using netlist::TruthTable;

namespace {

std::uint64_t key(std::uint32_t plb_index, std::uint32_t pin) {
    return (static_cast<std::uint64_t>(plb_index) << 32) | pin;
}

/// Where a routed signal originates.
struct RouteSource {
    bool is_pad = false;
    std::uint32_t pad = 0;       // input pad index
    std::uint32_t plb_index = 0; // else: PLB output pin
    std::uint32_t out_pin = 0;
};

struct RouteHit {
    RouteSource src;
    std::int64_t delay_ps = 0;
};

}  // namespace

std::vector<ResolvedSinkDelay> resolve_wire_delays(const ElaboratedDesign& d) {
    std::vector<ResolvedSinkDelay> out;
    out.reserve(d.wire_delays.size());
    for (const SinkDelayAnnotation& a : d.wire_delays) {
        const netlist::Cell& c = d.nl.cell(a.cell);
        const NetId net = c.inputs.at(a.pin);
        const auto& sinks = d.nl.net(net).sinks;
        bool found = false;
        for (std::size_t s = 0; s < sinks.size(); ++s) {
            if (sinks[s].cell == a.cell && sinks[s].pin == a.pin) {
                out.push_back({net, s, a.delay_ps});
                found = true;
                break;
            }
        }
        check(found, "resolve_wire_delays: annotation does not match netlist");
    }
    return out;
}

ElaboratedDesign elaborate(const RRGraph& rr, const Bitstream& bits,
                           const std::unordered_map<std::uint32_t, std::string>& pad_names) {
    const ArchSpec& arch = rr.arch();
    const FabricGeometry& geom = rr.geometry();
    ElaboratedDesign out;
    out.nl = netlist::Netlist("elaborated");
    netlist::Netlist& nl = out.nl;

    auto pad_user_name = [&](std::uint32_t pad) {
        const auto it = pad_names.find(pad);
        return it != pad_names.end() ? it->second : geom.pad_name(pad);
    };

    // Shared constants; const0 doubles as the placeholder for unresolved pins.
    const NetId const0 = nl.add_cell(CellFunc::Const0, "const0", {});
    const NetId const1 = nl.add_cell(CellFunc::Const1, "const1", {});

    // --- primary inputs -------------------------------------------------------
    for (std::uint32_t pad = 0; pad < geom.num_pads(); ++pad)
        if (bits.pad_mode(pad) == PadMode::Input)
            out.pad_to_pi.emplace(pad, nl.add_input(pad_user_name(pad)));

    // --- trace routing: BFS over enabled switches from every driver opin -----
    std::unordered_map<std::uint64_t, RouteHit> plb_input_route;  // (plb,pin) -> hit
    std::unordered_map<std::uint32_t, RouteHit> pad_output_route; // pad -> hit
    std::vector<std::uint32_t> claimed(rr.num_nodes(), UINT32_MAX);

    auto trace_from = [&](std::uint32_t opin, const RouteSource& src, std::uint32_t src_id) {
        std::deque<std::pair<std::uint32_t, std::int64_t>> frontier;
        frontier.emplace_back(opin, rr.node(opin).delay_ps);
        claimed[opin] = src_id;
        while (!frontier.empty()) {
            const auto [n, d] = frontier.front();
            frontier.pop_front();
            for (std::uint32_t e : rr.out_edges(n)) {
                if (!bits.edge(e)) continue;
                const std::uint32_t to = rr.edge_target(e);
                if (claimed[to] == src_id) continue;
                check(claimed[to] == UINT32_MAX,
                      "elaborate: routing short (two nets share an RR node)");
                claimed[to] = src_id;
                const std::int64_t nd = d + rr.node(to).delay_ps;
                const RRNode& tn = rr.node(to);
                if (tn.kind == RRKind::Ipin) {
                    if (tn.is_pad) {
                        pad_output_route[rr.pad_of(to)] = RouteHit{src, nd};
                    } else {
                        const PlbCoord c = rr.ipin_plb(to);
                        plb_input_route[key(geom.plb_index(c), tn.track)] = RouteHit{src, nd};
                    }
                } else {
                    frontier.emplace_back(to, nd);
                }
            }
        }
    };

    std::uint32_t next_src_id = 0;
    for (std::uint32_t pad = 0; pad < geom.num_pads(); ++pad) {
        if (bits.pad_mode(pad) != PadMode::Input) continue;
        RouteSource src;
        src.is_pad = true;
        src.pad = pad;
        trace_from(rr.pad_opin(pad), src, next_src_id++);
    }
    for (std::uint32_t pi = 0; pi < geom.num_plbs(); ++pi) {
        const PlbCoord c = geom.plb_coord(pi);
        for (std::uint32_t p = 0; p < arch.plb_outputs; ++p) {
            // Only trace output pins that are actually driven through the IM.
            if (!bits.plb(c).im.sink_used(arch.im_sink_plb_output(p))) continue;
            RouteSource src;
            src.plb_index = pi;
            src.out_pin = p;
            trace_from(rr.plb_opin(c, p), src, next_src_id++);
        }
    }

    // --- create cells for every used LE output and PDE ------------------------
    // le_out_net[(plb, le*4+out)], pde_net[plb]
    std::unordered_map<std::uint64_t, NetId> le_out_net;
    std::unordered_map<std::uint32_t, NetId> pde_net;
    struct PendingPin {
        CellId cell;
        std::uint32_t pin;      // cell input pin
        std::uint32_t plb;      // owning PLB
        std::uint32_t im_sink;  // IM sink this pin listens to
    };
    std::vector<PendingPin> pending;

    for (std::uint32_t pi = 0; pi < geom.num_plbs(); ++pi) {
        const PlbCoord c = geom.plb_coord(pi);
        const PlbConfig& cfg = bits.plb(c);
        if (cfg.is_blank(arch)) continue;

        // Which LE outputs / PDE are referenced by any configured IM sink?
        std::vector<bool> out_used(arch.les_per_plb * ArchSpec::kLeOutputs, false);
        bool pde_used = false;
        for (std::uint32_t s = 0; s < arch.im_num_sinks(); ++s) {
            if (!cfg.im.sink_used(s)) continue;
            const std::uint32_t src = cfg.im.select[s];
            if (src >= arch.plb_inputs && src < arch.im_src_pde_out())
                out_used[src - arch.plb_inputs] = true;
            if (src == arch.im_src_pde_out()) pde_used = true;
        }

        const std::string plbname = "plb" + std::to_string(c.x) + "_" + std::to_string(c.y);
        for (std::uint32_t le = 0; le < arch.les_per_plb; ++le) {
            for (std::uint32_t o = 0; o < ArchSpec::kLeOutputs; ++o) {
                if (!out_used[le * ArchSpec::kLeOutputs + o]) continue;
                const TruthTable full = LeEval::output_function(cfg.le[le], o);
                std::vector<std::size_t> kept;
                const TruthTable pruned = full.prune_support(&kept);
                std::vector<NetId> ins(kept.size(), const0);
                const std::string nm = plbname + ".le" + std::to_string(le) + ".o" +
                                       std::to_string(o);
                const NetId net = nl.add_lut(nm, pruned, ins);
                const CellId cell = nl.driver_of(net);
                nl.set_cell_delay(cell, o == kLeOutLut2 ? arch.lut_delay_ps + arch.lut2_delay_ps
                                                        : arch.lut_delay_ps);
                le_out_net[key(pi, le * ArchSpec::kLeOutputs + o)] = net;
                for (std::size_t k = 0; k < kept.size(); ++k)
                    pending.push_back({cell, static_cast<std::uint32_t>(k), pi,
                                       arch.im_sink_le_input(le,
                                                             static_cast<std::uint32_t>(kept[k]))});
            }
        }
        if (pde_used) {
            const NetId net = nl.add_cell(CellFunc::Delay, plbname + ".pde", {const0});
            const CellId cell = nl.driver_of(net);
            nl.set_cell_delay(cell, cfg.pde.delay_ps(arch));
            pde_net[pi] = net;
            pending.push_back({cell, 0, pi, arch.im_sink_pde_in()});
        }
    }

    // --- resolve IM sources to nets -------------------------------------------
    // A PLB output pin may pass a PLB input straight through, so resolution
    // can hop across PLBs; depth is bounded by the PLB count.
    std::function<std::pair<NetId, std::int64_t>(std::uint32_t, std::uint32_t, int)>
        source_net = [&](std::uint32_t plb_index, std::uint32_t src,
                         int depth) -> std::pair<NetId, std::int64_t> {
        check(depth < static_cast<int>(geom.num_plbs()) + 2,
              "elaborate: pass-through cycle in IM configuration");
        if (src == arch.im_src_const0()) return {const0, 0};
        if (src == arch.im_src_const1()) return {const1, 0};
        if (src == arch.im_src_pde_out()) {
            const auto it = pde_net.find(plb_index);
            check(it != pde_net.end(), "elaborate: IM references unconfigured PDE");
            return {it->second, arch.im_delay_ps};
        }
        if (src >= arch.plb_inputs) {
            const auto it = le_out_net.find(key(plb_index, src - arch.plb_inputs));
            check(it != le_out_net.end(), "elaborate: IM references unused LE output");
            return {it->second, arch.im_delay_ps};
        }
        // PLB input pin: must be reached by routing.
        const auto it = plb_input_route.find(key(plb_index, src));
        check(it != plb_input_route.end(),
              "elaborate: PLB input pin configured but not routed");
        const RouteHit& hit = it->second;
        if (hit.src.is_pad) {
            const auto pit = out.pad_to_pi.find(hit.src.pad);
            check(pit != out.pad_to_pi.end(), "elaborate: route from non-input pad");
            return {pit->second, hit.delay_ps + arch.im_delay_ps};
        }
        // Driven by another PLB's output pin: resolve what feeds that pin.
        const PlbCoord dc = geom.plb_coord(hit.src.plb_index);
        const PlbConfig& dcfg = bits.plb(dc);
        const std::uint32_t opin_sink = arch.im_sink_plb_output(hit.src.out_pin);
        check(dcfg.im.sink_used(opin_sink), "elaborate: undriven PLB output pin routed");
        const auto [net, d] =
            source_net(hit.src.plb_index, dcfg.im.select[opin_sink], depth + 1);
        return {net, d + hit.delay_ps + arch.im_delay_ps};
    };

    for (const PendingPin& p : pending) {
        const PlbCoord c = geom.plb_coord(p.plb);
        const PlbConfig& cfg = bits.plb(c);
        check(cfg.im.sink_used(p.im_sink),
              "elaborate: LE/PDE input needs IM sink " + std::to_string(p.im_sink) +
                  " but it is unconfigured (tie unused inputs to const)");
        const auto [net, d] = source_net(p.plb, cfg.im.select[p.im_sink], 0);
        nl.rewire_input(p.cell, p.pin, net);
        if (d > 0) out.wire_delays.push_back({p.cell, p.pin, d});
    }

    // --- primary outputs -------------------------------------------------------
    for (std::uint32_t pad = 0; pad < geom.num_pads(); ++pad) {
        if (bits.pad_mode(pad) != PadMode::Output) continue;
        const auto it = pad_output_route.find(pad);
        check(it != pad_output_route.end(), "elaborate: output pad not routed");
        const RouteHit& hit = it->second;
        check(!hit.src.is_pad, "elaborate: pad-to-pad route not supported");
        const PlbCoord dc = geom.plb_coord(hit.src.plb_index);
        const PlbConfig& dcfg = bits.plb(dc);
        const std::uint32_t opin_sink = arch.im_sink_plb_output(hit.src.out_pin);
        check(dcfg.im.sink_used(opin_sink), "elaborate: undriven PLB output pin at pad");
        const auto [net, d] = source_net(hit.src.plb_index, dcfg.im.select[opin_sink], 0);
        (void)d;  // pad observation delay does not change functionality
        const std::string name = pad_user_name(pad);
        nl.add_output(name, net);
        out.pad_to_po.emplace(pad, name);
    }

    nl.validate();
    return out;
}

}  // namespace afpga::core
