#include "core/rrgraph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.hpp"
#include "base/threadpool.hpp"

namespace afpga::core {

using base::check;

std::string to_string(RRKind k) {
    switch (k) {
        case RRKind::Opin: return "OPIN";
        case RRKind::Ipin: return "IPIN";
        case RRKind::ChanX: return "CHANX";
        case RRKind::ChanY: return "CHANY";
    }
    return "?";
}

RRGraph::RRGraph(const ArchSpec& arch) : geom_(arch) {
    arch.validate();
    build(nullptr);
}

RRGraph::RRGraph(const ArchSpec& arch, base::ThreadPool& pool) : geom_(arch) {
    arch.validate();
    build(&pool);
}

// Node ids are pure functions of coordinates: fixed blocks laid out once,
// so the fill order can be anything (including concurrent) without changing
// the graph.
void RRGraph::build_nodes() {
    const ArchSpec& a = geom_.arch();
    const std::uint32_t W = a.width;
    const std::uint32_t H = a.height;
    const std::uint32_t T = a.channel_width;

    base_plb_opin_ = 0;
    base_plb_ipin_ = W * H * a.plb_outputs;
    base_pad_opin_ = base_plb_ipin_ + W * H * a.plb_inputs;
    base_pad_ipin_ = base_pad_opin_ + geom_.num_pads();
    base_chanx_ = base_pad_ipin_ + geom_.num_pads();
    base_chany_ = base_chanx_ + (H + 1) * W * T;
    nodes_.resize(std::size_t{base_chany_} + std::size_t{W + 1} * H * T);

    for (std::uint32_t y = 0; y < H; ++y)
        for (std::uint32_t x = 0; x < W; ++x)
            for (std::uint32_t p = 0; p < a.plb_outputs; ++p)
                nodes_[base_plb_opin_ + (y * W + x) * a.plb_outputs + p] = {
                    RRKind::Opin, static_cast<std::uint16_t>(x), static_cast<std::uint16_t>(y),
                    static_cast<std::uint16_t>(p), false, a.pin_delay_ps};
    for (std::uint32_t y = 0; y < H; ++y)
        for (std::uint32_t x = 0; x < W; ++x)
            for (std::uint32_t p = 0; p < a.plb_inputs; ++p)
                nodes_[base_plb_ipin_ + (y * W + x) * a.plb_inputs + p] = {
                    RRKind::Ipin, static_cast<std::uint16_t>(x), static_cast<std::uint16_t>(y),
                    static_cast<std::uint16_t>(p), false, a.pin_delay_ps};
    for (std::uint32_t p = 0; p < geom_.num_pads(); ++p) {
        nodes_[base_pad_opin_ + p] = {RRKind::Opin, static_cast<std::uint16_t>(p & 0xFFFF),
                                      static_cast<std::uint16_t>(p >> 16), 0, true,
                                      a.pin_delay_ps};
        nodes_[base_pad_ipin_ + p] = {RRKind::Ipin, static_cast<std::uint16_t>(p & 0xFFFF),
                                      static_cast<std::uint16_t>(p >> 16), 0, true,
                                      a.pin_delay_ps};
    }
    for (std::uint32_t ych = 0; ych <= H; ++ych)
        for (std::uint32_t x = 0; x < W; ++x)
            for (std::uint32_t t = 0; t < T; ++t)
                nodes_[base_chanx_ + (ych * W + x) * T + t] = {
                    RRKind::ChanX, static_cast<std::uint16_t>(x),
                    static_cast<std::uint16_t>(ych), static_cast<std::uint16_t>(t), false,
                    a.wire_delay_ps};
    for (std::uint32_t xch = 0; xch <= W; ++xch)
        for (std::uint32_t y = 0; y < H; ++y)
            for (std::uint32_t t = 0; t < T; ++t)
                nodes_[base_chany_ + (xch * H + y) * T + t] = {
                    RRKind::ChanY, static_cast<std::uint16_t>(xch),
                    static_cast<std::uint16_t>(y), static_cast<std::uint16_t>(t), false,
                    a.wire_delay_ps};
    n_wires_ = (std::size_t{H + 1} * W + std::size_t{W + 1} * H) * T;
}

namespace {
/// Tracks a connection-box pin taps: max(1, round(fc * T)) — the exact
/// number of edges connect_pin_to_channel emits per pin.
std::uint32_t cb_tracks(double fc, std::uint32_t T) {
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(fc * T)));
}
}  // namespace

std::size_t RRGraph::count_conn_row() const {
    const ArchSpec& a = geom_.arch();
    return std::size_t{a.width} * (a.plb_outputs * cb_tracks(a.fc_out, a.channel_width) +
                                   a.plb_inputs * cb_tracks(a.fc_in, a.channel_width));
}

std::size_t RRGraph::count_pads() const {
    const ArchSpec& a = geom_.arch();
    return std::size_t{geom_.num_pads()} *
           (cb_tracks(a.fc_out, a.channel_width) + cb_tracks(a.fc_in, a.channel_width));
}

std::size_t RRGraph::count_switch_row(std::uint32_t jy) const {
    const ArchSpec& a = geom_.arch();
    std::size_t pairs = 0;
    for (std::uint32_t jx = 0; jx <= a.width; ++jx) {
        const bool has_left = jx > 0;
        const bool has_right = jx < a.width;
        const bool has_below = jy > 0;
        const bool has_above = jy < a.height;
        pairs += (has_left && has_right) + (has_below && has_above) +
                 (has_left && has_below) + (has_left && has_above) +
                 (has_right && has_below) + (has_right && has_above);
    }
    return pairs * 2 * a.channel_width;  // each pair is a biedge, per track
}

// --- connection boxes of one PLB row: pins <-> adjacent channels -------------
void RRGraph::emit_conn_row(std::uint32_t y, EdgeSink& out) const {
    const ArchSpec& a = geom_.arch();
    for (std::uint32_t x = 0; x < a.width; ++x) {
        const PlbCoord c{x, y};
        for (std::uint32_t p = 0; p < a.plb_outputs; ++p)
            connect_pin_to_channel(plb_opin(c, p), true, geom_.plb_pin_side(p), x, y, p, out);
        for (std::uint32_t p = 0; p < a.plb_inputs; ++p)
            connect_pin_to_channel(plb_ipin(c, p), false, geom_.plb_pin_side(p), x, y, p + 3,
                                   out);
    }
}

// --- pads <-> perimeter channels ---------------------------------------------
void RRGraph::emit_pads(EdgeSink& out) const {
    const std::uint32_t W = geom_.arch().width;
    const std::uint32_t H = geom_.arch().height;
    for (std::uint32_t pad = 0; pad < geom_.num_pads(); ++pad) {
        const IobCoord io = geom_.pad_iob(pad);
        // The pad's adjacent channel expressed as the channel of a border PLB.
        std::uint32_t cx = 0;
        std::uint32_t cy = 0;
        switch (io.side) {
            case Side::Bottom: cx = io.offset; cy = 0; break;
            case Side::Top: cx = io.offset; cy = H - 1; break;
            case Side::Left: cx = 0; cy = io.offset; break;
            case Side::Right: cx = W - 1; cy = io.offset; break;
        }
        connect_pin_to_channel(pad_opin(pad), true, io.side, cx, cy, pad, out);
        connect_pin_to_channel(pad_ipin(pad), false, io.side, cx, cy, pad + 1, out);
    }
}

// --- switch boxes of one junction row: wire <-> wire -------------------------
void RRGraph::emit_switch_row(std::uint32_t jy, EdgeSink& out) const {
    const ArchSpec& a = geom_.arch();
    const std::uint32_t W = a.width;
    const std::uint32_t H = a.height;
    const std::uint32_t T = a.channel_width;
    auto biedge = [&out](std::uint32_t m, std::uint32_t n) {
        out.emit(m, n);
        out.emit(n, m);
    };
    for (std::uint32_t jx = 0; jx <= W; ++jx) {
        for (std::uint32_t t = 0; t < T; ++t) {
            const bool has_left = jx > 0;
            const bool has_right = jx < W;
            const bool has_below = jy > 0;
            const bool has_above = jy < H;
            // Two turn permutations with opposite parity behaviour:
            // twist_up flips track parity, twist_dn preserves it (for
            // even T). Using one of each keeps the graph connected across
            // parity classes — a parity-flipping pair would split it.
            const std::uint32_t twist_up = (t + 1) % T;
            const std::uint32_t twist_dn = (T - t) % T;
            if (has_left && has_right)
                biedge(chanx(jy, jx - 1, t), chanx(jy, jx, t));
            if (has_below && has_above)
                biedge(chany(jx, jy - 1, t), chany(jx, jy, t));
            if (has_left && has_below)
                biedge(chanx(jy, jx - 1, t), chany(jx, jy - 1, twist_up));
            if (has_left && has_above)
                biedge(chanx(jy, jx - 1, t), chany(jx, jy, twist_dn));
            if (has_right && has_below)
                biedge(chanx(jy, jx, t), chany(jx, jy - 1, twist_dn));
            if (has_right && has_above)
                biedge(chanx(jy, jx, t), chany(jx, jy, twist_up));
        }
    }
}

void RRGraph::build(base::ThreadPool* pool) {
    const std::uint32_t H = geom_.arch().height;
    build_nodes();

    // Edge generation is decomposed into independent units matching the
    // serial emission order exactly: connection boxes per PLB row (0..H-1),
    // then all pads, then switch boxes per junction row (0..H). The exact
    // closed-form edge count of every unit pre-sizes the global edge
    // arrays, each unit writes its own disjoint span, and edge ids come out
    // identical however the units were scheduled.
    const std::size_t num_units = std::size_t{H} + 1 + (std::size_t{H} + 1);
    std::vector<std::size_t> first(num_units + 1, 0);
    for (std::size_t u = 0; u < num_units; ++u) {
        std::size_t cnt = 0;
        if (u < H)
            cnt = count_conn_row();
        else if (u == H)
            cnt = count_pads();
        else
            cnt = count_switch_row(static_cast<std::uint32_t>(u - H - 1));
        first[u + 1] = first[u] + cnt;
    }
    edge_from_.resize(first[num_units]);
    edge_to_.resize(first[num_units]);
    auto emit_unit = [&](std::size_t u) {
        EdgeSink sink{edge_from_.data(), edge_to_.data(), first[u]};
        if (u < H)
            emit_conn_row(static_cast<std::uint32_t>(u), sink);
        else if (u == H)
            emit_pads(sink);
        else
            emit_switch_row(static_cast<std::uint32_t>(u - H - 1), sink);
        check(sink.at == first[u + 1], "rrgraph: unit edge count mismatch");
    };
    if (pool != nullptr && pool->num_workers() > 1) {
        pool->parallel_for(num_units, emit_unit);
    } else {
        for (std::size_t u = 0; u < num_units; ++u) emit_unit(u);
    }

    build_csr(pool);

    // SoA hot arrays: a pure function of nodes_, so serial and pool-backed
    // builds stay byte-identical regardless of schedule.
    hot_word_.resize(nodes_.size());
    base_cost_.resize(nodes_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        const RRNode& nd = nodes_[n];
        hot_word_[n] = RRNodeWord::pack(nd.kind, nd.x, nd.y, nd.is_pad);
        base_cost_[n] = static_cast<double>(nd.delay_ps > 0 ? nd.delay_ps : 1);
    }
}

void RRGraph::build_csr(base::ThreadPool* pool) {
    // validate() bounds wire_capacity to 1..64, so the narrowing is safe.
    const auto cap_wire = static_cast<std::uint16_t>(geom_.arch().wire_capacity);
    capacity_.resize(nodes_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        const bool is_wire = nodes_[n].kind == RRKind::ChanX || nodes_[n].kind == RRKind::ChanY;
        capacity_[n] = is_wire ? cap_wire : std::uint16_t{1};
    }

    // Group edges by source node, in ascending edge-id order per node (the
    // order add_edge historically produced). Both passes are partitioned
    // over edge ranges: each part histograms its range, a serial scan turns
    // the per-part counts into absolute per-(part, node) start offsets, and
    // each part then places its edges independently — the final layout is
    // the same for any part count, so the CSR stays deterministic.
    const std::size_t N = nodes_.size();
    const std::size_t E = edge_to_.size();
    const std::size_t parts =
        pool != nullptr && pool->num_workers() > 1
            ? std::min<std::size_t>(pool->num_workers(), 8)
            : 1;
    auto range_of = [&](std::size_t p) {
        return std::pair<std::size_t, std::size_t>{E * p / parts, E * (p + 1) / parts};
    };
    std::vector<std::vector<std::uint32_t>> cnt(parts);
    auto histogram = [&](std::size_t p) {
        cnt[p].assign(N, 0);
        const auto [b, e] = range_of(p);
        for (std::size_t i = b; i < e; ++i) ++cnt[p][edge_from_[i]];
    };
    if (parts > 1) {
        pool->parallel_for(parts, histogram);
    } else {
        histogram(0);
    }

    // Per-node prefix over parts: cnt[p][n] becomes the absolute CSR index
    // where part p's first edge of node n lands.
    csr_first_.assign(N + 1, 0);
    for (std::size_t n = 0; n < N; ++n) {
        std::uint32_t at = csr_first_[n];
        for (std::size_t p = 0; p < parts; ++p) {
            const std::uint32_t c = cnt[p][n];
            cnt[p][n] = at;
            at += c;
        }
        csr_first_[n + 1] = at;
    }

    csr_adj_.resize(E);
    auto place = [&](std::size_t p) {
        const auto [b, e] = range_of(p);
        for (std::size_t i = b; i < e; ++i) {
            const std::uint32_t from = edge_from_[i];
            csr_adj_[cnt[p][from]++] = {static_cast<std::uint32_t>(i), edge_to_[i]};
        }
    };
    if (parts > 1) {
        pool->parallel_for(parts, place);
    } else {
        place(0);
    }
}

void RRGraph::connect_pin_to_channel(std::uint32_t pin_node, bool pin_drives, Side side,
                                     std::uint32_t cx, std::uint32_t cy, std::uint32_t seed,
                                     EdgeSink& out) const {
    const ArchSpec& a = geom_.arch();
    const std::uint32_t T = a.channel_width;
    const double fc = pin_drives ? a.fc_out : a.fc_in;
    const std::uint32_t n_tracks = cb_tracks(fc, T);
    const std::uint32_t stride = std::max<std::uint32_t>(1, T / n_tracks);
    for (std::uint32_t j = 0; j < n_tracks; ++j) {
        const std::uint32_t t = (seed + j * stride) % T;
        std::uint32_t wire = 0;
        switch (side) {
            case Side::Bottom: wire = chanx(cy, cx, t); break;
            case Side::Top: wire = chanx(cy + 1, cx, t); break;
            case Side::Left: wire = chany(cx, cy, t); break;
            case Side::Right: wire = chany(cx + 1, cy, t); break;
        }
        if (pin_drives)
            out.emit(pin_node, wire);
        else
            out.emit(wire, pin_node);
    }
}

std::uint32_t RRGraph::plb_opin(PlbCoord c, std::uint32_t pin) const {
    const ArchSpec& a = geom_.arch();
    check(c.x < a.width && c.y < a.height && pin < a.plb_outputs, "plb_opin: out of range");
    return base_plb_opin_ + (c.y * a.width + c.x) * a.plb_outputs + pin;
}

std::uint32_t RRGraph::plb_ipin(PlbCoord c, std::uint32_t pin) const {
    const ArchSpec& a = geom_.arch();
    check(c.x < a.width && c.y < a.height && pin < a.plb_inputs, "plb_ipin: out of range");
    return base_plb_ipin_ + (c.y * a.width + c.x) * a.plb_inputs + pin;
}

std::uint32_t RRGraph::pad_opin(std::uint32_t pad) const {
    check(pad < geom_.num_pads(), "pad_opin: out of range");
    return base_pad_opin_ + pad;
}

std::uint32_t RRGraph::pad_ipin(std::uint32_t pad) const {
    check(pad < geom_.num_pads(), "pad_ipin: out of range");
    return base_pad_ipin_ + pad;
}

std::uint32_t RRGraph::chanx(std::uint32_t ych, std::uint32_t x, std::uint32_t track) const {
    const ArchSpec& a = geom_.arch();
    check(ych <= a.height && x < a.width && track < a.channel_width, "chanx: out of range");
    return base_chanx_ + (ych * a.width + x) * a.channel_width + track;
}

std::uint32_t RRGraph::chany(std::uint32_t xch, std::uint32_t y, std::uint32_t track) const {
    const ArchSpec& a = geom_.arch();
    check(xch <= a.width && y < a.height && track < a.channel_width, "chany: out of range");
    return base_chany_ + (xch * a.height + y) * a.channel_width + track;
}

PlbCoord RRGraph::ipin_plb(std::uint32_t node) const {
    const RRNode& n = nodes_.at(node);
    check(n.kind == RRKind::Ipin && !n.is_pad, "ipin_plb: not a PLB input pin");
    return {n.x, n.y};
}

std::uint32_t RRGraph::pad_of(std::uint32_t node) const {
    const RRNode& n = nodes_.at(node);
    check(n.is_pad, "pad_of: not a pad pin");
    return static_cast<std::uint32_t>(n.x) | (static_cast<std::uint32_t>(n.y) << 16);
}

double RRGraph::avg_wire_fanout() const {
    std::size_t total = 0;
    std::size_t wires = 0;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].kind == RRKind::ChanX || nodes_[i].kind == RRKind::ChanY) {
            ++wires;
            total += csr_first_[i + 1] - csr_first_[i];
        }
    }
    return wires == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(wires);
}

std::uint64_t RRGraph::content_fingerprint() const noexcept {
    // FNV-1a over every node field and both edge endpoint arrays.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (const RRNode& n : nodes_) {
        mix(static_cast<std::uint64_t>(n.kind) | (std::uint64_t{n.x} << 8) |
            (std::uint64_t{n.y} << 24) | (std::uint64_t{n.track} << 40) |
            (std::uint64_t{n.is_pad} << 56));
        mix(static_cast<std::uint64_t>(n.delay_ps));
    }
    for (std::size_t e = 0; e < edge_from_.size(); ++e) {
        mix(edge_from_[e]);
        mix(edge_to_[e]);
    }
    return h;
}

}  // namespace afpga::core
