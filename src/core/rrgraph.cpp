#include "core/rrgraph.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace afpga::core {

using base::check;

std::string to_string(RRKind k) {
    switch (k) {
        case RRKind::Opin: return "OPIN";
        case RRKind::Ipin: return "IPIN";
        case RRKind::ChanX: return "CHANX";
        case RRKind::ChanY: return "CHANY";
    }
    return "?";
}

RRGraph::RRGraph(const ArchSpec& arch) : geom_(arch) {
    arch.validate();
    build();
    build_csr();
}

std::uint32_t RRGraph::add_node(const RRNode& n) {
    nodes_.push_back(n);
    out_edges_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void RRGraph::add_edge(std::uint32_t from, std::uint32_t to) {
    const auto id = static_cast<std::uint32_t>(edge_to_.size());
    edge_from_.push_back(from);
    edge_to_.push_back(to);
    out_edges_[from].push_back(id);
}

void RRGraph::add_biedge(std::uint32_t a, std::uint32_t b) {
    add_edge(a, b);
    add_edge(b, a);
}

void RRGraph::build() {
    const ArchSpec& a = geom_.arch();
    const std::uint32_t W = a.width;
    const std::uint32_t H = a.height;
    const std::uint32_t T = a.channel_width;

    // --- nodes, in fixed blocks so lookups are O(1) -------------------------
    base_plb_opin_ = 0;
    for (std::uint32_t y = 0; y < H; ++y)
        for (std::uint32_t x = 0; x < W; ++x)
            for (std::uint32_t p = 0; p < a.plb_outputs; ++p)
                add_node({RRKind::Opin, static_cast<std::uint16_t>(x),
                          static_cast<std::uint16_t>(y), static_cast<std::uint16_t>(p), false,
                          a.pin_delay_ps});
    base_plb_ipin_ = static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t y = 0; y < H; ++y)
        for (std::uint32_t x = 0; x < W; ++x)
            for (std::uint32_t p = 0; p < a.plb_inputs; ++p)
                add_node({RRKind::Ipin, static_cast<std::uint16_t>(x),
                          static_cast<std::uint16_t>(y), static_cast<std::uint16_t>(p), false,
                          a.pin_delay_ps});
    base_pad_opin_ = static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t p = 0; p < geom_.num_pads(); ++p)
        add_node({RRKind::Opin, static_cast<std::uint16_t>(p & 0xFFFF),
                  static_cast<std::uint16_t>(p >> 16), 0, true, a.pin_delay_ps});
    base_pad_ipin_ = static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t p = 0; p < geom_.num_pads(); ++p)
        add_node({RRKind::Ipin, static_cast<std::uint16_t>(p & 0xFFFF),
                  static_cast<std::uint16_t>(p >> 16), 0, true, a.pin_delay_ps});
    base_chanx_ = static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t ych = 0; ych <= H; ++ych)
        for (std::uint32_t x = 0; x < W; ++x)
            for (std::uint32_t t = 0; t < T; ++t)
                add_node({RRKind::ChanX, static_cast<std::uint16_t>(x),
                          static_cast<std::uint16_t>(ych), static_cast<std::uint16_t>(t), false,
                          a.wire_delay_ps});
    base_chany_ = static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t xch = 0; xch <= W; ++xch)
        for (std::uint32_t y = 0; y < H; ++y)
            for (std::uint32_t t = 0; t < T; ++t)
                add_node({RRKind::ChanY, static_cast<std::uint16_t>(xch),
                          static_cast<std::uint16_t>(y), static_cast<std::uint16_t>(t), false,
                          a.wire_delay_ps});
    n_wires_ = (std::size_t{H + 1} * W + std::size_t{W + 1} * H) * T;

    // --- connection boxes: PLB pins <-> adjacent channels --------------------
    for (std::uint32_t y = 0; y < H; ++y) {
        for (std::uint32_t x = 0; x < W; ++x) {
            const PlbCoord c{x, y};
            for (std::uint32_t p = 0; p < a.plb_outputs; ++p)
                connect_pin_to_channel(plb_opin(c, p), true, geom_.plb_pin_side(p), x, y, p);
            for (std::uint32_t p = 0; p < a.plb_inputs; ++p)
                connect_pin_to_channel(plb_ipin(c, p), false, geom_.plb_pin_side(p), x, y,
                                       p + 3);
        }
    }

    // --- pads <-> perimeter channels -----------------------------------------
    for (std::uint32_t pad = 0; pad < geom_.num_pads(); ++pad) {
        const IobCoord io = geom_.pad_iob(pad);
        // The pad's adjacent channel expressed as the channel of a border PLB.
        std::uint32_t cx = 0;
        std::uint32_t cy = 0;
        switch (io.side) {
            case Side::Bottom: cx = io.offset; cy = 0; break;
            case Side::Top: cx = io.offset; cy = H - 1; break;
            case Side::Left: cx = 0; cy = io.offset; break;
            case Side::Right: cx = W - 1; cy = io.offset; break;
        }
        connect_pin_to_channel(pad_opin(pad), true, io.side == Side::Top      ? Side::Top
                                                    : io.side == Side::Bottom ? Side::Bottom
                                                    : io.side,
                               cx, cy, pad);
        connect_pin_to_channel(pad_ipin(pad), false, io.side, cx, cy, pad + 1);
    }

    // --- switch boxes: wire <-> wire at junctions ----------------------------
    for (std::uint32_t jy = 0; jy <= H; ++jy) {
        for (std::uint32_t jx = 0; jx <= W; ++jx) {
            for (std::uint32_t t = 0; t < T; ++t) {
                const bool has_left = jx > 0;
                const bool has_right = jx < W;
                const bool has_below = jy > 0;
                const bool has_above = jy < H;
                // Two turn permutations with opposite parity behaviour:
                // twist_up flips track parity, twist_dn preserves it (for
                // even T). Using one of each keeps the graph connected across
                // parity classes — a parity-flipping pair would split it.
                const std::uint32_t twist_up = (t + 1) % T;
                const std::uint32_t twist_dn = (T - t) % T;
                if (has_left && has_right)
                    add_biedge(chanx(jy, jx - 1, t), chanx(jy, jx, t));
                if (has_below && has_above)
                    add_biedge(chany(jx, jy - 1, t), chany(jx, jy, t));
                if (has_left && has_below)
                    add_biedge(chanx(jy, jx - 1, t), chany(jx, jy - 1, twist_up));
                if (has_left && has_above)
                    add_biedge(chanx(jy, jx - 1, t), chany(jx, jy, twist_dn));
                if (has_right && has_below)
                    add_biedge(chanx(jy, jx, t), chany(jx, jy - 1, twist_dn));
                if (has_right && has_above)
                    add_biedge(chanx(jy, jx, t), chany(jx, jy, twist_up));
            }
        }
    }
}

void RRGraph::build_csr() {
    // validate() bounds wire_capacity to 1..64, so the narrowing is safe.
    const auto cap_wire = static_cast<std::uint16_t>(geom_.arch().wire_capacity);
    capacity_.resize(nodes_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        const bool is_wire = nodes_[n].kind == RRKind::ChanX || nodes_[n].kind == RRKind::ChanY;
        capacity_[n] = is_wire ? cap_wire : std::uint16_t{1};
    }

    // Flatten the per-node edge-id vectors into one contiguous (edge, target)
    // array, preserving each node's edge order.
    csr_first_.assign(nodes_.size() + 1, 0);
    for (std::size_t n = 0; n < nodes_.size(); ++n)
        csr_first_[n + 1] = csr_first_[n] + static_cast<std::uint32_t>(out_edges_[n].size());
    csr_adj_.resize(edge_to_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        std::uint32_t at = csr_first_[n];
        for (std::uint32_t e : out_edges_[n]) csr_adj_[at++] = {e, edge_to_[e]};
    }
}

void RRGraph::connect_pin_to_channel(std::uint32_t pin_node, bool pin_drives, Side side,
                                     std::uint32_t cx, std::uint32_t cy, std::uint32_t seed) {
    const ArchSpec& a = geom_.arch();
    const std::uint32_t T = a.channel_width;
    const double fc = pin_drives ? a.fc_out : a.fc_in;
    const auto n_tracks =
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(fc * T)));
    const std::uint32_t stride = std::max<std::uint32_t>(1, T / n_tracks);
    for (std::uint32_t j = 0; j < n_tracks; ++j) {
        const std::uint32_t t = (seed + j * stride) % T;
        std::uint32_t wire = 0;
        switch (side) {
            case Side::Bottom: wire = chanx(cy, cx, t); break;
            case Side::Top: wire = chanx(cy + 1, cx, t); break;
            case Side::Left: wire = chany(cx, cy, t); break;
            case Side::Right: wire = chany(cx + 1, cy, t); break;
        }
        if (pin_drives)
            add_edge(pin_node, wire);
        else
            add_edge(wire, pin_node);
    }
}

std::uint32_t RRGraph::plb_opin(PlbCoord c, std::uint32_t pin) const {
    const ArchSpec& a = geom_.arch();
    check(c.x < a.width && c.y < a.height && pin < a.plb_outputs, "plb_opin: out of range");
    return base_plb_opin_ + (c.y * a.width + c.x) * a.plb_outputs + pin;
}

std::uint32_t RRGraph::plb_ipin(PlbCoord c, std::uint32_t pin) const {
    const ArchSpec& a = geom_.arch();
    check(c.x < a.width && c.y < a.height && pin < a.plb_inputs, "plb_ipin: out of range");
    return base_plb_ipin_ + (c.y * a.width + c.x) * a.plb_inputs + pin;
}

std::uint32_t RRGraph::pad_opin(std::uint32_t pad) const {
    check(pad < geom_.num_pads(), "pad_opin: out of range");
    return base_pad_opin_ + pad;
}

std::uint32_t RRGraph::pad_ipin(std::uint32_t pad) const {
    check(pad < geom_.num_pads(), "pad_ipin: out of range");
    return base_pad_ipin_ + pad;
}

std::uint32_t RRGraph::chanx(std::uint32_t ych, std::uint32_t x, std::uint32_t track) const {
    const ArchSpec& a = geom_.arch();
    check(ych <= a.height && x < a.width && track < a.channel_width, "chanx: out of range");
    return base_chanx_ + (ych * a.width + x) * a.channel_width + track;
}

std::uint32_t RRGraph::chany(std::uint32_t xch, std::uint32_t y, std::uint32_t track) const {
    const ArchSpec& a = geom_.arch();
    check(xch <= a.width && y < a.height && track < a.channel_width, "chany: out of range");
    return base_chany_ + (xch * a.height + y) * a.channel_width + track;
}

PlbCoord RRGraph::ipin_plb(std::uint32_t node) const {
    const RRNode& n = nodes_.at(node);
    check(n.kind == RRKind::Ipin && !n.is_pad, "ipin_plb: not a PLB input pin");
    return {n.x, n.y};
}

std::uint32_t RRGraph::pad_of(std::uint32_t node) const {
    const RRNode& n = nodes_.at(node);
    check(n.is_pad, "pad_of: not a pad pin");
    return static_cast<std::uint32_t>(n.x) | (static_cast<std::uint32_t>(n.y) << 16);
}

double RRGraph::avg_wire_fanout() const {
    std::size_t total = 0;
    std::size_t wires = 0;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].kind == RRKind::ChanX || nodes_[i].kind == RRKind::ChanY) {
            ++wires;
            total += out_edges_[i].size();
        }
    }
    return wires == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(wires);
}

}  // namespace afpga::core
