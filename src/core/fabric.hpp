// Island-style fabric geometry: PLB grid coordinates, perimeter I/O pads and
// channel addressing shared by the RR-graph builder, the placer and the
// bitstream.
//
// Coordinate system:
//  - PLB (x, y): x in [0, W), y in [0, H).
//  - Horizontal channels CHANX run between PLB rows: chanx(ych, x) with
//    ych in [0, H] (ych = 0 is below row 0), x in [0, W).
//  - Vertical channels CHANY run between PLB columns: chany(xch, y) with
//    xch in [0, W], y in [0, H).
//  - Channel junctions (switch boxes) sit at (jx, jy), jx in [0, W],
//    jy in [0, H].
//  - I/O blocks occupy the perimeter: one position per bottom/top column and
//    per left/right row, each with arch.pads_per_iob pads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/archspec.hpp"

namespace afpga::core {

struct PlbCoord {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    friend bool operator==(const PlbCoord&, const PlbCoord&) noexcept = default;
};

enum class Side : std::uint8_t { Bottom = 0, Right = 1, Top = 2, Left = 3 };

[[nodiscard]] std::string to_string(Side s);

/// One perimeter I/O position (an "IOB"); holds arch.pads_per_iob pads.
struct IobCoord {
    Side side = Side::Bottom;
    std::uint32_t offset = 0;  ///< column (bottom/top) or row (left/right)
    friend bool operator==(const IobCoord&, const IobCoord&) noexcept = default;
};

/// How a pad is configured.
enum class PadMode : std::uint8_t { Unused = 0, Input = 1, Output = 2 };

/// Geometry helper bound to an ArchSpec.
class FabricGeometry {
public:
    explicit FabricGeometry(const ArchSpec& arch) : arch_(arch) {}

    [[nodiscard]] const ArchSpec& arch() const noexcept { return arch_; }

    [[nodiscard]] std::uint32_t num_plbs() const noexcept { return arch_.width * arch_.height; }
    [[nodiscard]] std::uint32_t plb_index(PlbCoord c) const noexcept {
        return c.y * arch_.width + c.x;
    }
    [[nodiscard]] PlbCoord plb_coord(std::uint32_t index) const noexcept {
        return {index % arch_.width, index / arch_.width};
    }

    /// IOB positions: bottom row, top row, left column, right column.
    [[nodiscard]] std::uint32_t num_iobs() const noexcept {
        return 2 * arch_.width + 2 * arch_.height;
    }
    [[nodiscard]] std::uint32_t iob_index(IobCoord c) const;
    [[nodiscard]] IobCoord iob_coord(std::uint32_t index) const;

    [[nodiscard]] std::uint32_t num_pads() const noexcept {
        return num_iobs() * arch_.pads_per_iob;
    }
    [[nodiscard]] std::uint32_t pad_index(IobCoord iob, std::uint32_t pad) const {
        return iob_index(iob) * arch_.pads_per_iob + pad;
    }
    [[nodiscard]] IobCoord pad_iob(std::uint32_t pad_index) const {
        return iob_coord(pad_index / arch_.pads_per_iob);
    }
    [[nodiscard]] std::string pad_name(std::uint32_t pad_index) const;

    /// Which side of a PLB a logical pin sits on (round-robin distribution).
    [[nodiscard]] Side plb_pin_side(std::uint32_t pin) const noexcept {
        return static_cast<Side>(pin % 4);
    }

    /// Manhattan distance between two PLBs (placement cost).
    [[nodiscard]] std::uint32_t distance(PlbCoord a, PlbCoord b) const noexcept {
        const auto dx = a.x > b.x ? a.x - b.x : b.x - a.x;
        const auto dy = a.y > b.y ? a.y - b.y : b.y - a.y;
        return dx + dy;
    }
    /// Manhattan distance from a PLB to an IOB position.
    [[nodiscard]] std::uint32_t distance(PlbCoord p, IobCoord io) const noexcept;

private:
    ArchSpec arch_;
};

}  // namespace afpga::core
