#include "core/fabric.hpp"

#include "base/check.hpp"

namespace afpga::core {

using base::check;

std::string to_string(Side s) {
    switch (s) {
        case Side::Bottom: return "bottom";
        case Side::Right: return "right";
        case Side::Top: return "top";
        case Side::Left: return "left";
    }
    return "?";
}

std::uint32_t FabricGeometry::iob_index(IobCoord c) const {
    switch (c.side) {
        case Side::Bottom:
            check(c.offset < arch_.width, "iob_index: bottom offset out of range");
            return c.offset;
        case Side::Top:
            check(c.offset < arch_.width, "iob_index: top offset out of range");
            return arch_.width + c.offset;
        case Side::Left:
            check(c.offset < arch_.height, "iob_index: left offset out of range");
            return 2 * arch_.width + c.offset;
        case Side::Right:
            check(c.offset < arch_.height, "iob_index: right offset out of range");
            return 2 * arch_.width + arch_.height + c.offset;
    }
    base::fail("iob_index: bad side");
}

IobCoord FabricGeometry::iob_coord(std::uint32_t index) const {
    check(index < num_iobs(), "iob_coord: out of range");
    if (index < arch_.width) return {Side::Bottom, index};
    index -= arch_.width;
    if (index < arch_.width) return {Side::Top, index};
    index -= arch_.width;
    if (index < arch_.height) return {Side::Left, index};
    index -= arch_.height;
    return {Side::Right, index};
}

std::string FabricGeometry::pad_name(std::uint32_t pad_index) const {
    const IobCoord io = pad_iob(pad_index);
    return "pad_" + to_string(io.side) + std::to_string(io.offset) + "_" +
           std::to_string(pad_index % arch_.pads_per_iob);
}

std::uint32_t FabricGeometry::distance(PlbCoord p, IobCoord io) const noexcept {
    switch (io.side) {
        case Side::Bottom: {
            const auto dx = p.x > io.offset ? p.x - io.offset : io.offset - p.x;
            return dx + p.y + 1;
        }
        case Side::Top: {
            const auto dx = p.x > io.offset ? p.x - io.offset : io.offset - p.x;
            return dx + (arch_.height - p.y);
        }
        case Side::Left: {
            const auto dy = p.y > io.offset ? p.y - io.offset : io.offset - p.y;
            return dy + p.x + 1;
        }
        case Side::Right: {
            const auto dy = p.y > io.offset ? p.y - io.offset : io.offset - p.y;
            return dy + (arch_.width - p.x);
        }
    }
    return 0;
}

}  // namespace afpga::core
