/// \file
/// Shared numeric machinery of the analytical placement engines: the
/// per-axis quadratic system (Laplacian + anchors, assembled from
/// deterministic-order triplets into CSR), the Jacobi-preconditioned
/// conjugate-gradient solver, and weighted recursive-bisection spreading.
/// Both the flat engine (cad/place_analytical.cpp) and the multilevel
/// V-cycle (cad/place_multilevel.cpp) build on these.
///
/// Every type here is designed for reuse across passes: QuadSystem,
/// PcgScratch and SpreadScratch keep their buffers between calls, so the
/// per-pass loops of the engines allocate nothing after the first pass.
///
/// Determinism: all loops run in fixed serial order with fixed tie-breaks;
/// given equal inputs every function produces bit-identical outputs on any
/// machine, thread count or call history (buffer reuse never leaks state).
///
/// Threading: instances are single-owner mutable scratch; concurrent
/// callers each own their instances.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

namespace afpga::cad {

struct PlacePt;

/// One axis of the quadratic placement system: symmetric positive-definite
/// Laplacian-plus-anchors. Assemble with connect_*, then finalize() into
/// CSR for the solver. reset(n) re-arms the instance for the next pass
/// without releasing its buffers.
struct QuadSystem {
    std::vector<double> diag;
    std::vector<double> rhs;
    std::vector<std::tuple<std::size_t, std::size_t, double>> off;  ///< pre-CSR
    std::vector<std::size_t> row_start;
    std::vector<std::size_t> col;
    std::vector<double> val;

    /// Clear to an n-variable empty system, keeping buffer capacity.
    void reset(std::size_t n);

    /// A spring of weight w between movable variables i and j.
    void connect_movable(std::size_t i, std::size_t j, double w) {
        diag[i] += w;
        diag[j] += w;
        off.emplace_back(i, j, -w);
        off.emplace_back(j, i, -w);
    }
    /// A spring of weight w between movable i and a fixed coordinate.
    void connect_fixed(std::size_t i, double coord, double w) {
        diag[i] += w;
        rhs[i] += w * coord;
    }

    /// Pin variables with no connections at their current coordinate (the
    /// system stays SPD and the solver leaves them put).
    void fix_degenerate(const std::vector<double>& x);

    /// Sort + merge the triplets into CSR. The triplet sequence is a pure
    /// function of the assembly calls, so the merge (and its FP summation
    /// order) is identical on every run.
    void finalize();

    /// y = A x (serial, row order).
    void apply(const std::vector<double>& x, std::vector<double>& y) const;
};

/// Reusable work vectors of the conjugate-gradient solver.
struct PcgScratch {
    std::vector<double> r;
    std::vector<double> z;
    std::vector<double> p;
    std::vector<double> ap;
};

/// Jacobi-preconditioned conjugate gradient, warm-started from `x`.
/// Strictly serial with a fixed iteration order — bit-reproducible.
/// Returns the number of iterations run.
std::uint64_t solve_pcg(const QuadSystem& sys, std::vector<double>& x, int max_iters,
                        double tol, PcgScratch& scratch);

/// Reusable index/stack buffers of the spreading pass.
struct SpreadScratch {
    struct Region {
        std::uint32_t x0, x1, y0, y1;
        std::size_t begin, end;  ///< index range into `idx`
    };
    std::vector<std::size_t> idx;
    std::vector<Region> stack;
};

/// Weighted recursive-bisection spreading over a width x height site grid:
/// split each region at its geometric midline and partition the nodes
/// (sorted by coordinate along the cut axis, ties by index) to the side of
/// the cut they already sit on; the boundary shifts only when a side's
/// total node weight exceeds its site capacity, so spreading displaces
/// nodes exactly where density demands it and leaves sparse regions in
/// place. Leaves assign each node its region's center as an anchor target.
///
/// `weight` is the per-node site demand (nullptr = every node weighs 1,
/// which reproduces the classic unweighted pass bit-for-bit). Indivisible
/// heavy nodes make an exact capacity split impossible in rare corners;
/// the partition is then best-effort (targets are anchors, not sites — the
/// finest level, where every weight is 1, is the only one that legalizes).
/// All comparisons have fixed tie-breaks, so targets are a pure function
/// of the positions.
void spread_targets(std::uint32_t width, std::uint32_t height, std::size_t num_nodes,
                    const std::vector<double>& cx, const std::vector<double>& cy,
                    const std::uint32_t* weight, std::vector<double>& tgt_x,
                    std::vector<double>& tgt_y, SpreadScratch& scratch);

/// Deterministic nearest-free-pad index over the perimeter pad frame.
///
/// Pads sit on the four sides of the fabric frame, so the Manhattan
/// distance from a query point to a pad decomposes per side into a fixed
/// off-side offset plus a 1-D distance along the side's running
/// coordinate. One ordered set of free pads per side then answers
/// nearest-free queries in O(log n_pads): within a side only the two
/// coordinate runs bracketing the query's projection can hold the
/// minimum. The (distance, lowest pad index) tie-break reproduces the
/// argmin of an ascending full scan bit-for-bit — the greedy pad
/// refinement loops of both engines keep their exact results, they just
/// stop paying O(n_io * n_pads) per pass.
///
/// Like the other scratch types here, build once and reset() per pass.
class PadFrame {
public:
    /// Index the pad geometry of a width x height fabric (pads lie on
    /// x in {0, width+1} or y in {0, height+1}); every pad starts free.
    void build(const std::vector<PlacePt>& pads, std::uint32_t width, std::uint32_t height);

    /// Mark every pad free again without re-deriving the geometry.
    void reset();

    /// True while `pad` has not been taken since the last reset/build.
    [[nodiscard]] bool is_free(std::uint32_t pad) const { return free_.count(pad) != 0; }

    /// Lowest-indexed free pad, or false when none is left.
    [[nodiscard]] bool lowest_free(std::uint32_t& out) const;

    /// Free pad nearest (Manhattan) to (gx, gy), ties by lowest pad
    /// index; false when none is left.
    [[nodiscard]] bool nearest_free(double gx, double gy, std::uint32_t& out) const;

    /// Remove `pad` from the free sets.
    void take(std::uint32_t pad);

private:
    struct Side {
        int run_axis = 0;    ///< axis of the running coordinate: 0 = x, 1 = y
        double fixed = 0.0;  ///< the side's off-axis coordinate
        std::set<std::pair<double, std::uint32_t>> free;  ///< (run coord, pad)
    };
    std::array<Side, 4> sides_;
    std::vector<std::pair<std::uint8_t, double>> pad_side_;  ///< pad -> (side, run coord)
    std::set<std::uint32_t> free_;
};

}  // namespace afpga::cad
