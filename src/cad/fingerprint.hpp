/// \file
/// Deterministic fingerprints for content-addressed stage artifacts.
///
/// Every stage product in the CAD flow is cached under an ArtifactKey: a
/// 64-bit digest of everything the stage's output is a function of — the
/// source netlist, the mapping hints, the architecture, the stage's own
/// option struct, the master seed, and (through key chaining) every
/// upstream stage's key. Two flows that would compute bit-identical
/// products therefore derive the same key, and a key match is safe to
/// treat as "skip the stage": every flow stage is a pure function of the
/// fingerprinted inputs.
///
/// Threading: Fingerprint is single-owner mutable state; the free
/// fingerprint_* functions are pure and callable from any thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "asynclib/styles.hpp"
#include "netlist/netlist.hpp"

namespace afpga::cad {

/// Content-address of one stage artifact (hex-printed in telemetry).
using ArtifactKey = std::uint64_t;

/// Order-sensitive 64-bit hash accumulator. The mixing function is fixed
/// forever in spirit — keys are only compared within one process today, but
/// tests pin digests so an accidental change fails loudly.
class Fingerprint {
public:
    /// Mix one integral (or enum, or bool) value.
    template <typename T>
        requires(std::is_integral_v<T> || std::is_enum_v<T>)
    Fingerprint& mix(T v) noexcept {
        return mix_word(static_cast<std::uint64_t>(v));
    }
    /// Mix a double by exact bit pattern (so 0.5 != 0.25, -0.0 != 0.0).
    Fingerprint& mix(double v) noexcept;
    /// Mix a string: length then bytes (prefix-unambiguous).
    Fingerprint& mix(std::string_view s) noexcept;

    /// The accumulated digest.
    [[nodiscard]] ArtifactKey digest() const noexcept { return h_; }

private:
    Fingerprint& mix_word(std::uint64_t v) noexcept;
    std::uint64_t h_ = 0xC0FFEE'D15EA5E5ULL;
};

/// Derive a downstream stage's key from its upstream key, its stage name
/// and its own option fingerprint — the dependency chaining that makes a
/// change anywhere upstream invalidate everything below it.
[[nodiscard]] ArtifactKey chain_key(ArtifactKey upstream, std::string_view stage,
                                    std::uint64_t stage_fp) noexcept;

/// "0x%016x" rendering used by telemetry and reports.
[[nodiscard]] std::string key_hex(ArtifactKey key);

/// Content hash of a gate-level netlist: cells (function, name, table,
/// delay, connectivity), net names and the primary I/O lists. Everything
/// the flow reads is covered, so equal fingerprints mean the flow cannot
/// distinguish the two netlists.
[[nodiscard]] std::uint64_t fingerprint_netlist(const netlist::Netlist& nl);

/// Content hash of the generator's mapping hints (rail pairs + validity
/// nets, order-sensitive — techmap consumes them in order).
[[nodiscard]] std::uint64_t fingerprint_hints(const asynclib::MappingHints& hints);

}  // namespace afpga::cad
