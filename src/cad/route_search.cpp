#include "cad/route_search.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "base/timer.hpp"

namespace afpga::cad::detail {

using core::RRGraph;
using core::RRKind;
using core::RRNodeWord;

namespace {

std::atomic<bool> g_use_reference_kernel{false};

/// Grid position of a node for the A* heuristic, read from the packed SoA
/// word. Channel wires sit on their span's midpoint along the channel axis;
/// pins sit at their PLB's center. Arithmetic is identical to the original
/// RRNode-struct version (same integer values promoted to double), so
/// heuristic costs are byte-identical.
std::pair<double, double> word_pos(RRNodeWord nw) {
    switch (nw.kind()) {
        case RRKind::ChanX: return {nw.x() + 0.5, static_cast<double>(nw.y())};
        case RRKind::ChanY: return {static_cast<double>(nw.x()), nw.y() + 0.5};
        default: return {nw.x() + 0.5, nw.y() + 0.5};
    }
}

}  // namespace

void set_use_reference_kernel(bool on) noexcept {
    g_use_reference_kernel.store(on, std::memory_order_relaxed);
}

bool use_reference_kernel() noexcept {
    return g_use_reference_kernel.load(std::memory_order_relaxed);
}

NetRouteState route_one_net(const RRGraph& rr, const RouteRequest& rq,
                            const RouterOptions& opts, double pres_fac,
                            const std::vector<double>& hist,
                            std::vector<std::uint16_t>& occ, SearchScratch& scratch,
                            const RouteBBox* bbox) {
    base::WallTimer net_timer;
    RouteKernelStats& ks = scratch.stats;
    ++ks.nets_routed;

    auto pres_cost = [&](std::uint32_t n) {
        const int over = static_cast<int>(occ[n]) + 1 - static_cast<int>(rr.node_capacity(n));
        return over > 0 ? 1.0 + pres_fac * static_cast<double>(over) : 1.0;
    };
    const double wire_unit =
        static_cast<double>(std::max<std::int64_t>(rr.arch().wire_delay_ps, 1));

    std::vector<double>& best = scratch.best;
    std::vector<std::uint32_t>& prev_edge = scratch.prev_edge;
    std::vector<std::uint32_t>& visit_mark = scratch.visit_mark;
    std::vector<std::uint32_t>& target_mark = scratch.target_mark;
    std::vector<std::uint32_t>& tree_mark = scratch.tree_mark;
    PooledHeap& heap = scratch.heap;

    NetRouteState st;
    st.tree.sinks.assign(rq.sinks.size(), {});

    // Tree nodes grow as sinks are reached; membership is O(1) via the
    // per-net tree epoch (tree_mark[n] == tree_epoch <=> n is in tree_nodes).
    scratch.begin_net();
    const std::uint32_t tree_epoch = scratch.tree_epoch;
    std::vector<std::uint32_t>& tree_nodes = st.nodes;
    std::vector<std::uint32_t> tree_edges;

    // Candidate sources, built into the pooled per-net buffer.
    std::vector<std::uint32_t>& sources = scratch.sources;
    {
        const std::size_t cap = sources.capacity();
        sources.clear();
        if (rq.src_is_pad) {
            sources.push_back(rr.pad_opin(rq.src_pad));
        } else if (!rq.allowed_src_pins.empty()) {
            for (std::uint32_t p : rq.allowed_src_pins)
                sources.push_back(rr.plb_opin(rq.src_plb, p));
        } else {
            for (std::uint32_t p = 0; p < rr.arch().plb_outputs; ++p)
                sources.push_back(rr.plb_opin(rq.src_plb, p));
        }
        if (sources.capacity() != cap) ++ks.allocations;
    }

    // Sinks ordered as given (caller orders by distance if desired).
    for (std::size_t si = 0; si < rq.sinks.size(); ++si) {
        const RouteRequest::Sink& sk = rq.sinks[si];

        // One fresh epoch covers both the visit labels and the target set:
        // stamping target_mark replaces the seed kernel's sorted-vector
        // binary_search with an O(1) load in the pop loop.
        scratch.begin_sink();
        const std::uint32_t mark = scratch.mark;

        std::vector<std::uint32_t>& targets = scratch.targets;
        {
            const std::size_t cap = targets.capacity();
            targets.clear();
            if (sk.is_pad) {
                targets.push_back(rr.pad_ipin(sk.pad));
            } else {
                for (std::uint32_t p = 0; p < rr.arch().plb_inputs; ++p)
                    targets.push_back(rr.plb_ipin(sk.plb, p));
            }
            if (targets.capacity() != cap) ++ks.allocations;
        }
        for (std::uint32_t t : targets) target_mark[t] = mark;

        const std::pair<double, double> tpos =
            sk.is_pad ? word_pos(rr.node_word(targets[0]))
                      : std::pair<double, double>{sk.plb.x + 0.5, sk.plb.y + 0.5};
        auto heuristic = [&](std::uint32_t n) {
            const auto [x, y] = word_pos(rr.node_word(n));
            return opts.astar_fac * wire_unit *
                   (std::abs(x - tpos.first) + std::abs(y - tpos.second));
        };

        heap.clear();
        auto push = [&](std::uint32_t n, double backward, std::uint32_t via_edge) {
            if (bbox != nullptr && !bbox->allows(rr.node_word(n))) return;
            if (visit_mark[n] == mark && best[n] <= backward) return;
            visit_mark[n] = mark;
            best[n] = backward;
            prev_edge[n] = via_edge;
            if (heap.push({backward + heuristic(n), backward, n})) ++ks.allocations;
            ++ks.heap_pushes;
            if (heap.size() > ks.wavefront_peak) ks.wavefront_peak = heap.size();
        };
        if (tree_nodes.empty()) {
            for (std::uint32_t s : sources)
                push(s, rr.node_base_cost(s) * pres_cost(s), UINT32_MAX);
        } else {
            for (std::uint32_t n : tree_nodes) push(n, 0.0, UINT32_MAX);
        }

        std::uint32_t found = UINT32_MAX;
        while (!heap.empty()) {
            const HeapItem it = heap.pop();
            ++ks.heap_pops;
            if (visit_mark[it.node] == mark && it.backward > best[it.node]) continue;
            if (target_mark[it.node] == mark) {
                found = it.node;
                break;
            }
            const RRNodeWord nw = rr.node_word(it.node);
            // Never expand through a sink pin of some other block.
            if (nw.kind() == RRKind::Ipin) continue;
            ++ks.nodes_expanded;
            // Flat CSR adjacency: one contiguous scan per expansion. The
            // region test runs before the cost: pres_cost reads occ[], and a
            // node outside this net's region may belong to a bin another
            // worker is occupying right now — it must not even be read.
            for (const core::RRGraph::OutEdge oe : rr.out(it.node)) {
                ++ks.edges_scanned;
                if (bbox != nullptr && !bbox->allows(rr.node_word(oe.to))) continue;
                const double c =
                    it.backward + rr.node_base_cost(oe.to) * pres_cost(oe.to) + hist[oe.to];
                push(oe.to, c, oe.edge);
            }
        }
        if (found == UINT32_MAX) {
            // Unroutable under current costs (or outside the bbox); give up
            // this sink for this iteration.
            st.tree.sinks[si].ipin = UINT32_MAX;
            st.all_sinks_found = false;
            continue;
        }
        st.tree.sinks[si].ipin = found;
        // Walk back, adding new nodes/edges to the tree. Every node on the
        // walk was labelled by THIS sink's search (a node's prev_edge is only
        // set when its predecessor was expanded this epoch), and tree-seeded
        // nodes keep prev_edge == UINT32_MAX (their backward cost 0.0 can't
        // be improved), so the walk terminates at the tree/source frontier.
        std::uint32_t cur = found;
        while (prev_edge[cur] != UINT32_MAX) {
            const std::uint32_t e = prev_edge[cur];
            tree_edges.push_back(e);
            const std::uint32_t from = rr.edge_source(e);
            if (tree_mark[cur] != tree_epoch) {
                tree_mark[cur] = tree_epoch;
                tree_nodes.push_back(cur);
            }
            cur = from;
        }
        if (tree_mark[cur] != tree_epoch) {
            tree_mark[cur] = tree_epoch;
            tree_nodes.push_back(cur);  // the root (source opin or tree node)
        }
        if (st.tree.root_opin == UINT32_MAX && rr.node_word(cur).kind() == RRKind::Opin)
            st.tree.root_opin = cur;
    }

    for (std::uint32_t n : tree_nodes) ++occ[n];
    st.tree.edges = std::move(tree_edges);
    ks.search_ms += net_timer.elapsed_ms();
    return st;
}

void finalize_routing(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                      const std::vector<std::vector<std::uint32_t>>& net_nodes,
                      RoutingResult& result) {
    // --- wirelength: channel wires held across all nets ------------------------
    for (const auto& nodes : net_nodes)
        for (std::uint32_t n : nodes) {
            const RRKind k = rr.node_word(n).kind();
            if (k == RRKind::ChanX || k == RRKind::ChanY) ++result.wirelength;
        }

    // --- final delays: accumulate node delays from the root over the tree ----
    // Flat replacement of the per-tree unordered_map adjacency: tree nodes
    // are compacted to dense local ids through an epoch-stamped N-sized
    // scratch, the kids lists become one CSR (filled in edge order, so each
    // node's kids keep the map version's insertion order), and the traversal
    // is the same LIFO stack with the same visited-before-write rule — the
    // arrival times match the map version even on degenerate edge lists.
    std::vector<std::uint32_t> stamp(rr.num_nodes(), 0);
    std::vector<std::uint32_t> local_id(rr.num_nodes(), 0);
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> verts;       // local id -> rr node
    std::vector<std::uint32_t> kid_first;   // CSR offsets over local ids
    std::vector<std::uint32_t> kid_at;      // fill cursor
    std::vector<std::uint32_t> kids;        // CSR payload: local kid ids
    std::vector<std::int64_t> arrive;       // local id -> root..node delay sum
    std::vector<std::uint8_t> seen;
    std::vector<std::uint32_t> stack;

    for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
        RouteTree& tree = result.trees[ri];
        if (tree.root_opin == UINT32_MAX && !tree.edges.empty())
            tree.root_opin = rr.edge_source(tree.edges.back());
        if (tree.root_opin == UINT32_MAX) continue;  // empty tree: delays stay 0

        if (++epoch == 0) {
            std::fill(stamp.begin(), stamp.end(), 0u);
            epoch = 1;
        }
        verts.clear();
        auto lid = [&](std::uint32_t n) {
            if (stamp[n] != epoch) {
                stamp[n] = epoch;
                local_id[n] = static_cast<std::uint32_t>(verts.size());
                verts.push_back(n);
            }
            return local_id[n];
        };
        const std::uint32_t root = lid(tree.root_opin);
        for (std::uint32_t e : tree.edges) {
            lid(rr.edge_source(e));
            lid(rr.edge_target(e));
        }

        kid_first.assign(verts.size() + 1, 0);
        for (std::uint32_t e : tree.edges) ++kid_first[local_id[rr.edge_source(e)] + 1];
        for (std::size_t v = 1; v < kid_first.size(); ++v) kid_first[v] += kid_first[v - 1];
        kid_at.assign(kid_first.begin(), kid_first.end() - 1);
        kids.resize(tree.edges.size());
        for (std::uint32_t e : tree.edges)
            kids[kid_at[local_id[rr.edge_source(e)]]++] = local_id[rr.edge_target(e)];

        arrive.assign(verts.size(), 0);
        seen.assign(verts.size(), 0);
        stack.clear();
        stack.push_back(root);
        arrive[root] = rr.node(tree.root_opin).delay_ps;
        seen[root] = 1;
        while (!stack.empty()) {
            const std::uint32_t v = stack.back();
            stack.pop_back();
            for (std::uint32_t i = kid_first[v]; i < kid_first[v + 1]; ++i) {
                const std::uint32_t k = kids[i];
                if (seen[k]) continue;
                arrive[k] = arrive[v] + rr.node(verts[k]).delay_ps;
                seen[k] = 1;
                stack.push_back(k);
            }
        }
        for (auto& s : tree.sinks)
            if (s.ipin != UINT32_MAX && stamp[s.ipin] == epoch && seen[local_id[s.ipin]])
                s.delay_ps = arrive[local_id[s.ipin]];
    }
}

void report_overuse(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                    const std::vector<std::vector<std::uint32_t>>& net_nodes,
                    const std::vector<std::uint16_t>& occ, RoutingResult& result) {
    // One pass over net_nodes instead of a per-overused-node scan of every
    // net: overused nodes get dense slots, then each net appends itself to
    // the slots it occupies. Nets are visited in ascending index and a tree
    // never holds a node twice, so each slot's user list matches the
    // quadratic version's " netA netB..." string exactly.
    std::vector<std::uint32_t> slot(rr.num_nodes(), UINT32_MAX);
    std::vector<std::uint32_t> over_nodes;
    for (std::uint32_t n = 0; n < rr.num_nodes(); ++n)
        if (occ[n] > rr.node_capacity(n)) {
            slot[n] = static_cast<std::uint32_t>(over_nodes.size());
            over_nodes.push_back(n);
        }
    std::vector<std::string> users(over_nodes.size());
    for (std::size_t ri = 0; ri < reqs.size(); ++ri)
        for (std::uint32_t n : net_nodes[ri])
            if (slot[n] != UINT32_MAX) users[slot[n]] += " net" + std::to_string(ri);

    for (std::size_t i = 0; i < over_nodes.size(); ++i) {
        const std::uint32_t n = over_nodes[i];
        const core::RRNode& nd = rr.node(n);
        result.overuse_report.push_back(
            to_string(nd.kind) + "(" + std::to_string(nd.x) + "," + std::to_string(nd.y) +
            ")#" + std::to_string(nd.track) + " occ=" + std::to_string(occ[n]) + users[i]);
    }
    std::size_t unrouted = 0;
    for (std::size_t ri = 0; ri < reqs.size(); ++ri)
        for (const auto& s : result.trees[ri].sinks)
            if (s.ipin == UINT32_MAX) ++unrouted;
    if (unrouted)
        result.overuse_report.push_back(std::to_string(unrouted) + " unrouted sinks");
}

// ---------------------------------------------------------------------------
// Pre-rework reference kernel: the seed implementation, kept verbatim (per-
// sink std::priority_queue, sorted-vector target test, std::find tree
// membership, RRNode-struct reads) as the bit-identity oracle for the
// route_kernel tests and bench tier. Do not "improve" this code — its value
// is being exactly what the pooled kernel must reproduce.
// ---------------------------------------------------------------------------

namespace {

struct QItem {
    double cost;       // accumulated + heuristic
    double backward;   // accumulated only
    std::uint32_t node;
    friend bool operator<(const QItem& a, const QItem& b) { return a.cost > b.cost; }
};

/// Grid position of a node for the A* heuristic.
std::pair<double, double> node_pos(const RRGraph& rr, std::uint32_t n) {
    const core::RRNode& nd = rr.node(n);
    switch (nd.kind) {
        case RRKind::ChanX: return {nd.x + 0.5, static_cast<double>(nd.y)};
        case RRKind::ChanY: return {static_cast<double>(nd.x), nd.y + 0.5};
        default: return {nd.x + 0.5, nd.y + 0.5};
    }
}

}  // namespace

NetRouteState route_one_net_reference(const RRGraph& rr, const RouteRequest& rq,
                                      const RouterOptions& opts, double pres_fac,
                                      const std::vector<double>& hist,
                                      std::vector<std::uint16_t>& occ, SearchScratch& scratch,
                                      const RouteBBox* bbox) {
    auto pres_cost = [&](std::uint32_t n) {
        const int over = static_cast<int>(occ[n]) + 1 - static_cast<int>(rr.node_capacity(n));
        return over > 0 ? 1.0 + pres_fac * static_cast<double>(over) : 1.0;
    };
    auto base_cost = [&](std::uint32_t n) {
        return static_cast<double>(std::max<std::int64_t>(rr.node(n).delay_ps, 1));
    };
    const double wire_unit =
        static_cast<double>(std::max<std::int64_t>(rr.arch().wire_delay_ps, 1));

    std::vector<double>& best = scratch.best;
    std::vector<std::uint32_t>& prev_edge = scratch.prev_edge;
    std::vector<std::uint32_t>& visit_mark = scratch.visit_mark;

    NetRouteState st;
    st.tree.sinks.assign(rq.sinks.size(), {});

    // Tree nodes grow as sinks are reached.
    std::vector<std::uint32_t>& tree_nodes = st.nodes;
    std::vector<std::uint32_t> tree_edges;

    // Candidate sources.
    std::vector<std::uint32_t> sources;
    if (rq.src_is_pad) {
        sources.push_back(rr.pad_opin(rq.src_pad));
    } else if (!rq.allowed_src_pins.empty()) {
        for (std::uint32_t p : rq.allowed_src_pins)
            sources.push_back(rr.plb_opin(rq.src_plb, p));
    } else {
        for (std::uint32_t p = 0; p < rr.arch().plb_outputs; ++p)
            sources.push_back(rr.plb_opin(rq.src_plb, p));
    }

    // Sinks ordered as given (caller orders by distance if desired).
    for (std::size_t si = 0; si < rq.sinks.size(); ++si) {
        const RouteRequest::Sink& sk = rq.sinks[si];
        std::vector<std::uint32_t> targets;
        if (sk.is_pad) {
            targets.push_back(rr.pad_ipin(sk.pad));
        } else {
            for (std::uint32_t p = 0; p < rr.arch().plb_inputs; ++p)
                targets.push_back(rr.plb_ipin(sk.plb, p));
        }
        // Cheap membership: targets are few, use sorted vector.
        std::sort(targets.begin(), targets.end());
        auto target_hit = [&](std::uint32_t n) {
            return std::binary_search(targets.begin(), targets.end(), n);
        };
        const std::pair<double, double> tpos =
            sk.is_pad ? node_pos(rr, targets[0])
                      : std::pair<double, double>{sk.plb.x + 0.5, sk.plb.y + 0.5};
        auto heuristic = [&](std::uint32_t n) {
            const auto [x, y] = node_pos(rr, n);
            return opts.astar_fac * wire_unit *
                   (std::abs(x - tpos.first) + std::abs(y - tpos.second));
        };

        ++scratch.mark;
        const std::uint32_t mark = scratch.mark;
        std::priority_queue<QItem> pq;
        auto push = [&](std::uint32_t n, double backward, std::uint32_t via_edge) {
            if (bbox != nullptr && !bbox->allows(rr.node(n))) return;
            if (visit_mark[n] == mark && best[n] <= backward) return;
            visit_mark[n] = mark;
            best[n] = backward;
            prev_edge[n] = via_edge;
            pq.push({backward + heuristic(n), backward, n});
        };
        if (tree_nodes.empty()) {
            for (std::uint32_t s : sources)
                push(s, base_cost(s) * pres_cost(s), UINT32_MAX);
        } else {
            for (std::uint32_t n : tree_nodes) push(n, 0.0, UINT32_MAX);
        }

        std::uint32_t found = UINT32_MAX;
        while (!pq.empty()) {
            const QItem it = pq.top();
            pq.pop();
            if (visit_mark[it.node] == mark && it.backward > best[it.node]) continue;
            if (target_hit(it.node)) {
                found = it.node;
                break;
            }
            const core::RRNode& nd = rr.node(it.node);
            // Never expand through a sink pin of some other block.
            if (nd.kind == RRKind::Ipin) continue;
            for (const core::RRGraph::OutEdge oe : rr.out(it.node)) {
                if (bbox != nullptr && !bbox->allows(rr.node(oe.to))) continue;
                const double c =
                    it.backward + base_cost(oe.to) * pres_cost(oe.to) + hist[oe.to];
                push(oe.to, c, oe.edge);
            }
        }
        if (found == UINT32_MAX) {
            st.tree.sinks[si].ipin = UINT32_MAX;
            st.all_sinks_found = false;
            continue;
        }
        st.tree.sinks[si].ipin = found;
        // Walk back, adding new nodes/edges to the tree.
        std::uint32_t cur = found;
        while (prev_edge[cur] != UINT32_MAX) {
            const std::uint32_t e = prev_edge[cur];
            tree_edges.push_back(e);
            const std::uint32_t from = rr.edge_source(e);
            if (std::find(tree_nodes.begin(), tree_nodes.end(), cur) == tree_nodes.end())
                tree_nodes.push_back(cur);
            cur = from;
        }
        if (std::find(tree_nodes.begin(), tree_nodes.end(), cur) == tree_nodes.end())
            tree_nodes.push_back(cur);  // the root (source opin or tree node)
        if (st.tree.root_opin == UINT32_MAX && rr.node(cur).kind == RRKind::Opin)
            st.tree.root_opin = cur;
    }

    for (std::uint32_t n : tree_nodes) ++occ[n];
    st.tree.edges = std::move(tree_edges);
    return st;
}

void finalize_routing_reference(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                                const std::vector<std::vector<std::uint32_t>>& net_nodes,
                                RoutingResult& result) {
    // --- wirelength: channel wires held across all nets ------------------------
    for (const auto& nodes : net_nodes)
        for (std::uint32_t n : nodes) {
            const RRKind k = rr.node(n).kind;
            if (k == RRKind::ChanX || k == RRKind::ChanY) ++result.wirelength;
        }

    // --- final delays: accumulate node delays from the root over the tree ----
    for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
        RouteTree& tree = result.trees[ri];
        if (tree.root_opin == UINT32_MAX && !tree.edges.empty())
            tree.root_opin = rr.edge_source(tree.edges.back());
        // adjacency of the tree
        std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> kids;
        for (std::uint32_t e : tree.edges) kids[rr.edge_source(e)].push_back(rr.edge_target(e));
        std::unordered_map<std::uint32_t, std::int64_t> arrive;
        std::vector<std::uint32_t> stack{tree.root_opin};
        if (tree.root_opin != UINT32_MAX)
            arrive[tree.root_opin] = rr.node(tree.root_opin).delay_ps;
        while (!stack.empty()) {
            const std::uint32_t n = stack.back();
            stack.pop_back();
            for (std::uint32_t k : kids[n]) {
                if (arrive.count(k)) continue;
                arrive[k] = arrive[n] + rr.node(k).delay_ps;
                stack.push_back(k);
            }
        }
        for (auto& s : tree.sinks)
            if (s.ipin != UINT32_MAX && arrive.count(s.ipin)) s.delay_ps = arrive[s.ipin];
    }
}

void report_overuse_reference(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                              const std::vector<std::vector<std::uint32_t>>& net_nodes,
                              const std::vector<std::uint16_t>& occ, RoutingResult& result) {
    for (std::uint32_t n = 0; n < rr.num_nodes(); ++n) {
        if (occ[n] <= rr.node_capacity(n)) continue;
        const core::RRNode& nd = rr.node(n);
        std::string users;
        for (std::size_t ri = 0; ri < reqs.size(); ++ri)
            if (std::find(net_nodes[ri].begin(), net_nodes[ri].end(), n) !=
                net_nodes[ri].end())
                users += " net" + std::to_string(ri);
        result.overuse_report.push_back(
            to_string(nd.kind) + "(" + std::to_string(nd.x) + "," + std::to_string(nd.y) +
            ")#" + std::to_string(nd.track) + " occ=" + std::to_string(occ[n]) + users);
    }
    std::size_t unrouted = 0;
    for (std::size_t ri = 0; ri < reqs.size(); ++ri)
        for (const auto& s : result.trees[ri].sinks)
            if (s.ipin == UINT32_MAX) ++unrouted;
    if (unrouted)
        result.overuse_report.push_back(std::to_string(unrouted) + " unrouted sinks");
}

}  // namespace afpga::cad::detail
