/// \file
/// Incremental half-perimeter wirelength (HPWL) engine for the placer.
///
/// The annealer proposes moves of one or two entities (a cluster
/// relocation, a cluster swap, a pad reassignment). Instead of rescanning
/// every entity of every affected net through a position lookup — the
/// pre-refactor placer even did a linear io_slot search per lookup — the
/// engine caches every entity's position and every net's bounding box with
/// per-boundary occupancy counts (how many entities sit on each box edge,
/// VPR-style). A move then updates each affected box in O(1); only when the
/// last entity on a boundary retreats inward does the net get rescanned.
/// Every update path produces bit-identical boxes to a from-scratch rescan,
/// and evaluation never mutates state — commit or discard, no rollback.
///
/// Threading: one engine per annealing replica, never shared; replicas on
/// the pool each own an engine (see cad/place.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace afpga::cad {

/// One tentative entity relocation inside a move proposal.
struct EntityMove {
    std::size_t entity;  ///< entity id (from add_entity)
    double x;            ///< proposed x
    double y;            ///< proposed y
};

/// The incremental HPWL cost engine (see the file comment for the model).
class PlaceCostEngine {
public:
    // --- construction -------------------------------------------------------
    /// Register an entity at its initial position; ids are dense from 0.
    std::size_t add_entity(double x, double y);
    /// Register a net over entity ids (>= 2 of them to contribute cost).
    void add_net(std::vector<std::size_t> entities);
    /// Build the reverse index and the initial boxes. Call once, after all
    /// entities and nets are in; positions may still change via moves.
    void finalize();

    // --- queries ------------------------------------------------------------
    /// Sum of cached per-net costs (O(nets); bit-identical to a from-scratch
    /// recomputation because cached boxes are always exact).
    [[nodiscard]] double total_cost() const;
    /// Validation-only: recompute every box from positions and sum.
    [[nodiscard]] double recompute_from_scratch() const;
    /// Current committed x of an entity.
    [[nodiscard]] double entity_x(std::size_t eid) const { return xs_[eid]; }
    /// Current committed y of an entity.
    [[nodiscard]] double entity_y(std::size_t eid) const { return ys_[eid]; }

    // --- move protocol ------------------------------------------------------
    /// Cost delta of applying `moves` (typically 1-2 entries, e.g. a stack
    /// array; one entry per entity). Nothing is mutated; the tentative boxes
    /// are stashed for a follow-up commit(). The delta is accumulated as
    /// sum(after) - sum(before) over the affected nets in ascending net
    /// order, reproducing the float rounding of a full rescan evaluator so
    /// both reach bit-identical accept/reject decisions.
    double eval(std::span<const EntityMove> moves);
    /// Apply the last evaluated proposal (positions + cached boxes).
    void commit();

private:
    struct NetBox {
        double xmin, xmax, ymin, ymax;
        std::uint16_t n_xmin, n_xmax, n_ymin, n_ymax;  ///< entities on each edge
        double cost;
    };

    [[nodiscard]] NetBox scan_net(std::size_t ni, std::span<const EntityMove> moves) const;
    [[nodiscard]] std::size_t net_size(std::size_t ni) const {
        return net_first_[ni + 1] - net_first_[ni];
    }

    std::vector<double> xs_;
    std::vector<double> ys_;
    /// Construction-time staging only; finalize() flattens it into the CSR
    /// arrays below and clears it.
    std::vector<std::vector<std::size_t>> nets_;
    std::vector<NetBox> boxes_;

    // Flat CSR views built by finalize(): nets -> entities and the reverse,
    // so the per-move hot loops walk contiguous arrays.
    std::vector<std::uint32_t> net_first_;   // net -> first index into net_ents_
    std::vector<std::uint32_t> net_ents_;    // entity ids flattened by net
    std::vector<std::uint32_t> noe_first_;   // entity -> first index into noe_nets_
    std::vector<std::uint32_t> noe_nets_;    // net ids flattened by entity

    // Pending proposal (filled by eval, consumed by commit). Affected nets
    // get a dense slot in creation order: order_[slot] is the net id,
    // slot_box_[slot] its tentative box, slot_rescan_[slot] whether the O(1)
    // update bailed and the box must be rebuilt by scan. slot_box_ is sized
    // once and never cleared — every slot is written before it is read.
    std::vector<EntityMove> pending_moves_;
    std::vector<std::uint32_t> order_;  ///< affected net ids, sorted by eval
    std::vector<NetBox> slot_box_;
    std::vector<std::uint8_t> slot_rescan_;

    // O(1) affected-net dedup across one eval call: net_mark_[ni] == mark_
    // means net ni already owns slot net_slot_[ni].
    std::vector<std::uint32_t> net_mark_;
    std::vector<std::uint32_t> net_slot_;
    std::uint32_t mark_ = 0;
};

}  // namespace afpga::cad
