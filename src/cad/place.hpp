/// \file
/// Placement: three engines over one wirelength model (cad/place_model.hpp).
///
///  - `anneal`: simulated annealing over PLB locations and I/O pad
///    assignment (VPR-style adaptive schedule, half-perimeter wirelength
///    cost), optionally raced across independently-seeded replicas.
///  - `analytical`: quadratic B2B global placement solved by a
///    deterministic conjugate-gradient solver (cad/place_analytical.hpp),
///    snapped legal by a Tetris-style legalizer (cad/place_legalize.hpp),
///    then polished by a short warm-start anneal.
///  - `multilevel`: the analytical solve run as a coarsen→solve→interpolate
///    V-cycle (cad/place_coarsen.hpp + cad/place_multilevel.hpp) — the full
///    spreading schedule runs only on the coarsest few hundred nodes and
///    each finer level gets a short anchored refinement, so wall time stays
///    flat where the flat engine's per-pass cost grows with the fabric.
///  - `race`: the analytical and multilevel engines join the multi-seed
///    anneal race as two more replicas.
///
/// Threading: races run replicas on a base::ThreadPool; each replica owns
/// its state/Rng/cost engine and the winner is chosen by (cost, replica
/// index), so results are bit-identical for any pool size or thread count.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cad/pack.hpp"
#include "cad/place_legalize.hpp"
#include "core/fabric.hpp"

namespace afpga::cad {

/// Which placement engine(s) a place() call runs.
enum class PlaceAlgorithm : std::uint8_t {
    Anneal = 0,      ///< simulated annealing (optionally multi-seed raced)
    Analytical = 1,  ///< B2B quadratic solve + legalize + polish anneal
    Race = 2,        ///< anneal replicas + analytical + multilevel, best wins
    Multilevel = 3,  ///< coarsen→solve→interpolate V-cycle + legalize + polish
};

/// Which engine produced a given placement/replica (telemetry).
enum class PlaceEngine : std::uint8_t { Anneal = 0, Analytical = 1, Multilevel = 2 };

/// Per-level telemetry of one multilevel V-cycle descent (coarsest level
/// first; place StageReport metrics, serialized with the Placement).
struct LevelStats {
    std::uint64_t nodes = 0;              ///< movable nodes at this level
    std::uint64_t nets = 0;               ///< contracted nets at this level
    int solver_passes = 0;                ///< solve passes run at this level
    int spread_passes = 0;                ///< spreading passes at this level
    std::uint64_t solver_iterations = 0;  ///< CG iterations at this level
    double wall_ms = 0.0;                 ///< wall time spent at this level
};

/// Analytical-engine telemetry: what the solver, spreader and legalizer
/// did (place StageReport metrics; serialized with the Placement).
struct AnalyticalStats {
    std::uint64_t solver_iterations = 0;  ///< total CG iterations, both axes
    int solver_passes = 0;                ///< B2B rebuild+solve passes run
    int spread_passes = 0;                ///< bisection spreading passes run
    double pre_legal_cost = 0.0;          ///< HPWL at fractional coordinates
    double legalized_cost = 0.0;          ///< HPWL after snapping legal
    LegalizeStats legalize;               ///< displacement histogram etc.
    /// Multilevel engine only: one entry per V-cycle level, coarsest first
    /// (empty for the flat engine).
    std::vector<LevelStats> levels;
};

/// What one replica of a multi-seed race did (telemetry; the winner's
/// fields are also promoted into the Placement itself).
struct PlaceReplica {
    std::uint64_t seed = 0;                ///< the replica's derived seed
    double final_cost = 0.0;               ///< HPWL at the replica's end
    double wall_ms = 0.0;                  ///< replica wall time (telemetry)
    std::vector<double> cost_trajectory;   ///< HPWL after each temperature step
    PlaceEngine engine = PlaceEngine::Anneal;  ///< which engine ran it
};

/// Where everything landed, plus engine telemetry.
struct Placement {
    std::vector<core::PlbCoord> cluster_loc;           ///< per cluster
    std::unordered_map<std::string, std::uint32_t> pi_pad;  ///< PI name -> pad
    std::unordered_map<std::string, std::uint32_t> po_pad;  ///< PO name -> pad
    double final_cost = 0.0;               ///< final HPWL cost
    std::uint64_t moves_tried = 0;         ///< annealer move proposals
    std::uint64_t moves_accepted = 0;      ///< accepted proposals
    int anneal_rounds = 0;                 ///< temperature steps executed
    std::vector<double> cost_trajectory;   ///< HPWL after each temperature step
    /// Race only (parallel_seeds > 1, or algorithm == Race): one entry per
    /// replica in replica order, plus which replica won. Empty otherwise.
    std::vector<PlaceReplica> replicas;
    std::size_t winner_replica = 0;        ///< index into replicas
    PlaceEngine engine = PlaceEngine::Anneal;  ///< engine that produced this
    /// Populated when `engine == Analytical` (zeroed otherwise).
    AnalyticalStats analytical;
};

/// Placement knobs (both engines; see each field).
struct PlaceOptions {
    std::uint64_t seed = 1;        ///< RNG seed (the flow injects its own)
    double alpha = 0.9;            ///< temperature decay
    double moves_scale = 10.0;     ///< moves per temperature ~ scale * n^(4/3)
    bool anneal = true;            ///< false: keep the seeded random placement
    /// false: pre-refactor cost evaluation (rescan affected nets through
    /// position lookups with mutate/rollback) — kept as the bench baseline
    /// and as a cross-check; decisions are bit-identical in both modes.
    bool incremental = true;
    /// Engine selection; see PlaceAlgorithm. `Anneal` preserves the
    /// historical behaviour bit-for-bit.
    PlaceAlgorithm algorithm = PlaceAlgorithm::Anneal;
    /// Number of independently-seeded annealing replicas raced on a thread
    /// pool; replica i anneals with Rng::derive_seed(seed, i) and the winner
    /// is the lexicographic minimum of (final_cost, replica index), so the
    /// result is bit-reproducible regardless of pool size or scheduling.
    /// 1 = the classic single-seed anneal using `seed` directly. In `Race`
    /// mode the flat analytical and multilevel engines run as two extra
    /// replicas after these, in that fixed order.
    int parallel_seeds = 1;
    /// Pool size for the race; 0 = base::ThreadPool::default_workers().
    unsigned threads = 0;
    /// Hard cap on annealing temperature rounds (the schedule usually
    /// exits on its own well before this).
    int max_rounds = 300;
    /// Analytical: B2B model rebuild+solve passes of global placement.
    int solver_passes = 16;
    /// Analytical: CG iteration cap per axis solve.
    int solver_max_iters = 150;
    /// Analytical: warm-start polish anneal rounds after legalization
    /// (0 = no polish).
    int polish_rounds = 8;
    /// Analytical: CG convergence threshold (relative residual).
    double solver_tolerance = 1e-9;
    /// Analytical: base weight of spreading anchor pseudo-nets; the
    /// effective weight grows linearly with the pass number.
    double anchor_weight = 0.10;
    /// Multilevel: each coarsening level targets ceil(ratio * nodes) nodes
    /// (smaller = more aggressive shrink per level, fewer levels).
    double coarsen_ratio = 0.5;
    /// Multilevel: stop coarsening once a level has this few movable nodes
    /// (the full solve+spread schedule runs there).
    int min_coarse_nodes = 64;
    /// Multilevel: hard cap on coarsening levels above the finest.
    int max_levels = 10;

    /// Canonical content hash over EVERY field (artifact-key material); the
    /// implementation pins the struct size so new fields fail loudly.
    /// `threads` never changes the winner but is included anyway — the
    /// canonical rule is "every field", and a spurious miss is always safe.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Throws base::Error if the design does not fit (clusters > W*H or I/Os >
/// pads).
[[nodiscard]] Placement place(const PackedDesign& pd, const MappedDesign& md,
                              const core::ArchSpec& arch, const PlaceOptions& opts = {});

/// Total half-perimeter wirelength of a placement (reported by benches).
[[nodiscard]] double placement_wirelength(const PackedDesign& pd, const MappedDesign& md,
                                          const core::ArchSpec& arch, const Placement& pl);

}  // namespace afpga::cad
