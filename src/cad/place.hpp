/// \file
/// Placement: simulated annealing over PLB locations and I/O pad
/// assignment (VPR-style adaptive schedule, half-perimeter wirelength
/// cost).
///
/// Threading: PlaceOptions::parallel_seeds races independently-seeded
/// replicas on a base::ThreadPool; each replica owns its state/Rng/cost
/// engine and the winner is chosen by (cost, replica index), so results
/// are bit-identical for any pool size.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cad/pack.hpp"
#include "core/fabric.hpp"

namespace afpga::cad {

/// What one annealing replica of a multi-seed race did (telemetry; the
/// winner's fields are also promoted into the Placement itself).
struct PlaceReplica {
    std::uint64_t seed = 0;                ///< the replica's derived seed
    double final_cost = 0.0;               ///< HPWL at the replica's end
    double wall_ms = 0.0;                  ///< replica wall time (telemetry)
    std::vector<double> cost_trajectory;   ///< HPWL after each temperature step
};

/// Where everything landed, plus annealer telemetry.
struct Placement {
    std::vector<core::PlbCoord> cluster_loc;           ///< per cluster
    std::unordered_map<std::string, std::uint32_t> pi_pad;  ///< PI name -> pad
    std::unordered_map<std::string, std::uint32_t> po_pad;  ///< PO name -> pad
    double final_cost = 0.0;               ///< final HPWL cost
    std::uint64_t moves_tried = 0;         ///< annealer move proposals
    std::uint64_t moves_accepted = 0;      ///< accepted proposals
    int anneal_rounds = 0;                 ///< temperature steps executed
    std::vector<double> cost_trajectory;   ///< HPWL after each temperature step
    /// Multi-seed race only (parallel_seeds > 1): one entry per replica in
    /// replica order, plus which replica won. Empty for a single-seed run.
    std::vector<PlaceReplica> replicas;
    std::size_t winner_replica = 0;        ///< index into replicas
};

/// Annealer knobs.
struct PlaceOptions {
    std::uint64_t seed = 1;        ///< RNG seed (the flow injects its own)
    double alpha = 0.9;            ///< temperature decay
    double moves_scale = 10.0;     ///< moves per temperature ~ scale * n^(4/3)
    bool anneal = true;            ///< false: keep the seeded random placement
    /// false: pre-refactor cost evaluation (rescan affected nets through
    /// position lookups with mutate/rollback) — kept as the bench baseline
    /// and as a cross-check; decisions are bit-identical in both modes.
    bool incremental = true;
    /// Number of independently-seeded annealing replicas raced on a thread
    /// pool; replica i anneals with Rng::derive_seed(seed, i) and the winner
    /// is the lexicographic minimum of (final_cost, replica index), so the
    /// result is bit-reproducible regardless of pool size or scheduling.
    /// 1 = the classic single-seed anneal using `seed` directly.
    int parallel_seeds = 1;
    /// Pool size for the race; 0 = base::ThreadPool::default_workers().
    unsigned threads = 0;

    /// Canonical content hash over EVERY field (artifact-key material); the
    /// implementation pins the struct size so new fields fail loudly.
    /// `threads` never changes the winner but is included anyway — the
    /// canonical rule is "every field", and a spurious miss is always safe.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Throws base::Error if the design does not fit (clusters > W*H or I/Os >
/// pads).
[[nodiscard]] Placement place(const PackedDesign& pd, const MappedDesign& md,
                              const core::ArchSpec& arch, const PlaceOptions& opts = {});

/// Total half-perimeter wirelength of a placement (reported by benches).
[[nodiscard]] double placement_wirelength(const PackedDesign& pd, const MappedDesign& md,
                                          const core::ArchSpec& arch, const Placement& pl);

}  // namespace afpga::cad
