/// \file
/// Analytical global placement: a bound-to-bound (B2B) quadratic
/// wirelength model over the placement model (cad/place_model.hpp) with
/// I/O pads as fixed anchors, solved per axis by a Jacobi-preconditioned
/// conjugate-gradient solver, interleaved with recursive-bisection
/// spreading that pulls overlapping clusters apart via growing anchor
/// pseudo-nets, and finished by a deterministic legalization pass
/// (cad/place_legalize.hpp).
///
/// Determinism contract: every loop runs in a fixed serial order — net
/// order from the model, ascending entity/cluster ids, no thread-count-
/// or scheduling-dependent floating-point reductions — so the result is a
/// pure function of (model, options, seed) and bit-identical across runs,
/// machines and pool sizes. The driver in cad/place.cpp layers the
/// optional warm-start polish anneal on top.
///
/// Threading: pure function of its arguments; race replicas may call it
/// concurrently over one shared PlaceModel.
#pragma once

#include <cstdint>
#include <vector>

#include "cad/place.hpp"
#include "cad/place_model.hpp"

namespace afpga::cad {

/// Output of analytical global placement + legalization (pre-polish).
struct AnalyticalResult {
    std::vector<core::PlbCoord> cluster_loc;  ///< legal per-cluster sites
    std::vector<std::uint32_t> pad_of_io;     ///< io slot -> pad
    AnalyticalStats stats;                    ///< solver/spread/legalize telemetry
};

/// Run global placement + pad refinement + legalization. `seed` only
/// seeds the initial pad shuffle (the solver itself is RNG-free). Uses
/// PlaceOptions::{solver_passes, solver_max_iters, solver_tolerance,
/// anchor_weight}.
[[nodiscard]] AnalyticalResult place_analytical_global(const PlaceModel& model,
                                                       const PlaceOptions& opts,
                                                       std::uint64_t seed);

/// HPWL over fractional (pre-legalization) coordinates — the
/// `pre_legal_cost` telemetry shared by the flat and multilevel engines.
[[nodiscard]] double fractional_cost(const PlaceModel& model, const std::vector<double>& cx,
                                     const std::vector<double>& cy,
                                     const std::vector<std::uint32_t>& pad_of_io);

/// Deterministic detailed-placement descent on the real bounding-box cost:
/// each cluster, in index order, takes the best strictly-improving free
/// site or swap inside a small window, then each io slot takes the best
/// strictly-improving pad move or pad swap; passes repeat until dry. Pure
/// function of its inputs. The driver runs it as the final step, after the
/// polish anneal — descending before annealing traps the anneal in the
/// descent's local basin and measurably worsens the result.
void refine_detailed(const PlaceModel& model, std::vector<std::uint32_t>& pad_of_io,
                     std::vector<core::PlbCoord>& cluster_loc);

}  // namespace afpga::cad
