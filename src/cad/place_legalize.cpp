#include "cad/place_legalize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "base/check.hpp"

namespace afpga::cad {

using base::check;
using core::PlbCoord;

std::vector<PlbCoord> legalize_clusters(const std::vector<double>& x, const std::vector<double>& y,
                                        std::uint32_t width, std::uint32_t height,
                                        LegalizeStats* stats) {
    check(x.size() == y.size(), "legalize: coordinate vectors disagree");
    const std::size_t n = x.size();
    check(n <= std::size_t{width} * height, "legalize: more clusters than sites");

    // Integer targets, clamped into the grid. Solver space puts PLB (gx, gy)
    // at (gx + 1, gy + 1); llround keeps the snap direction fixed at exact
    // halves, independent of rounding mode.
    std::vector<std::int64_t> tx(n);
    std::vector<std::int64_t> ty(n);
    for (std::size_t i = 0; i < n; ++i) {
        tx[i] = std::clamp<std::int64_t>(std::llround(x[i]) - 1, 0, std::int64_t{width} - 1);
        ty[i] = std::clamp<std::int64_t>(std::llround(y[i]) - 1, 0, std::int64_t{height} - 1);
    }

    // Fixed processing order: target x, then target y, then cluster index.
    // Ties broken by index keep the scan bit-reproducible whatever the
    // solver emitted for coincident clusters.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (tx[a] != tx[b]) return tx[a] < tx[b];
        if (ty[a] != ty[b]) return ty[a] < ty[b];
        return a < b;
    });

    std::vector<char> occupied(std::size_t{width} * height, 0);
    std::vector<PlbCoord> loc(n);
    const std::int64_t max_ring = std::int64_t{width} + height;  // diameter bound

    LegalizeStats st;
    for (std::size_t ci : order) {
        bool placed = false;
        // Ring d enumerates sites at Manhattan distance exactly d from the
        // target, in a fixed order: dx ascending, upper half-plane before
        // lower. Ring 0 is the target itself.
        for (std::int64_t d = 0; d <= max_ring && !placed; ++d) {
            for (std::int64_t dx = -d; dx <= d && !placed; ++dx) {
                const std::int64_t sx = tx[ci] + dx;
                if (sx < 0 || sx >= std::int64_t{width}) continue;
                const std::int64_t rest = d - std::llabs(dx);
                for (int sign = 0; sign < (rest == 0 ? 1 : 2) && !placed; ++sign) {
                    const std::int64_t sy = ty[ci] + (sign == 0 ? rest : -rest);
                    if (sy < 0 || sy >= std::int64_t{height}) continue;
                    const std::size_t cell =
                        static_cast<std::size_t>(sy) * width + static_cast<std::size_t>(sx);
                    if (occupied[cell]) continue;
                    occupied[cell] = 1;
                    loc[ci] = {static_cast<std::uint32_t>(sx), static_cast<std::uint32_t>(sy)};
                    const auto disp = static_cast<std::uint64_t>(d);
                    ++st.displacement_histogram[std::min<std::uint64_t>(disp, 15)];
                    st.total_displacement += disp;
                    st.max_displacement = std::max(st.max_displacement, disp);
                    placed = true;
                }
            }
        }
        check(placed, "legalize: no free site found (grid full?)");
    }
    if (n != 0) st.avg_displacement = static_cast<double>(st.total_displacement) /
                                      static_cast<double>(n);
    if (stats != nullptr) *stats = st;
    return loc;
}

}  // namespace afpga::cad
