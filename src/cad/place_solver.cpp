#include "cad/place_solver.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "cad/place_model.hpp"

namespace afpga::cad {

void QuadSystem::reset(std::size_t n) {
    diag.assign(n, 0.0);
    rhs.assign(n, 0.0);
    off.clear();
    row_start.clear();
    col.clear();
    val.clear();
}

void QuadSystem::fix_degenerate(const std::vector<double>& x) {
    for (std::size_t i = 0; i < diag.size(); ++i)
        if (diag[i] == 0.0) {
            diag[i] = 1.0;
            rhs[i] = x[i];
        }
}

void QuadSystem::finalize() {
    std::sort(off.begin(), off.end(), [](const auto& a, const auto& b) {
        if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
        return std::get<1>(a) < std::get<1>(b);
    });
    row_start.assign(diag.size() + 1, 0);
    for (std::size_t t = 0; t < off.size();) {
        const std::size_t row = std::get<0>(off[t]);
        const std::size_t column = std::get<1>(off[t]);
        double w = 0;
        while (t < off.size() && std::get<0>(off[t]) == row &&
               std::get<1>(off[t]) == column) {
            w += std::get<2>(off[t]);
            ++t;
        }
        col.push_back(column);
        val.push_back(w);
        ++row_start[row + 1];
    }
    for (std::size_t i = 1; i < row_start.size(); ++i) row_start[i] += row_start[i - 1];
    off.clear();
}

void QuadSystem::apply(const std::vector<double>& x, std::vector<double>& y) const {
    const std::size_t n = diag.size();
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = diag[i] * x[i];
        for (std::size_t t = row_start[i]; t < row_start[i + 1]; ++t)
            acc += val[t] * x[col[t]];
        y[i] = acc;
    }
}

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

}  // namespace

std::uint64_t solve_pcg(const QuadSystem& sys, std::vector<double>& x, int max_iters,
                        double tol, PcgScratch& scratch) {
    const std::size_t n = x.size();
    if (n == 0) return 0;
    std::vector<double>& r = scratch.r;
    std::vector<double>& z = scratch.z;
    std::vector<double>& p = scratch.p;
    std::vector<double>& ap = scratch.ap;
    r.resize(n);
    z.resize(n);
    sys.apply(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = sys.rhs[i] - ap[i];
    double bnorm = std::sqrt(dot(sys.rhs, sys.rhs));
    if (bnorm < 1e-300) bnorm = 1.0;
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / sys.diag[i];
    p = z;
    double rz = dot(r, z);
    std::uint64_t iters = 0;
    for (int it = 0; it < max_iters; ++it) {
        if (std::sqrt(dot(r, r)) <= tol * bnorm) break;
        sys.apply(p, ap);
        const double pap = dot(p, ap);
        if (!(pap > 0)) break;  // numerical breakdown: keep the best x so far
        const double alpha = rz / pap;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / sys.diag[i];
        const double rz_new = dot(r, z);
        ++iters;
        if (!(rz_new > 0)) break;
        const double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    return iters;
}

void spread_targets(std::uint32_t width, std::uint32_t height, std::size_t num_nodes,
                    const std::vector<double>& cx, const std::vector<double>& cy,
                    const std::uint32_t* weight, std::vector<double>& tgt_x,
                    std::vector<double>& tgt_y, SpreadScratch& scratch) {
    if (num_nodes == 0) return;
    scratch.idx.resize(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) scratch.idx[i] = i;
    scratch.stack.clear();
    scratch.stack.push_back({0, width, 0, height, 0, num_nodes});
    auto weight_of = [&](std::size_t node) -> std::uint64_t {
        return weight == nullptr ? 1 : weight[node];
    };
    while (!scratch.stack.empty()) {
        const SpreadScratch::Region rg = scratch.stack.back();
        scratch.stack.pop_back();
        const std::size_t size = rg.end - rg.begin;
        if (size == 0) continue;
        const std::uint32_t w = rg.x1 - rg.x0;
        const std::uint32_t h = rg.y1 - rg.y0;
        if (size == 1 || (w == 1 && h == 1)) {
            const double tx =
                (static_cast<double>(rg.x0) + static_cast<double>(rg.x1) - 1.0) / 2.0 + 1.0;
            const double ty =
                (static_cast<double>(rg.y0) + static_cast<double>(rg.y1) - 1.0) / 2.0 + 1.0;
            for (std::size_t t = rg.begin; t < rg.end; ++t) {
                tgt_x[scratch.idx[t]] = tx;
                tgt_y[scratch.idx[t]] = ty;
            }
            continue;
        }
        const bool split_x = w >= h;
        const std::uint32_t xm = split_x ? rg.x0 + w / 2 : rg.x1;
        const std::uint32_t ym = split_x ? rg.y1 : rg.y0 + h / 2;
        const std::uint64_t cap_lo =
            split_x ? std::uint64_t{xm - rg.x0} * h : std::uint64_t{ym - rg.y0} * w;
        const std::uint64_t cap_hi =
            split_x ? std::uint64_t{rg.x1 - xm} * h : std::uint64_t{rg.y1 - ym} * w;
        const auto first = scratch.idx.begin() + static_cast<std::ptrdiff_t>(rg.begin);
        const auto last = scratch.idx.begin() + static_cast<std::ptrdiff_t>(rg.end);
        std::sort(first, last, [&](std::size_t a, std::size_t b) {
            const double ca = split_x ? cx[a] : cy[a];
            const double cb = split_x ? cx[b] : cy[b];
            if (ca != cb) return ca < cb;
            return a < b;
        });
        // Site i's center coordinate is i+1, so the cut between sites xm-1
        // and xm lies at coordinate xm + 0.5.
        const double cut =
            split_x ? static_cast<double>(xm) + 0.5 : static_cast<double>(ym) + 0.5;
        std::size_t k = 0;
        std::uint64_t w_lo = 0;
        while (k < size) {
            const std::size_t node = scratch.idx[rg.begin + k];
            if ((split_x ? cx[node] : cy[node]) > cut) break;
            w_lo += weight_of(node);
            ++k;
        }
        std::uint64_t w_hi = 0;
        for (std::size_t t = rg.begin + k; t < rg.end; ++t) w_hi += weight_of(scratch.idx[t]);
        // Shift the boundary only as far as capacity demands. With unit
        // weights this is exactly k = min(k, cap_lo), then k = max(k,
        // size - cap_hi); with lumpy weights the second loop may re-exceed
        // cap_lo — best effort, see the header.
        while (k > 0 && w_lo > cap_lo) {
            --k;
            const std::uint64_t nw = weight_of(scratch.idx[rg.begin + k]);
            w_lo -= nw;
            w_hi += nw;
        }
        while (k < size && w_hi > cap_hi) {
            const std::uint64_t nw = weight_of(scratch.idx[rg.begin + k]);
            w_lo += nw;
            w_hi -= nw;
            ++k;
        }
        const std::size_t mid = rg.begin + k;
        if (split_x) {
            scratch.stack.push_back({xm, rg.x1, rg.y0, rg.y1, mid, rg.end});
            scratch.stack.push_back({rg.x0, xm, rg.y0, rg.y1, rg.begin, mid});
        } else {
            scratch.stack.push_back({rg.x0, rg.x1, ym, rg.y1, mid, rg.end});
            scratch.stack.push_back({rg.x0, rg.x1, rg.y0, ym, rg.begin, mid});
        }
    }
}

void PadFrame::build(const std::vector<PlacePt>& pads, std::uint32_t width,
                     std::uint32_t height) {
    // Side order is arbitrary (queries take a 4-way lexicographic min) but
    // the geometry must match place_model's pad frame exactly.
    sides_[0] = {1, 0.0, {}};                               // left:   x = 0
    sides_[1] = {1, static_cast<double>(width) + 1.0, {}};  // right:  x = W+1
    sides_[2] = {0, 0.0, {}};                               // bottom: y = 0
    sides_[3] = {0, static_cast<double>(height) + 1.0, {}}; // top:    y = H+1
    pad_side_.resize(pads.size());
    free_.clear();
    for (std::uint32_t p = 0; p < pads.size(); ++p) {
        const PlacePt pt = pads[p];
        std::uint8_t side = 0;
        if (pt.x == sides_[0].fixed)
            side = 0;
        else if (pt.x == sides_[1].fixed)
            side = 1;
        else if (pt.y == sides_[2].fixed)
            side = 2;
        else {
            base::check(pt.y == sides_[3].fixed, "PadFrame: pad off the perimeter frame");
            side = 3;
        }
        const double run = sides_[side].run_axis == 0 ? pt.x : pt.y;
        pad_side_[p] = {side, run};
        sides_[side].free.emplace(run, p);
        free_.insert(p);
    }
}

void PadFrame::reset() {
    for (std::uint32_t p = 0; p < pad_side_.size(); ++p) {
        const auto [side, run] = pad_side_[p];
        sides_[side].free.emplace(run, p);
        free_.insert(p);
    }
}

bool PadFrame::lowest_free(std::uint32_t& out) const {
    if (free_.empty()) return false;
    out = *free_.begin();
    return true;
}

bool PadFrame::nearest_free(double gx, double gy, std::uint32_t& out) const {
    double best_d = 0.0;
    std::uint32_t best = 0;
    bool found = false;
    auto consider = [&](double d, std::uint32_t p) {
        if (!found || d < best_d || (d == best_d && p < best)) {
            best_d = d;
            best = p;
            found = true;
        }
    };
    for (const Side& side : sides_) {
        if (side.free.empty()) continue;
        const double g = side.run_axis == 0 ? gx : gy;
        // The off-axis term |side.fixed - off| is the same |pad.x - gx| /
        // |pad.y - gy| term the full scan computes, and two-term IEEE
        // addition is commutative, so d below is bit-identical to the
        // scan's distance.
        const double off_term = std::abs(side.fixed - (side.run_axis == 0 ? gy : gx));
        const auto it = side.free.lower_bound({g, 0});
        if (it != side.free.end()) {
            // First entry at the bracketing run above g: lowest index there.
            consider(std::abs(it->first - g) + off_term, it->second);
        }
        if (it != side.free.begin()) {
            const double below = std::prev(it)->first;
            // Jump to the first (lowest-index) entry at that run.
            const auto lo = side.free.lower_bound({below, 0});
            consider(std::abs(below - g) + off_term, lo->second);
        }
    }
    if (found) out = best;
    return found;
}

void PadFrame::take(std::uint32_t pad) {
    const auto [side, run] = pad_side_[pad];
    sides_[side].free.erase({run, pad});
    free_.erase(pad);
}

}  // namespace afpga::cad
