#include "cad/route_parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "base/timer.hpp"
#include "cad/route_search.hpp"
#include "core/fabric.hpp"

namespace afpga::cad {

using core::RRGraph;
using detail::RouteBBox;

namespace {

/// One node of the spatial partition tree. Children are separated by one
/// full PLB column (vertical cut) or row (horizontal cut) kept by the
/// parent, so the two child regions touch disjoint RR-node sets.
struct PartNode {
    RouteBBox rect;
    int left = -1;     ///< child index, -1 = leaf
    int right = -1;
    int depth = 0;     ///< root = 0
    int leaf_id = -1;  ///< dense index among leaves, -1 for internal nodes
};

/// Recursively bisect `rect`, always along its longer dimension, stopping
/// when a cut would leave either side narrower than `min_dim`. Pure function
/// of (fabric size, min_dim): the tree never depends on the worker count.
void split(std::vector<PartNode>& tree, int at, std::uint32_t min_dim) {
    const RouteBBox r = tree[at].rect;
    const std::uint32_t w = r.x1 - r.x0 + 1;
    const std::uint32_t h = r.y1 - r.y0 + 1;
    // A cut consumes one separator line: each side keeps >= min_dim lines
    // only when the dimension is at least 2*min_dim + 1.
    const bool can_x = w >= 2 * min_dim + 1;
    const bool can_y = h >= 2 * min_dim + 1;
    if (!can_x && !can_y) return;
    const bool cut_x = can_x && (!can_y || w >= h);
    RouteBBox a = r;
    RouteBBox b = r;
    if (cut_x) {
        const std::uint32_t c = r.x0 + w / 2;  // separator column, kept by parent
        a.x1 = c - 1;
        b.x0 = c + 1;
    } else {
        const std::uint32_t c = r.y0 + h / 2;  // separator row
        a.y1 = c - 1;
        b.y0 = c + 1;
    }
    const int d = tree[at].depth + 1;
    tree[at].left = static_cast<int>(tree.size());
    tree.push_back({a, -1, -1, d, -1});
    tree[at].right = static_cast<int>(tree.size());
    tree.push_back({b, -1, -1, d, -1});
    split(tree, tree[at].left, min_dim);
    split(tree, tree[at].right, min_dim);
}

/// The fabric-grid coordinate a pad routes through: the border PLB adjacent
/// to its IOB position (mirrors the RR-graph builder's pad wiring).
core::PlbCoord pad_anchor(const core::FabricGeometry& geom, std::uint32_t pad) {
    const core::IobCoord io = geom.pad_iob(pad);
    const std::uint32_t W = geom.arch().width;
    const std::uint32_t H = geom.arch().height;
    switch (io.side) {
        case core::Side::Bottom: return {io.offset, 0};
        case core::Side::Top: return {io.offset, H - 1};
        case core::Side::Left: return {0, io.offset};
        case core::Side::Right: return {W - 1, io.offset};
    }
    return {0, 0};
}

/// Bounding box of a request's terminals (source + every sink), in PLB
/// coordinates.
RouteBBox terminal_bbox(const core::FabricGeometry& geom, const RouteRequest& rq) {
    core::PlbCoord first =
        rq.src_is_pad ? pad_anchor(geom, rq.src_pad) : rq.src_plb;
    RouteBBox bb{first.x, first.y, first.x, first.y};
    for (const RouteRequest::Sink& sk : rq.sinks) {
        const core::PlbCoord c = sk.is_pad ? pad_anchor(geom, sk.pad) : sk.plb;
        bb.x0 = std::min(bb.x0, c.x);
        bb.y0 = std::min(bb.y0, c.y);
        bb.x1 = std::max(bb.x1, c.x);
        bb.y1 = std::max(bb.y1, c.y);
    }
    return bb;
}

}  // namespace

RoutingResult route_parallel(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                             const RouterOptions& opts, base::ThreadPool& pool) {
    const std::size_t N = rr.num_nodes();
    const core::FabricGeometry& geom = rr.geometry();
    const std::uint32_t W = rr.arch().width;
    const std::uint32_t H = rr.arch().height;

    RoutingResult result;
    result.trees.assign(reqs.size(), {});

    // --- partition tree (pure function of fabric size + options) -------------
    std::vector<PartNode> tree;
    tree.push_back({RouteBBox{0, 0, W - 1, H - 1}, -1, -1, 0, -1});
    split(tree, 0, std::max<std::uint32_t>(opts.min_bin_dim, 1));
    std::size_t num_leaves = 0;
    for (PartNode& pn : tree)
        if (pn.left < 0) pn.leaf_id = static_cast<int>(num_leaves++);
    result.num_bins = num_leaves;
    result.bin_wall_ms.assign(num_leaves, 0.0);

    // --- per-net search regions ----------------------------------------------
    std::vector<RouteBBox> terminals(reqs.size());
    for (std::size_t ri = 0; ri < reqs.size(); ++ri)
        terminals[ri] = terminal_bbox(geom, reqs[ri]);
    // Per-net extra margin, normally 0: nets are binned by their raw
    // terminal bounding box (so the detour margin never pushes a net out of
    // its leaf), and grow their box only when a sink proves unreachable or
    // the net is implicated in stalled congestion — growth that depends
    // only on routing outcomes, which are thread-count-invariant.
    std::vector<std::uint32_t> extra(reqs.size(), 0);
    std::vector<RouteBBox> region(reqs.size());
    std::vector<bool> ever_boundary(reqs.size(), false);

    std::vector<double> hist(N, 0.0);
    std::vector<std::uint16_t> occ(N, 0);
    double pres_fac = opts.pres_fac_first;

    std::vector<std::vector<std::uint32_t>> net_nodes(reqs.size());

    auto escalate = [&](std::size_t ri) { extra[ri] = extra[ri] * 2 + 2; };

    // Test/bench hook, read once at entry: the whole run uses either the
    // pooled kernel or the pre-rework reference kernel, never a mix.
    const bool use_ref = detail::use_reference_kernel();
    const auto kernel =
        use_ref ? detail::route_one_net_reference : detail::route_one_net;

    // The tree is processed bottom-up, one depth level per barrier: all
    // same-depth nodes live in disjoint subtrees, so they can route
    // concurrently; a parent (whose nets may use its separator channels and
    // anything inside either child) only runs after its children's level.
    const int max_depth =
        std::max_element(tree.begin(), tree.end(), [](const PartNode& a, const PartNode& b) {
            return a.depth < b.depth;
        })->depth;
    std::vector<std::vector<std::size_t>> level_nodes(static_cast<std::size_t>(max_depth) + 1);
    for (std::size_t i = 0; i < tree.size(); ++i)
        level_nodes[static_cast<std::size_t>(tree[i].depth)].push_back(i);

    // Scratch free-list: at most min(workers, active bins) scratches ever
    // exist instead of one per tree node (three N-sized arrays each). A
    // scratch carries no cross-net state — the visit-mark epoch invalidates
    // old labels — so which scratch a task happens to pop cannot affect
    // results.
    std::mutex scratch_mu;
    std::vector<std::unique_ptr<detail::SearchScratch>> scratch_pool;
    auto acquire_scratch = [&]() -> std::unique_ptr<detail::SearchScratch> {
        {
            std::lock_guard<std::mutex> lk(scratch_mu);
            if (!scratch_pool.empty()) {
                auto s = std::move(scratch_pool.back());
                scratch_pool.pop_back();
                return s;
            }
        }
        return std::make_unique<detail::SearchScratch>(N);
    };
    auto release_scratch = [&](std::unique_ptr<detail::SearchScratch> s) {
        std::lock_guard<std::mutex> lk(scratch_mu);
        scratch_pool.push_back(std::move(s));
    };
    std::vector<double> node_wall(tree.size(), 0.0);

    std::vector<std::size_t> dirty;
    std::vector<std::vector<std::size_t>> node_work(tree.size());  // request indices
    std::size_t best_overused = SIZE_MAX;
    int stall = 0;

    for (int iter = 1; iter <= opts.max_iterations; ++iter) {
        // --- work selection: same rule and order as the serial router --------
        const bool stalled = opts.stall_full_reroute > 0 && stall >= opts.stall_full_reroute;
        const bool full_rip_up = iter == 1 || !opts.incremental || stalled;
        if (stalled) {
            // The conflict set is stuck inside too-tight regions: widen every
            // net pinned on an overused node before shaking the whole
            // configuration loose.
            for (std::size_t ri = 0; ri < reqs.size(); ++ri)
                for (std::uint32_t n : net_nodes[ri])
                    if (occ[n] > rr.node_capacity(n)) {
                        escalate(ri);
                        break;
                    }
        }
        if (full_rip_up) stall = 0;
        dirty.clear();
        for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
            bool d = full_rip_up;
            if (!d)
                for (std::uint32_t n : net_nodes[ri])
                    if (occ[n] > rr.node_capacity(n)) {
                        d = true;
                        break;
                    }
            if (!d)
                for (const auto& s : result.trees[ri].sinks)
                    if (s.ipin == UINT32_MAX) {
                        d = true;
                        break;
                    }
            if (d) dirty.push_back(ri);
        }
        result.nets_rerouted += dirty.size();

        for (std::size_t ri : dirty) {
            for (std::uint32_t n : net_nodes[ri]) --occ[n];
            net_nodes[ri].clear();
        }

        // --- binning ---------------------------------------------------------
        // A net goes to the deepest tree node whose region contains its
        // terminal box (grown by the net's escalation margin); nets landing
        // at internal nodes are boundary nets (they may use their node's
        // separator channels). The search region adds the detour margin on
        // top but is clipped to the assigned node's rect, preserving
        // node-disjointness between same-level bins.
        for (auto& v : node_work) v.clear();
        for (std::size_t ri : dirty) {
            const RouteBBox fp = terminals[ri].expanded(extra[ri], W, H);
            int at = 0;
            while (tree[at].left >= 0) {
                if (tree[tree[at].left].rect.contains(fp))
                    at = tree[at].left;
                else if (tree[tree[at].right].rect.contains(fp))
                    at = tree[at].right;
                else
                    break;
            }
            node_work[static_cast<std::size_t>(at)].push_back(ri);
            if (tree[at].leaf_id < 0) ever_boundary[ri] = true;
            const RouteBBox want = terminals[ri].expanded(opts.bin_margin + extra[ri], W, H);
            const RouteBBox& rect = tree[static_cast<std::size_t>(at)].rect;
            region[ri] = RouteBBox{std::max(want.x0, rect.x0), std::max(want.y0, rect.y0),
                                   std::min(want.x1, rect.x1), std::min(want.y1, rect.y1)};
        }

        // --- route the tree bottom-up, one depth level per barrier -----------
        // Same-depth nodes are pairwise region-disjoint, so each level is a
        // parallel_for; a parent runs strictly after its children. Only
        // nodes with work are dispatched, so a three-net iteration does not
        // pay tree-size task overhead.
        for (int depth = max_depth; depth >= 0; --depth) {
            std::vector<std::size_t> active;
            for (std::size_t b : level_nodes[static_cast<std::size_t>(depth)])
                if (!node_work[b].empty()) active.push_back(b);
            if (active.empty()) continue;
            pool.parallel_for(active.size(), [&](std::size_t ai) {
                const std::size_t b = active[ai];
                base::WallTimer node_timer;
                std::unique_ptr<detail::SearchScratch> scratch = acquire_scratch();
                const std::vector<std::size_t>& work = node_work[b];
                for (std::size_t k = 0; k < work.size(); ++k) {
                    // Rotate the order each iteration, as the serial router
                    // does, so a node's first net does not permanently dodge
                    // present-congestion cost.
                    const std::size_t ri =
                        work[(k + static_cast<std::size_t>(iter - 1)) % work.size()];
                    detail::NetRouteState st = kernel(rr, reqs[ri], opts, pres_fac, hist,
                                                      occ, *scratch, &region[ri]);
                    if (!st.all_sinks_found) escalate(ri);
                    net_nodes[ri] = std::move(st.nodes);
                    result.trees[ri] = std::move(st.tree);
                }
                release_scratch(std::move(scratch));
                node_wall[b] += node_timer.elapsed_ms();
            });
        }

        // --- congestion accounting: serial, fixed node order -----------------
        std::size_t overused = 0;
        bool all_routed = true;
        for (std::size_t n = 0; n < N; ++n) {
            const auto cap = rr.node_capacity(static_cast<std::uint32_t>(n));
            if (occ[n] > cap) {
                ++overused;
                hist[n] += opts.hist_fac * rr.node_base_cost(static_cast<std::uint32_t>(n)) *
                           static_cast<double>(occ[n] - cap);
            }
        }
        for (std::size_t ri = 0; ri < reqs.size(); ++ri)
            for (const auto& s : result.trees[ri].sinks)
                if (s.ipin == UINT32_MAX) all_routed = false;

        result.iterations = iter;
        result.overused_nodes = overused;
        result.overuse_trajectory.push_back(overused);
        if (overused < best_overused) {
            best_overused = overused;
            stall = 0;
        } else {
            ++stall;
        }
        if (opts.verbose) {
            std::size_t boundary_rerouted = 0;
            for (std::size_t i = 0; i < tree.size(); ++i)
                if (tree[i].leaf_id < 0) boundary_rerouted += node_work[i].size();
            std::fprintf(stderr,
                         "[router-par] iter %d rerouted=%zu overused=%zu pres=%.3g "
                         "boundary=%zu\n",
                         iter, dirty.size(), overused, pres_fac, boundary_rerouted);
            for (std::uint32_t n = 0; n < N; ++n) {
                if (occ[n] <= rr.node_capacity(n)) continue;
                const core::RRNode& nd = rr.node(n);
                std::string users;
                for (std::size_t ri = 0; ri < reqs.size(); ++ri)
                    if (std::find(net_nodes[ri].begin(), net_nodes[ri].end(), n) !=
                        net_nodes[ri].end())
                        users += " net" + std::to_string(ri);
                std::fprintf(stderr, "  %s(%u,%u)#%u occ=%u%s\n",
                             core::to_string(nd.kind).c_str(), nd.x, nd.y, nd.track, occ[n],
                             users.c_str());
            }
        }
        if (overused == 0 && all_routed) {
            result.success = true;
            break;
        }
        pres_fac *= opts.pres_fac_mult;
    }

    result.boundary_nets =
        static_cast<std::size_t>(std::count(ever_boundary.begin(), ever_boundary.end(), true));
    for (std::size_t i = 0; i < tree.size(); ++i) {
        if (tree[i].leaf_id >= 0)
            result.bin_wall_ms[static_cast<std::size_t>(tree[i].leaf_id)] = node_wall[i];
        else
            result.boundary_wall_ms += node_wall[i];
    }

    // Kernel counters: every scratch is back in the pool (workers release at
    // each level barrier), so summing the pool covers every search. The sums
    // are schedule-independent — which scratch a task popped only moves
    // counts between addends. steady_allocations stays 0 here by design:
    // scratch-pool creation is schedule-dependent, so the zero-steady-state
    // gate runs on the serial router.
    for (const auto& s : scratch_pool) result.kernel.merge(s->stats);

    if (!result.success) {
        if (use_ref)
            detail::report_overuse_reference(rr, reqs, net_nodes, occ, result);
        else
            detail::report_overuse(rr, reqs, net_nodes, occ, result);
        return result;
    }
    if (use_ref)
        detail::finalize_routing_reference(rr, reqs, net_nodes, result);
    else
        detail::finalize_routing(rr, reqs, net_nodes, result);
    return result;
}

}  // namespace afpga::cad
