/// \file
/// The staged CAD pipeline: run_flow threads a FlowContext through five
/// FlowStage implementations (techmap -> pack -> place -> route ->
/// bitstream), timing each one into a StageReport and collecting the
/// reports into a machine-readable FlowTelemetry (schema:
/// docs/TELEMETRY.md).
///
/// Threading: one FlowContext belongs to one flow; stages run sequentially
/// on the calling thread and fan out internally where their options ask
/// for it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asynclib/styles.hpp"
#include "cad/route.hpp"
#include "netlist/netlist.hpp"

namespace afpga::cad {

class ArtifactStore;
struct FlowOptions;
struct FlowResult;

/// What one stage did: wall time, iteration count and per-iteration cost
/// trajectory where the stage is iterative (annealer rounds, PathFinder
/// iterations), plus free-form named metrics.
struct StageReport {
    std::string stage;      ///< stage name (techmap/pack/place/route/bitstream)
    double wall_ms = 0.0;   ///< stage wall time, stamped by the driver
    int iterations = 0;     ///< anneal rounds / PathFinder iterations, else 0
    std::vector<double> cost_trajectory;  ///< per-iteration cost (HPWL / overuse)
    std::vector<std::pair<std::string, double>> metrics;  ///< insertion-ordered

    // Artifact caching (set only when the flow runs with an ArtifactStore;
    // see docs/TELEMETRY.md).
    std::string cache_key;  ///< hex artifact key of this stage; empty = caching off
    int cache_hit = -1;     ///< 1 = restored from the store, 0 = computed, -1 = off

    /// Append a named metric.
    void add_metric(std::string name, double v) {
        metrics.emplace_back(std::move(name), v);
    }
    /// nullptr when the stage never recorded the metric.
    [[nodiscard]] const double* metric(std::string_view name) const;
};

/// Per-stage reports in pipeline order plus the end-to-end wall time.
struct FlowTelemetry {
    std::vector<StageReport> stages;  ///< one per stage, pipeline order
    double total_ms = 0.0;            ///< end-to-end pipeline wall time

    /// nullptr when no stage has that name.
    [[nodiscard]] const StageReport* stage(std::string_view name) const;
    /// Serialize the whole telemetry as a JSON object.
    [[nodiscard]] std::string to_json() const;
};

/// Mutable state threaded through the pipeline. Stages read what upstream
/// stages produced (mostly inside `result`) and leave their own products for
/// the stages downstream.
struct FlowContext {
    const netlist::Netlist& nl;           ///< the design being compiled
    const asynclib::MappingHints& hints;  ///< generator hints for techmap
    const core::ArchSpec& arch;           ///< target architecture
    const FlowOptions& opts;              ///< all stage knobs
    FlowResult& result;                   ///< accumulating products

    // Route-stage products the bitstream stage consumes: the flattened net
    // list, each net's consuming cluster per sink (SIZE_MAX = pad), and the
    // signal each request carries.
    std::vector<RouteRequest> reqs;
    std::vector<std::vector<std::size_t>> sink_cluster;
    std::vector<netlist::NetId> req_signal;
};

/// One pipeline stage. The five concrete stages are internal to flow.cpp;
/// the interface is public so the driver's contract (name + timed run over
/// a shared context, plus the artifact-cache hooks) is visible alongside
/// StageReport/FlowTelemetry.
///
/// Caching contract: when the flow carries an ArtifactStore, the driver
/// derives this stage's key by chaining the upstream stage's key with
/// `name()` and `options_fingerprint()`, then calls `try_restore`; only on
/// a miss does it `run` and `publish`. A stage must therefore be a pure
/// function of its fingerprinted inputs, and restore must leave the
/// context exactly as a run would have (cold and warm flows are
/// bit-identical). The store is two-tier: a restore may be served by the
/// resident memory tier or deserialized from the store's disk tier
/// (cad/serialize.hpp) — the latter is flagged with a
/// `restored_from_disk` metric but is otherwise indistinguishable, and a
/// publish feeds both tiers. Stages never see eviction: a product evicted
/// between publish and restore simply misses and is recomputed.
class FlowStage {
public:
    virtual ~FlowStage() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    /// Do the work; fill iteration counts/trajectory/metrics into `report`
    /// (wall_ms is stamped by the pipeline driver).
    virtual void run(FlowContext& ctx, StageReport& report) = 0;

    /// Hash of every stage input that is NOT covered by the upstream key
    /// chain (the stage's option struct, plus the master seed / arch for
    /// the first stage that consumes them). Default: no extra inputs.
    [[nodiscard]] virtual std::uint64_t options_fingerprint(const FlowContext& ctx) const;
    /// Restore this stage's products from the store into the context;
    /// false = not cached (the default for stages without cache support).
    [[nodiscard]] virtual bool try_restore(FlowContext& ctx, const ArtifactStore& store,
                                           std::uint64_t key, StageReport& report);
    /// Publish this stage's products under `key` after a successful run.
    virtual void publish(const FlowContext& ctx, ArtifactStore& store, std::uint64_t key) const;
};

}  // namespace afpga::cad
