/// \file
/// Multilevel analytical global placement: a coarsen→solve→interpolate
/// V-cycle over the coarsening hierarchy of cad/place_coarsen.hpp.
///
/// The flat analytical engine (cad/place_analytical.hpp) runs its full
/// solve+spread schedule at netlist size, so its wall time grows with the
/// fabric through the per-pass spreading cost (ROADMAP item 4). The
/// V-cycle instead runs the full schedule only at the coarsest level (a
/// few hundred super-nodes), then walks down the hierarchy interpolating
/// each solution to the next finer level and refining it with a short
/// anchored solve+spread schedule — the growing anchor weights carry
/// across levels, so by the finest level the placement is already spread
/// and a handful of passes suffice. The finest level hands off to the same
/// legalizer (and, in the driver, the same polish pipeline) as the flat
/// engine. Spreading at coarse levels is weighted by node weight (clusters
/// represented), so density stays honest at every level.
///
/// Determinism contract: identical to the flat engine — every loop runs in
/// a fixed serial order with fixed tie-breaks, the coarsening is itself
/// deterministic, and `seed` only feeds the initial pad shuffle; the
/// result is a pure function of (model, options, seed), bit-identical
/// across runs, machines and thread counts.
///
/// Threading: pure function of its arguments; race replicas may call it
/// concurrently over one shared PlaceModel.
#pragma once

#include <cstdint>

#include "cad/place_analytical.hpp"
#include "cad/place_model.hpp"

namespace afpga::cad {

/// Run the multilevel V-cycle: build the hierarchy, solve coarsest-first,
/// interpolate down with per-level refinement, legalize the finest level.
/// Uses PlaceOptions::{solver_passes, solver_max_iters, solver_tolerance,
/// anchor_weight, coarsen_ratio, min_coarse_nodes, max_levels}. Per-level
/// telemetry lands in AnalyticalStats::levels (coarsest first).
[[nodiscard]] AnalyticalResult place_multilevel_global(const PlaceModel& model,
                                                       const PlaceOptions& opts,
                                                       std::uint64_t seed);

}  // namespace afpga::cad
