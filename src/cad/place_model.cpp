#include "cad/place_model.hpp"

#include <algorithm>
#include <unordered_map>

#include "base/check.hpp"

namespace afpga::cad {

using base::check;

PlaceModel::PlaceModel(const PackedDesign& pd, const MappedDesign& md,
                       const core::ArchSpec& a)
    : arch(&a), geom(a) {
    arch->validate();
    const std::uint32_t W = arch->width;
    const std::uint32_t H = arch->height;
    check(pd.clusters.size() <= std::size_t{W} * H,
          "place: design needs " + std::to_string(pd.clusters.size()) + " PLBs but fabric has " +
              std::to_string(W * H));
    check(md.primary_inputs.size() + md.primary_outputs.size() <= geom.num_pads(),
          "place: not enough I/O pads");
    num_clusters = pd.clusters.size();

    // --- entity table ---------------------------------------------------------
    for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
        entities.push_back({PlaceEntity::Kind::Cluster, ci, SIZE_MAX});
    for (std::size_t i = 0; i < md.primary_inputs.size(); ++i) {
        io_entity_ids.push_back(entities.size());
        entities.push_back({PlaceEntity::Kind::Pi, i, io_entity_ids.size() - 1});
    }
    for (std::size_t i = 0; i < md.primary_outputs.size(); ++i) {
        io_entity_ids.push_back(entities.size());
        entities.push_back({PlaceEntity::Kind::Po, i, io_entity_ids.size() - 1});
    }

    // --- nets ------------------------------------------------------------------
    // NOTE: net order falls out of unordered_map iteration below. That order
    // is deterministic for a given libstdc++ + insertion history, and the
    // annealer's move sequence (hence every placement bit) depends on it —
    // this code was moved here from the annealer verbatim; keep it that way.
    const auto consumers = pd.build_consumers(md);
    std::unordered_map<NetId, std::size_t> pi_entity;  // signal -> entity
    for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
        pi_entity[md.primary_inputs[i].second] = pd.clusters.size() + i;
    std::unordered_map<NetId, std::vector<std::size_t>> po_entities;
    for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
        po_entities[md.primary_outputs[i].second].push_back(pd.clusters.size() +
                                                            md.primary_inputs.size() + i);
    std::unordered_map<NetId, std::size_t> producer_cluster;
    for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
        for (NetId s : pd.clusters[ci].produced(md)) producer_cluster[s] = ci;

    std::unordered_map<NetId, PlaceNet> net_by_signal;
    auto net_for = [&](NetId s) -> PlaceNet& { return net_by_signal[s]; };
    for (const auto& [s, clist] : consumers) {
        PlaceNet& n = net_for(s);
        for (std::size_t c : clist)
            if (std::find(n.entities.begin(), n.entities.end(), c) == n.entities.end())
                n.entities.push_back(c);
    }
    for (const auto& [s, ents] : po_entities)
        for (std::size_t e : ents) net_for(s).entities.push_back(e);
    for (auto& [s, n] : net_by_signal) {
        if (md.constant_signals.count(s)) {
            n.entities.clear();  // constants are materialised inside the IM
            continue;
        }
        const auto pit = pi_entity.find(s);
        if (pit != pi_entity.end()) {
            n.entities.push_back(pit->second);
        } else {
            const auto dit = producer_cluster.find(s);
            check(dit != producer_cluster.end(), "place: undriven signal in netlist");
            if (std::find(n.entities.begin(), n.entities.end(), dit->second) ==
                n.entities.end())
                n.entities.push_back(dit->second);
        }
    }
    for (auto& [s, n] : net_by_signal)
        if (n.entities.size() >= 2) nets.push_back(std::move(n));
    nets_of_entity.assign(entities.size(), {});
    for (std::size_t ni = 0; ni < nets.size(); ++ni)
        for (std::size_t eid : nets[ni].entities) nets_of_entity[eid].push_back(ni);

    // --- pad geometry (pure function of the fabric; tabled once) ---------------
    pad_pts.resize(geom.num_pads());
    for (std::uint32_t p = 0; p < pad_pts.size(); ++p) {
        const core::IobCoord io = geom.pad_iob(p);
        switch (io.side) {
            case core::Side::Bottom: pad_pts[p] = {io.offset + 1.0, 0.0}; break;
            case core::Side::Top: pad_pts[p] = {io.offset + 1.0, arch->height + 1.0}; break;
            case core::Side::Left: pad_pts[p] = {0.0, io.offset + 1.0}; break;
            case core::Side::Right: pad_pts[p] = {arch->width + 1.0, io.offset + 1.0}; break;
        }
    }
}

double PlaceModel::net_cost(const PlaceNet& n, const std::vector<core::PlbCoord>& cluster_loc,
                            const std::vector<std::uint32_t>& pad_of_io) const {
    double xmin = 1e18;
    double xmax = -1e18;
    double ymin = 1e18;
    double ymax = -1e18;
    for (std::size_t eid : n.entities) {
        const PlaceEntity& e = entities[eid];
        const PlacePt p = e.kind == PlaceEntity::Kind::Cluster
                              ? PlacePt{cluster_loc[e.index].x + 1.0, cluster_loc[e.index].y + 1.0}
                              : pad_pts[pad_of_io[e.io_slot]];
        xmin = std::min(xmin, p.x);
        xmax = std::max(xmax, p.x);
        ymin = std::min(ymin, p.y);
        ymax = std::max(ymax, p.y);
    }
    return (xmax - xmin) + (ymax - ymin);
}

double PlaceModel::total_cost(const std::vector<core::PlbCoord>& cluster_loc,
                              const std::vector<std::uint32_t>& pad_of_io) const {
    double c = 0;
    for (const PlaceNet& n : nets) c += net_cost(n, cluster_loc, pad_of_io);
    return c;
}

}  // namespace afpga::cad
