/// \file
/// Concurrent batch execution of independent CAD flows.
///
/// BatchFlowRunner is the closed-batch adapter over the persistent
/// FlowService (cad/flow_service.hpp): one architecture, one job list, one
/// blocking run(). It keeps the pre-service semantics exactly — no
/// cross-job artifact caching (every rep of a bench re-measures real work);
/// only the immutable RR graph is amortized, built once at construction
/// when share_rr is on. Use a FlowService directly for long-lived queues,
/// mixed-architecture grids and warm artifact reuse.
///
/// Ownership model (threading): the ArchSpec (copied into the runner) and
/// the prebuilt RRGraph are shared and strictly read-only across jobs;
/// everything mutable — FlowContext, FlowResult, every stage's scratch
/// state — is created inside run_flow per job, so jobs never contend on
/// anything but the task queue. Results are combined in job order, never
/// completion order, so a batch is as deterministic as its jobs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cad/flow_service.hpp"

namespace afpga::cad {

/// One design to compile. The netlist and hints are borrowed; they must stay
/// alive until run() returns.
struct BatchJob {
    std::string name;                    ///< label used in results/reports
    const netlist::Netlist* nl = nullptr;              ///< design (borrowed)
    const asynclib::MappingHints* hints = nullptr;     ///< its hints (borrowed)
    /// Per-job options (seed, stage knobs). `prebuilt_rr` is overwritten by
    /// the runner when RR-graph sharing is enabled.
    FlowOptions opts;
};

/// Outcome of one job, ok or not.
struct BatchJobResult {
    std::string name;     ///< the job's label
    bool ok = false;
    std::string error;    ///< what() of the job's failure when !ok
    FlowResult result;    ///< valid when ok
    double wall_ms = 0.0; ///< this job's flow time (not queue wait)
};

/// Runner configuration.
struct BatchOptions {
    unsigned threads = 0;  ///< pool size; 0 = base::ThreadPool::default_workers()
    /// Build the RRGraph once and share it read-only across all jobs instead
    /// of rebuilding it inside every job's route stage.
    bool share_rr = true;
};

/// Runs many independent run_flow jobs concurrently over one architecture.
///
/// A failing job (unroutable design, fabric too small, ...) is captured in
/// its BatchJobResult and never affects sibling jobs. Results are
/// self-contained: the shared RRGraph is owned by the results' shared_ptrs
/// (and carries its own ArchSpec copy), so they outlive the runner freely.
class BatchFlowRunner {
public:
    explicit BatchFlowRunner(const core::ArchSpec& arch, BatchOptions opts = {});

    /// Compile every job; blocks until all finish. Results are indexed like
    /// `jobs`.
    [[nodiscard]] std::vector<BatchJobResult> run(const std::vector<BatchJob>& jobs);

    [[nodiscard]] const core::ArchSpec& arch() const noexcept { return arch_; }
    [[nodiscard]] unsigned threads() const noexcept { return service_.threads(); }
    /// Wall time of the most recent run() (queue + compute, for throughput).
    [[nodiscard]] double last_batch_ms() const noexcept { return last_batch_ms_; }

    /// One JSON report over a finished batch: batch-level wall time and
    /// throughput plus, per job, status and the full FlowTelemetry.
    [[nodiscard]] std::string report_json(const std::vector<BatchJobResult>& results) const;

private:
    core::ArchSpec arch_;
    BatchOptions opts_;
    /// The execution engine: jobs are submitted as one grid and collected
    /// in submit order. Artifact sharing is off (see the file comment); the
    /// runner prewarms the service's RR graph for `arch_` at construction
    /// when share_rr is on, the way a flow server amortizes its
    /// architecture state.
    FlowService service_;
    double last_batch_ms_ = 0.0;
};

}  // namespace afpga::cad
