#include "cad/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "base/check.hpp"

namespace afpga::cad {

// ---------------------------------------------------------------------------
// BlobWriter / BlobReader
// ---------------------------------------------------------------------------

void BlobWriter::u8(std::uint8_t v) { bytes_.push_back(v); }

void BlobWriter::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BlobWriter::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BlobWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void BlobWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BlobWriter::boolean(bool v) { u8(v ? 1 : 0); }

void BlobWriter::str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

const std::uint8_t* BlobReader::need(std::size_t n) {
    base::check(remaining() >= n, "artifact blob truncated");
    const std::uint8_t* p = p_;
    p_ += n;
    return p;
}

std::uint8_t BlobReader::u8() { return *need(1); }

std::uint32_t BlobReader::u32() {
    const std::uint8_t* p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t BlobReader::u64() {
    const std::uint8_t* p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::int64_t BlobReader::i64() { return static_cast<std::int64_t>(u64()); }

double BlobReader::f64() { return std::bit_cast<double>(u64()); }

bool BlobReader::boolean() {
    const std::uint8_t v = u8();
    base::check(v <= 1, "artifact blob: bad boolean");
    return v != 0;
}

std::string BlobReader::str() {
    const std::uint64_t n = u64();
    base::check(n <= remaining(), "artifact blob: string overruns payload");
    const std::uint8_t* p = need(static_cast<std::size_t>(n));
    return std::string(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
}

void BlobReader::expect_end() const {
    base::check(remaining() == 0, "artifact blob: trailing bytes");
}

// ---------------------------------------------------------------------------
// Shared element helpers
// ---------------------------------------------------------------------------

namespace {

using netlist::NetId;
using netlist::TruthTable;

void put_netid(BlobWriter& w, NetId n) { w.u32(n.value()); }
NetId get_netid(BlobReader& r) { return NetId(r.u32()); }

/// A decoded count must be realizable within the remaining payload (every
/// element consumes at least `min_elem_bytes`), so corrupt counts fail
/// before any large allocation.
std::size_t get_count(BlobReader& r, std::size_t min_elem_bytes) {
    const std::uint64_t n = r.u64();
    base::check(n * min_elem_bytes <= r.remaining(), "artifact blob: count overruns payload");
    return static_cast<std::size_t>(n);
}

void put_u32_vec(BlobWriter& w, const std::vector<std::uint32_t>& v) {
    w.u64(v.size());
    for (const auto x : v) w.u32(x);
}

std::vector<std::uint32_t> get_u32_vec(BlobReader& r) {
    const std::size_t n = get_count(r, 4);
    std::vector<std::uint32_t> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(r.u32());
    return v;
}

void put_size_vec(BlobWriter& w, const std::vector<std::size_t>& v) {
    w.u64(v.size());
    for (const auto x : v) w.u64(x);
}

std::vector<std::size_t> get_size_vec(BlobReader& r) {
    const std::size_t n = get_count(r, 8);
    std::vector<std::size_t> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<std::size_t>(r.u64()));
    return v;
}

void put_f64_vec(BlobWriter& w, const std::vector<double>& v) {
    w.u64(v.size());
    for (const auto x : v) w.f64(x);
}

std::vector<double> get_f64_vec(BlobReader& r) {
    const std::size_t n = get_count(r, 8);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(r.f64());
    return v;
}

void put_coord(BlobWriter& w, core::PlbCoord c) {
    w.u32(c.x);
    w.u32(c.y);
}

core::PlbCoord get_coord(BlobReader& r) {
    core::PlbCoord c;
    c.x = r.u32();
    c.y = r.u32();
    return c;
}

void put_tt(BlobWriter& w, const TruthTable& tt) {
    w.u64(tt.arity());
    const std::size_t rows = tt.rows();
    for (std::size_t base = 0; base < rows; base += 64) {
        std::uint64_t word = 0;
        for (std::size_t i = 0; i < 64 && base + i < rows; ++i)
            if (tt.eval(static_cast<std::uint32_t>(base + i))) word |= std::uint64_t{1} << i;
        w.u64(word);
    }
}

TruthTable get_tt(BlobReader& r) {
    const std::uint64_t arity = r.u64();
    base::check(arity <= TruthTable::kMaxArity, "artifact blob: truth-table arity out of range");
    TruthTable tt(static_cast<std::size_t>(arity));
    const std::size_t rows = tt.rows();
    for (std::size_t base = 0; base < rows; base += 64) {
        const std::uint64_t word = r.u64();
        for (std::size_t i = 0; i < 64 && base + i < rows; ++i)
            tt.set_row(static_cast<std::uint32_t>(base + i), (word >> i) & 1);
    }
    return tt;
}

void put_le_func(BlobWriter& w, const LeFunc& f) {
    put_tt(w, f.tt);
    w.u64(f.inputs.size());
    for (const auto n : f.inputs) put_netid(w, n);
    put_netid(w, f.output);
    w.boolean(f.has_feedback);
}

LeFunc get_le_func(BlobReader& r) {
    LeFunc f;
    f.tt = get_tt(r);
    const std::size_t n = get_count(r, 4);
    f.inputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) f.inputs.push_back(get_netid(r));
    f.output = get_netid(r);
    f.has_feedback = r.boolean();
    return f;
}

void put_opt_le_func(BlobWriter& w, const std::optional<LeFunc>& f) {
    w.boolean(f.has_value());
    if (f) put_le_func(w, *f);
}

std::optional<LeFunc> get_opt_le_func(BlobReader& r) {
    if (!r.boolean()) return std::nullopt;
    return get_le_func(r);
}

/// Footprint estimate of one LE function (heap vectors + table bits).
std::size_t le_func_bytes(const LeFunc& f) noexcept {
    return sizeof(LeFunc) + f.inputs.size() * sizeof(NetId) + f.tt.rows() / 8 + 16;
}

}  // namespace

// ---------------------------------------------------------------------------
// ArchSpec
// ---------------------------------------------------------------------------

// New ArchSpec fields must be added to encode_arch/decode_arch (and the
// disk-format version bumped); this trips when the struct grows.
static_assert(sizeof(core::ArchSpec) == 112, "ArchSpec changed: update encode_arch/decode_arch");

void encode_arch(const core::ArchSpec& a, BlobWriter& w) {
    w.u32(a.width);
    w.u32(a.height);
    w.u32(a.channel_width);
    w.u32(a.wire_capacity);
    w.f64(a.fc_in);
    w.f64(a.fc_out);
    w.u32(a.pads_per_iob);
    w.u32(a.plb_inputs);
    w.u32(a.plb_outputs);
    w.u32(a.les_per_plb);
    w.u8(static_cast<std::uint8_t>(a.im_topology));
    w.u32(a.le_inputs);
    w.u32(a.pde_taps);
    w.i64(a.pde_quantum_ps);
    w.i64(a.lut_delay_ps);
    w.i64(a.lut2_delay_ps);
    w.i64(a.im_delay_ps);
    w.i64(a.wire_delay_ps);
    w.i64(a.pin_delay_ps);
}

core::ArchSpec decode_arch(BlobReader& r) {
    core::ArchSpec a;
    a.width = r.u32();
    a.height = r.u32();
    a.channel_width = r.u32();
    a.wire_capacity = r.u32();
    a.fc_in = r.f64();
    a.fc_out = r.f64();
    a.pads_per_iob = r.u32();
    a.plb_inputs = r.u32();
    a.plb_outputs = r.u32();
    a.les_per_plb = r.u32();
    const std::uint8_t topo = r.u8();
    base::check(topo <= static_cast<std::uint8_t>(core::ImTopology::NoFeedback),
                "artifact blob: bad IM topology");
    a.im_topology = static_cast<core::ImTopology>(topo);
    a.le_inputs = r.u32();
    a.pde_taps = r.u32();
    a.pde_quantum_ps = r.i64();
    a.lut_delay_ps = r.i64();
    a.lut2_delay_ps = r.i64();
    a.im_delay_ps = r.i64();
    a.wire_delay_ps = r.i64();
    a.pin_delay_ps = r.i64();
    a.validate();
    return a;
}

// ---------------------------------------------------------------------------
// MappedDesign
// ---------------------------------------------------------------------------

std::size_t ArtifactCodec<MappedDesign>::approx_bytes(const MappedDesign& v) noexcept {
    std::size_t total = sizeof(MappedDesign);
    for (const auto& le : v.les) {
        total += sizeof(LeInst);
        for (const auto* f : {&le.a, &le.b, &le.full7, &le.lut2})
            if (*f) total += le_func_bytes(**f);
    }
    total += v.pdes.size() * sizeof(PdeInst);
    total += (v.constant_signals.size() + v.canonical.size()) * 48;  // node + bucket overhead
    for (const auto& [name, id] : v.primary_inputs) total += sizeof(id) + name.size() + 40;
    for (const auto& [name, id] : v.primary_outputs) total += sizeof(id) + name.size() + 40;
    return total;
}

void ArtifactCodec<MappedDesign>::encode(const MappedDesign& v, BlobWriter& w) {
    w.u64(v.les.size());
    for (const auto& le : v.les) {
        put_opt_le_func(w, le.a);
        put_opt_le_func(w, le.b);
        put_opt_le_func(w, le.full7);
        put_opt_le_func(w, le.lut2);
    }
    w.u64(v.pdes.size());
    for (const auto& pde : v.pdes) {
        put_netid(w, pde.input);
        put_netid(w, pde.output);
        w.i64(pde.required_delay_ps);
    }
    std::vector<std::pair<std::uint32_t, bool>> consts;
    consts.reserve(v.constant_signals.size());
    for (const auto& [id, val] : v.constant_signals) consts.emplace_back(id.value(), val);
    std::sort(consts.begin(), consts.end());
    w.u64(consts.size());
    for (const auto& [id, val] : consts) {
        w.u32(id);
        w.boolean(val);
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> canon;
    canon.reserve(v.canonical.size());
    for (const auto& [from, to] : v.canonical) canon.emplace_back(from.value(), to.value());
    std::sort(canon.begin(), canon.end());
    w.u64(canon.size());
    for (const auto& [from, to] : canon) {
        w.u32(from);
        w.u32(to);
    }
    // Primary I/O lists are already deterministically ordered (they follow
    // the source netlist's declaration order), so vector order is stable.
    w.u64(v.primary_inputs.size());
    for (const auto& [name, id] : v.primary_inputs) {
        w.str(name);
        put_netid(w, id);
    }
    w.u64(v.primary_outputs.size());
    for (const auto& [name, id] : v.primary_outputs) {
        w.str(name);
        put_netid(w, id);
    }
}

MappedDesign ArtifactCodec<MappedDesign>::decode(BlobReader& r) {
    MappedDesign v;
    const std::size_t num_les = get_count(r, 4);
    v.les.reserve(num_les);
    for (std::size_t i = 0; i < num_les; ++i) {
        LeInst le;
        le.a = get_opt_le_func(r);
        le.b = get_opt_le_func(r);
        le.full7 = get_opt_le_func(r);
        le.lut2 = get_opt_le_func(r);
        v.les.push_back(std::move(le));
    }
    const std::size_t num_pdes = get_count(r, 16);
    v.pdes.reserve(num_pdes);
    for (std::size_t i = 0; i < num_pdes; ++i) {
        PdeInst pde;
        pde.input = get_netid(r);
        pde.output = get_netid(r);
        pde.required_delay_ps = r.i64();
        v.pdes.push_back(pde);
    }
    const std::size_t num_consts = get_count(r, 5);
    for (std::size_t i = 0; i < num_consts; ++i) {
        const NetId id = get_netid(r);
        v.constant_signals[id] = r.boolean();
    }
    const std::size_t num_canon = get_count(r, 8);
    for (std::size_t i = 0; i < num_canon; ++i) {
        const NetId from = get_netid(r);
        v.canonical[from] = get_netid(r);
    }
    const std::size_t num_pis = get_count(r, 12);
    v.primary_inputs.reserve(num_pis);
    for (std::size_t i = 0; i < num_pis; ++i) {
        std::string name = r.str();
        v.primary_inputs.emplace_back(std::move(name), get_netid(r));
    }
    const std::size_t num_pos = get_count(r, 12);
    v.primary_outputs.reserve(num_pos);
    for (std::size_t i = 0; i < num_pos; ++i) {
        std::string name = r.str();
        v.primary_outputs.emplace_back(std::move(name), get_netid(r));
    }
    return v;
}

// ---------------------------------------------------------------------------
// PackedDesign
// ---------------------------------------------------------------------------

std::size_t ArtifactCodec<PackedDesign>::approx_bytes(const PackedDesign& v) noexcept {
    std::size_t total = sizeof(PackedDesign);
    for (const auto& c : v.clusters) total += sizeof(Cluster) + c.le_indices.size() * 8;
    total += (v.cluster_of_le.size() + v.cluster_of_pde.size()) * 8;
    return total;
}

void ArtifactCodec<PackedDesign>::encode(const PackedDesign& v, BlobWriter& w) {
    w.u64(v.clusters.size());
    for (const auto& c : v.clusters) {
        put_size_vec(w, c.le_indices);
        w.boolean(c.pde_index.has_value());
        if (c.pde_index) w.u64(*c.pde_index);
    }
    put_size_vec(w, v.cluster_of_le);
    put_size_vec(w, v.cluster_of_pde);
}

PackedDesign ArtifactCodec<PackedDesign>::decode(BlobReader& r) {
    PackedDesign v;
    const std::size_t num_clusters = get_count(r, 9);
    v.clusters.reserve(num_clusters);
    for (std::size_t i = 0; i < num_clusters; ++i) {
        Cluster c;
        c.le_indices = get_size_vec(r);
        if (r.boolean()) c.pde_index = static_cast<std::size_t>(r.u64());
        v.clusters.push_back(std::move(c));
    }
    v.cluster_of_le = get_size_vec(r);
    v.cluster_of_pde = get_size_vec(r);
    return v;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

namespace {

void put_pad_map(BlobWriter& w, const std::unordered_map<std::string, std::uint32_t>& m) {
    std::vector<std::pair<std::string, std::uint32_t>> items(m.begin(), m.end());
    std::sort(items.begin(), items.end());
    w.u64(items.size());
    for (const auto& [name, pad] : items) {
        w.str(name);
        w.u32(pad);
    }
}

std::unordered_map<std::string, std::uint32_t> get_pad_map(BlobReader& r) {
    std::unordered_map<std::string, std::uint32_t> m;
    const std::size_t n = get_count(r, 12);
    for (std::size_t i = 0; i < n; ++i) {
        std::string name = r.str();
        m[std::move(name)] = r.u32();
    }
    return m;
}

}  // namespace

std::size_t ArtifactCodec<Placement>::approx_bytes(const Placement& v) noexcept {
    std::size_t total = sizeof(Placement);
    total += v.cluster_loc.size() * sizeof(core::PlbCoord);
    for (const auto& [name, pad] : v.pi_pad) total += name.size() + 48;
    for (const auto& [name, pad] : v.po_pad) total += name.size() + 48;
    total += v.cost_trajectory.size() * 8;
    for (const auto& rep : v.replicas)
        total += sizeof(PlaceReplica) + rep.cost_trajectory.size() * 8;
    total += v.analytical.levels.size() * sizeof(LevelStats);
    return total;
}

namespace {

std::uint8_t get_engine(BlobReader& r) {
    const std::uint8_t e = r.u8();
    base::check(e <= 2, "placement blob: bad engine tag");
    return e;
}

}  // namespace

void ArtifactCodec<Placement>::encode(const Placement& v, BlobWriter& w) {
    w.u64(v.cluster_loc.size());
    for (const auto c : v.cluster_loc) put_coord(w, c);
    put_pad_map(w, v.pi_pad);
    put_pad_map(w, v.po_pad);
    w.f64(v.final_cost);
    w.u64(v.moves_tried);
    w.u64(v.moves_accepted);
    w.i64(v.anneal_rounds);
    put_f64_vec(w, v.cost_trajectory);
    w.u64(v.replicas.size());
    for (const auto& rep : v.replicas) {
        w.u64(rep.seed);
        w.f64(rep.final_cost);
        w.f64(rep.wall_ms);
        put_f64_vec(w, rep.cost_trajectory);
        w.u8(static_cast<std::uint8_t>(rep.engine));
    }
    w.u64(v.winner_replica);
    w.u8(static_cast<std::uint8_t>(v.engine));
    w.u64(v.analytical.solver_iterations);
    w.i64(v.analytical.solver_passes);
    w.i64(v.analytical.spread_passes);
    w.f64(v.analytical.pre_legal_cost);
    w.f64(v.analytical.legalized_cost);
    for (const std::uint64_t b : v.analytical.legalize.displacement_histogram) w.u64(b);
    w.u64(v.analytical.legalize.total_displacement);
    w.u64(v.analytical.legalize.max_displacement);
    w.f64(v.analytical.legalize.avg_displacement);
    w.u64(v.analytical.levels.size());
    for (const LevelStats& ls : v.analytical.levels) {
        w.u64(ls.nodes);
        w.u64(ls.nets);
        w.i64(ls.solver_passes);
        w.i64(ls.spread_passes);
        w.u64(ls.solver_iterations);
        w.f64(ls.wall_ms);
    }
}

Placement ArtifactCodec<Placement>::decode(BlobReader& r) {
    Placement v;
    const std::size_t num_locs = get_count(r, 8);
    v.cluster_loc.reserve(num_locs);
    for (std::size_t i = 0; i < num_locs; ++i) v.cluster_loc.push_back(get_coord(r));
    v.pi_pad = get_pad_map(r);
    v.po_pad = get_pad_map(r);
    v.final_cost = r.f64();
    v.moves_tried = r.u64();
    v.moves_accepted = r.u64();
    v.anneal_rounds = static_cast<int>(r.i64());
    v.cost_trajectory = get_f64_vec(r);
    const std::size_t num_reps = get_count(r, 32);
    v.replicas.reserve(num_reps);
    for (std::size_t i = 0; i < num_reps; ++i) {
        PlaceReplica rep;
        rep.seed = r.u64();
        rep.final_cost = r.f64();
        rep.wall_ms = r.f64();
        rep.cost_trajectory = get_f64_vec(r);
        rep.engine = static_cast<PlaceEngine>(get_engine(r));
        v.replicas.push_back(std::move(rep));
    }
    v.winner_replica = static_cast<std::size_t>(r.u64());
    v.engine = static_cast<PlaceEngine>(get_engine(r));
    v.analytical.solver_iterations = r.u64();
    v.analytical.solver_passes = static_cast<int>(r.i64());
    v.analytical.spread_passes = static_cast<int>(r.i64());
    v.analytical.pre_legal_cost = r.f64();
    v.analytical.legalized_cost = r.f64();
    for (std::uint64_t& b : v.analytical.legalize.displacement_histogram) b = r.u64();
    v.analytical.legalize.total_displacement = r.u64();
    v.analytical.legalize.max_displacement = r.u64();
    v.analytical.legalize.avg_displacement = r.f64();
    const std::size_t num_levels = get_count(r, 48);
    v.analytical.levels.reserve(num_levels);
    for (std::size_t i = 0; i < num_levels; ++i) {
        LevelStats ls;
        ls.nodes = r.u64();
        ls.nets = r.u64();
        ls.solver_passes = static_cast<int>(r.i64());
        ls.spread_passes = static_cast<int>(r.i64());
        ls.solver_iterations = r.u64();
        ls.wall_ms = r.f64();
        v.analytical.levels.push_back(ls);
    }
    return v;
}

// ---------------------------------------------------------------------------
// RouteArtifact
// ---------------------------------------------------------------------------

std::size_t ArtifactCodec<RouteArtifact>::approx_bytes(const RouteArtifact& v) noexcept {
    std::size_t total = sizeof(RouteArtifact);
    for (const auto& t : v.routing.trees)
        total += sizeof(RouteTree) + t.edges.size() * 4 +
                 t.sinks.size() * sizeof(RouteTree::SinkResult);
    for (const auto& s : v.routing.overuse_report) total += s.size() + 32;
    total += v.routing.overuse_trajectory.size() * 8;
    total += v.routing.bin_wall_ms.size() * 8;
    for (const auto& req : v.reqs)
        total += sizeof(RouteRequest) + req.allowed_src_pins.size() * 4 +
                 req.sinks.size() * sizeof(RouteRequest::Sink);
    for (const auto& sc : v.sink_cluster) total += sizeof(sc) + sc.size() * 8;
    total += v.req_signal.size() * sizeof(NetId);
    return total;
}

void ArtifactCodec<RouteArtifact>::encode(const RouteArtifact& v, BlobWriter& w) {
    const RoutingResult& rr = v.routing;
    w.u64(rr.trees.size());
    for (const auto& t : rr.trees) {
        w.u32(t.root_opin);
        put_u32_vec(w, t.edges);
        w.u64(t.sinks.size());
        for (const auto& s : t.sinks) {
            w.u32(s.ipin);
            w.i64(s.delay_ps);
        }
    }
    w.i64(rr.iterations);
    w.boolean(rr.success);
    w.u64(rr.overused_nodes);
    w.u64(rr.overuse_report.size());
    for (const auto& s : rr.overuse_report) w.str(s);
    put_size_vec(w, rr.overuse_trajectory);
    w.u64(rr.nets_rerouted);
    w.u64(rr.wirelength);
    w.u64(rr.num_bins);
    w.u64(rr.boundary_nets);
    put_f64_vec(w, rr.bin_wall_ms);
    w.f64(rr.boundary_wall_ms);
    w.u64(rr.kernel.heap_pushes);
    w.u64(rr.kernel.heap_pops);
    w.u64(rr.kernel.nodes_expanded);
    w.u64(rr.kernel.edges_scanned);
    w.u64(rr.kernel.wavefront_peak);
    w.u64(rr.kernel.allocations);
    w.u64(rr.kernel.steady_allocations);
    w.u64(rr.kernel.nets_routed);
    w.f64(rr.kernel.search_ms);

    w.u64(v.reqs.size());
    for (const auto& req : v.reqs) {
        put_netid(w, req.signal);
        w.boolean(req.src_is_pad);
        w.u32(req.src_pad);
        put_coord(w, req.src_plb);
        put_u32_vec(w, req.allowed_src_pins);
        w.u64(req.sinks.size());
        for (const auto& s : req.sinks) {
            w.boolean(s.is_pad);
            w.u32(s.pad);
            put_coord(w, s.plb);
        }
    }
    w.u64(v.sink_cluster.size());
    for (const auto& sc : v.sink_cluster) put_size_vec(w, sc);
    w.u64(v.req_signal.size());
    for (const auto n : v.req_signal) put_netid(w, n);
}

RouteArtifact ArtifactCodec<RouteArtifact>::decode(BlobReader& r) {
    RouteArtifact v;
    RoutingResult& rr = v.routing;
    const std::size_t num_trees = get_count(r, 20);
    rr.trees.reserve(num_trees);
    for (std::size_t i = 0; i < num_trees; ++i) {
        RouteTree t;
        t.root_opin = r.u32();
        t.edges = get_u32_vec(r);
        const std::size_t num_sinks = get_count(r, 12);
        t.sinks.reserve(num_sinks);
        for (std::size_t j = 0; j < num_sinks; ++j) {
            RouteTree::SinkResult s;
            s.ipin = r.u32();
            s.delay_ps = r.i64();
            t.sinks.push_back(s);
        }
        rr.trees.push_back(std::move(t));
    }
    rr.iterations = static_cast<int>(r.i64());
    rr.success = r.boolean();
    rr.overused_nodes = static_cast<std::size_t>(r.u64());
    const std::size_t num_reports = get_count(r, 8);
    rr.overuse_report.reserve(num_reports);
    for (std::size_t i = 0; i < num_reports; ++i) rr.overuse_report.push_back(r.str());
    rr.overuse_trajectory = get_size_vec(r);
    rr.nets_rerouted = static_cast<std::size_t>(r.u64());
    rr.wirelength = static_cast<std::size_t>(r.u64());
    rr.num_bins = static_cast<std::size_t>(r.u64());
    rr.boundary_nets = static_cast<std::size_t>(r.u64());
    rr.bin_wall_ms = get_f64_vec(r);
    rr.boundary_wall_ms = r.f64();
    rr.kernel.heap_pushes = r.u64();
    rr.kernel.heap_pops = r.u64();
    rr.kernel.nodes_expanded = r.u64();
    rr.kernel.edges_scanned = r.u64();
    rr.kernel.wavefront_peak = r.u64();
    rr.kernel.allocations = r.u64();
    rr.kernel.steady_allocations = r.u64();
    rr.kernel.nets_routed = r.u64();
    rr.kernel.search_ms = r.f64();

    const std::size_t num_reqs = get_count(r, 30);
    v.reqs.reserve(num_reqs);
    for (std::size_t i = 0; i < num_reqs; ++i) {
        RouteRequest req;
        req.signal = get_netid(r);
        req.src_is_pad = r.boolean();
        req.src_pad = r.u32();
        req.src_plb = get_coord(r);
        req.allowed_src_pins = get_u32_vec(r);
        const std::size_t num_sinks = get_count(r, 13);
        req.sinks.reserve(num_sinks);
        for (std::size_t j = 0; j < num_sinks; ++j) {
            RouteRequest::Sink s;
            s.is_pad = r.boolean();
            s.pad = r.u32();
            s.plb = get_coord(r);
            req.sinks.push_back(s);
        }
        v.reqs.push_back(std::move(req));
    }
    const std::size_t num_sc = get_count(r, 8);
    v.sink_cluster.reserve(num_sc);
    for (std::size_t i = 0; i < num_sc; ++i) v.sink_cluster.push_back(get_size_vec(r));
    const std::size_t num_sig = get_count(r, 4);
    v.req_signal.reserve(num_sig);
    for (std::size_t i = 0; i < num_sig; ++i) v.req_signal.push_back(get_netid(r));
    return v;
}

// ---------------------------------------------------------------------------
// BitstreamArtifact
// ---------------------------------------------------------------------------

std::size_t ArtifactCodec<BitstreamArtifact>::approx_bytes(const BitstreamArtifact& v) noexcept {
    std::size_t total = sizeof(BitstreamArtifact);
    total += v.bits.size_bits() / 8;
    for (const auto& [pad, name] : v.pad_names) total += name.size() + 48;
    return total;
}

void ArtifactCodec<BitstreamArtifact>::encode(const BitstreamArtifact& v, BlobWriter& w) {
    encode_arch(v.bits.arch(), w);
    const base::BitVector bits = v.bits.serialize();
    w.u64(bits.size());
    for (const auto word : bits.words()) w.u64(word);
    std::vector<std::pair<std::uint32_t, std::string>> names(v.pad_names.begin(),
                                                             v.pad_names.end());
    std::sort(names.begin(), names.end());
    w.u64(names.size());
    for (const auto& [pad, name] : names) {
        w.u32(pad);
        w.str(name);
    }
}

BitstreamArtifact ArtifactCodec<BitstreamArtifact>::decode(BlobReader& r) {
    const core::ArchSpec arch = decode_arch(r);
    const std::uint64_t nbits = r.u64();
    const std::size_t num_words = static_cast<std::size_t>((nbits + 63) / 64);
    base::check(num_words * 8 <= r.remaining(), "artifact blob: bitstream overruns payload");
    base::BitVector bv;
    bv.resize(static_cast<std::size_t>(nbits));
    for (std::size_t i = 0; i < num_words; ++i) {
        const std::uint64_t word = r.u64();
        const std::size_t n = std::min<std::size_t>(64, static_cast<std::size_t>(nbits) - i * 64);
        bv.set_bits(i * 64, word, n);
    }
    // Re-checks the fabric fingerprint and CRC embedded in the bitstream.
    core::Bitstream bits = core::Bitstream::deserialize(arch, bv);
    BitstreamArtifact v{std::move(bits), {}};
    const std::size_t n = get_count(r, 12);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t pad = r.u32();
        v.pad_names[pad] = r.str();
    }
    return v;
}

}  // namespace afpga::cad
