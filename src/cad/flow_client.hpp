/// \file
/// FlowClient: the blocking-socket client side of the cad/wire protocol,
/// plus a BatchFlowRunner-shaped adapter that makes the examples/ and eval/
/// grids remote-capable.
///
/// A FlowClient is one connection = one FlowService fairness lane. It is
/// intentionally synchronous (one request, one reply) — concurrency comes
/// from running one client per thread, which is exactly what the
/// bench/cad_scaling flow_server tier and the soak tests do.
///
/// Error model: request-level failures reported by the server (unknown job,
/// draining, malformed request) and transport failures (connection reset,
/// corrupt frame, checksum mismatch) all surface as thrown base::Error.
/// Busy backpressure is NOT an error: try_submit returns nullopt and
/// submit() retries with the server's suggested backoff.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cad/flow_service.hpp"
#include "cad/wire.hpp"

namespace afpga::cad {

/// One remote compile request. The netlist and hints are borrowed for the
/// duration of the submit call only (they are serialized onto the wire).
struct RemoteJobSpec {
    std::string name;                               ///< job label
    int priority = 0;                               ///< FlowJob::priority
    const netlist::Netlist* nl = nullptr;           ///< design (borrowed)
    const asynclib::MappingHints* hints = nullptr;  ///< optional hints (borrowed)
    core::ArchSpec arch;                            ///< target architecture
    FlowOptions opts;                               ///< flow knobs (semantic fields)
};

/// Outcome of one remote job, reassembled from the result stream.
struct RemoteFlowResult {
    std::string name;                              ///< the job's label
    FlowJobStatus status = FlowJobStatus::Queued;  ///< terminal status
    std::string error;            ///< failure text when Failed
    double wall_ms = 0.0;         ///< server-side flow execution time
    double queue_ms = 0.0;        ///< server-side queue wait
    std::uint64_t start_seq = 0;  ///< scheduler dispatch order
    std::string telemetry_json;   ///< FlowTelemetry::to_json() when Ok
    /// ArtifactCodec<BitstreamArtifact> blob when Ok — byte-identical to an
    /// in-process encoding of the same flow's result (the CI gate).
    std::vector<std::uint8_t> result_blob;

    [[nodiscard]] bool ok() const noexcept { return status == FlowJobStatus::Ok; }
    /// Decode the result blob (throws base::Error if !ok or corrupt).
    [[nodiscard]] BitstreamArtifact decode_bitstream() const;
};

/// One connection to a FlowServer; see the file comment for the contract.
class FlowClient {
public:
    /// Connect over a Unix-domain socket and run the Hello handshake.
    [[nodiscard]] static FlowClient connect_unix(const std::string& path,
                                                const std::string& client_name = "client");
    /// Connect over TCP and run the Hello handshake.
    [[nodiscard]] static FlowClient connect_tcp(const std::string& host, std::uint16_t port,
                                                const std::string& client_name = "client");

    ~FlowClient();
    FlowClient(FlowClient&& o) noexcept;             ///< move transfers the socket
    FlowClient& operator=(FlowClient&& o) noexcept;  ///< move transfers the socket
    FlowClient(const FlowClient&) = delete;             ///< non-copyable
    FlowClient& operator=(const FlowClient&) = delete;  ///< non-copyable

    /// Fairness lane the server assigned at Hello.
    [[nodiscard]] std::uint32_t lane() const noexcept { return hello_.lane; }
    /// Server queue bound (Busy trips above it).
    [[nodiscard]] std::uint32_t max_pending() const noexcept { return hello_.max_pending; }
    /// Server worker-pool size.
    [[nodiscard]] std::uint32_t server_threads() const noexcept { return hello_.threads; }

    /// One submit attempt: the job id, or nullopt if the server said Busy
    /// (its backoff hint then seeds submit()'s retry sleep).
    [[nodiscard]] std::optional<std::uint64_t> try_submit(const RemoteJobSpec& job);
    /// Submit, retrying Busy responses with the server's backoff hint.
    [[nodiscard]] std::uint64_t submit(const RemoteJobSpec& job);
    /// Non-blocking server-side status snapshot.
    [[nodiscard]] wire::StatusReplyMsg status(std::uint64_t job_id);
    /// Cancel a queued job; true iff it was still queued.
    bool cancel(std::uint64_t job_id);
    /// Claim and stream the job's result (blocks until the job finishes).
    /// Verifies chunk continuity and the stream checksum.
    [[nodiscard]] RemoteFlowResult wait(std::uint64_t job_id, std::string name = "");
    /// FlowService::report_json() from the server.
    [[nodiscard]] std::string report_json();
    /// Ask the server to drain; returns its total accepted-job count.
    std::uint64_t drain_server();

    /// Close the socket early (also done by the destructor).
    void close();

private:
    FlowClient(int fd, const std::string& client_name);

    void write_all(const std::vector<std::uint8_t>& bytes);
    [[nodiscard]] wire::Frame read_frame();

    int fd_ = -1;
    wire::FrameDecoder dec_;
    wire::HelloOkMsg hello_;
    std::uint32_t last_busy_retry_ms_ = 50;  ///< latest server backoff hint
};

/// BatchFlowRunner-shaped adapter over one FlowClient: submit a whole grid
/// (riding out Busy backpressure), then collect every result in job order.
class RemoteBatchRunner {
public:
    /// Borrow `client`; it must outlive the runner.
    explicit RemoteBatchRunner(FlowClient& client) : client_(client) {}

    /// Compile every job remotely; results are indexed like `jobs`.
    [[nodiscard]] std::vector<RemoteFlowResult> run(const std::vector<RemoteJobSpec>& jobs);

private:
    FlowClient& client_;
};

}  // namespace afpga::cad
