/// \file
/// Deterministic in-flow parallel routing: a partitioned PathFinder that
/// routes independent spatial bins of the fabric concurrently while keeping
/// the routed result bit-identical for every worker count.
///
/// How it works, and why it is deterministic:
///
///  1. The PLB grid is recursively bisected into a partition tree. Every cut
///     reserves one full separator column (or row) of PLBs for the parent,
///     so the two children's regions — read as channel-space rectangles, see
///     detail::RouteBBox — touch disjoint RR-node sets. The tree is a pure
///     function of the fabric dimensions and RouterOptions::min_bin_dim,
///     never of the worker count.
///  2. Each net gets a search region: the bounding box of its terminals
///     expanded by RouterOptions::bin_margin (growing deterministically when
///     a sink proves unreachable inside it). A net whose region fits a leaf
///     is binned there; a net whose region crosses a cut is a *boundary
///     net* and stays at an internal tree node.
///  3. Per PathFinder iteration the dirty-net set is computed serially in
///     fixed request order (same rule as the serial router), then each leaf
///     bin's dirty nets are routed by one pool task in fixed rotated order,
///     wavefronts confined to each net's region. Bins never share RR nodes,
///     so their occupancy reads/writes cannot interact: any interleaving of
///     bin tasks produces the same occupancy state.
///  4. Boundary nets are routed bottom-up through the partition tree, one
///     depth level per barrier: same-depth internal nodes live in disjoint
///     subtrees and run concurrently, while a parent (whose nets may use its
///     separator channels and anything inside either child) runs strictly
///     after its children's level. Only the root's nets are inherently
///     serial.
///  5. Congestion accounting (pres_fac growth, acc/history cost updates,
///     overuse counting) runs serially at the end of the iteration, scanning
///     nodes in fixed index order.
///
/// The pool therefore only ever decides *when* a bin is routed, never *what*
/// any net sees — the base::ThreadPool determinism contract. The result is
/// NOT bit-identical to cad::route (net order and search confinement
/// differ); it is bit-identical to itself across AFPGA_THREADS, which is
/// what the cross-thread determinism suite pins.
#pragma once

#include "base/threadpool.hpp"
#include "cad/route.hpp"

namespace afpga::cad {

/// Route all requests with the partitioned parallel PathFinder on `pool`.
/// Fills the partition telemetry fields of RoutingResult (num_bins,
/// boundary_nets, bin_wall_ms) in addition to the common ones. Throws
/// base::Error only on malformed requests; congestion failure is reported
/// via RoutingResult::success.
[[nodiscard]] RoutingResult route_parallel(const core::RRGraph& rr,
                                           const std::vector<RouteRequest>& reqs,
                                           const RouterOptions& opts, base::ThreadPool& pool);

}  // namespace afpga::cad
