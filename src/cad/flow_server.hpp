/// \file
/// FlowServer: the compile-as-a-service socket front-end over FlowService.
///
/// The server owns a FlowService and speaks the cad/wire protocol to any
/// number of clients over TCP and/or Unix-domain sockets. One IO thread
/// multiplexes every connection with poll(); flow execution stays on the
/// service's worker pool, and a self-pipe woken from the service's
/// on_job_finished callback bridges completions back into the IO loop.
///
/// Service guarantees:
///  - each connection is assigned a FlowService fairness lane at Hello, so
///    one client flooding the queue cannot starve the others;
///  - bounded queue: past `max_pending` queued jobs, submits get a Busy
///    frame with a retry hint instead of being buffered unboundedly;
///  - bounded memory per connection: result streaming pauses while a slow
///    reader's outbound backlog exceeds `max_conn_outbound_bytes` and
///    resumes as the socket drains — the server never buffers more than
///    cap + one frame per connection;
///  - client disconnect cancels that client's queued jobs; its running jobs
///    finish (their decoded netlists are server-owned) and are retired;
///  - graceful drain (state machine in docs/ARCHITECTURE.md): Serving →
///    Draining (new submits refused with ErrCode::Draining, queued and
///    running jobs finish, waits keep streaming) → Drained (every accepted
///    job terminal and every claimed result fully flushed) → Stopped.
///
/// Determinism: the wire layer transports jobs and results byte-exactly, so
/// a remote compile's result blob is bit-identical to the in-process
/// ArtifactCodec<BitstreamArtifact> encoding of the same flow — the bench
/// and CI gate on this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cad/flow_service.hpp"
#include "cad/wire.hpp"

namespace afpga::cad {

/// FlowServer configuration.
struct FlowServerOptions {
    /// Options for the owned FlowService (worker count, artifact cache, ...).
    /// `on_job_finished` is overwritten by the server — it needs the hook.
    FlowServiceOptions service;
    /// Unix-domain socket path (empty = no Unix listener). An existing
    /// file at the path is unlinked first.
    std::string unix_path;
    /// Also listen on TCP.
    bool tcp = false;
    /// TCP bind address.
    std::string tcp_host = "127.0.0.1";
    /// TCP port; 0 = ephemeral (read the outcome from tcp_port()).
    std::uint16_t tcp_port = 0;
    /// Queued-job bound: submits past this depth get a Busy frame.
    std::uint32_t max_pending = 64;
    /// Backoff hint carried in Busy frames.
    std::uint32_t retry_after_ms = 50;
    /// Per-connection outbound backlog cap: result streaming pauses above
    /// it and resumes as the socket drains.
    std::size_t max_conn_outbound_bytes = 1u << 20;
};

/// Monotonic counters, readable from any thread via FlowServer::stats().
struct FlowServerStats {
    std::uint64_t connections_accepted = 0;  ///< sockets accepted
    std::uint64_t connections_dropped = 0;   ///< closed (EOF, error, poison)
    std::uint64_t submits_accepted = 0;      ///< SubmitOk frames sent
    std::uint64_t submits_rejected_busy = 0;      ///< Busy frames sent
    std::uint64_t submits_rejected_draining = 0;  ///< Draining errors sent
    std::uint64_t results_streamed = 0;      ///< complete result streams
    std::uint64_t cancels = 0;               ///< cancel requests honoured
    std::uint64_t protocol_errors = 0;       ///< malformed frames / bad verbs
    std::uint64_t jobs_cancelled_on_disconnect = 0;  ///< queue drops at EOF
    std::uint64_t max_queue_depth_observed = 0;      ///< peak pending depth
    std::uint64_t max_outbound_bytes_observed = 0;   ///< peak per-conn backlog
};

/// The socket front-end; see the file comment for the contract.
class FlowServer {
public:
    /// Creates the service and binds the listeners; start() begins serving.
    explicit FlowServer(FlowServerOptions opts);
    /// stop()s if still running.
    ~FlowServer();

    FlowServer(const FlowServer&) = delete;             ///< non-copyable
    FlowServer& operator=(const FlowServer&) = delete;  ///< non-copyable

    /// Spin up the IO thread. Listeners are already bound (constructor), so
    /// a client may connect the moment this returns.
    void start();
    /// Close every connection and listener and join the IO thread. Jobs
    /// already inside the FlowService still drain when the server (and with
    /// it the service) is destroyed.
    void stop();

    /// Enter the Draining state (idempotent; also reachable via the wire
    /// Drain verb): new submits are refused, everything accepted finishes.
    void drain();
    /// Block until Drained: every accepted job terminal and every claimed
    /// result stream fully flushed. Call drain() first (or rely on a
    /// client's Drain verb).
    void wait_drained();
    /// Non-blocking drain probe (true once the Drained state is reached);
    /// the daemon polls this so a signal can still interrupt its wait.
    [[nodiscard]] bool is_drained();

    /// Bound TCP port (after construction; useful with tcp_port = 0).
    [[nodiscard]] std::uint16_t tcp_port() const noexcept { return tcp_port_; }
    /// Bound Unix-socket path (empty when no Unix listener).
    [[nodiscard]] const std::string& unix_path() const noexcept { return opts_.unix_path; }

    /// The owned FlowService (tests pause()/resume() it to shape queues).
    [[nodiscard]] FlowService& service() noexcept { return *svc_; }

    /// Snapshot of the monotonic counters.
    [[nodiscard]] FlowServerStats stats() const;

private:
    struct Conn;
    struct JobCtx;

    void io_loop();
    void handle_readable(Conn& c);
    void handle_frame(Conn& c, const wire::Frame& f);
    void handle_submit(Conn& c, const std::vector<std::uint8_t>& payload);
    void flush_conn(Conn& c);
    void send_frame(Conn& c, wire::MsgType t, const std::vector<std::uint8_t>& payload);
    void send_error(Conn& c, wire::ErrCode code, const std::string& msg);
    void poison(Conn& c, const std::string& why);
    void drop_conn(std::size_t idx);
    void on_finished_ids();
    void begin_stream(JobCtx& jc);
    void pump_stream(JobCtx& jc);
    void retire(FlowJobId id);
    void update_drained();

    FlowServerOptions opts_;
    std::unique_ptr<FlowService> svc_;

    int unix_listen_fd_ = -1;
    int tcp_listen_fd_ = -1;
    std::uint16_t tcp_port_ = 0;
    int wake_pipe_[2] = {-1, -1};  ///< [0] read end (polled), [1] written by callbacks

    std::thread io_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> draining_{false};

    /// Completion hand-off: workers push ids, the IO thread drains them.
    std::mutex finished_mu_;
    std::deque<FlowJobId> finished_;

    /// IO-thread-only state.
    std::vector<std::unique_ptr<Conn>> conns_;
    std::unordered_map<FlowJobId, std::unique_ptr<JobCtx>> jobs_;
    std::uint32_t next_lane_ = 1;

    mutable std::mutex stats_mu_;
    FlowServerStats stats_;

    std::mutex drained_mu_;
    std::condition_variable drained_cv_;
    bool drained_ = false;
};

}  // namespace afpga::cad
