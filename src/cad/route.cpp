#include "cad/route.hpp"

#include <algorithm>
#include <cstdio>

#include "cad/fingerprint.hpp"
#include "cad/route_search.hpp"

namespace afpga::cad {

using core::RRGraph;

RoutingResult route(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                    const RouterOptions& opts) {
    const std::size_t N = rr.num_nodes();
    RoutingResult result;
    result.trees.assign(reqs.size(), {});

    std::vector<double> hist(N, 0.0);
    std::vector<std::uint16_t> occ(N, 0);
    double pres_fac = opts.pres_fac_first;

    // Per-net bookkeeping of occupied nodes so rip-up is exact.
    std::vector<std::vector<std::uint32_t>> net_nodes(reqs.size());

    detail::SearchScratch scratch(N);

    // Test/bench hook, read once: a whole run routes with either the pooled
    // kernel or the pre-rework reference kernel, never a mix.
    const bool use_ref = detail::use_reference_kernel();
    const auto kernel =
        use_ref ? detail::route_one_net_reference : detail::route_one_net;

    std::vector<std::size_t> dirty;  // nets to (re)route this iteration
    std::size_t best_overused = SIZE_MAX;
    int stall = 0;
    // Scratch growth seen during warm-up (iteration 1): everything after it
    // counts against the zero-steady-state-allocation contract.
    std::uint64_t warmup_allocations = 0;

    for (int iter = 1; iter <= opts.max_iterations; ++iter) {
        // Select this iteration's work. The first iteration routes everything;
        // afterwards, with incremental PathFinder, only nets touching an
        // over-capacity node (every user of a congested node is implicated)
        // or with unrouted sinks are ripped up — unless congestion has
        // stalled, in which case one full rip-up round breaks the oscillation
        // that pinned legal nets can otherwise sustain forever.
        const bool full_rip_up = iter == 1 || !opts.incremental ||
                                 (opts.stall_full_reroute > 0 &&
                                  stall >= opts.stall_full_reroute);
        if (full_rip_up) stall = 0;
        dirty.clear();
        for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
            bool d = full_rip_up;
            if (!d)
                for (std::uint32_t n : net_nodes[ri])
                    if (occ[n] > rr.node_capacity(n)) {
                        d = true;
                        break;
                    }
            if (!d)
                for (const auto& s : result.trees[ri].sinks)
                    if (s.ipin == UINT32_MAX) {
                        d = true;
                        break;
                    }
            if (d) dirty.push_back(ri);
        }
        result.nets_rerouted += dirty.size();

        for (std::size_t ri : dirty) {
            for (std::uint32_t n : net_nodes[ri]) --occ[n];
            net_nodes[ri].clear();
        }

        for (std::size_t k = 0; k < dirty.size(); ++k) {
            // Rotate the net order each iteration: with a fixed order the
            // first-routed net never pays present-congestion cost and small
            // conflict sets oscillate forever.
            const std::size_t ri =
                dirty[(k + static_cast<std::size_t>(iter - 1)) % dirty.size()];
            detail::NetRouteState st =
                kernel(rr, reqs[ri], opts, pres_fac, hist, occ, scratch, nullptr);
            net_nodes[ri] = std::move(st.nodes);
            result.trees[ri] = std::move(st.tree);
        }
        if (iter == 1) {
            // End of warm-up: every pooled buffer has seen one full routing
            // pass. Later iterations can still wave a wider front than the
            // first (rising pres_fac makes searches detour), and the vector's
            // doubling leaves capacity just above the iteration-1 peak — so
            // give the heap 2x headroom now, while growth is still free, to
            // honor the zero-steady-state-allocation contract afterwards.
            scratch.heap.reserve(2 * scratch.heap.capacity());
            warmup_allocations = scratch.stats.allocations;
        }

        // Congestion accounting.
        std::size_t overused = 0;
        bool all_routed = true;
        for (std::size_t n = 0; n < N; ++n) {
            const auto cap = rr.node_capacity(static_cast<std::uint32_t>(n));
            if (occ[n] > cap) {
                ++overused;
                // History scaled by the node's base cost so that it competes
                // with real detour costs within a few iterations.
                hist[n] += opts.hist_fac * rr.node_base_cost(static_cast<std::uint32_t>(n)) *
                           static_cast<double>(occ[n] - cap);
            }
        }
        for (std::size_t ri = 0; ri < reqs.size(); ++ri)
            for (const auto& s : result.trees[ri].sinks)
                if (s.ipin == UINT32_MAX) all_routed = false;

        result.iterations = iter;
        result.overused_nodes = overused;
        result.overuse_trajectory.push_back(overused);
        if (overused < best_overused) {
            best_overused = overused;
            stall = 0;
        } else {
            ++stall;
        }
        if (opts.verbose) {
            std::fprintf(stderr, "[router] iter %d rerouted=%zu overused=%zu pres=%.3g\n", iter,
                         dirty.size(), overused, pres_fac);
            for (std::uint32_t n = 0; n < N; ++n) {
                if (occ[n] <= rr.node_capacity(n)) continue;
                const core::RRNode& nd = rr.node(n);
                std::string users;
                for (std::size_t ri = 0; ri < reqs.size(); ++ri)
                    if (std::find(net_nodes[ri].begin(), net_nodes[ri].end(), n) !=
                        net_nodes[ri].end())
                        users += " net" + std::to_string(ri);
                std::fprintf(stderr, "  %s(%u,%u)#%u occ=%u%s\n", to_string(nd.kind).c_str(),
                             nd.x, nd.y, nd.track, occ[n], users.c_str());
            }
        }
        if (overused == 0 && all_routed) {
            result.success = true;
            break;
        }
        pres_fac *= opts.pres_fac_mult;
    }

    result.kernel = scratch.stats;
    result.kernel.steady_allocations = scratch.stats.allocations - warmup_allocations;

    if (!result.success) {
        if (use_ref)
            detail::report_overuse_reference(rr, reqs, net_nodes, occ, result);
        else
            detail::report_overuse(rr, reqs, net_nodes, occ, result);
        return result;
    }

    if (use_ref)
        detail::finalize_routing_reference(rr, reqs, net_nodes, result);
    else
        detail::finalize_routing(rr, reqs, net_nodes, result);
    return result;
}

std::uint64_t RouterOptions::fingerprint() const noexcept {
    static_assert(sizeof(RouterOptions) == 64,
                  "RouterOptions changed: update fingerprint() and this assert");
    Fingerprint f;
    f.mix(max_iterations)
        .mix(pres_fac_first)
        .mix(pres_fac_mult)
        .mix(hist_fac)
        .mix(astar_fac)
        .mix(incremental)
        .mix(stall_full_reroute)
        .mix(verbose)
        .mix(threads)
        .mix(bin_margin)
        .mix(min_bin_dim);
    return f.digest();
}

}  // namespace afpga::cad
