#include "cad/route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <unordered_map>

#include "base/check.hpp"

namespace afpga::cad {

using base::check;
using core::RRGraph;
using core::RRKind;

namespace {

struct QItem {
    double cost;       // accumulated + heuristic
    double backward;   // accumulated only
    std::uint32_t node;
    friend bool operator<(const QItem& a, const QItem& b) { return a.cost > b.cost; }
};

/// Grid position of a node for the A* heuristic.
std::pair<double, double> node_pos(const RRGraph& rr, std::uint32_t n) {
    const core::RRNode& nd = rr.node(n);
    switch (nd.kind) {
        case RRKind::ChanX: return {nd.x + 0.5, static_cast<double>(nd.y)};
        case RRKind::ChanY: return {static_cast<double>(nd.x), nd.y + 0.5};
        default: return {nd.x + 0.5, nd.y + 0.5};
    }
}

}  // namespace

RoutingResult route(const RRGraph& rr, const std::vector<RouteRequest>& reqs,
                    const RouterOptions& opts) {
    const std::size_t N = rr.num_nodes();
    RoutingResult result;
    result.trees.assign(reqs.size(), {});

    std::vector<double> hist(N, 0.0);
    std::vector<std::uint16_t> occ(N, 0);
    double pres_fac = opts.pres_fac_first;

    // Per-net bookkeeping of occupied nodes so rip-up is exact.
    std::vector<std::vector<std::uint32_t>> net_nodes(reqs.size());

    auto pres_cost = [&](std::uint32_t n) {
        const int over = static_cast<int>(occ[n]) + 1 - static_cast<int>(rr.node_capacity(n));
        return over > 0 ? 1.0 + pres_fac * static_cast<double>(over) : 1.0;
    };
    auto base_cost = [&](std::uint32_t n) {
        return static_cast<double>(std::max<std::int64_t>(rr.node(n).delay_ps, 1));
    };

    const double wire_unit = static_cast<double>(std::max<std::int64_t>(
        rr.arch().wire_delay_ps, 1));

    std::vector<double> best(N, 0.0);
    std::vector<std::uint32_t> prev_edge(N, UINT32_MAX);
    std::vector<std::uint32_t> visit_mark(N, 0);
    std::uint32_t mark = 0;

    std::vector<std::size_t> dirty;  // nets to (re)route this iteration
    std::size_t best_overused = SIZE_MAX;
    int stall = 0;

    for (int iter = 1; iter <= opts.max_iterations; ++iter) {
        // Select this iteration's work. The first iteration routes everything;
        // afterwards, with incremental PathFinder, only nets touching an
        // over-capacity node (every user of a congested node is implicated)
        // or with unrouted sinks are ripped up — unless congestion has
        // stalled, in which case one full rip-up round breaks the oscillation
        // that pinned legal nets can otherwise sustain forever.
        const bool full_rip_up = iter == 1 || !opts.incremental ||
                                 (opts.stall_full_reroute > 0 &&
                                  stall >= opts.stall_full_reroute);
        if (full_rip_up) stall = 0;
        dirty.clear();
        for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
            bool d = full_rip_up;
            if (!d)
                for (std::uint32_t n : net_nodes[ri])
                    if (occ[n] > rr.node_capacity(n)) {
                        d = true;
                        break;
                    }
            if (!d)
                for (const auto& s : result.trees[ri].sinks)
                    if (s.ipin == UINT32_MAX) {
                        d = true;
                        break;
                    }
            if (d) dirty.push_back(ri);
        }
        result.nets_rerouted += dirty.size();

        for (std::size_t ri : dirty) {
            for (std::uint32_t n : net_nodes[ri]) --occ[n];
            net_nodes[ri].clear();
        }

        for (std::size_t k = 0; k < dirty.size(); ++k) {
            // Rotate the net order each iteration: with a fixed order the
            // first-routed net never pays present-congestion cost and small
            // conflict sets oscillate forever.
            const std::size_t ri =
                dirty[(k + static_cast<std::size_t>(iter - 1)) % dirty.size()];
            const RouteRequest& rq = reqs[ri];
            RouteTree tree;
            tree.sinks.assign(rq.sinks.size(), {});

            // Tree nodes grow as sinks are reached.
            std::vector<std::uint32_t> tree_nodes;
            std::vector<std::uint32_t> tree_edges;

            // Candidate sources.
            std::vector<std::uint32_t> sources;
            if (rq.src_is_pad) {
                sources.push_back(rr.pad_opin(rq.src_pad));
            } else if (!rq.allowed_src_pins.empty()) {
                for (std::uint32_t p : rq.allowed_src_pins)
                    sources.push_back(rr.plb_opin(rq.src_plb, p));
            } else {
                for (std::uint32_t p = 0; p < rr.arch().plb_outputs; ++p)
                    sources.push_back(rr.plb_opin(rq.src_plb, p));
            }

            // Sinks ordered as given (caller orders by distance if desired).
            for (std::size_t si = 0; si < rq.sinks.size(); ++si) {
                const RouteRequest::Sink& sk = rq.sinks[si];
                std::vector<std::uint32_t> targets;
                if (sk.is_pad) {
                    targets.push_back(rr.pad_ipin(sk.pad));
                } else {
                    for (std::uint32_t p = 0; p < rr.arch().plb_inputs; ++p)
                        targets.push_back(rr.plb_ipin(sk.plb, p));
                }
                // Cheap membership: targets are few, use sorted vector.
                std::sort(targets.begin(), targets.end());
                auto target_hit = [&](std::uint32_t n) {
                    return std::binary_search(targets.begin(), targets.end(), n);
                };
                const std::pair<double, double> tpos =
                    sk.is_pad ? node_pos(rr, targets[0])
                              : std::pair<double, double>{sk.plb.x + 0.5, sk.plb.y + 0.5};
                auto heuristic = [&](std::uint32_t n) {
                    const auto [x, y] = node_pos(rr, n);
                    return opts.astar_fac * wire_unit *
                           (std::abs(x - tpos.first) + std::abs(y - tpos.second));
                };

                ++mark;
                std::priority_queue<QItem> pq;
                auto push = [&](std::uint32_t n, double backward, std::uint32_t via_edge) {
                    if (visit_mark[n] == mark && best[n] <= backward) return;
                    visit_mark[n] = mark;
                    best[n] = backward;
                    prev_edge[n] = via_edge;
                    pq.push({backward + heuristic(n), backward, n});
                };
                if (tree_nodes.empty()) {
                    for (std::uint32_t s : sources)
                        push(s, base_cost(s) * pres_cost(s), UINT32_MAX);
                } else {
                    for (std::uint32_t n : tree_nodes) push(n, 0.0, UINT32_MAX);
                }

                std::uint32_t found = UINT32_MAX;
                while (!pq.empty()) {
                    const QItem it = pq.top();
                    pq.pop();
                    if (visit_mark[it.node] == mark && it.backward > best[it.node]) continue;
                    if (target_hit(it.node)) {
                        found = it.node;
                        break;
                    }
                    const core::RRNode& nd = rr.node(it.node);
                    // Never expand through a sink pin of some other block.
                    if (nd.kind == RRKind::Ipin) continue;
                    // Flat CSR adjacency: one contiguous scan per expansion.
                    for (const core::RRGraph::OutEdge oe : rr.out(it.node)) {
                        const double c =
                            it.backward + base_cost(oe.to) * pres_cost(oe.to) + hist[oe.to];
                        push(oe.to, c, oe.edge);
                    }
                }
                if (found == UINT32_MAX) {
                    // Unroutable under current costs; give up this iteration.
                    tree.sinks[si].ipin = UINT32_MAX;
                    continue;
                }
                tree.sinks[si].ipin = found;
                // Walk back, adding new nodes/edges to the tree.
                std::uint32_t cur = found;
                while (prev_edge[cur] != UINT32_MAX) {
                    const std::uint32_t e = prev_edge[cur];
                    tree_edges.push_back(e);
                    const std::uint32_t from = rr.edge_source(e);
                    if (std::find(tree_nodes.begin(), tree_nodes.end(), cur) ==
                        tree_nodes.end())
                        tree_nodes.push_back(cur);
                    cur = from;
                }
                if (std::find(tree_nodes.begin(), tree_nodes.end(), cur) == tree_nodes.end())
                    tree_nodes.push_back(cur);  // the root (source opin or tree node)
                if (tree.root_opin == UINT32_MAX &&
                    rr.node(cur).kind == RRKind::Opin)
                    tree.root_opin = cur;
            }

            for (std::uint32_t n : tree_nodes) ++occ[n];
            net_nodes[ri] = std::move(tree_nodes);
            tree.edges = std::move(tree_edges);
            result.trees[ri] = std::move(tree);
        }

        // Congestion accounting.
        std::size_t overused = 0;
        bool all_routed = true;
        for (std::size_t n = 0; n < N; ++n) {
            const auto cap = rr.node_capacity(static_cast<std::uint32_t>(n));
            if (occ[n] > cap) {
                ++overused;
                // History scaled by the node's base cost so that it competes
                // with real detour costs within a few iterations.
                hist[n] += opts.hist_fac * base_cost(static_cast<std::uint32_t>(n)) *
                           static_cast<double>(occ[n] - cap);
            }
        }
        for (std::size_t ri = 0; ri < reqs.size(); ++ri)
            for (const auto& s : result.trees[ri].sinks)
                if (s.ipin == UINT32_MAX) all_routed = false;

        result.iterations = iter;
        result.overused_nodes = overused;
        result.overuse_trajectory.push_back(overused);
        if (overused < best_overused) {
            best_overused = overused;
            stall = 0;
        } else {
            ++stall;
        }
        if (opts.verbose) {
            std::fprintf(stderr, "[router] iter %d rerouted=%zu overused=%zu pres=%.3g\n", iter,
                         dirty.size(), overused, pres_fac);
            for (std::uint32_t n = 0; n < N; ++n) {
                if (occ[n] <= rr.node_capacity(n)) continue;
                const core::RRNode& nd = rr.node(n);
                std::string users;
                for (std::size_t ri = 0; ri < reqs.size(); ++ri)
                    if (std::find(net_nodes[ri].begin(), net_nodes[ri].end(), n) !=
                        net_nodes[ri].end())
                        users += " net" + std::to_string(ri);
                std::fprintf(stderr, "  %s(%u,%u)#%u occ=%u%s\n", to_string(nd.kind).c_str(),
                             nd.x, nd.y, nd.track, occ[n], users.c_str());
            }
        }
        if (overused == 0 && all_routed) {
            result.success = true;
            break;
        }
        pres_fac *= opts.pres_fac_mult;
    }

    if (!result.success) {
        for (std::uint32_t n = 0; n < N; ++n) {
            if (occ[n] <= rr.node_capacity(n)) continue;
            const core::RRNode& nd = rr.node(n);
            std::string users;
            for (std::size_t ri = 0; ri < reqs.size(); ++ri)
                if (std::find(net_nodes[ri].begin(), net_nodes[ri].end(), n) !=
                    net_nodes[ri].end())
                    users += " net" + std::to_string(ri);
            result.overuse_report.push_back(
                to_string(nd.kind) + "(" + std::to_string(nd.x) + "," + std::to_string(nd.y) +
                ")#" + std::to_string(nd.track) + " occ=" + std::to_string(occ[n]) + users);
        }
        std::size_t unrouted = 0;
        for (std::size_t ri = 0; ri < reqs.size(); ++ri)
            for (const auto& s : result.trees[ri].sinks)
                if (s.ipin == UINT32_MAX) ++unrouted;
        if (unrouted)
            result.overuse_report.push_back(std::to_string(unrouted) + " unrouted sinks");
        return result;
    }

    // --- wirelength: channel wires held across all nets ------------------------
    for (const auto& nodes : net_nodes)
        for (std::uint32_t n : nodes) {
            const RRKind k = rr.node(n).kind;
            if (k == RRKind::ChanX || k == RRKind::ChanY) ++result.wirelength;
        }

    // --- final delays: accumulate node delays from the root over the tree ----
    for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
        RouteTree& tree = result.trees[ri];
        if (tree.root_opin == UINT32_MAX && !tree.edges.empty())
            tree.root_opin = rr.edge_source(tree.edges.back());
        // adjacency of the tree
        std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> kids;
        for (std::uint32_t e : tree.edges) kids[rr.edge_source(e)].push_back(rr.edge_target(e));
        std::unordered_map<std::uint32_t, std::int64_t> arrive;
        std::vector<std::uint32_t> stack{tree.root_opin};
        if (tree.root_opin != UINT32_MAX)
            arrive[tree.root_opin] = rr.node(tree.root_opin).delay_ps;
        while (!stack.empty()) {
            const std::uint32_t n = stack.back();
            stack.pop_back();
            for (std::uint32_t k : kids[n]) {
                if (arrive.count(k)) continue;
                arrive[k] = arrive[n] + rr.node(k).delay_ps;
                stack.push_back(k);
            }
        }
        for (auto& s : tree.sinks)
            if (s.ipin != UINT32_MAX && arrive.count(s.ipin)) s.delay_ps = arrive[s.ipin];
    }
    return result;
}

}  // namespace afpga::cad
