/// \file
/// Packing: group LE instances (and at most one PDE) into PLB-sized
/// clusters under the PLB pin budget, maximising shared signals so the IM
/// (not the global routing network) carries as much connectivity as
/// possible.
///
/// Threading: pack runs single-threaded; its PackedDesign product is
/// immutable afterwards and shared read-only by concurrent stages/jobs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cad/mapped.hpp"
#include "core/archspec.hpp"

namespace afpga::cad {

/// One PLB worth of logic.
struct Cluster {
    std::vector<std::size_t> le_indices;   ///< into MappedDesign::les (<= les_per_plb)
    std::optional<std::size_t> pde_index;  ///< into MappedDesign::pdes

    /// Signals entering the cluster through PLB input pins.
    [[nodiscard]] std::vector<NetId> external_inputs(const MappedDesign& md) const;
    /// Signals produced here that someone outside consumes (incl. POs).
    [[nodiscard]] std::vector<NetId> external_outputs(
        const MappedDesign& md,
        const std::unordered_map<NetId, std::vector<std::size_t>>& consumers_of,
        const std::vector<std::size_t>& cluster_of_le,
        const std::vector<std::size_t>& cluster_of_pde, std::size_t self_index) const;
    /// All signals produced inside (whether exported or not).
    [[nodiscard]] std::vector<NetId> produced(const MappedDesign& md) const;
};

/// All clusters plus the reverse indices of their members.
struct PackedDesign {
    std::vector<Cluster> clusters;  ///< one per occupied PLB-to-be
    std::vector<std::size_t> cluster_of_le;   ///< le index -> cluster index
    std::vector<std::size_t> cluster_of_pde;  ///< pde index -> cluster index

    /// signal -> clusters that consume it (deduplicated).
    [[nodiscard]] std::unordered_map<NetId, std::vector<std::size_t>> build_consumers(
        const MappedDesign& md) const;
};

/// Packing knobs.
struct PackOptions {
    bool affinity_clustering = true;  ///< ablation: false = first-fit order

    /// Canonical content hash over EVERY field (artifact-key material); the
    /// implementation pins the struct size so new fields fail loudly.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Throws base::Error if a single LE exceeds the PLB pin budget (cannot
/// happen with the default architecture) or the design needs more PLBs than
/// exist in `arch` is NOT checked here (the placer owns that check).
[[nodiscard]] PackedDesign pack(const MappedDesign& md, const core::ArchSpec& arch,
                                const PackOptions& opts = {});

}  // namespace afpga::cad
