#include "cad/place_cost.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace afpga::cad {

using base::check;

namespace {

/// Exact O(1) bounding-interval update for one coordinate axis: entity moves
/// from `o` to `n`. Returns false when the interval cannot be updated without
/// rescanning the net (the unique boundary occupant retreated inward).
bool update_axis(double o, double n, double& mn, double& mx, std::uint16_t& nmn,
                 std::uint16_t& nmx) {
    if (o == n) return true;
    // min side: remove o, add n
    if (n < mn) {
        mn = n;  // strictly below everything else, whatever o contributed
        nmn = 1;
    } else if (n == mn) {
        if (o != mn) ++nmn;
    } else if (o == mn) {
        if (nmn == 1) return false;  // the min rises to an unknown value
        --nmn;
    }
    // max side, symmetric
    if (n > mx) {
        mx = n;
        nmx = 1;
    } else if (n == mx) {
        if (o != mx) ++nmx;
    } else if (o == mx) {
        if (nmx == 1) return false;
        --nmx;
    }
    return true;
}

}  // namespace

std::size_t PlaceCostEngine::add_entity(double x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
    return xs_.size() - 1;
}

void PlaceCostEngine::add_net(std::vector<std::size_t> entities) {
    for (std::size_t eid : entities) check(eid < xs_.size(), "PlaceCostEngine: bad entity id");
    nets_.push_back(std::move(entities));
}

void PlaceCostEngine::finalize() {
    // Flatten both incidence directions into CSR arrays.
    net_first_.assign(nets_.size() + 1, 0);
    for (std::size_t ni = 0; ni < nets_.size(); ++ni)
        net_first_[ni + 1] = net_first_[ni] + static_cast<std::uint32_t>(nets_[ni].size());
    net_ents_.resize(net_first_.back());
    noe_first_.assign(xs_.size() + 1, 0);
    for (const auto& net : nets_)
        for (std::size_t eid : net) ++noe_first_[eid + 1];
    for (std::size_t e = 0; e < xs_.size(); ++e) noe_first_[e + 1] += noe_first_[e];
    noe_nets_.resize(noe_first_.back());
    {
        std::vector<std::uint32_t> at(noe_first_.begin(), noe_first_.end() - 1);
        std::uint32_t idx = 0;
        for (std::size_t ni = 0; ni < nets_.size(); ++ni)
            for (std::size_t eid : nets_[ni]) {
                net_ents_[idx++] = static_cast<std::uint32_t>(eid);
                noe_nets_[at[eid]++] = static_cast<std::uint32_t>(ni);
            }
    }

    const std::size_t n_nets = nets_.size();
    nets_.clear();  // fully superseded by the CSR arrays
    nets_.shrink_to_fit();
    boxes_.resize(n_nets);
    for (std::size_t ni = 0; ni < n_nets; ++ni) boxes_[ni] = scan_net(ni, {});
    net_mark_.assign(n_nets, 0);
    net_slot_.assign(n_nets, 0);
    slot_box_.resize(n_nets);
    slot_rescan_.resize(n_nets);
    mark_ = 0;
}

PlaceCostEngine::NetBox PlaceCostEngine::scan_net(std::size_t ni,
                                                  std::span<const EntityMove> moves) const {
    NetBox b{1e18, -1e18, 1e18, -1e18, 0, 0, 0, 0, 0.0};
    for (std::uint32_t i = net_first_[ni]; i < net_first_[ni + 1]; ++i) {
        const std::uint32_t eid = net_ents_[i];
        double x = xs_[eid];
        double y = ys_[eid];
        for (const EntityMove& m : moves) {
            if (m.entity == eid) {
                x = m.x;
                y = m.y;
                break;
            }
        }
        if (x < b.xmin) {
            b.xmin = x;
            b.n_xmin = 1;
        } else if (x == b.xmin) {
            ++b.n_xmin;
        }
        if (x > b.xmax) {
            b.xmax = x;
            b.n_xmax = 1;
        } else if (x == b.xmax) {
            ++b.n_xmax;
        }
        if (y < b.ymin) {
            b.ymin = y;
            b.n_ymin = 1;
        } else if (y == b.ymin) {
            ++b.n_ymin;
        }
        if (y > b.ymax) {
            b.ymax = y;
            b.n_ymax = 1;
        } else if (y == b.ymax) {
            ++b.n_ymax;
        }
    }
    b.cost = net_size(ni) < 2 ? 0.0 : (b.xmax - b.xmin) + (b.ymax - b.ymin);
    return b;
}

double PlaceCostEngine::total_cost() const {
    double c = 0;
    for (const NetBox& b : boxes_) c += b.cost;
    return c;
}

double PlaceCostEngine::recompute_from_scratch() const {
    double c = 0;
    for (std::size_t ni = 0; ni + 1 < net_first_.size(); ++ni) c += scan_net(ni, {}).cost;
    return c;
}

double PlaceCostEngine::eval(std::span<const EntityMove> moves) {
    AFPGA_ASSERT(!moves.empty(), "PlaceCostEngine::eval: empty proposal");
    pending_moves_.assign(moves.begin(), moves.end());
    order_.clear();
    ++mark_;

    // The annealer's 1-2 entry proposals unpack into locals for the inlined
    // small-net scans below; larger proposals take the general scan_net.
    const EntityMove none{SIZE_MAX, 0, 0};
    const EntityMove m0 = moves[0];
    const EntityMove m1 = moves.size() > 1 ? moves[1] : none;
    const bool general = moves.size() > 2;

    for (const EntityMove& m : moves) {
        AFPGA_ASSERT(m.entity < xs_.size(), "PlaceCostEngine: bad entity id in move");
        const double ox = xs_[m.entity];
        const double oy = ys_[m.entity];
        for (std::uint32_t k = noe_first_[m.entity]; k < noe_first_[m.entity + 1]; ++k) {
            const std::uint32_t ni = noe_nets_[k];
            std::uint32_t slot;
            if (net_mark_[ni] != mark_) {
                net_mark_[ni] = mark_;
                slot = static_cast<std::uint32_t>(order_.size());
                net_slot_[ni] = slot;
                order_.push_back(ni);
                // For tiny nets the O(1) boundary bookkeeping costs as much
                // as a rescan, so flag them for the inlined scan below (their
                // cached counts are never read, only their cost).
                const bool rescan = net_size(ni) <= 3;
                slot_rescan_[slot] = rescan;
                if (!rescan) slot_box_[slot] = boxes_[ni];
            } else {
                slot = net_slot_[ni];
            }
            if (slot_rescan_[slot]) continue;  // scanning later anyway
            NetBox& b = slot_box_[slot];
            if (!update_axis(ox, m.x, b.xmin, b.xmax, b.n_xmin, b.n_xmax) ||
                !update_axis(oy, m.y, b.ymin, b.ymax, b.n_ymin, b.n_ymax))
                slot_rescan_[slot] = 1;
        }
    }

    for (std::uint32_t slot = 0; slot < order_.size(); ++slot) {
        const std::uint32_t ni = order_[slot];
        if (!slot_rescan_[slot]) {
            NetBox& b = slot_box_[slot];
            b.cost = (b.xmax - b.xmin) + (b.ymax - b.ymin);
            continue;
        }
        const std::size_t sz = net_size(ni);
        if (general || sz < 2 || sz > 3) {
            // Large nets land here when the O(1) update bailed; they need the
            // full scan so their boundary counts stay exact.
            slot_box_[slot] = scan_net(ni, moves);
            continue;
        }
        // Inlined min/max-only scan for the common tiny-net rescan: only the
        // cost is needed downstream (see the rescan flag above).
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (std::uint32_t i = net_first_[ni]; i < net_first_[ni + 1]; ++i) {
            const std::uint32_t eid = net_ents_[i];
            double x;
            double y;
            if (eid == m0.entity) {
                x = m0.x;
                y = m0.y;
            } else if (eid == m1.entity) {
                x = m1.x;
                y = m1.y;
            } else {
                x = xs_[eid];
                y = ys_[eid];
            }
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymin = std::min(ymin, y);
            ymax = std::max(ymax, y);
        }
        slot_box_[slot].cost = (xmax - xmin) + (ymax - ymin);
    }

    // Deterministic evaluation order regardless of which entity listed the
    // net first, and the same "cost(after) - cost(before)" float rounding as
    // a full rescan evaluator: the two sums are accumulated separately over
    // the affected nets in ascending net order, so incremental and rescan
    // evaluation reach bit-identical accept/reject decisions.
    std::sort(order_.begin(), order_.end());
    double before = 0;
    double after = 0;
    for (const std::uint32_t ni : order_) {
        before += boxes_[ni].cost;
        after += slot_box_[net_slot_[ni]].cost;
    }
    return after - before;
}

void PlaceCostEngine::commit() {
    for (const EntityMove& m : pending_moves_) {
        xs_[m.entity] = m.x;
        ys_[m.entity] = m.y;
    }
    for (const std::uint32_t ni : order_) boxes_[ni] = slot_box_[net_slot_[ni]];
    pending_moves_.clear();
    order_.clear();
}
}  // namespace afpga::cad
