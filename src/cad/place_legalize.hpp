/// \file
/// Deterministic Tetris-style legalization for analytical placement.
///
/// The global placement solver (cad/place_analytical.hpp) produces
/// fractional cluster coordinates with residual overlap; this pass snaps
/// them onto distinct PLB sites. Clusters are processed in a fixed order
/// (sorted by target x, then y, then cluster index) and each takes the
/// first free site found by an expanding Manhattan-diamond ring scan with
/// a fixed intra-ring order — no RNG, no floating-point comparisons beyond
/// the initial rounding — so the output is bit-reproducible for identical
/// inputs on any machine.
///
/// Threading: pure function of its arguments; safe to call concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/fabric.hpp"

namespace afpga::cad {

/// How far legalization moved clusters off their solver targets
/// (place StageReport telemetry; serialized with the Placement).
struct LegalizeStats {
    /// Histogram of per-cluster Manhattan displacement in PLB units:
    /// bucket i counts displacement == i, the last bucket counts >= 15.
    std::array<std::uint64_t, 16> displacement_histogram{};
    std::uint64_t total_displacement = 0;  ///< sum of per-cluster displacements
    std::uint64_t max_displacement = 0;    ///< worst single cluster
    double avg_displacement = 0.0;         ///< total / clusters (0 if none)
};

/// Snap fractional per-cluster coordinates (solver space: PLB (x, y) sits
/// at (x+1, y+1)) onto distinct legal PLB sites of a width x height grid.
/// `x`/`y` are indexed by cluster; requires x.size() == y.size() <= W*H.
/// Throws base::Error if the clusters cannot fit.
[[nodiscard]] std::vector<core::PlbCoord> legalize_clusters(const std::vector<double>& x,
                                                            const std::vector<double>& y,
                                                            std::uint32_t width,
                                                            std::uint32_t height,
                                                            LegalizeStats* stats = nullptr);

}  // namespace afpga::cad
