#include "cad/place_analytical.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "cad/place_solver.hpp"

namespace afpga::cad {

namespace {

/// Minimum pin separation in B2B weights (keeps 1/d bounded when pins
/// coincide).
constexpr double kB2bEps = 1e-2;

/// Assemble one axis of the B2B model into the caller's reusable system:
/// for each net, the two bound pins (min/max coordinate, first-in-net-order
/// on ties) connect to each other and to every interior pin with weight
/// 2 / ((p-1) * max(dist, eps)). Fixed pins (I/O pads) fold into diag/rhs;
/// anchor targets (spreading) attach every cluster to a fixed pseudo-pin.
void build_axis(const PlaceModel& model, int axis, const std::vector<double>& cx,
                const std::vector<double>& cy, const std::vector<std::uint32_t>& pad_of_io,
                const std::vector<double>* anchor_targets, double anchor_w,
                QuadSystem& sys) {
    sys.reset(model.num_clusters);
    auto coord_of = [&](std::size_t eid) -> double {
        const PlaceEntity& e = model.entities[eid];
        if (e.kind == PlaceEntity::Kind::Cluster)
            return axis == 0 ? cx[e.index] : cy[e.index];
        const PlacePt p = model.pad_pts[pad_of_io[e.io_slot]];
        return axis == 0 ? p.x : p.y;
    };
    for (const PlaceNet& net : model.nets) {
        const std::size_t p = net.entities.size();
        if (p < 2) continue;
        std::size_t lo = net.entities[0];
        std::size_t hi = lo;
        double clo = coord_of(lo);
        double chi = clo;
        for (std::size_t k = 1; k < p; ++k) {
            const std::size_t eid = net.entities[k];
            const double c = coord_of(eid);
            if (c < clo) {
                clo = c;
                lo = eid;
            }
            if (c > chi) {
                chi = c;
                hi = eid;
            }
        }
        const double base = 2.0 / static_cast<double>(p - 1);
        auto add_edge = [&](std::size_t a, std::size_t b, double ca, double cb) {
            if (a == b) return;
            const double w = base / std::max(std::abs(ca - cb), kB2bEps);
            const PlaceEntity& ea = model.entities[a];
            const PlaceEntity& eb = model.entities[b];
            const bool ma = ea.kind == PlaceEntity::Kind::Cluster;
            const bool mb = eb.kind == PlaceEntity::Kind::Cluster;
            if (ma && mb)
                sys.connect_movable(ea.index, eb.index, w);
            else if (ma)
                sys.connect_fixed(ea.index, cb, w);
            else if (mb)
                sys.connect_fixed(eb.index, ca, w);
        };
        add_edge(lo, hi, clo, chi);
        for (std::size_t k = 0; k < p; ++k) {
            const std::size_t eid = net.entities[k];
            if (eid == lo || eid == hi) continue;
            const double c = coord_of(eid);
            add_edge(eid, lo, c, clo);
            add_edge(eid, hi, c, chi);
        }
    }
    if (anchor_targets != nullptr)
        for (std::size_t i = 0; i < model.num_clusters; ++i)
            sys.connect_fixed(i, (*anchor_targets)[i], anchor_w);
}

/// Reusable buffers of refine_pads (hoisted out of the per-pass loop).
struct PadScratch {
    PadFrame frame;
    std::vector<std::uint32_t> out;
};

/// Greedy deterministic pad refinement: io slots in slot order each take
/// the free pad nearest (Manhattan) to the centroid of the clusters on
/// their nets; ties keep the lowest pad index. The PadFrame answers each
/// nearest-free query in O(log n_pads), so a pass costs
/// O(pins + n_io log n_pads) instead of O(n_io * n_pads).
void refine_pads(const PlaceModel& model, const std::vector<double>& cx,
                 const std::vector<double>& cy, std::vector<std::uint32_t>& pad_of_io,
                 PadScratch& scratch) {
    const std::size_t n_io = model.io_entity_ids.size();
    PadFrame& frame = scratch.frame;
    frame.reset();
    std::vector<std::uint32_t>& out = scratch.out;
    out.assign(n_io, 0);
    for (std::size_t s = 0; s < n_io; ++s) {
        const std::size_t eid = model.io_entity_ids[s];
        double sx = 0;
        double sy = 0;
        std::size_t cnt = 0;
        for (std::size_t ni : model.nets_of_entity[eid])
            for (std::size_t other : model.nets[ni].entities) {
                const PlaceEntity& e = model.entities[other];
                if (e.kind != PlaceEntity::Kind::Cluster) continue;
                sx += cx[e.index];
                sy += cy[e.index];
                ++cnt;
            }
        std::uint32_t best = 0;
        bool found = false;
        if (cnt == 0) {
            // Disconnected I/O: keep its seeded pad if free, else lowest free.
            if (frame.is_free(pad_of_io[s])) {
                best = pad_of_io[s];
                found = true;
            } else {
                found = frame.lowest_free(best);
            }
        } else {
            found = frame.nearest_free(sx / static_cast<double>(cnt),
                                       sy / static_cast<double>(cnt), best);
        }
        base::check(found, "place_analytical: ran out of free pads");
        frame.take(best);
        out[s] = best;
    }
    pad_of_io = out;
}

}  // namespace

// HPWL over the fractional (pre-legalization) coordinates (shared with the
// multilevel engine; declared in the header).
double fractional_cost(const PlaceModel& model, const std::vector<double>& cx,
                       const std::vector<double>& cy,
                       const std::vector<std::uint32_t>& pad_of_io) {
    double total = 0;
    for (const PlaceNet& net : model.nets) {
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (std::size_t eid : net.entities) {
            const PlaceEntity& e = model.entities[eid];
            const PlacePt p = e.kind == PlaceEntity::Kind::Cluster
                                  ? PlacePt{cx[e.index], cy[e.index]}
                                  : model.pad_pts[pad_of_io[e.io_slot]];
            xmin = std::min(xmin, p.x);
            xmax = std::max(xmax, p.x);
            ymin = std::min(ymin, p.y);
            ymax = std::max(ymax, p.y);
        }
        total += (xmax - xmin) + (ymax - ymin);
    }
    return total;
}

// Exhaustive-window descent on the true objective (fixed scan orders,
// strict improvement, fixed tie-breaks — see the header for why it must
// run after, not before, the polish anneal). Cluster passes (windowed
// moves/swaps) alternate with pad passes (every pad, plus pad swaps):
// on I/O-heavy designs most of the recoverable wirelength is in the pad
// assignment, which greedy seeding and short polishing leave suboptimal.
void refine_detailed(const PlaceModel& model, std::vector<std::uint32_t>& pad_of_io,
                     std::vector<core::PlbCoord>& loc) {
    const std::uint32_t W = model.arch->width;
    const std::uint32_t H = model.arch->height;
    constexpr int kRadius = 3;
    constexpr int kMaxPasses = 16;
    const std::size_t n = model.num_clusters;
    const std::size_t n_io = model.io_entity_ids.size();
    const std::size_t n_pads = model.pad_pts.size();
    constexpr std::uint32_t kFree = 0xffffffffu;
    std::vector<std::uint32_t> grid(std::size_t{W} * H, kFree);
    auto cell = [&](std::uint32_t gx, std::uint32_t gy) -> std::uint32_t& {
        return grid[std::size_t{gy} * W + gx];
    };
    for (std::size_t i = 0; i < n; ++i) cell(loc[i].x, loc[i].y) = static_cast<std::uint32_t>(i);
    std::vector<std::uint32_t> pad_owner(n_pads, kFree);
    for (std::size_t s = 0; s < n_io; ++s) pad_owner[pad_of_io[s]] = static_cast<std::uint32_t>(s);

    // Cost over the nets touching entity a (and b, when swapping),
    // deduplicated — the only terms a move can change.
    std::vector<std::size_t> touched;
    auto cost_around = [&](std::size_t ea, std::size_t eb) {
        touched.clear();
        touched.insert(touched.end(), model.nets_of_entity[ea].begin(),
                       model.nets_of_entity[ea].end());
        if (eb != SIZE_MAX)
            touched.insert(touched.end(), model.nets_of_entity[eb].begin(),
                           model.nets_of_entity[eb].end());
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
        double c = 0;
        for (std::size_t ni : touched) c += model.net_cost(model.nets[ni], loc, pad_of_io);
        return c;
    };

    for (int pass = 0; pass < kMaxPasses; ++pass) {
        bool improved = false;
        for (std::size_t i = 0; i < n; ++i) {
            const core::PlbCoord from = loc[i];
            const std::uint32_t ty0 =
                from.y > static_cast<std::uint32_t>(kRadius) ? from.y - kRadius : 0;
            const std::uint32_t ty1 = std::min(H - 1, from.y + kRadius);
            const std::uint32_t tx0 =
                from.x > static_cast<std::uint32_t>(kRadius) ? from.x - kRadius : 0;
            const std::uint32_t tx1 = std::min(W - 1, from.x + kRadius);
            double best_delta = -1e-9;  // strict improvement only
            core::PlbCoord best_to{};
            bool have = false;
            for (std::uint32_t ty = ty0; ty <= ty1; ++ty)
                for (std::uint32_t tx = tx0; tx <= tx1; ++tx) {
                    if (tx == from.x && ty == from.y) continue;
                    const std::uint32_t occ = cell(tx, ty);
                    const std::size_t j = occ == kFree ? SIZE_MAX : occ;
                    const double before = cost_around(i, j);
                    loc[i] = {tx, ty};
                    if (j != SIZE_MAX) loc[j] = from;
                    const double delta = cost_around(i, j) - before;
                    loc[i] = from;
                    if (j != SIZE_MAX) loc[j] = {tx, ty};
                    if (delta < best_delta) {
                        best_delta = delta;
                        best_to = {tx, ty};
                        have = true;
                    }
                }
            if (have) {
                const std::uint32_t occ = cell(best_to.x, best_to.y);
                loc[i] = best_to;
                if (occ != kFree) {
                    loc[occ] = from;
                    cell(from.x, from.y) = occ;
                } else {
                    cell(from.x, from.y) = kFree;
                }
                cell(best_to.x, best_to.y) = static_cast<std::uint32_t>(i);
                improved = true;
            }
        }
        // Pad pass: each io slot, in slot order, tries pads in a Manhattan
        // window around the centroid of the other entities on its nets —
        // free pads as moves, owned pads as slot swaps. Full-delta
        // evaluation of every pad made this pass O(n_io * n_pads * pins)
        // and it dominated the entire placer at 100x100; every pad still
        // gets a cheap distance test, but only pads within kPadWindow of
        // the nearest-pad distance to the centroid (where any improving
        // move must roughly land, since the moved slot's nets are anchored
        // at that centroid) pay for a full delta.
        constexpr double kPadWindow = 8.0;
        for (std::size_t s = 0; s < n_io; ++s) {
            const std::size_t es = model.io_entity_ids[s];
            const std::uint32_t from = pad_of_io[s];
            double gx = model.pad_pts[from].x;
            double gy = model.pad_pts[from].y;
            {
                double sx = 0;
                double sy = 0;
                std::size_t cnt = 0;
                for (std::size_t ni : model.nets_of_entity[es])
                    for (std::size_t other : model.nets[ni].entities) {
                        if (other == es) continue;
                        const PlaceEntity& e = model.entities[other];
                        const PlacePt p = e.kind == PlaceEntity::Kind::Cluster
                                              ? PlacePt{loc[e.index].x + 1.0, loc[e.index].y + 1.0}
                                              : model.pad_pts[pad_of_io[e.io_slot]];
                        sx += p.x;
                        sy += p.y;
                        ++cnt;
                    }
                if (cnt != 0) {
                    gx = sx / static_cast<double>(cnt);
                    gy = sy / static_cast<double>(cnt);
                }
            }
            double d_floor = 1e300;
            for (std::uint32_t p = 0; p < n_pads; ++p)
                d_floor = std::min(d_floor, std::abs(model.pad_pts[p].x - gx) +
                                                std::abs(model.pad_pts[p].y - gy));
            const double d_cut = d_floor + kPadWindow;
            double best_delta = -1e-9;  // strict improvement only
            std::uint32_t best_pad = 0;
            bool have = false;
            for (std::uint32_t p = 0; p < n_pads; ++p) {
                if (p == from) continue;
                if (std::abs(model.pad_pts[p].x - gx) + std::abs(model.pad_pts[p].y - gy) >
                    d_cut)
                    continue;
                const std::uint32_t owner = pad_owner[p];
                const std::size_t t = owner == kFree ? SIZE_MAX : owner;
                const std::size_t et = t == SIZE_MAX ? SIZE_MAX : model.io_entity_ids[t];
                const double before = cost_around(es, et);
                pad_of_io[s] = p;
                if (t != SIZE_MAX) pad_of_io[t] = from;
                const double delta = cost_around(es, et) - before;
                pad_of_io[s] = from;
                if (t != SIZE_MAX) pad_of_io[t] = p;
                if (delta < best_delta) {
                    best_delta = delta;
                    best_pad = p;
                    have = true;
                }
            }
            if (have) {
                const std::uint32_t owner = pad_owner[best_pad];
                pad_of_io[s] = best_pad;
                if (owner != kFree) {
                    pad_of_io[owner] = from;
                    pad_owner[from] = owner;
                } else {
                    pad_owner[from] = kFree;
                }
                pad_owner[best_pad] = static_cast<std::uint32_t>(s);
                improved = true;
            }
        }
        if (!improved) break;
    }
}

AnalyticalResult place_analytical_global(const PlaceModel& model, const PlaceOptions& opts,
                                         std::uint64_t seed) {
    const std::uint32_t W = model.arch->width;
    const std::uint32_t H = model.arch->height;
    const std::size_t n = model.num_clusters;
    AnalyticalResult res;

    // Seeded pad shuffle — the same init recipe the annealer uses, so the
    // engines start from comparably random I/O assignments.
    res.pad_of_io.resize(model.io_entity_ids.size());
    {
        base::Rng rng(seed);
        std::vector<std::uint32_t> pads(model.geom.num_pads());
        for (std::uint32_t i = 0; i < pads.size(); ++i) pads[i] = i;
        rng.shuffle(pads);
        for (std::size_t i = 0; i < res.pad_of_io.size(); ++i) res.pad_of_io[i] = pads[i];
    }

    // Cluster init: fabric center plus a small deterministic per-index
    // jitter (RNG-free) so the first B2B bounds are not all degenerate.
    std::vector<double> cx(n);
    std::vector<double> cy(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = (i + 1) * 0x9E3779B97F4A7C15ull;
        cx[i] = (W + 1) * 0.5 + (static_cast<double>((h >> 16) & 1023) / 1023.0 - 0.5) * 0.5;
        cy[i] = (H + 1) * 0.5 + (static_cast<double>((h >> 40) & 1023) / 1023.0 - 0.5) * 0.5;
    }

    std::vector<double> tgt_x(n);
    std::vector<double> tgt_y(n);
    bool have_targets = false;
    double anchor_w = 0.0;

    // Per-pass scratch, hoisted out of the loops: the system/solver/spread/
    // pad buffers are allocated once and reused every pass.
    QuadSystem sys;
    PcgScratch pcg;
    SpreadScratch spread;
    PadScratch pads;
    if (!model.io_entity_ids.empty()) pads.frame.build(model.pad_pts, W, H);

    auto solve_axes = [&] {
        for (int axis = 0; axis < 2; ++axis) {
            std::vector<double>& x = axis == 0 ? cx : cy;
            build_axis(model, axis, cx, cy, res.pad_of_io,
                       have_targets ? (axis == 0 ? &tgt_x : &tgt_y) : nullptr, anchor_w,
                       sys);
            sys.fix_degenerate(x);
            sys.finalize();
            res.stats.solver_iterations += solve_pcg(sys, x, std::max(1, opts.solver_max_iters),
                                                     opts.solver_tolerance, pcg);
            const double hi = axis == 0 ? static_cast<double>(W) : static_cast<double>(H);
            for (double& v : x) v = std::clamp(v, 1.0, hi);
        }
        ++res.stats.solver_passes;
    };

    const int passes = std::max(1, opts.solver_passes);
    for (int pass = 0; pass < passes; ++pass) {
        solve_axes();
        // Re-seat the pads against the fresh cluster positions every pass:
        // on I/O-heavy designs the pad assignment dominates the cost, and
        // the pads are the solver's fixed anchors, so the two must
        // co-converge rather than meet once at the end.
        if (!model.io_entity_ids.empty()) refine_pads(model, cx, cy, res.pad_of_io, pads);
        if (n != 0) {
            spread_targets(W, H, n, cx, cy, nullptr, tgt_x, tgt_y, spread);
            have_targets = true;
            anchor_w = opts.anchor_weight * static_cast<double>(pass + 1);
            ++res.stats.spread_passes;
        }
    }
    if (!model.io_entity_ids.empty()) refine_pads(model, cx, cy, res.pad_of_io, pads);
    // One closing solve against the refined pads and the last anchors.
    solve_axes();

    res.stats.pre_legal_cost = fractional_cost(model, cx, cy, res.pad_of_io);
    // Legalize from one last round of bisection targets, not from the raw
    // solve: the final solve re-clumps (its anchors are mild), and handing
    // the displacement-greedy Tetris pass a dense clump lets it scatter
    // nets arbitrarily. The targets are density-feasible (<= 1 cluster per
    // unit cell whenever the region fits) while staying as close to the
    // solved positions as capacity allows, so Tetris degenerates to a
    // near-identity snap and the legalized cost tracks the fractional one.
    if (n != 0) {
        spread_targets(W, H, n, cx, cy, nullptr, tgt_x, tgt_y, spread);
        ++res.stats.spread_passes;
    }
    res.cluster_loc = legalize_clusters(tgt_x, tgt_y, W, H, &res.stats.legalize);
    res.stats.legalized_cost = model.total_cost(res.cluster_loc, res.pad_of_io);
    return res;
}

}  // namespace afpga::cad
