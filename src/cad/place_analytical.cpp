#include "cad/place_analytical.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "base/check.hpp"
#include "base/rng.hpp"

namespace afpga::cad {

namespace {

/// Minimum pin separation in B2B weights (keeps 1/d bounded when pins
/// coincide).
constexpr double kB2bEps = 1e-2;

/// One axis of the quadratic system: symmetric positive-definite
/// Laplacian-plus-anchors, assembled from deterministic-order triplets and
/// finalized into CSR for the solver.
struct QuadSystem {
    std::vector<double> diag;
    std::vector<double> rhs;
    std::vector<std::tuple<std::size_t, std::size_t, double>> off;  ///< pre-CSR
    std::vector<std::size_t> row_start;
    std::vector<std::size_t> col;
    std::vector<double> val;

    explicit QuadSystem(std::size_t n) : diag(n, 0.0), rhs(n, 0.0) {}

    void connect_movable(std::size_t i, std::size_t j, double w) {
        diag[i] += w;
        diag[j] += w;
        off.emplace_back(i, j, -w);
        off.emplace_back(j, i, -w);
    }
    void connect_fixed(std::size_t i, double coord, double w) {
        diag[i] += w;
        rhs[i] += w * coord;
    }

    /// Pin clusters with no connections at their current coordinate (the
    /// system stays SPD and the solver leaves them put).
    void fix_degenerate(const std::vector<double>& x) {
        for (std::size_t i = 0; i < diag.size(); ++i)
            if (diag[i] == 0.0) {
                diag[i] = 1.0;
                rhs[i] = x[i];
            }
    }

    /// Sort + merge the triplets into CSR. The triplet sequence is a pure
    /// function of the model, so the merge (and its FP summation order) is
    /// identical on every run.
    void finalize() {
        std::sort(off.begin(), off.end(), [](const auto& a, const auto& b) {
            if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
            return std::get<1>(a) < std::get<1>(b);
        });
        row_start.assign(diag.size() + 1, 0);
        for (std::size_t t = 0; t < off.size();) {
            const std::size_t row = std::get<0>(off[t]);
            const std::size_t column = std::get<1>(off[t]);
            double w = 0;
            while (t < off.size() && std::get<0>(off[t]) == row &&
                   std::get<1>(off[t]) == column) {
                w += std::get<2>(off[t]);
                ++t;
            }
            col.push_back(column);
            val.push_back(w);
            ++row_start[row + 1];
        }
        for (std::size_t i = 1; i < row_start.size(); ++i) row_start[i] += row_start[i - 1];
        off.clear();
        off.shrink_to_fit();
    }

    /// y = A x (serial, row order).
    void apply(const std::vector<double>& x, std::vector<double>& y) const {
        const std::size_t n = diag.size();
        y.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            double acc = diag[i] * x[i];
            for (std::size_t t = row_start[i]; t < row_start[i + 1]; ++t)
                acc += val[t] * x[col[t]];
            y[i] = acc;
        }
    }
};

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

/// Jacobi-preconditioned conjugate gradient, warm-started from `x`.
/// Strictly serial with a fixed iteration order — bit-reproducible.
/// Returns the number of iterations run.
std::uint64_t solve_pcg(const QuadSystem& sys, std::vector<double>& x, int max_iters,
                        double tol) {
    const std::size_t n = x.size();
    if (n == 0) return 0;
    std::vector<double> r(n);
    std::vector<double> z(n);
    std::vector<double> p(n);
    std::vector<double> ap(n);
    sys.apply(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = sys.rhs[i] - ap[i];
    double bnorm = std::sqrt(dot(sys.rhs, sys.rhs));
    if (bnorm < 1e-300) bnorm = 1.0;
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / sys.diag[i];
    p = z;
    double rz = dot(r, z);
    std::uint64_t iters = 0;
    for (int it = 0; it < max_iters; ++it) {
        if (std::sqrt(dot(r, r)) <= tol * bnorm) break;
        sys.apply(p, ap);
        const double pap = dot(p, ap);
        if (!(pap > 0)) break;  // numerical breakdown: keep the best x so far
        const double alpha = rz / pap;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / sys.diag[i];
        const double rz_new = dot(r, z);
        ++iters;
        if (!(rz_new > 0)) break;
        const double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    return iters;
}

/// Assemble one axis of the B2B model: for each net, the two bound pins
/// (min/max coordinate, first-in-net-order on ties) connect to each other
/// and to every interior pin with weight 2 / ((p-1) * max(dist, eps)).
/// Fixed pins (I/O pads) fold into diag/rhs; anchor targets (spreading)
/// attach every cluster to a fixed pseudo-pin.
QuadSystem build_axis(const PlaceModel& model, int axis, const std::vector<double>& cx,
                      const std::vector<double>& cy,
                      const std::vector<std::uint32_t>& pad_of_io,
                      const std::vector<double>* anchor_targets, double anchor_w) {
    QuadSystem sys(model.num_clusters);
    auto coord_of = [&](std::size_t eid) -> double {
        const PlaceEntity& e = model.entities[eid];
        if (e.kind == PlaceEntity::Kind::Cluster)
            return axis == 0 ? cx[e.index] : cy[e.index];
        const PlacePt p = model.pad_pts[pad_of_io[e.io_slot]];
        return axis == 0 ? p.x : p.y;
    };
    for (const PlaceNet& net : model.nets) {
        const std::size_t p = net.entities.size();
        if (p < 2) continue;
        std::size_t lo = net.entities[0];
        std::size_t hi = lo;
        double clo = coord_of(lo);
        double chi = clo;
        for (std::size_t k = 1; k < p; ++k) {
            const std::size_t eid = net.entities[k];
            const double c = coord_of(eid);
            if (c < clo) {
                clo = c;
                lo = eid;
            }
            if (c > chi) {
                chi = c;
                hi = eid;
            }
        }
        const double base = 2.0 / static_cast<double>(p - 1);
        auto add_edge = [&](std::size_t a, std::size_t b, double ca, double cb) {
            if (a == b) return;
            const double w = base / std::max(std::abs(ca - cb), kB2bEps);
            const PlaceEntity& ea = model.entities[a];
            const PlaceEntity& eb = model.entities[b];
            const bool ma = ea.kind == PlaceEntity::Kind::Cluster;
            const bool mb = eb.kind == PlaceEntity::Kind::Cluster;
            if (ma && mb)
                sys.connect_movable(ea.index, eb.index, w);
            else if (ma)
                sys.connect_fixed(ea.index, cb, w);
            else if (mb)
                sys.connect_fixed(eb.index, ca, w);
        };
        add_edge(lo, hi, clo, chi);
        for (std::size_t k = 0; k < p; ++k) {
            const std::size_t eid = net.entities[k];
            if (eid == lo || eid == hi) continue;
            const double c = coord_of(eid);
            add_edge(eid, lo, c, clo);
            add_edge(eid, hi, c, chi);
        }
    }
    if (anchor_targets != nullptr)
        for (std::size_t i = 0; i < model.num_clusters; ++i)
            sys.connect_fixed(i, (*anchor_targets)[i], anchor_w);
    return sys;
}

/// Recursive-bisection spreading: split the grid region at its geometric
/// midline and partition the clusters (sorted by coordinate along the cut
/// axis, ties by index) to the side of the cut they already sit on; the
/// boundary shifts only when a side exceeds its site capacity, so spreading
/// displaces clusters exactly where density demands it and leaves sparse
/// regions (the common low-utilization case) in place. Leaves assign each
/// cluster its region's center as an anchor target. All comparisons have
/// fixed tie-breaks, so targets are a pure function of the positions.
void spread_region(std::uint32_t x0, std::uint32_t x1, std::uint32_t y0, std::uint32_t y1,
                   std::vector<std::size_t> cl, const std::vector<double>& cx,
                   const std::vector<double>& cy, std::vector<double>& tgt_x,
                   std::vector<double>& tgt_y) {
    if (cl.empty()) return;
    const std::uint32_t w = x1 - x0;
    const std::uint32_t h = y1 - y0;
    if (cl.size() == 1 || (w == 1 && h == 1)) {
        const double tx = (static_cast<double>(x0) + static_cast<double>(x1) - 1.0) / 2.0 + 1.0;
        const double ty = (static_cast<double>(y0) + static_cast<double>(y1) - 1.0) / 2.0 + 1.0;
        for (std::size_t ci : cl) {
            tgt_x[ci] = tx;
            tgt_y[ci] = ty;
        }
        return;
    }
    const bool split_x = w >= h;
    const std::uint32_t xm = split_x ? x0 + w / 2 : x1;
    const std::uint32_t ym = split_x ? y1 : y0 + h / 2;
    const std::size_t cap_lo =
        split_x ? std::size_t{xm - x0} * h : std::size_t{ym - y0} * w;
    const std::size_t cap_hi =
        split_x ? std::size_t{x1 - xm} * h : std::size_t{y1 - ym} * w;
    std::sort(cl.begin(), cl.end(), [&](std::size_t a, std::size_t b) {
        const double ca = split_x ? cx[a] : cy[a];
        const double cb = split_x ? cx[b] : cy[b];
        if (ca != cb) return ca < cb;
        return a < b;
    });
    // Site i's center coordinate is i+1, so the cut between sites xm-1 and
    // xm lies at coordinate xm + 0.5.
    const double cut =
        split_x ? static_cast<double>(xm) + 0.5 : static_cast<double>(ym) + 0.5;
    std::size_t k = 0;
    while (k < cl.size() && (split_x ? cx[cl[k]] : cy[cl[k]]) <= cut) ++k;
    k = std::min(k, cap_lo);
    k = std::min(k, cl.size());
    if (cl.size() - k > cap_hi) k = cl.size() - cap_hi;
    std::vector<std::size_t> lo_cl(cl.begin(), cl.begin() + static_cast<std::ptrdiff_t>(k));
    std::vector<std::size_t> hi_cl(cl.begin() + static_cast<std::ptrdiff_t>(k), cl.end());
    if (split_x) {
        spread_region(x0, xm, y0, y1, std::move(lo_cl), cx, cy, tgt_x, tgt_y);
        spread_region(xm, x1, y0, y1, std::move(hi_cl), cx, cy, tgt_x, tgt_y);
    } else {
        spread_region(x0, x1, y0, ym, std::move(lo_cl), cx, cy, tgt_x, tgt_y);
        spread_region(x0, x1, ym, y1, std::move(hi_cl), cx, cy, tgt_x, tgt_y);
    }
}

/// Greedy deterministic pad refinement: io slots in slot order each take
/// the free pad nearest (Manhattan) to the centroid of the clusters on
/// their nets; strict `<` keeps the lowest pad index on ties.
void refine_pads(const PlaceModel& model, const std::vector<double>& cx,
                 const std::vector<double>& cy, std::vector<std::uint32_t>& pad_of_io) {
    const std::size_t n_io = model.io_entity_ids.size();
    const std::size_t n_pads = model.pad_pts.size();
    std::vector<char> taken(n_pads, 0);
    std::vector<std::uint32_t> out(n_io, 0);
    for (std::size_t s = 0; s < n_io; ++s) {
        const std::size_t eid = model.io_entity_ids[s];
        double sx = 0;
        double sy = 0;
        std::size_t cnt = 0;
        for (std::size_t ni : model.nets_of_entity[eid])
            for (std::size_t other : model.nets[ni].entities) {
                const PlaceEntity& e = model.entities[other];
                if (e.kind != PlaceEntity::Kind::Cluster) continue;
                sx += cx[e.index];
                sy += cy[e.index];
                ++cnt;
            }
        std::uint32_t best = 0;
        bool found = false;
        if (cnt == 0) {
            // Disconnected I/O: keep its seeded pad if free, else lowest free.
            if (taken[pad_of_io[s]] == 0) {
                best = pad_of_io[s];
                found = true;
            } else {
                for (std::uint32_t p2 = 0; p2 < n_pads; ++p2)
                    if (taken[p2] == 0) {
                        best = p2;
                        found = true;
                        break;
                    }
            }
        } else {
            const double gx = sx / static_cast<double>(cnt);
            const double gy = sy / static_cast<double>(cnt);
            double best_d = 1e300;
            for (std::uint32_t p2 = 0; p2 < n_pads; ++p2) {
                if (taken[p2] != 0) continue;
                const double d = std::abs(model.pad_pts[p2].x - gx) +
                                 std::abs(model.pad_pts[p2].y - gy);
                if (d < best_d) {
                    best_d = d;
                    best = p2;
                    found = true;
                }
            }
        }
        base::check(found, "place_analytical: ran out of free pads");
        taken[best] = 1;
        out[s] = best;
    }
    pad_of_io = out;
}

/// HPWL over the fractional (pre-legalization) coordinates.
double fractional_cost(const PlaceModel& model, const std::vector<double>& cx,
                       const std::vector<double>& cy,
                       const std::vector<std::uint32_t>& pad_of_io) {
    double total = 0;
    for (const PlaceNet& net : model.nets) {
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (std::size_t eid : net.entities) {
            const PlaceEntity& e = model.entities[eid];
            const PlacePt p = e.kind == PlaceEntity::Kind::Cluster
                                  ? PlacePt{cx[e.index], cy[e.index]}
                                  : model.pad_pts[pad_of_io[e.io_slot]];
            xmin = std::min(xmin, p.x);
            xmax = std::max(xmax, p.x);
            ymin = std::min(ymin, p.y);
            ymax = std::max(ymax, p.y);
        }
        total += (xmax - xmin) + (ymax - ymin);
    }
    return total;
}

}  // namespace

// Exhaustive-window descent on the true objective (fixed scan orders,
// strict improvement, fixed tie-breaks — see the header for why it must
// run after, not before, the polish anneal). Cluster passes (windowed
// moves/swaps) alternate with pad passes (every pad, plus pad swaps):
// on I/O-heavy designs most of the recoverable wirelength is in the pad
// assignment, which greedy seeding and short polishing leave suboptimal.
void refine_detailed(const PlaceModel& model, std::vector<std::uint32_t>& pad_of_io,
                     std::vector<core::PlbCoord>& loc) {
    const std::uint32_t W = model.arch->width;
    const std::uint32_t H = model.arch->height;
    constexpr int kRadius = 3;
    constexpr int kMaxPasses = 16;
    const std::size_t n = model.num_clusters;
    const std::size_t n_io = model.io_entity_ids.size();
    const std::size_t n_pads = model.pad_pts.size();
    constexpr std::uint32_t kFree = 0xffffffffu;
    std::vector<std::uint32_t> grid(std::size_t{W} * H, kFree);
    auto cell = [&](std::uint32_t gx, std::uint32_t gy) -> std::uint32_t& {
        return grid[std::size_t{gy} * W + gx];
    };
    for (std::size_t i = 0; i < n; ++i) cell(loc[i].x, loc[i].y) = static_cast<std::uint32_t>(i);
    std::vector<std::uint32_t> pad_owner(n_pads, kFree);
    for (std::size_t s = 0; s < n_io; ++s) pad_owner[pad_of_io[s]] = static_cast<std::uint32_t>(s);

    // Cost over the nets touching entity a (and b, when swapping),
    // deduplicated — the only terms a move can change.
    std::vector<std::size_t> touched;
    auto cost_around = [&](std::size_t ea, std::size_t eb) {
        touched.clear();
        touched.insert(touched.end(), model.nets_of_entity[ea].begin(),
                       model.nets_of_entity[ea].end());
        if (eb != SIZE_MAX)
            touched.insert(touched.end(), model.nets_of_entity[eb].begin(),
                           model.nets_of_entity[eb].end());
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
        double c = 0;
        for (std::size_t ni : touched) c += model.net_cost(model.nets[ni], loc, pad_of_io);
        return c;
    };

    for (int pass = 0; pass < kMaxPasses; ++pass) {
        bool improved = false;
        for (std::size_t i = 0; i < n; ++i) {
            const core::PlbCoord from = loc[i];
            const std::uint32_t ty0 =
                from.y > static_cast<std::uint32_t>(kRadius) ? from.y - kRadius : 0;
            const std::uint32_t ty1 = std::min(H - 1, from.y + kRadius);
            const std::uint32_t tx0 =
                from.x > static_cast<std::uint32_t>(kRadius) ? from.x - kRadius : 0;
            const std::uint32_t tx1 = std::min(W - 1, from.x + kRadius);
            double best_delta = -1e-9;  // strict improvement only
            core::PlbCoord best_to{};
            bool have = false;
            for (std::uint32_t ty = ty0; ty <= ty1; ++ty)
                for (std::uint32_t tx = tx0; tx <= tx1; ++tx) {
                    if (tx == from.x && ty == from.y) continue;
                    const std::uint32_t occ = cell(tx, ty);
                    const std::size_t j = occ == kFree ? SIZE_MAX : occ;
                    const double before = cost_around(i, j);
                    loc[i] = {tx, ty};
                    if (j != SIZE_MAX) loc[j] = from;
                    const double delta = cost_around(i, j) - before;
                    loc[i] = from;
                    if (j != SIZE_MAX) loc[j] = {tx, ty};
                    if (delta < best_delta) {
                        best_delta = delta;
                        best_to = {tx, ty};
                        have = true;
                    }
                }
            if (have) {
                const std::uint32_t occ = cell(best_to.x, best_to.y);
                loc[i] = best_to;
                if (occ != kFree) {
                    loc[occ] = from;
                    cell(from.x, from.y) = occ;
                } else {
                    cell(from.x, from.y) = kFree;
                }
                cell(best_to.x, best_to.y) = static_cast<std::uint32_t>(i);
                improved = true;
            }
        }
        // Pad pass: each io slot, in slot order, tries every pad — free
        // pads as moves, owned pads as slot swaps.
        for (std::size_t s = 0; s < n_io; ++s) {
            const std::size_t es = model.io_entity_ids[s];
            const std::uint32_t from = pad_of_io[s];
            double best_delta = -1e-9;  // strict improvement only
            std::uint32_t best_pad = 0;
            bool have = false;
            for (std::uint32_t p = 0; p < n_pads; ++p) {
                if (p == from) continue;
                const std::uint32_t owner = pad_owner[p];
                const std::size_t t = owner == kFree ? SIZE_MAX : owner;
                const std::size_t et = t == SIZE_MAX ? SIZE_MAX : model.io_entity_ids[t];
                const double before = cost_around(es, et);
                pad_of_io[s] = p;
                if (t != SIZE_MAX) pad_of_io[t] = from;
                const double delta = cost_around(es, et) - before;
                pad_of_io[s] = from;
                if (t != SIZE_MAX) pad_of_io[t] = p;
                if (delta < best_delta) {
                    best_delta = delta;
                    best_pad = p;
                    have = true;
                }
            }
            if (have) {
                const std::uint32_t owner = pad_owner[best_pad];
                pad_of_io[s] = best_pad;
                if (owner != kFree) {
                    pad_of_io[owner] = from;
                    pad_owner[from] = owner;
                } else {
                    pad_owner[from] = kFree;
                }
                pad_owner[best_pad] = static_cast<std::uint32_t>(s);
                improved = true;
            }
        }
        if (!improved) break;
    }
}

AnalyticalResult place_analytical_global(const PlaceModel& model, const PlaceOptions& opts,
                                         std::uint64_t seed) {
    const std::uint32_t W = model.arch->width;
    const std::uint32_t H = model.arch->height;
    const std::size_t n = model.num_clusters;
    AnalyticalResult res;

    // Seeded pad shuffle — the same init recipe the annealer uses, so the
    // engines start from comparably random I/O assignments.
    res.pad_of_io.resize(model.io_entity_ids.size());
    {
        base::Rng rng(seed);
        std::vector<std::uint32_t> pads(model.geom.num_pads());
        for (std::uint32_t i = 0; i < pads.size(); ++i) pads[i] = i;
        rng.shuffle(pads);
        for (std::size_t i = 0; i < res.pad_of_io.size(); ++i) res.pad_of_io[i] = pads[i];
    }

    // Cluster init: fabric center plus a small deterministic per-index
    // jitter (RNG-free) so the first B2B bounds are not all degenerate.
    std::vector<double> cx(n);
    std::vector<double> cy(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = (i + 1) * 0x9E3779B97F4A7C15ull;
        cx[i] = (W + 1) * 0.5 + (static_cast<double>((h >> 16) & 1023) / 1023.0 - 0.5) * 0.5;
        cy[i] = (H + 1) * 0.5 + (static_cast<double>((h >> 40) & 1023) / 1023.0 - 0.5) * 0.5;
    }

    std::vector<double> tgt_x(n);
    std::vector<double> tgt_y(n);
    bool have_targets = false;
    double anchor_w = 0.0;

    auto solve_axes = [&] {
        for (int axis = 0; axis < 2; ++axis) {
            QuadSystem sys = build_axis(model, axis, cx, cy, res.pad_of_io,
                                        have_targets ? (axis == 0 ? &tgt_x : &tgt_y) : nullptr,
                                        anchor_w);
            std::vector<double>& x = axis == 0 ? cx : cy;
            sys.fix_degenerate(x);
            sys.finalize();
            res.stats.solver_iterations +=
                solve_pcg(sys, x, std::max(1, opts.solver_max_iters), opts.solver_tolerance);
            const double hi = axis == 0 ? static_cast<double>(W) : static_cast<double>(H);
            for (double& v : x) v = std::clamp(v, 1.0, hi);
        }
        ++res.stats.solver_passes;
    };

    const int passes = std::max(1, opts.solver_passes);
    for (int pass = 0; pass < passes; ++pass) {
        solve_axes();
        // Re-seat the pads against the fresh cluster positions every pass:
        // on I/O-heavy designs the pad assignment dominates the cost, and
        // the pads are the solver's fixed anchors, so the two must
        // co-converge rather than meet once at the end.
        if (!model.io_entity_ids.empty()) refine_pads(model, cx, cy, res.pad_of_io);
        if (n != 0) {
            std::vector<std::size_t> all(n);
            for (std::size_t i = 0; i < n; ++i) all[i] = i;
            spread_region(0, W, 0, H, std::move(all), cx, cy, tgt_x, tgt_y);
            have_targets = true;
            anchor_w = opts.anchor_weight * static_cast<double>(pass + 1);
            ++res.stats.spread_passes;
        }
    }
    if (!model.io_entity_ids.empty()) refine_pads(model, cx, cy, res.pad_of_io);
    // One closing solve against the refined pads and the last anchors.
    solve_axes();

    res.stats.pre_legal_cost = fractional_cost(model, cx, cy, res.pad_of_io);
    // Legalize from one last round of bisection targets, not from the raw
    // solve: the final solve re-clumps (its anchors are mild), and handing
    // the displacement-greedy Tetris pass a dense clump lets it scatter
    // nets arbitrarily. The targets are density-feasible (<= 1 cluster per
    // unit cell whenever the region fits) while staying as close to the
    // solved positions as capacity allows, so Tetris degenerates to a
    // near-identity snap and the legalized cost tracks the fractional one.
    if (n != 0) {
        std::vector<std::size_t> all(n);
        for (std::size_t i = 0; i < n; ++i) all[i] = i;
        spread_region(0, W, 0, H, std::move(all), cx, cy, tgt_x, tgt_y);
        ++res.stats.spread_passes;
    }
    res.cluster_loc = legalize_clusters(tgt_x, tgt_y, W, H, &res.stats.legalize);
    res.stats.legalized_cost = model.total_cost(res.cluster_loc, res.pad_of_io);
    return res;
}

}  // namespace afpga::cad
