/// \file
/// FlowService: the persistent flow server.
///
/// Where BatchFlowRunner (cad/batch.hpp) executes one closed batch over one
/// architecture, the FlowService is long-lived: it owns a ThreadPool, a
/// shared content-addressed ArtifactStore (cad/artifact.hpp) and a memo of
/// prebuilt RR graphs per architecture, and accepts FlowJobs through a
/// thread-safe queue for as long as it exists. Experiment grids — many
/// designs x architectures x seeds x stage knobs — are expressed as job
/// sets on one service; jobs that share upstream inputs share the cached
/// techmap/pack/place products, so a warm sweep that varies only downstream
/// knobs runs at a fraction of the cold cost while producing bit-identical
/// results.
///
/// Ownership/threading contract:
///  - submit/wait/cancel/report may be called from any thread;
///  - a job's netlist and hints are borrowed and must stay alive until the
///    job finishes (wait() or wait_all() returns, or the service dies);
///  - results are owned by the service; wait() hands out a stable reference,
///    take() moves the result out;
///  - destroying the service drains the queue (every non-cancelled job
///    still runs); cancel first to drop queued work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/threadpool.hpp"
#include "base/timer.hpp"
#include "cad/artifact.hpp"
#include "cad/flow.hpp"

namespace afpga::cad {

/// Handle to a submitted job (dense, in submission order).
using FlowJobId = std::size_t;

/// Service configuration.
struct FlowServiceOptions {
    unsigned threads = 0;  ///< pool size; 0 = base::ThreadPool::default_workers()
    /// Hand every job the service's ArtifactStore so stage products are
    /// cached and shared across jobs (jobs that set their own store keep it).
    bool share_artifacts = true;
    /// Give every job a per-architecture prebuilt RR graph (jobs that set
    /// their own prebuilt_rr keep it).
    bool share_rr = true;
    /// Byte budget of the store's in-memory tier (0 = unbounded); see
    /// ArtifactStoreConfig::memory_budget_bytes.
    std::size_t artifact_memory_budget_bytes = 0;
    /// Directory of the store's on-disk tier (empty = memory only). A
    /// service restarted over the same directory warm-starts from it, and
    /// concurrent services/processes may share one; see
    /// ArtifactStoreConfig::disk_dir.
    std::string artifact_cache_dir;
    /// Disk-tier byte budget: blob directories otherwise grow without
    /// bound across service restarts. Enforced by ArtifactStore::prune_disk
    /// at service startup (oldest blobs deleted first); 0 = unbounded. See
    /// ArtifactStoreConfig::disk_budget_bytes.
    std::size_t artifact_disk_budget_bytes = 0;
    /// Maximum blob age in seconds for the startup prune (0 = no age
    /// limit); see ArtifactStoreConfig::disk_max_age_seconds.
    std::uint64_t artifact_disk_max_age_seconds = 0;
    /// Fired once per job on its terminal transition (Ok/Failed from a
    /// worker, Cancelled from cancel()), outside the service lock, from
    /// whichever thread drove the transition. Used by the socket front-end
    /// to wake its IO loop; must not call back into the service in a way
    /// that blocks (wait()/take() are fine — the job is already terminal).
    std::function<void(FlowJobId)> on_job_finished;
};

/// One design-compile request. The netlist and hints are borrowed.
struct FlowJob {
    std::string name;                               ///< label used in results/reports
    const netlist::Netlist* nl = nullptr;           ///< design (borrowed)
    const asynclib::MappingHints* hints = nullptr;  ///< optional hints (borrowed)
    core::ArchSpec arch;                            ///< per-job target architecture
    FlowOptions opts;                               ///< per-job knobs (seed, stages)
    /// Scheduling class: higher-priority queued jobs always start first.
    int priority = 0;
    /// Fairness lane (the socket front-end uses one lane per client). Among
    /// equal-priority queued jobs the scheduler round-robins lanes by
    /// least-recently-started, so one lane flooding the queue cannot starve
    /// the others.
    std::uint32_t lane = 0;
};

/// Lifecycle of a job inside the service.
enum class FlowJobStatus : std::uint8_t {
    Queued,     ///< accepted, not started
    Running,    ///< a worker is executing it
    Ok,         ///< finished, result valid
    Failed,     ///< flow threw; error holds what()
    Cancelled,  ///< cancelled while still queued; never ran
};

/// Lower-case status name, as used in report_json().
[[nodiscard]] std::string to_string(FlowJobStatus s);

/// Outcome of one job.
struct FlowJobResult {
    std::string name;                              ///< the job's label
    FlowJobStatus status = FlowJobStatus::Queued;  ///< where the job is / how it ended
    std::string error;     ///< what() of the flow's failure when Failed
    FlowResult result;     ///< valid when Ok
    double wall_ms = 0.0;  ///< flow execution time (not queue wait)
    double queue_ms = 0.0; ///< time spent waiting for a worker
    /// Global start order: 1 for the first job a worker picked up, 2 for the
    /// second, ... 0 while still queued / if cancelled before starting.
    /// Tests and the fairness-asserting server verbs read this to observe
    /// the scheduler's actual dispatch order.
    std::uint64_t start_seq = 0;

    [[nodiscard]] bool ok() const noexcept { return status == FlowJobStatus::Ok; }
};

/// The persistent flow server; see the file comment for the contract.
class FlowService {
public:
    /// Start the service: resolves the worker count, creates the shared
    /// store and spins up the pool. Warns on stderr when the pool is wider
    /// than the hardware (wall-clock scaling is then time-slicing noise).
    explicit FlowService(FlowServiceOptions opts = {});
    /// Drains every non-cancelled job, then joins the pool.
    ~FlowService();

    FlowService(const FlowService&) = delete;             ///< non-copyable
    FlowService& operator=(const FlowService&) = delete;  ///< non-copyable

    /// Enqueue one job; returns immediately with its handle.
    FlowJobId submit(FlowJob job);
    /// Enqueue a whole grid; handles are in `jobs` order.
    std::vector<FlowJobId> submit_grid(std::vector<FlowJob> jobs);

    /// Block until the job leaves the queue machinery (Ok/Failed/Cancelled).
    /// The reference stays valid for the service's lifetime — unless the
    /// job is later take()n, which hollows the slot out.
    const FlowJobResult& wait(FlowJobId id);
    /// wait(), then move the result out (used by adapters that hand results
    /// to their own callers). The slot keeps its label/status/timings/error
    /// for report_json() — which marks it `"taken": true` and omits the
    /// telemetry — and releases the borrowed netlist/arch; a second take()
    /// returns that hollow shell.
    [[nodiscard]] FlowJobResult take(FlowJobId id);
    /// Block until every job submitted BEFORE this call is finished (a
    /// snapshot — concurrent submitters cannot starve the waiter).
    void wait_all();

    /// Cancel a job that has not started. True if it was still queued (it
    /// will never run); false if it is already running or done.
    bool cancel(FlowJobId id);

    /// Non-blocking status snapshot of one job, cheap enough for a polling
    /// front-end: everything except the heavy FlowResult.
    struct JobBrief {
        FlowJobStatus status = FlowJobStatus::Queued;  ///< current lifecycle state
        std::uint64_t start_seq = 0;  ///< FlowJobResult::start_seq (0 = not started)
        double wall_ms = 0.0;         ///< flow execution time so far recorded
        double queue_ms = 0.0;        ///< queue wait (set when the job starts)
        std::string error;            ///< failure text when Failed
        bool taken = false;           ///< result already moved out via take()
    };
    /// Fetch a JobBrief without blocking (throws base::Error on a bad id).
    [[nodiscard]] JobBrief peek(FlowJobId id) const;

    /// Stop dispatching queued jobs; running jobs finish normally. Used by
    /// tests to line up a deterministic queue before releasing it, and by
    /// the bench to provoke backpressure.
    void pause();
    /// Resume dispatching (idempotent). The destructor resumes implicitly,
    /// so a paused service still drains on shutdown.
    void resume();
    /// Queued-and-not-yet-started job count.
    [[nodiscard]] std::size_t num_pending() const;

    /// Build (or fetch) the shared RR graph of `arch` now instead of inside
    /// the first job that needs it; returns it for callers that want to
    /// hand the same graph elsewhere.
    std::shared_ptr<const core::RRGraph> prewarm_rr(const core::ArchSpec& arch);

    /// The shared artifact cache (always present; jobs only use it when
    /// share_artifacts is on or their options carry it explicitly).
    [[nodiscard]] ArtifactStore& store() noexcept { return *store_; }
    /// Read-only view of the shared artifact cache.
    [[nodiscard]] const ArtifactStore& store() const noexcept { return *store_; }

    /// Resolved worker-pool size.
    [[nodiscard]] unsigned threads() const noexcept { return threads_; }
    /// Jobs submitted so far (any status).
    [[nodiscard]] std::size_t num_jobs() const;

    /// Aggregated JSON report over every job submitted so far: service
    /// configuration, hardware vs effective parallelism, job status
    /// counters, artifact-store statistics and the per-job telemetry
    /// (schema: docs/TELEMETRY.md).
    [[nodiscard]] std::string report_json() const;

private:
    struct Job {
        FlowJob spec;
        FlowJobResult result;
        FlowJobId id = 0;        ///< own index in jobs_ (for the callback)
        base::WallTimer queued;  ///< started at submit; read once at start
        bool taken = false;      ///< result moved out via take()
    };

    /// Worker ticket: pick the best pending job (priority, then per-lane
    /// fairness, then submission order) and run it; no-op when paused or
    /// nothing is pending.
    void run_one();
    void execute(Job& job);

    FlowServiceOptions opts_;
    unsigned threads_ = 0;  ///< resolved pool size
    std::shared_ptr<ArtifactStore> store_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Job>> jobs_;  ///< id = index; slots never move
    std::vector<FlowJobId> pending_;          ///< queued ids, ascending
    bool paused_ = false;                     ///< dispatch gate (pause()/resume())
    std::uint64_t start_clock_ = 0;           ///< stamps FlowJobResult::start_seq
    /// start_clock_ value of each lane's most recent dispatch; equal-priority
    /// scheduling picks the least-recently-started lane.
    std::unordered_map<std::uint32_t, std::uint64_t> lane_last_start_;

    /// Last member: its destructor drains the queue while everything above
    /// (store, job slots) is still alive.
    base::ThreadPool pool_;
};

}  // namespace afpga::cad
