#include "cad/artifact.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "base/check.hpp"
#include "base/threadpool.hpp"

namespace afpga::cad {

namespace {

// Disk-blob header, written little-endian field by field (40 bytes). The
// checksum covers the payload only; the bound fields let a reader reject a
// foreign, stale or torn file before touching the payload.
constexpr std::uint32_t kDiskMagic = 0x43414641;  // "AFAC" little-endian
constexpr std::size_t kHeaderBytes = 40;

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) h = (h ^ data[i]) * 1099511628211ull;
    return h;
}

void put_le32(std::uint8_t* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_le64(std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_le32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

}  // namespace

void ArtifactStore::configure(ArtifactStoreConfig cfg) {
    if (!cfg.disk_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg.disk_dir, ec);
        base::check(!ec, "artifact cache directory '" + cfg.disk_dir +
                             "' cannot be created: " + ec.message());
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        memory_budget_bytes_ = cfg.memory_budget_bytes;
        disk_dir_ = std::move(cfg.disk_dir);
        disk_budget_bytes_ = cfg.disk_budget_bytes;
        disk_max_age_seconds_ = cfg.disk_max_age_seconds;
        evict_locked();  // a shrunk budget takes effect immediately
    }
    if (cfg.disk_budget_bytes != 0 || cfg.disk_max_age_seconds != 0) prune_disk();
}

void ArtifactStore::prune_disk() {
    std::string dir;
    std::size_t budget = 0;
    std::uint64_t max_age = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        dir = disk_dir_;
        budget = disk_budget_bytes_;
        max_age = disk_max_age_seconds_;
    }
    if (dir.empty()) return;

    // Scan unlocked: GC races with concurrent readers/writers by design
    // (unlink is safe against open readers; a freshly renamed blob we miss
    // survives until the next prune).
    struct Blob {
        std::filesystem::path path;
        std::string name;
        std::filesystem::file_time_type mtime;
        std::uintmax_t size = 0;
    };
    std::vector<Blob> blobs;
    std::uintmax_t total = 0;
    std::uint64_t pruned = 0;
    std::error_code ec;
    const auto now = std::filesystem::file_time_type::clock::now();
    for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const std::filesystem::directory_entry& entry = *it;
        if (!entry.is_regular_file(ec) || ec) continue;
        Blob b;
        b.path = entry.path();
        b.name = b.path.filename().string();
        b.mtime = entry.last_write_time(ec);
        if (ec) continue;
        // Stale temp files (a writer that died mid-publish) are junk once
        // old enough that no live writer can still be renaming them.
        if (b.name.find(".tmp.") != std::string::npos) {
            if (now - b.mtime > std::chrono::hours(1)) std::filesystem::remove(b.path, ec);
            continue;
        }
        b.size = entry.file_size(ec);
        if (ec) continue;
        if (max_age != 0 && now - b.mtime > std::chrono::seconds(max_age)) {
            if (std::filesystem::remove(b.path, ec) && !ec) ++pruned;
            continue;
        }
        total += b.size;
        blobs.push_back(std::move(b));
    }
    if (budget != 0 && total > budget) {
        // Oldest first; filename (the key hex) breaks mtime ties so the
        // victim order is stable across runs.
        std::sort(blobs.begin(), blobs.end(), [](const Blob& a, const Blob& b) {
            if (a.mtime != b.mtime) return a.mtime < b.mtime;
            return a.name < b.name;
        });
        for (const Blob& b : blobs) {
            if (total <= budget) break;
            std::error_code rec;
            if (std::filesystem::remove(b.path, rec) && !rec) {
                total -= b.size;
                ++pruned;
            }
        }
    }
    if (pruned != 0) {
        std::lock_guard<std::mutex> lock(mu_);
        disk_pruned_ += pruned;
    }
}

void ArtifactStore::insert_locked(ArtifactKey key, std::any value, std::size_t bytes) const {
    Entry e;
    e.value = std::move(value);
    e.bytes = bytes;
    e.last_use = ++lru_clock_;
    resident_bytes_ += bytes;
    map_.emplace(key, std::move(e));
    evict_locked();
}

void ArtifactStore::evict_locked() const {
    if (memory_budget_bytes_ == 0) return;
    while (resident_bytes_ > memory_budget_bytes_ && !map_.empty()) {
        auto victim = map_.begin();
        for (auto it = std::next(map_.begin()); it != map_.end(); ++it)
            if (it->second.last_use < victim->second.last_use) victim = it;
        resident_bytes_ -= victim->second.bytes;
        map_.erase(victim);
        ++evictions_;
    }
}

std::string ArtifactStore::blob_path(ArtifactKey key) const {
    return (std::filesystem::path(disk_dir_) / key_hex(key)).string();
}

std::optional<std::vector<std::uint8_t>> ArtifactStore::disk_read(ArtifactKey key,
                                                                  std::uint32_t type_id) const {
    std::ifstream in(blob_path(key), std::ios::binary);
    if (!in) return std::nullopt;  // no blob: a plain miss

    std::uint8_t header[kHeaderBytes];
    in.read(reinterpret_cast<char*>(header), kHeaderBytes);
    if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
        count_bad_blob();
        return std::nullopt;
    }
    const std::uint32_t magic = get_le32(header);
    const std::uint32_t version = get_le32(header + 4);
    const std::uint32_t blob_type = get_le32(header + 8);
    const std::uint64_t blob_key = get_le64(header + 16);
    const std::uint64_t payload_size = get_le64(header + 24);
    const std::uint64_t checksum = get_le64(header + 32);
    if (magic != kDiskMagic || version != kDiskFormatVersion || blob_key != key) {
        count_bad_blob();  // foreign file or stale format: treat as a miss
        return std::nullopt;
    }
    // A differently-typed blob under this key (64-bit key collision written
    // by another type's publish) is a legitimate miss, not corruption.
    if (blob_type != type_id) return std::nullopt;

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_size));
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (in.gcount() != static_cast<std::streamsize>(payload.size()) ||
        fnv1a64(payload.data(), payload.size()) != checksum) {
        count_bad_blob();  // truncated or corrupt payload
        return std::nullopt;
    }
    return payload;
}

void ArtifactStore::disk_write(ArtifactKey key, std::uint32_t type_id,
                               const std::vector<std::uint8_t>& payload) const {
    // Unique-enough temp name per process and call: concurrent writers of
    // one key (in this process or another) each rename a complete file
    // into place, so readers never observe a torn blob.
    static std::atomic<std::uint64_t> temp_counter{0};
    const std::string path = blob_path(key);
    const std::string temp = path + ".tmp." +
                             std::to_string(reinterpret_cast<std::uintptr_t>(&temp_counter)) +
                             "." + std::to_string(temp_counter.fetch_add(1));

    std::uint8_t header[kHeaderBytes] = {};
    put_le32(header, kDiskMagic);
    put_le32(header + 4, kDiskFormatVersion);
    put_le32(header + 8, type_id);
    put_le64(header + 16, key);
    put_le64(header + 24, payload.size());
    put_le64(header + 32, fnv1a64(payload.data(), payload.size()));

    bool ok = false;
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (out) {
            out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
            out.write(reinterpret_cast<const char*>(payload.data()),
                      static_cast<std::streamsize>(payload.size()));
            out.flush();
            ok = out.good();
        }
    }
    std::error_code ec;
    if (ok) {
        std::filesystem::rename(temp, path, ec);
        ok = !ec;
    }
    if (!ok) {
        std::filesystem::remove(temp, ec);
        count_disk_write_failure();
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++disk_writes_;
}

void ArtifactStore::count_bad_blob() const {
    std::lock_guard<std::mutex> lock(mu_);
    ++disk_bad_blobs_;
}

void ArtifactStore::count_disk_write_failure() const {
    std::lock_guard<std::mutex> lock(mu_);
    ++disk_write_failures_;
}

std::shared_ptr<const core::RRGraph> ArtifactStore::rr_for(const core::ArchSpec& arch,
                                                           base::ThreadPool* pool) const {
    return rr_for_keyed(arch.fingerprint(), [&]() -> std::shared_ptr<const core::RRGraph> {
        return pool ? std::make_shared<core::RRGraph>(arch, *pool)
                    : std::make_shared<core::RRGraph>(arch);
    });
}

std::shared_ptr<const core::RRGraph> ArtifactStore::rr_for_keyed(
    std::uint64_t fp,
    const std::function<std::shared_ptr<const core::RRGraph>()>& build) const {
    for (;;) {
        std::promise<std::shared_ptr<const core::RRGraph>> promise;
        std::shared_future<std::shared_ptr<const core::RRGraph>> fut;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lock(rr_mu_);
            const auto it = rr_.find(fp);
            if (it == rr_.end()) {
                fut = promise.get_future().share();
                rr_.emplace(fp, fut);
                builder = true;
                ++rr_misses_;
            } else {
                fut = it->second;
                ++rr_hits_;
            }
        }
        if (builder) {
            // Build outside the lock: other architectures stay unblocked,
            // and same-architecture callers wait on the future instead of
            // racing.
            try {
                promise.set_value(build());
            } catch (...) {
                // Erase the memo entry BEFORE publishing the error: from
                // the moment the exception is observable, no caller can
                // find the errored future (has_rr is already false and the
                // next rr_for claims a fresh build). Only the waiters
                // parked on this very future see it — and they retry below.
                {
                    std::lock_guard<std::mutex> lock(rr_mu_);
                    rr_.erase(fp);
                }
                promise.set_exception(std::current_exception());
                throw;  // the failing builder reports its own error
            }
            return fut.get();
        }
        try {
            return fut.get();
        } catch (...) {
            // The build we waited on failed. Its memo entry is gone, so
            // retry with a fresh build (possibly becoming the builder)
            // instead of adopting an error another caller produced.
        }
    }
}

bool ArtifactStore::begin_compute(ArtifactKey key) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (map_.count(key)) return false;  // published while we waited
        const auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            Inflight inf;
            inf.done = std::make_shared<std::promise<void>>();
            inf.wait = inf.done->get_future().share();
            inflight_.emplace(key, std::move(inf));
            return true;
        }
        std::shared_future<void> fut = it->second.wait;
        lock.unlock();
        fut.wait();
        lock.lock();
        // Loop: the computer either published (return false above) or
        // failed without publishing (this caller may claim the key).
    }
}

void ArtifactStore::finish_compute(ArtifactKey key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    it->second.done->set_value();
    inflight_.erase(it);
}

void ArtifactStore::clear() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.clear();  // inflight_ stays: computers finish and re-publish
        resident_bytes_ = 0;
    }
    std::lock_guard<std::mutex> lock(rr_mu_);
    rr_.clear();  // racing builders hold their own future copies
}

bool ArtifactStore::has_rr(const core::ArchSpec& arch) const {
    std::lock_guard<std::mutex> lock(rr_mu_);
    return rr_.count(arch.fingerprint()) != 0;
}

ArtifactStoreStats ArtifactStore::stats() const {
    ArtifactStoreStats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.hits = hits_;
        s.disk_hits = disk_hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.collisions = collisions_;
        s.disk_writes = disk_writes_;
        s.disk_write_failures = disk_write_failures_;
        s.disk_bad_blobs = disk_bad_blobs_;
        s.disk_pruned = disk_pruned_;
        s.resident_bytes = resident_bytes_;
        s.num_artifacts = map_.size();
        s.memory_budget_bytes = memory_budget_bytes_;
    }
    std::lock_guard<std::mutex> lock(rr_mu_);
    s.rr_hits = rr_hits_;
    s.rr_misses = rr_misses_;
    s.num_rr_graphs = rr_.size();
    return s;
}

std::uint64_t ArtifactStore::hits() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t ArtifactStore::misses() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::size_t ArtifactStore::num_artifacts() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::size_t ArtifactStore::num_rr_graphs() const noexcept {
    std::lock_guard<std::mutex> lock(rr_mu_);
    return rr_.size();
}

}  // namespace afpga::cad
