#include "cad/artifact.hpp"

#include "base/threadpool.hpp"

namespace afpga::cad {

std::shared_ptr<const core::RRGraph> ArtifactStore::rr_for(const core::ArchSpec& arch,
                                                           base::ThreadPool* pool) const {
    const std::uint64_t fp = arch.fingerprint();
    std::promise<std::shared_ptr<const core::RRGraph>> promise;
    std::shared_future<std::shared_ptr<const core::RRGraph>> fut;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(rr_mu_);
        const auto it = rr_.find(fp);
        if (it == rr_.end()) {
            fut = promise.get_future().share();
            rr_.emplace(fp, fut);
            builder = true;
        } else {
            fut = it->second;
        }
    }
    if (builder) {
        // Build outside the lock: other architectures stay unblocked, and
        // same-architecture callers wait on the future instead of racing.
        try {
            promise.set_value(pool ? std::make_shared<core::RRGraph>(arch, *pool)
                                   : std::make_shared<core::RRGraph>(arch));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(rr_mu_);
            rr_.erase(fp);  // let a later caller retry rather than cache the error
        }
    }
    return fut.get();
}

bool ArtifactStore::begin_compute(ArtifactKey key) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (map_.count(key)) return false;  // published while we waited
        const auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            Inflight inf;
            inf.done = std::make_shared<std::promise<void>>();
            inf.wait = inf.done->get_future().share();
            inflight_.emplace(key, std::move(inf));
            return true;
        }
        std::shared_future<void> fut = it->second.wait;
        lock.unlock();
        fut.wait();
        lock.lock();
        // Loop: the computer either published (return false above) or
        // failed without publishing (this caller may claim the key).
    }
}

void ArtifactStore::finish_compute(ArtifactKey key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    it->second.done->set_value();
    inflight_.erase(it);
}

void ArtifactStore::clear() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.clear();  // inflight_ stays: computers finish and re-publish
    }
    std::lock_guard<std::mutex> lock(rr_mu_);
    rr_.clear();  // racing builders hold their own future copies
}

bool ArtifactStore::has_rr(const core::ArchSpec& arch) const {
    std::lock_guard<std::mutex> lock(rr_mu_);
    return rr_.count(arch.fingerprint()) != 0;
}

std::uint64_t ArtifactStore::hits() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t ArtifactStore::misses() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::size_t ArtifactStore::num_artifacts() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::size_t ArtifactStore::num_rr_graphs() const noexcept {
    std::lock_guard<std::mutex> lock(rr_mu_);
    return rr_.size();
}

}  // namespace afpga::cad
