/// \file
/// The placement netlist model shared by every placement engine.
///
/// Both the simulated annealer (cad/place.cpp) and the analytical engine
/// (cad/place_analytical.cpp) optimize the same objects: clusters movable on
/// the PLB grid, primary I/Os movable across perimeter pads, and
/// half-perimeter wirelength over the logical nets connecting them. This
/// header owns that model — the entity table, the net list, the reverse
/// index and the pad geometry — built once per place() call and shared
/// read-only by every replica of a race.
///
/// Determinism: construction is RNG-free and reproduces the historical
/// entity/net ordering of the pre-split annealer exactly (the annealer's
/// move sequence, and therefore every placement bit, depends on it).
///
/// Threading: a built PlaceModel is immutable; concurrent replicas may read
/// one instance freely.
#pragma once

#include <cstdint>
#include <vector>

#include "cad/mapped.hpp"
#include "cad/pack.hpp"
#include "core/fabric.hpp"

namespace afpga::cad {

/// A movable object: a cluster or an I/O signal bound to a pad.
struct PlaceEntity {
    enum class Kind : std::uint8_t { Cluster, Pi, Po } kind;
    std::size_t index;    ///< cluster index, or index into pi/po lists
    std::size_t io_slot;  ///< index into pad_of_io (Pi/Po); SIZE_MAX for clusters
};

/// A point in placement coordinate space: PLB (x, y) sits at (x+1, y+1),
/// pads sit on the 0 / width+1 / height+1 frame around the grid.
struct PlacePt {
    double x;
    double y;
};

/// One logical connection for wirelength: driver + sinks as entity ids.
struct PlaceNet {
    std::vector<std::size_t> entities;  ///< indices into the entity table
};

/// The immutable placement problem; see the file comment.
struct PlaceModel {
    const core::ArchSpec* arch = nullptr;
    core::FabricGeometry geom;
    std::vector<PlaceEntity> entities;  ///< clusters first, then PIs, then POs
    std::vector<PlaceNet> nets;         ///< nets with >= 2 distinct entities
    std::vector<std::vector<std::size_t>> nets_of_entity;  ///< reverse index
    std::vector<std::size_t> io_entity_ids;  ///< io slot -> entity id
    std::size_t num_clusters = 0;            ///< leading entities are clusters
    std::vector<PlacePt> pad_pts;            ///< pad index -> fixed frame point

    /// Build the model (validates that the design fits the fabric; throws
    /// base::Error otherwise, with the same messages the annealer always
    /// produced).
    PlaceModel(const PackedDesign& pd, const MappedDesign& md, const core::ArchSpec& a);

    /// The frame point of a pad (tabled geometry).
    [[nodiscard]] PlacePt pad_pt(std::uint32_t pad) const { return pad_pts[pad]; }

    /// HPWL of one net given per-cluster locations and the io-slot -> pad
    /// map; accumulation order matches the annealer's evaluators so equal
    /// placements report bit-identical costs whichever engine scored them.
    [[nodiscard]] double net_cost(const PlaceNet& n,
                                  const std::vector<core::PlbCoord>& cluster_loc,
                                  const std::vector<std::uint32_t>& pad_of_io) const;

    /// Total HPWL over every net (sum in net order).
    [[nodiscard]] double total_cost(const std::vector<core::PlbCoord>& cluster_loc,
                                    const std::vector<std::uint32_t>& pad_of_io) const;
};

}  // namespace afpga::cad
