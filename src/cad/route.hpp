// Routing: PathFinder negotiated-congestion routing over the RR graph with
// an A* lookahead.
//
// Two architecture-specific twists:
//  - sources are pin-equivalent: a net driven by a PLB may leave through ANY
//    free output pin (the IM connects any LE output to any output pin), so
//    the wavefront is seeded from all of the PLB's opins and the winning pin
//    is reported back to the flow;
//  - sinks are pin-equivalent per PLB: a net needs to reach ONE input pin of
//    each consumer PLB (the IM fans it out internally).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rrgraph.hpp"
#include "netlist/netlist.hpp"

namespace afpga::cad {

/// One net to route.
struct RouteRequest {
    netlist::NetId signal;  ///< for diagnostics
    bool src_is_pad = false;
    std::uint32_t src_pad = 0;       ///< if src_is_pad
    core::PlbCoord src_plb;          ///< else
    /// PLB output pins the net may leave through (empty = all). The flow
    /// restricts this when the IM topology cannot connect the signal's
    /// source to every output-pin sink.
    std::vector<std::uint32_t> allowed_src_pins;
    struct Sink {
        bool is_pad = false;
        std::uint32_t pad = 0;
        core::PlbCoord plb;
    };
    std::vector<Sink> sinks;  ///< deduplicated per PLB by the caller
};

/// Routed tree of one net.
struct RouteTree {
    std::uint32_t root_opin = UINT32_MAX;    ///< chosen source node
    std::vector<std::uint32_t> edges;        ///< RR edge ids in use
    struct SinkResult {
        std::uint32_t ipin = UINT32_MAX;
        std::int64_t delay_ps = 0;           ///< node-delay sum root..ipin
    };
    std::vector<SinkResult> sinks;           ///< parallel to RouteRequest::sinks
};

struct RouterOptions {
    int max_iterations = 40;
    double pres_fac_first = 0.6;
    double pres_fac_mult = 1.7;
    double hist_fac = 1.0;
    double astar_fac = 1.0;  ///< 0 = pure Dijkstra
    /// After the first iteration only rip up and reroute nets that touch an
    /// over-capacity node (or have unrouted sinks); legal nets keep their
    /// trees. false = classic PathFinder full rip-up every iteration.
    bool incremental = true;
    /// Incremental mode can deadlock near saturation: a small conflict set
    /// oscillates while every legal net stays pinned in place. After this
    /// many iterations without overuse improvement, fall back to one full
    /// rip-up round to shake the whole configuration loose.
    int stall_full_reroute = 4;
    bool verbose = false;    ///< print per-iteration congestion to stderr
};

struct RoutingResult {
    std::vector<RouteTree> trees;  ///< parallel to requests
    int iterations = 0;
    bool success = false;
    std::size_t overused_nodes = 0;  ///< after the last iteration
    /// On failure: human-readable description of the conflicting resources.
    std::vector<std::string> overuse_report;

    // --- telemetry -----------------------------------------------------------
    std::vector<std::size_t> overuse_trajectory;  ///< overused nodes per iteration
    std::size_t nets_rerouted = 0;   ///< sum of per-iteration reroute counts
    std::size_t wirelength = 0;      ///< channel-wire nodes used (on success)
};

/// Route all requests. Throws base::Error only on malformed requests;
/// congestion failure is reported via RoutingResult::success.
[[nodiscard]] RoutingResult route(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                                  const RouterOptions& opts = {});

}  // namespace afpga::cad
