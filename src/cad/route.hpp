/// \file
/// Routing: PathFinder negotiated-congestion routing over the RR graph with
/// an A* lookahead.
///
/// Two architecture-specific twists:
///  - sources are pin-equivalent: a net driven by a PLB may leave through ANY
///    free output pin (the IM connects any LE output to any output pin), so
///    the wavefront is seeded from all of the PLB's opins and the winning pin
///    is reported back to the flow;
///  - sinks are pin-equivalent per PLB: a net needs to reach ONE input pin of
///    each consumer PLB (the IM fans it out internally).
///
/// Threading: route() is the single-threaded reference router. The
/// deterministic in-flow parallel router lives in cad/route_parallel and
/// shares this header's request/result/options types; RouterOptions::threads
/// selects between them inside the flow (see cad/flow.cpp's route stage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rrgraph.hpp"
#include "netlist/netlist.hpp"

namespace afpga::cad {

/// One net to route.
struct RouteRequest {
    netlist::NetId signal;           ///< for diagnostics
    bool src_is_pad = false;         ///< source is an input pad, not a PLB
    std::uint32_t src_pad = 0;       ///< if src_is_pad
    core::PlbCoord src_plb;          ///< else
    /// PLB output pins the net may leave through (empty = all). The flow
    /// restricts this when the IM topology cannot connect the signal's
    /// source to every output-pin sink.
    std::vector<std::uint32_t> allowed_src_pins;
    /// One consumer of the net: an output pad or any free input pin of a PLB.
    struct Sink {
        bool is_pad = false;      ///< deliver to an output pad
        std::uint32_t pad = 0;    ///< if is_pad
        core::PlbCoord plb;       ///< else: any free IPIN of this PLB
    };
    std::vector<Sink> sinks;  ///< deduplicated per PLB by the caller
};

/// Routed tree of one net.
struct RouteTree {
    std::uint32_t root_opin = UINT32_MAX;    ///< chosen source node
    std::vector<std::uint32_t> edges;        ///< RR edge ids in use
    /// Where one sink of the request was delivered.
    struct SinkResult {
        std::uint32_t ipin = UINT32_MAX;     ///< chosen input pin (UINT32_MAX = unrouted)
        std::int64_t delay_ps = 0;           ///< node-delay sum root..ipin
    };
    std::vector<SinkResult> sinks;           ///< parallel to RouteRequest::sinks
};

/// Knobs of both the serial reference router and the partitioned parallel
/// router (the partition-specific fields are ignored by cad::route).
struct RouterOptions {
    int max_iterations = 40;        ///< PathFinder iteration budget
    double pres_fac_first = 0.6;    ///< present-congestion factor, iteration 1
    double pres_fac_mult = 1.7;     ///< growth of pres_fac per iteration
    double hist_fac = 1.0;          ///< history-cost weight
    double astar_fac = 1.0;         ///< 0 = pure Dijkstra
    /// After the first iteration only rip up and reroute nets that touch an
    /// over-capacity node (or have unrouted sinks); legal nets keep their
    /// trees. false = classic PathFinder full rip-up every iteration.
    bool incremental = true;
    /// Incremental mode can deadlock near saturation: a small conflict set
    /// oscillates while every legal net stays pinned in place. After this
    /// many iterations without overuse improvement, fall back to one full
    /// rip-up round to shake the whole configuration loose.
    int stall_full_reroute = 4;
    bool verbose = false;    ///< print per-iteration congestion to stderr

    // --- partitioned parallel router (cad/route_parallel) -------------------
    /// Flow-level router selection: 0 keeps the serial reference router;
    /// any value >= 1 routes with the deterministic partitioned PathFinder on
    /// a pool of that many workers. The partitioned result is bit-identical
    /// for every worker count (1, 2, 4, 8, ... all agree), so `threads` only
    /// changes wall-clock time, never the bitstream.
    unsigned threads = 0;
    /// Margin (in PLBs) added around a net's terminal bounding box to form
    /// its search region. Grows automatically per net when a sink turns out
    /// to be unreachable inside the region.
    std::uint32_t bin_margin = 1;
    /// Stop splitting a partition region when neither side of a cut would
    /// keep at least this many PLB columns/rows.
    std::uint32_t min_bin_dim = 4;

    /// Canonical content hash over EVERY field (artifact-key material); the
    /// implementation pins the struct size so new fields fail loudly.
    /// `threads`/`verbose` never change the routing (bit-identical for any
    /// worker count) but are included anyway — the canonical rule is "every
    /// field", and a spurious miss is always safe.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Counters of the inner search kernel (route_one_net), aggregated over every
/// net x sink search of a routing run. All counts except `search_ms` are pure
/// functions of the routing decisions, so they are bit-identical across
/// thread counts — the route stage reports them as deterministic telemetry.
struct RouteKernelStats {
    std::uint64_t heap_pushes = 0;    ///< wavefront items pushed
    std::uint64_t heap_pops = 0;      ///< wavefront items popped (incl. stale)
    std::uint64_t nodes_expanded = 0; ///< popped nodes whose out-edges were scanned
    std::uint64_t edges_scanned = 0;  ///< adjacency entries considered
    std::uint64_t wavefront_peak = 0; ///< max live heap size of any search
    /// Scratch-buffer growth events (heap or pooled target/source buffers).
    /// Capacity is retained across sinks/nets/iterations, so in steady state
    /// this stops moving after warm-up.
    std::uint64_t allocations = 0;
    /// Growth events after the first PathFinder iteration. The zero-steady-
    /// state-allocation contract gates on this; only the serial router fills
    /// it (the parallel router's scratch-pool growth is schedule-dependent).
    std::uint64_t steady_allocations = 0;
    std::uint64_t nets_routed = 0;    ///< route_one_net invocations
    /// Wall time inside route_one_net (timing only — schedule-dependent).
    double search_ms = 0.0;

    /// Combine counters from another searcher: sums, except the peak.
    void merge(const RouteKernelStats& o) noexcept {
        heap_pushes += o.heap_pushes;
        heap_pops += o.heap_pops;
        nodes_expanded += o.nodes_expanded;
        edges_scanned += o.edges_scanned;
        wavefront_peak = wavefront_peak > o.wavefront_peak ? wavefront_peak : o.wavefront_peak;
        allocations += o.allocations;
        steady_allocations += o.steady_allocations;
        nets_routed += o.nets_routed;
        search_ms += o.search_ms;
    }
};

/// Everything the router decided plus its telemetry counters.
struct RoutingResult {
    std::vector<RouteTree> trees;  ///< parallel to requests
    int iterations = 0;            ///< PathFinder iterations executed
    bool success = false;          ///< legal (no overuse, all sinks reached)
    std::size_t overused_nodes = 0;  ///< after the last iteration
    /// On failure: human-readable description of the conflicting resources.
    std::vector<std::string> overuse_report;

    // --- telemetry -----------------------------------------------------------
    std::vector<std::size_t> overuse_trajectory;  ///< overused nodes per iteration
    std::size_t nets_rerouted = 0;   ///< sum of per-iteration reroute counts
    std::size_t wirelength = 0;      ///< channel-wire nodes used (on success)
    RouteKernelStats kernel;         ///< inner search-kernel counters

    // --- partitioned parallel router only ------------------------------------
    std::size_t num_bins = 0;        ///< leaf regions of the partition tree
    std::size_t boundary_nets = 0;   ///< nets serialized because they cross a cut
    /// Cumulative wall time each leaf bin's worker spent routing, indexed by
    /// bin; scheduling-dependent (telemetry only, never feeds back into
    /// routing decisions).
    std::vector<double> bin_wall_ms;
    /// Cumulative wall time spent routing boundary nets (the partition
    /// tree's internal nodes — same-depth nodes run concurrently, but the
    /// root's nets are inherently serial).
    double boundary_wall_ms = 0.0;
};

/// Route all requests with the serial reference router. Throws base::Error
/// only on malformed requests; congestion failure is reported via
/// RoutingResult::success.
[[nodiscard]] RoutingResult route(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                                  const RouterOptions& opts = {});

}  // namespace afpga::cad
