#include "cad/place.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "base/threadpool.hpp"
#include "base/timer.hpp"
#include "cad/fingerprint.hpp"
#include "cad/place_analytical.hpp"
#include "cad/place_cost.hpp"
#include "cad/place_model.hpp"
#include "cad/place_multilevel.hpp"

namespace afpga::cad {

using base::check;
using core::PlbCoord;

namespace {

/// Mutable annealing state over the shared immutable PlaceModel.
struct State {
    const PlaceModel* model;

    // positions
    std::vector<PlbCoord> cluster_loc;
    std::vector<std::uint32_t> pad_of_io;  // io slot -> pad

    // occupancy
    std::vector<std::size_t> grid;  // (x + y*W) -> cluster index + 1, 0 = empty
    std::vector<std::size_t> pad_owner;  // pad -> io slot + 1

    explicit State(const PlaceModel& m) : model(&m) {}

    [[nodiscard]] PlacePt position(std::size_t eid) const {
        const PlaceEntity& e = model->entities[eid];
        if (e.kind == PlaceEntity::Kind::Cluster) {
            const PlbCoord c = cluster_loc[e.index];
            return {c.x + 1.0, c.y + 1.0};
        }
        // io_slot is stored on the entity; the pre-refactor code re-derived
        // it with a linear search on every position lookup (see io_slot_find).
        return model->pad_pt(pad_of_io[e.io_slot]);
    }

    /// Pre-refactor io-slot lookup, kept verbatim as the bench baseline: the
    /// seed placer ran this linear search for every I/O position query.
    [[nodiscard]] std::size_t io_slot_find(std::size_t eid) const {
        const auto it =
            std::find(model->io_entity_ids.begin(), model->io_entity_ids.end(), eid);
        return static_cast<std::size_t>(it - model->io_entity_ids.begin());
    }

    [[nodiscard]] PlacePt position_prerefactor(std::size_t eid) const {
        const PlaceEntity& e = model->entities[eid];
        if (e.kind == PlaceEntity::Kind::Cluster) {
            const PlbCoord c = cluster_loc[e.index];
            return {c.x + 1.0, c.y + 1.0};
        }
        return model->pad_pt(pad_of_io[io_slot_find(eid)]);
    }

    template <typename PositionFn>
    [[nodiscard]] double net_cost_via(const PlaceNet& n, PositionFn&& pos) const {
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (std::size_t eid : n.entities) {
            const PlacePt p = pos(eid);
            xmin = std::min(xmin, p.x);
            xmax = std::max(xmax, p.x);
            ymin = std::min(ymin, p.y);
            ymax = std::max(ymax, p.y);
        }
        return (xmax - xmin) + (ymax - ymin);
    }

    /// Baseline move evaluation: rescan the given nets through the
    /// pre-refactor position lookup (linear io-slot search included).
    [[nodiscard]] double cost_of_prerefactor(const std::vector<std::size_t>& net_ids) const {
        double c = 0;
        for (std::size_t ni : net_ids)
            c += net_cost_via(model->nets[ni],
                              [this](std::size_t eid) { return position_prerefactor(eid); });
        return c;
    }

    [[nodiscard]] double total_cost() const {
        return model->total_cost(cluster_loc, pad_of_io);
    }
};

/// One complete annealing run with an explicit seed — the unit of work a
/// multi-seed race submits per replica. Pure function of its arguments (each
/// call owns its State, Rng and PlaceCostEngine), so replicas are safe to run
/// concurrently over the same shared model.
///
/// Cold runs (`init_loc == nullptr`) start from a seeded random placement
/// and derive the initial temperature from an accept-everything probe. Warm
/// runs (the analytical engine's polish pass) start from the given
/// placement, skip the probe — its 100 accept-all moves would destroy the
/// warm start — and open at a low temperature so only local refinement
/// survives.
/// Warm-start polish schedule (tuned on the cad_scaling benches): opening
/// temperature per net as a fraction of the incoming cost, and a faster
/// cooling rate than the cold default — the polish budget is a handful of
/// rounds, so each one has to shed temperature quickly.
constexpr double kPolishT0 = 0.8;
constexpr double kPolishAlpha = 0.85;
Placement anneal_single(const MappedDesign& md, const PlaceModel& model,
                        const PlaceOptions& opts, std::uint64_t seed,
                        const std::vector<PlbCoord>* init_loc,
                        const std::vector<std::uint32_t>* init_pads, int max_rounds) {
    const bool warm = init_loc != nullptr;
    State st(model);
    const std::uint32_t W = model.arch->width;
    const std::uint32_t H = model.arch->height;

    // --- initial placement ------------------------------------------------------
    base::Rng rng(seed);
    st.cluster_loc.resize(model.num_clusters);
    st.grid.assign(std::size_t{W} * H, 0);
    if (warm) {
        st.cluster_loc = *init_loc;
        for (std::size_t ci = 0; ci < st.cluster_loc.size(); ++ci)
            st.grid[st.cluster_loc[ci].y * W + st.cluster_loc[ci].x] = ci + 1;
    } else {
        std::vector<std::uint32_t> cells(W * H);
        for (std::uint32_t i = 0; i < W * H; ++i) cells[i] = i;
        rng.shuffle(cells);
        for (std::size_t ci = 0; ci < model.num_clusters; ++ci) {
            st.cluster_loc[ci] = {cells[ci] % W, cells[ci] / W};
            st.grid[cells[ci]] = ci + 1;
        }
    }
    st.pad_of_io.resize(model.io_entity_ids.size());
    st.pad_owner.assign(model.geom.num_pads(), 0);
    if (warm) {
        st.pad_of_io = *init_pads;
        for (std::size_t i = 0; i < st.pad_of_io.size(); ++i)
            st.pad_owner[st.pad_of_io[i]] = i + 1;
    } else {
        std::vector<std::uint32_t> pads(model.geom.num_pads());
        for (std::uint32_t i = 0; i < pads.size(); ++i) pads[i] = i;
        rng.shuffle(pads);
        for (std::size_t i = 0; i < model.io_entity_ids.size(); ++i) {
            st.pad_of_io[i] = pads[i];
            st.pad_owner[pads[i]] = i + 1;
        }
    }

    // --- incremental cost engine -------------------------------------------------
    // Entities and nets mirror the model tables; the engine caches positions
    // and per-net bounding boxes so move evaluation never rescans positions.
    PlaceCostEngine engine;
    if (opts.incremental) {
        for (std::size_t eid = 0; eid < model.entities.size(); ++eid) {
            const PlacePt p = st.position(eid);
            engine.add_entity(p.x, p.y);
        }
        for (const PlaceNet& n : model.nets) engine.add_net(n.entities);
        engine.finalize();
    }

    // Pad coordinates are pure geometry, tabled on the model.
    const std::vector<PlacePt>& pad_pts = model.pad_pts;

    double cost = opts.incremental ? engine.total_cost() : st.total_cost();

    Placement result;

    // --- annealing ---------------------------------------------------------------
    // Range limit for move proposals (0 = whole fabric). Cold runs always
    // propose fabric-wide; warm (polish) rounds shrink the window so
    // low-temperature rounds spend their moves on proposals that can
    // actually be accepted (VPR's rlim idea, on a fixed schedule to stay
    // deterministic).
    std::uint32_t move_rlim = 0;
    auto try_move = [&](double temperature, bool commit_stats) -> double {
        // Returns the applied delta (0 if rejected).
        const bool move_cluster =
            model.io_entity_ids.empty() ||
            (model.num_clusters != 0 && rng.chance(0.7));
        if (move_cluster && model.num_clusters == 0) return 0;
        if (commit_stats) ++result.moves_tried;

        // Legacy (pre-refactor) evaluation: rescan the affected nets before
        // and after a tentative mutation, then roll back.
        auto legacy_delta = [&](std::size_t eid_a, std::size_t eid_b,
                                auto&& apply, auto&& revert) {
            std::vector<std::size_t> affected = model.nets_of_entity[eid_a];
            if (eid_b != SIZE_MAX)
                for (std::size_t ni : model.nets_of_entity[eid_b]) affected.push_back(ni);
            std::sort(affected.begin(), affected.end());
            affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
            const double before = st.cost_of_prerefactor(affected);
            apply();
            const double after = st.cost_of_prerefactor(affected);
            revert();
            return after - before;
        };
        auto accept = [&](double delta) {
            return delta <= 0 ||
                   rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9));
        };

        if (move_cluster) {
            const std::size_t ci = static_cast<std::size_t>(rng.below(model.num_clusters));
            const PlbCoord from = st.cluster_loc[ci];
            PlbCoord to;
            if (move_rlim == 0) {
                const std::uint32_t c = static_cast<std::uint32_t>(rng.below(W * H));
                to = {c % W, c / W};
            } else {
                const std::uint32_t x0 = from.x > move_rlim ? from.x - move_rlim : 0;
                const std::uint32_t x1 = std::min(W - 1, from.x + move_rlim);
                const std::uint32_t y0 = from.y > move_rlim ? from.y - move_rlim : 0;
                const std::uint32_t y1 = std::min(H - 1, from.y + move_rlim);
                to = {x0 + static_cast<std::uint32_t>(rng.below(x1 - x0 + 1)),
                      y0 + static_cast<std::uint32_t>(rng.below(y1 - y0 + 1))};
            }
            const std::uint32_t cell = to.y * W + to.x;
            if (to == from) return 0;
            const std::size_t other = st.grid[cell];  // cluster index + 1
            double delta = 0;
            if (opts.incremental) {
                const EntityMove moves[2] = {{ci, to.x + 1.0, to.y + 1.0},
                                             {other - 1, from.x + 1.0, from.y + 1.0}};
                delta = engine.eval({moves, other ? std::size_t{2} : std::size_t{1}});
            } else {
                delta = legacy_delta(
                    ci, other ? other - 1 : SIZE_MAX,
                    [&] {
                        st.cluster_loc[ci] = to;
                        if (other) st.cluster_loc[other - 1] = from;
                    },
                    [&] {
                        st.cluster_loc[ci] = from;
                        if (other) st.cluster_loc[other - 1] = to;
                    });
            }
            if (!accept(delta)) return 0;
            st.cluster_loc[ci] = to;
            st.grid[cell] = ci + 1;
            st.grid[from.y * W + from.x] = other;
            if (other) st.cluster_loc[other - 1] = from;
            if (opts.incremental) engine.commit();
            if (commit_stats) ++result.moves_accepted;
            return delta;
        }

        const std::size_t slot =
            static_cast<std::size_t>(rng.below(model.io_entity_ids.size()));
        const std::uint32_t n_pads = static_cast<std::uint32_t>(model.geom.num_pads());
        const std::uint32_t from_pad = st.pad_of_io[slot];
        std::uint32_t to_pad = 0;
        if (move_rlim == 0) {
            to_pad = static_cast<std::uint32_t>(rng.below(n_pads));
        } else {
            // Pad indices run along the perimeter, so an index window is a
            // ring-local window; scale it to keep pad and cluster locality
            // comparable.
            const std::uint32_t span = std::min(
                n_pads - 1, std::max<std::uint32_t>(4, 2 * move_rlim * n_pads /
                                                           (2 * (W + H))));
            to_pad = (from_pad + 1 +
                      static_cast<std::uint32_t>(rng.below(2 * span + 1)) + n_pads - 1 -
                      span) %
                     n_pads;
        }
        if (to_pad == from_pad) return 0;
        const std::size_t other = st.pad_owner[to_pad];  // io slot + 1
        const std::size_t eid = model.io_entity_ids[slot];
        double delta = 0;
        if (opts.incremental) {
            const PlacePt p = pad_pts[to_pad];
            const PlacePt q = pad_pts[from_pad];
            const EntityMove moves[2] = {
                {eid, p.x, p.y},
                {other ? model.io_entity_ids[other - 1] : SIZE_MAX, q.x, q.y}};
            delta = engine.eval({moves, other ? std::size_t{2} : std::size_t{1}});
        } else {
            delta = legacy_delta(
                eid, other ? model.io_entity_ids[other - 1] : SIZE_MAX,
                [&] {
                    st.pad_of_io[slot] = to_pad;
                    if (other) st.pad_of_io[other - 1] = from_pad;
                },
                [&] {
                    st.pad_of_io[slot] = from_pad;
                    if (other) st.pad_of_io[other - 1] = to_pad;
                });
        }
        if (!accept(delta)) return 0;
        st.pad_of_io[slot] = to_pad;
        st.pad_owner[to_pad] = slot + 1;
        st.pad_owner[from_pad] = other;
        if (other) st.pad_of_io[other - 1] = from_pad;
        if (opts.incremental) engine.commit();
        if (commit_stats) ++result.moves_accepted;
        return delta;
    };

    const bool do_anneal = warm || opts.anneal;
    if (do_anneal && !model.nets.empty()) {
        double temperature;
        if (warm) {
            // Low opening temperature: ~4x the exit threshold, so the polish
            // decays through O(10) rounds of strictly local refinement.
            temperature = kPolishT0 * std::max(cost, 1.0) / static_cast<double>(model.nets.size());
        } else {
            // Initial temperature: accept-everything probe (VPR's 20*sigma rule).
            std::vector<double> deltas;
            for (int i = 0; i < 100; ++i) {
                const double d = try_move(1e18, false);
                deltas.push_back(d);
            }
            double mean = 0;
            for (double d : deltas) mean += d;
            mean /= static_cast<double>(deltas.size());
            double var = 0;
            for (double d : deltas) var += (d - mean) * (d - mean);
            var /= static_cast<double>(deltas.size());
            temperature = std::max(1.0, 20.0 * std::sqrt(var));
            // Recompute cost (probe moves changed the state).
            cost = opts.incremental ? engine.total_cost() : st.total_cost();
        }

        const std::size_t n_ent = model.entities.size();
        const auto moves_per_temp = static_cast<std::size_t>(
            std::max(16.0, opts.moves_scale * std::pow(static_cast<double>(n_ent), 4.0 / 3.0)));

        const double alpha = warm ? kPolishAlpha : opts.alpha;
        // Warm runs shrink the proposal window geometrically from half the
        // fabric down to 1 over the round budget.
        const double rlim0 = std::max(2.0, 0.5 * static_cast<double>(std::max(W, H)));
        const double rlim_shrink =
            max_rounds > 1 ? std::pow(1.0 / rlim0, 1.0 / (max_rounds - 1)) : 1.0;
        double rlim_f = rlim0;
        for (int round = 0; round < max_rounds; ++round) {
            if (warm)
                move_rlim = static_cast<std::uint32_t>(
                    std::max(1.0, std::llround(rlim_f) * 1.0));
            for (std::size_t m = 0; m < moves_per_temp; ++m) cost += try_move(temperature, true);
            temperature *= alpha;
            rlim_f *= rlim_shrink;
            ++result.anneal_rounds;
            result.cost_trajectory.push_back(cost);
            if (temperature <
                0.005 * std::max(cost, 1.0) / static_cast<double>(model.nets.size()))
                break;
        }
    }

    // --- export -------------------------------------------------------------------
    result.cluster_loc = st.cluster_loc;
    for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
        result.pi_pad[md.primary_inputs[i].first] = st.pad_of_io[i];
    for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
        result.po_pad[md.primary_outputs[i].first] =
            st.pad_of_io[md.primary_inputs.size() + i];
    result.final_cost = st.total_cost();
    return result;
}

/// One analytical-family replica: global placement + legalization (flat
/// cad/place_analytical.cpp, or the cad/place_multilevel.cpp V-cycle when
/// `engine == PlaceEngine::Multilevel`), then the optional warm-start
/// polish anneal — both engines share the polish/descent tail.
Placement place_analytical_single(const MappedDesign& md, const PlaceModel& model,
                                  const PlaceOptions& opts, std::uint64_t seed,
                                  PlaceEngine engine) {
    AnalyticalResult ar = engine == PlaceEngine::Multilevel
                              ? place_multilevel_global(model, opts, seed)
                              : place_analytical_global(model, opts, seed);
    Placement result;
    if (opts.polish_rounds > 0 && !model.nets.empty()) {
        result = anneal_single(md, model, opts, seed, &ar.cluster_loc, &ar.pad_of_io,
                               opts.polish_rounds);
        // Final detailed-placement descent over the polished result (the
        // anneal leaves low-temperature residual the exhaustive window
        // cleans up deterministically).
        std::vector<std::uint32_t> pad_of_io(model.io_entity_ids.size());
        for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
            pad_of_io[i] = result.pi_pad.at(md.primary_inputs[i].first);
        for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
            pad_of_io[md.primary_inputs.size() + i] =
                result.po_pad.at(md.primary_outputs[i].first);
        refine_detailed(model, pad_of_io, result.cluster_loc);
        for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
            result.pi_pad[md.primary_inputs[i].first] = pad_of_io[i];
        for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
            result.po_pad[md.primary_outputs[i].first] =
                pad_of_io[md.primary_inputs.size() + i];
        result.final_cost = model.total_cost(result.cluster_loc, pad_of_io);
    } else {
        refine_detailed(model, ar.pad_of_io, ar.cluster_loc);
        result.cluster_loc = ar.cluster_loc;
        for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
            result.pi_pad[md.primary_inputs[i].first] = ar.pad_of_io[i];
        for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
            result.po_pad[md.primary_outputs[i].first] =
                ar.pad_of_io[md.primary_inputs.size() + i];
        result.final_cost = model.total_cost(ar.cluster_loc, ar.pad_of_io);
    }
    result.engine = engine;
    result.analytical = std::move(ar.stats);
    return result;
}

}  // namespace

Placement place(const PackedDesign& pd, const MappedDesign& md, const core::ArchSpec& arch,
                const PlaceOptions& opts) {
    const PlaceModel model(pd, md, arch);

    if (opts.algorithm == PlaceAlgorithm::Analytical)
        return place_analytical_single(md, model, opts, opts.seed, PlaceEngine::Analytical);
    if (opts.algorithm == PlaceAlgorithm::Multilevel)
        return place_analytical_single(md, model, opts, opts.seed, PlaceEngine::Multilevel);

    const int n_anneal = std::max(1, opts.parallel_seeds);
    const bool with_analytical = opts.algorithm == PlaceAlgorithm::Race;
    const int n = n_anneal + (with_analytical ? 2 : 0);
    if (n == 1)
        return anneal_single(md, model, opts, opts.seed, nullptr, nullptr, opts.max_rounds);

    // Race N independently-seeded replicas on the pool (in Race mode the
    // flat analytical and multilevel engines are the two final replicas, in
    // that fixed order). Every replica is a pure
    // function of (model, opts, derived seed), and the winner is picked by
    // (final_cost, replica index) over the results in replica order, so the
    // outcome is identical whatever the pool size is. Replica slots outlive
    // the pool (reverse destruction order). parallel_for drains every
    // replica before rethrowing the lowest-index failure, which matches the
    // order a serial run of the same seeds would report.
    std::vector<Placement> results(static_cast<std::size_t>(n));
    std::vector<double> wall_ms(static_cast<std::size_t>(n), 0.0);
    // Never spawn more workers than replicas: a wide default pool would only
    // oversubscribe the machine when many place() races run concurrently
    // (e.g. inside batch jobs — which should still pin `threads` explicitly).
    const std::size_t workers =
        std::min<std::size_t>(opts.threads != 0 ? opts.threads : base::ThreadPool::default_workers(),
                              static_cast<std::size_t>(n));
    base::ThreadPool pool(workers);
    pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
        base::WallTimer t;
        const std::uint64_t rseed = base::Rng::derive_seed(opts.seed, i);
        if (with_analytical && i >= static_cast<std::size_t>(n_anneal))
            results[i] = place_analytical_single(
                md, model, opts, rseed,
                i == static_cast<std::size_t>(n_anneal) ? PlaceEngine::Analytical
                                                        : PlaceEngine::Multilevel);
        else
            results[i] = anneal_single(md, model, opts, rseed, nullptr, nullptr,
                                       opts.max_rounds);
        wall_ms[i] = t.elapsed_ms();
    });

    std::size_t win = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        if (results[i].final_cost < results[win].final_cost) win = i;

    std::vector<PlaceReplica> replicas(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        replicas[i].seed = base::Rng::derive_seed(opts.seed, i);
        replicas[i].final_cost = results[i].final_cost;
        replicas[i].wall_ms = wall_ms[i];
        replicas[i].cost_trajectory = results[i].cost_trajectory;
        replicas[i].engine = results[i].engine;
    }

    Placement winner = std::move(results[win]);
    winner.replicas = std::move(replicas);
    winner.winner_replica = win;
    return winner;
}

double placement_wirelength(const PackedDesign& pd, const MappedDesign& md,
                            const core::ArchSpec& arch, const Placement& pl) {
    // Cheap recomputation: reuse place's machinery is awkward; compute HPWL
    // directly over signals here.
    const auto consumers = pd.build_consumers(md);
    core::FabricGeometry geom(arch);
    auto pad_pt = [&](std::uint32_t pad) {
        const core::IobCoord io = geom.pad_iob(pad);
        switch (io.side) {
            case core::Side::Bottom: return std::pair<double, double>{io.offset + 1.0, 0.0};
            case core::Side::Top:
                return std::pair<double, double>{io.offset + 1.0, arch.height + 1.0};
            case core::Side::Left: return std::pair<double, double>{0.0, io.offset + 1.0};
            case core::Side::Right:
                return std::pair<double, double>{arch.width + 1.0, io.offset + 1.0};
        }
        return std::pair<double, double>{0, 0};
    };
    std::unordered_map<NetId, std::size_t> producer_cluster;
    for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
        for (NetId s : pd.clusters[ci].produced(md)) producer_cluster[s] = ci;
    std::unordered_map<NetId, std::string> pi_name;
    for (const auto& [name, s] : md.primary_inputs) pi_name[s] = name;

    double total = 0;
    std::unordered_map<NetId, std::vector<std::pair<double, double>>> pts;
    for (const auto& [s, clist] : consumers) {
        auto& v = pts[s];
        for (std::size_t c : clist)
            v.emplace_back(pl.cluster_loc[c].x + 1.0, pl.cluster_loc[c].y + 1.0);
    }
    for (const auto& [name, s] : md.primary_outputs) pts[s].push_back(pad_pt(pl.po_pad.at(name)));
    for (auto& [s, v] : pts) {
        if (md.constant_signals.count(s)) continue;
        const auto pit = pi_name.find(s);
        if (pit != pi_name.end()) {
            v.push_back(pad_pt(pl.pi_pad.at(pit->second)));
        } else {
            const auto dit = producer_cluster.find(s);
            if (dit != producer_cluster.end())
                v.emplace_back(pl.cluster_loc[dit->second].x + 1.0,
                               pl.cluster_loc[dit->second].y + 1.0);
        }
        if (v.size() < 2) continue;
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (auto [x, y] : v) {
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymin = std::min(ymin, y);
            ymax = std::max(ymax, y);
        }
        total += (xmax - xmin) + (ymax - ymin);
    }
    return total;
}

std::uint64_t PlaceOptions::fingerprint() const noexcept {
    static_assert(sizeof(PlaceOptions) == 88,
                  "PlaceOptions changed: update fingerprint() and this assert");
    Fingerprint f;
    f.mix(seed)
        .mix(alpha)
        .mix(moves_scale)
        .mix(anneal)
        .mix(incremental)
        .mix(algorithm)
        .mix(parallel_seeds)
        .mix(threads)
        .mix(max_rounds)
        .mix(solver_passes)
        .mix(solver_max_iters)
        .mix(polish_rounds)
        .mix(solver_tolerance)
        .mix(anchor_weight)
        .mix(coarsen_ratio)
        .mix(min_coarse_nodes)
        .mix(max_levels);
    return f.digest();
}

}  // namespace afpga::cad
