#include "cad/place.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "base/threadpool.hpp"
#include "base/timer.hpp"
#include "cad/fingerprint.hpp"
#include "cad/place_cost.hpp"

namespace afpga::cad {

using base::check;
using core::PlbCoord;

namespace {

/// A movable object: a cluster or an I/O signal bound to a pad.
struct Entity {
    enum class Kind : std::uint8_t { Cluster, Pi, Po } kind;
    std::size_t index;    ///< cluster index, or index into pi/po lists
    std::size_t io_slot;  ///< index into pad_of_io (Pi/Po); SIZE_MAX for clusters
};

struct Pt {
    double x;
    double y;
};

/// One logical connection for wirelength: driver + sinks as entity ids.
struct PlNet {
    std::vector<std::size_t> entities;  // indices into the entity table
};

struct State {
    const core::ArchSpec* arch;
    core::FabricGeometry geom;
    std::vector<Entity> entities;
    std::vector<PlNet> nets;
    std::vector<std::vector<std::size_t>> nets_of_entity;

    // positions
    std::vector<PlbCoord> cluster_loc;
    std::vector<std::uint32_t> pad_of_io;  // io slot -> pad
    std::vector<std::size_t> io_entity_ids;

    // occupancy
    std::vector<std::size_t> grid;  // (x + y*W) -> cluster index + 1, 0 = empty
    std::vector<std::size_t> pad_owner;  // pad -> io slot + 1

    explicit State(const core::ArchSpec& a) : arch(&a), geom(a) {}

    [[nodiscard]] Pt pad_pt(std::uint32_t pad) const {
        const core::IobCoord io = geom.pad_iob(pad);
        switch (io.side) {
            case core::Side::Bottom: return {io.offset + 1.0, 0.0};
            case core::Side::Top: return {io.offset + 1.0, arch->height + 1.0};
            case core::Side::Left: return {0.0, io.offset + 1.0};
            case core::Side::Right: return {arch->width + 1.0, io.offset + 1.0};
        }
        return {0, 0};
    }

    [[nodiscard]] Pt position(std::size_t eid) const {
        const Entity& e = entities[eid];
        if (e.kind == Entity::Kind::Cluster) {
            const PlbCoord c = cluster_loc[e.index];
            return {c.x + 1.0, c.y + 1.0};
        }
        // io_slot is stored on the entity; the pre-refactor code re-derived
        // it with a linear search on every position lookup (see io_slot_find).
        return pad_pt(pad_of_io[e.io_slot]);
    }

    /// Pre-refactor io-slot lookup, kept verbatim as the bench baseline: the
    /// seed placer ran this linear search for every I/O position query.
    [[nodiscard]] std::size_t io_slot_find(std::size_t eid) const {
        const auto it = std::find(io_entity_ids.begin(), io_entity_ids.end(), eid);
        return static_cast<std::size_t>(it - io_entity_ids.begin());
    }

    [[nodiscard]] Pt position_prerefactor(std::size_t eid) const {
        const Entity& e = entities[eid];
        if (e.kind == Entity::Kind::Cluster) {
            const PlbCoord c = cluster_loc[e.index];
            return {c.x + 1.0, c.y + 1.0};
        }
        return pad_pt(pad_of_io[io_slot_find(eid)]);
    }

    template <typename PositionFn>
    [[nodiscard]] double net_cost_via(const PlNet& n, PositionFn&& pos) const {
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (std::size_t eid : n.entities) {
            const Pt p = pos(eid);
            xmin = std::min(xmin, p.x);
            xmax = std::max(xmax, p.x);
            ymin = std::min(ymin, p.y);
            ymax = std::max(ymax, p.y);
        }
        return (xmax - xmin) + (ymax - ymin);
    }

    [[nodiscard]] double net_cost(const PlNet& n) const {
        return net_cost_via(n, [this](std::size_t eid) { return position(eid); });
    }

    /// Baseline move evaluation: rescan the given nets through the
    /// pre-refactor position lookup (linear io-slot search included).
    [[nodiscard]] double cost_of_prerefactor(const std::vector<std::size_t>& net_ids) const {
        double c = 0;
        for (std::size_t ni : net_ids)
            c += net_cost_via(nets[ni],
                              [this](std::size_t eid) { return position_prerefactor(eid); });
        return c;
    }

    [[nodiscard]] double total_cost() const {
        double c = 0;
        for (const PlNet& n : nets) c += net_cost(n);
        return c;
    }
};

/// One complete annealing run with an explicit seed — the unit of work a
/// multi-seed race submits per replica. Pure function of its arguments (each
/// call owns its State, Rng and PlaceCostEngine), so replicas are safe to run
/// concurrently over the same shared pd/md/arch.
Placement place_single(const PackedDesign& pd, const MappedDesign& md,
                       const core::ArchSpec& arch, const PlaceOptions& opts,
                       std::uint64_t seed) {
    arch.validate();
    State st(arch);
    const std::uint32_t W = arch.width;
    const std::uint32_t H = arch.height;
    check(pd.clusters.size() <= std::size_t{W} * H,
          "place: design needs " + std::to_string(pd.clusters.size()) + " PLBs but fabric has " +
              std::to_string(W * H));
    check(md.primary_inputs.size() + md.primary_outputs.size() <= st.geom.num_pads(),
          "place: not enough I/O pads");

    // --- entity table ---------------------------------------------------------
    for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
        st.entities.push_back({Entity::Kind::Cluster, ci, SIZE_MAX});
    for (std::size_t i = 0; i < md.primary_inputs.size(); ++i) {
        st.io_entity_ids.push_back(st.entities.size());
        st.entities.push_back({Entity::Kind::Pi, i, st.io_entity_ids.size() - 1});
    }
    for (std::size_t i = 0; i < md.primary_outputs.size(); ++i) {
        st.io_entity_ids.push_back(st.entities.size());
        st.entities.push_back({Entity::Kind::Po, i, st.io_entity_ids.size() - 1});
    }

    // --- nets ------------------------------------------------------------------
    const auto consumers = pd.build_consumers(md);
    std::unordered_map<NetId, std::size_t> pi_entity;  // signal -> entity
    for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
        pi_entity[md.primary_inputs[i].second] = pd.clusters.size() + i;
    std::unordered_map<NetId, std::vector<std::size_t>> po_entities;
    for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
        po_entities[md.primary_outputs[i].second].push_back(pd.clusters.size() +
                                                            md.primary_inputs.size() + i);
    std::unordered_map<NetId, std::size_t> producer_cluster;
    for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
        for (NetId s : pd.clusters[ci].produced(md)) producer_cluster[s] = ci;

    std::unordered_map<NetId, PlNet> net_by_signal;
    auto net_for = [&](NetId s) -> PlNet& { return net_by_signal[s]; };
    for (const auto& [s, clist] : consumers) {
        PlNet& n = net_for(s);
        for (std::size_t c : clist)
            if (std::find(n.entities.begin(), n.entities.end(), c) == n.entities.end())
                n.entities.push_back(c);
    }
    for (const auto& [s, ents] : po_entities)
        for (std::size_t e : ents) net_for(s).entities.push_back(e);
    for (auto& [s, n] : net_by_signal) {
        if (md.constant_signals.count(s)) {
            n.entities.clear();  // constants are materialised inside the IM
            continue;
        }
        const auto pit = pi_entity.find(s);
        if (pit != pi_entity.end()) {
            n.entities.push_back(pit->second);
        } else {
            const auto dit = producer_cluster.find(s);
            check(dit != producer_cluster.end(), "place: undriven signal in netlist");
            if (std::find(n.entities.begin(), n.entities.end(), dit->second) ==
                n.entities.end())
                n.entities.push_back(dit->second);
        }
    }
    for (auto& [s, n] : net_by_signal)
        if (n.entities.size() >= 2) st.nets.push_back(std::move(n));
    st.nets_of_entity.assign(st.entities.size(), {});
    for (std::size_t ni = 0; ni < st.nets.size(); ++ni)
        for (std::size_t eid : st.nets[ni].entities) st.nets_of_entity[eid].push_back(ni);

    // --- initial placement ------------------------------------------------------
    base::Rng rng(seed);
    st.cluster_loc.resize(pd.clusters.size());
    st.grid.assign(std::size_t{W} * H, 0);
    {
        std::vector<std::uint32_t> cells(W * H);
        for (std::uint32_t i = 0; i < W * H; ++i) cells[i] = i;
        rng.shuffle(cells);
        for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci) {
            st.cluster_loc[ci] = {cells[ci] % W, cells[ci] / W};
            st.grid[cells[ci]] = ci + 1;
        }
    }
    st.pad_of_io.resize(st.io_entity_ids.size());
    st.pad_owner.assign(st.geom.num_pads(), 0);
    {
        std::vector<std::uint32_t> pads(st.geom.num_pads());
        for (std::uint32_t i = 0; i < pads.size(); ++i) pads[i] = i;
        rng.shuffle(pads);
        for (std::size_t i = 0; i < st.io_entity_ids.size(); ++i) {
            st.pad_of_io[i] = pads[i];
            st.pad_owner[pads[i]] = i + 1;
        }
    }

    // --- incremental cost engine -------------------------------------------------
    // Entities and nets mirror the State tables; the engine caches positions
    // and per-net bounding boxes so move evaluation never rescans positions.
    PlaceCostEngine engine;
    if (opts.incremental) {
        for (std::size_t eid = 0; eid < st.entities.size(); ++eid) {
            const Pt p = st.position(eid);
            engine.add_entity(p.x, p.y);
        }
        for (const PlNet& n : st.nets) engine.add_net(n.entities);
        engine.finalize();
    }

    // Pad coordinates are pure geometry; table them once for move proposals.
    std::vector<Pt> pad_pts(st.geom.num_pads());
    for (std::uint32_t p = 0; p < pad_pts.size(); ++p) pad_pts[p] = st.pad_pt(p);

    double cost = opts.incremental ? engine.total_cost() : st.total_cost();

    Placement result;

    // --- annealing ---------------------------------------------------------------
    auto try_move = [&](double temperature, bool commit_stats) -> double {
        // Returns the applied delta (0 if rejected).
        const bool move_cluster =
            st.io_entity_ids.empty() ||
            (!pd.clusters.empty() && rng.chance(0.7));
        if (move_cluster && pd.clusters.empty()) return 0;
        if (commit_stats) ++result.moves_tried;

        // Legacy (pre-refactor) evaluation: rescan the affected nets before
        // and after a tentative mutation, then roll back.
        auto legacy_delta = [&](std::size_t eid_a, std::size_t eid_b,
                                auto&& apply, auto&& revert) {
            std::vector<std::size_t> affected = st.nets_of_entity[eid_a];
            if (eid_b != SIZE_MAX)
                for (std::size_t ni : st.nets_of_entity[eid_b]) affected.push_back(ni);
            std::sort(affected.begin(), affected.end());
            affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
            const double before = st.cost_of_prerefactor(affected);
            apply();
            const double after = st.cost_of_prerefactor(affected);
            revert();
            return after - before;
        };
        auto accept = [&](double delta) {
            return delta <= 0 ||
                   rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9));
        };

        if (move_cluster) {
            const std::size_t ci = static_cast<std::size_t>(rng.below(pd.clusters.size()));
            const std::uint32_t cell = static_cast<std::uint32_t>(rng.below(W * H));
            const PlbCoord to{cell % W, cell / W};
            const PlbCoord from = st.cluster_loc[ci];
            if (to == from) return 0;
            const std::size_t other = st.grid[cell];  // cluster index + 1
            double delta = 0;
            if (opts.incremental) {
                const EntityMove moves[2] = {{ci, to.x + 1.0, to.y + 1.0},
                                             {other - 1, from.x + 1.0, from.y + 1.0}};
                delta = engine.eval({moves, other ? std::size_t{2} : std::size_t{1}});
            } else {
                delta = legacy_delta(
                    ci, other ? other - 1 : SIZE_MAX,
                    [&] {
                        st.cluster_loc[ci] = to;
                        if (other) st.cluster_loc[other - 1] = from;
                    },
                    [&] {
                        st.cluster_loc[ci] = from;
                        if (other) st.cluster_loc[other - 1] = to;
                    });
            }
            if (!accept(delta)) return 0;
            st.cluster_loc[ci] = to;
            st.grid[cell] = ci + 1;
            st.grid[from.y * W + from.x] = other;
            if (other) st.cluster_loc[other - 1] = from;
            if (opts.incremental) engine.commit();
            if (commit_stats) ++result.moves_accepted;
            return delta;
        }

        const std::size_t slot = static_cast<std::size_t>(rng.below(st.io_entity_ids.size()));
        const std::uint32_t to_pad = static_cast<std::uint32_t>(rng.below(st.geom.num_pads()));
        const std::uint32_t from_pad = st.pad_of_io[slot];
        if (to_pad == from_pad) return 0;
        const std::size_t other = st.pad_owner[to_pad];  // io slot + 1
        const std::size_t eid = st.io_entity_ids[slot];
        double delta = 0;
        if (opts.incremental) {
            const Pt p = pad_pts[to_pad];
            const Pt q = pad_pts[from_pad];
            const EntityMove moves[2] = {
                {eid, p.x, p.y},
                {other ? st.io_entity_ids[other - 1] : SIZE_MAX, q.x, q.y}};
            delta = engine.eval({moves, other ? std::size_t{2} : std::size_t{1}});
        } else {
            delta = legacy_delta(
                eid, other ? st.io_entity_ids[other - 1] : SIZE_MAX,
                [&] {
                    st.pad_of_io[slot] = to_pad;
                    if (other) st.pad_of_io[other - 1] = from_pad;
                },
                [&] {
                    st.pad_of_io[slot] = from_pad;
                    if (other) st.pad_of_io[other - 1] = to_pad;
                });
        }
        if (!accept(delta)) return 0;
        st.pad_of_io[slot] = to_pad;
        st.pad_owner[to_pad] = slot + 1;
        st.pad_owner[from_pad] = other;
        if (other) st.pad_of_io[other - 1] = from_pad;
        if (opts.incremental) engine.commit();
        if (commit_stats) ++result.moves_accepted;
        return delta;
    };

    if (opts.anneal && !st.nets.empty()) {
        // Initial temperature: accept-everything probe (VPR's 20*sigma rule).
        std::vector<double> deltas;
        for (int i = 0; i < 100; ++i) {
            const double d = try_move(1e18, false);
            deltas.push_back(d);
        }
        double mean = 0;
        for (double d : deltas) mean += d;
        mean /= static_cast<double>(deltas.size());
        double var = 0;
        for (double d : deltas) var += (d - mean) * (d - mean);
        var /= static_cast<double>(deltas.size());
        double temperature = std::max(1.0, 20.0 * std::sqrt(var));

        const std::size_t n_ent = st.entities.size();
        const auto moves_per_temp = static_cast<std::size_t>(
            std::max(16.0, opts.moves_scale * std::pow(static_cast<double>(n_ent), 4.0 / 3.0)));
        // Recompute cost (probe moves changed the state).
        cost = opts.incremental ? engine.total_cost() : st.total_cost();

        for (int round = 0; round < 300; ++round) {
            for (std::size_t m = 0; m < moves_per_temp; ++m) cost += try_move(temperature, true);
            temperature *= opts.alpha;
            ++result.anneal_rounds;
            result.cost_trajectory.push_back(cost);
            if (temperature < 0.005 * std::max(cost, 1.0) / static_cast<double>(st.nets.size()))
                break;
        }
    }

    // --- export -------------------------------------------------------------------
    result.cluster_loc = st.cluster_loc;
    for (std::size_t i = 0; i < md.primary_inputs.size(); ++i)
        result.pi_pad[md.primary_inputs[i].first] = st.pad_of_io[i];
    for (std::size_t i = 0; i < md.primary_outputs.size(); ++i)
        result.po_pad[md.primary_outputs[i].first] =
            st.pad_of_io[md.primary_inputs.size() + i];
    result.final_cost = st.total_cost();
    return result;
}

}  // namespace

Placement place(const PackedDesign& pd, const MappedDesign& md, const core::ArchSpec& arch,
                const PlaceOptions& opts) {
    const int n = std::max(1, opts.parallel_seeds);
    if (n == 1) return place_single(pd, md, arch, opts, opts.seed);

    // Race N independently-seeded replicas on the pool. Every replica is a
    // pure function of (pd, md, arch, opts, derived seed), and the winner is
    // picked by (final_cost, replica index) over the results in replica
    // order, so the outcome is identical whatever the pool size is.
    // Replica slots outlive the pool (reverse destruction order). parallel_for
    // drains every replica before rethrowing the lowest-index failure, which
    // matches the order a serial run of the same seeds would report.
    std::vector<Placement> results(static_cast<std::size_t>(n));
    std::vector<double> wall_ms(static_cast<std::size_t>(n), 0.0);
    // Never spawn more workers than replicas: a wide default pool would only
    // oversubscribe the machine when many place() races run concurrently
    // (e.g. inside batch jobs — which should still pin `threads` explicitly).
    const std::size_t workers =
        std::min<std::size_t>(opts.threads != 0 ? opts.threads : base::ThreadPool::default_workers(),
                              static_cast<std::size_t>(n));
    base::ThreadPool pool(workers);
    pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
        base::WallTimer t;
        results[i] = place_single(pd, md, arch, opts, base::Rng::derive_seed(opts.seed, i));
        wall_ms[i] = t.elapsed_ms();
    });

    std::size_t win = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        if (results[i].final_cost < results[win].final_cost) win = i;

    std::vector<PlaceReplica> replicas(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        replicas[i].seed = base::Rng::derive_seed(opts.seed, i);
        replicas[i].final_cost = results[i].final_cost;
        replicas[i].wall_ms = wall_ms[i];
        replicas[i].cost_trajectory = results[i].cost_trajectory;
    }

    Placement winner = std::move(results[win]);
    winner.replicas = std::move(replicas);
    winner.winner_replica = win;
    return winner;
}

double placement_wirelength(const PackedDesign& pd, const MappedDesign& md,
                            const core::ArchSpec& arch, const Placement& pl) {
    // Cheap recomputation: reuse place's machinery is awkward; compute HPWL
    // directly over signals here.
    const auto consumers = pd.build_consumers(md);
    core::FabricGeometry geom(arch);
    auto pad_pt = [&](std::uint32_t pad) {
        const core::IobCoord io = geom.pad_iob(pad);
        switch (io.side) {
            case core::Side::Bottom: return std::pair<double, double>{io.offset + 1.0, 0.0};
            case core::Side::Top:
                return std::pair<double, double>{io.offset + 1.0, arch.height + 1.0};
            case core::Side::Left: return std::pair<double, double>{0.0, io.offset + 1.0};
            case core::Side::Right:
                return std::pair<double, double>{arch.width + 1.0, io.offset + 1.0};
        }
        return std::pair<double, double>{0, 0};
    };
    std::unordered_map<NetId, std::size_t> producer_cluster;
    for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
        for (NetId s : pd.clusters[ci].produced(md)) producer_cluster[s] = ci;
    std::unordered_map<NetId, std::string> pi_name;
    for (const auto& [name, s] : md.primary_inputs) pi_name[s] = name;

    double total = 0;
    std::unordered_map<NetId, std::vector<std::pair<double, double>>> pts;
    for (const auto& [s, clist] : consumers) {
        auto& v = pts[s];
        for (std::size_t c : clist)
            v.emplace_back(pl.cluster_loc[c].x + 1.0, pl.cluster_loc[c].y + 1.0);
    }
    for (const auto& [name, s] : md.primary_outputs) pts[s].push_back(pad_pt(pl.po_pad.at(name)));
    for (auto& [s, v] : pts) {
        if (md.constant_signals.count(s)) continue;
        const auto pit = pi_name.find(s);
        if (pit != pi_name.end()) {
            v.push_back(pad_pt(pl.pi_pad.at(pit->second)));
        } else {
            const auto dit = producer_cluster.find(s);
            if (dit != producer_cluster.end())
                v.emplace_back(pl.cluster_loc[dit->second].x + 1.0,
                               pl.cluster_loc[dit->second].y + 1.0);
        }
        if (v.size() < 2) continue;
        double xmin = 1e18;
        double xmax = -1e18;
        double ymin = 1e18;
        double ymax = -1e18;
        for (auto [x, y] : v) {
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymin = std::min(ymin, y);
            ymax = std::max(ymax, y);
        }
        total += (xmax - xmin) + (ymax - ymin);
    }
    return total;
}

std::uint64_t PlaceOptions::fingerprint() const noexcept {
    static_assert(sizeof(PlaceOptions) == 40,
                  "PlaceOptions changed: update fingerprint() and this assert");
    Fingerprint f;
    f.mix(seed)
        .mix(alpha)
        .mix(moves_scale)
        .mix(anneal)
        .mix(incremental)
        .mix(parallel_seeds)
        .mix(threads);
    return f.digest();
}

}  // namespace afpga::cad
