#include "cad/flow_stage.hpp"

#include "base/json.hpp"

namespace afpga::cad {

// Cache-transparent defaults: a stage that does not override the hooks has
// no extra key material, is never restored, and publishes nothing.
std::uint64_t FlowStage::options_fingerprint(const FlowContext&) const { return 0; }
bool FlowStage::try_restore(FlowContext&, const ArtifactStore&, std::uint64_t, StageReport&) {
    return false;
}
void FlowStage::publish(const FlowContext&, ArtifactStore&, std::uint64_t) const {}

const double* StageReport::metric(std::string_view name) const {
    for (const auto& [k, v] : metrics)
        if (k == name) return &v;
    return nullptr;
}

const StageReport* FlowTelemetry::stage(std::string_view name) const {
    for (const StageReport& s : stages)
        if (s.stage == name) return &s;
    return nullptr;
}

std::string FlowTelemetry::to_json() const {
    base::JsonWriter w;
    w.begin_object();
    w.key("total_ms").value(total_ms);
    w.key("stages").begin_array();
    for (const StageReport& s : stages) {
        w.begin_object();
        w.key("stage").value(s.stage);
        w.key("wall_ms").value(s.wall_ms);
        w.key("iterations").value(s.iterations);
        if (!s.cache_key.empty()) {
            w.key("key").value(s.cache_key);
            w.key("cache_hit").value(s.cache_hit == 1);
        }
        if (!s.cost_trajectory.empty()) {
            w.key("cost_trajectory").begin_array();
            for (double c : s.cost_trajectory) w.value(c);
            w.end_array();
        }
        for (const auto& [k, v] : s.metrics) w.key(k).value(v);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace afpga::cad
