/// \file
/// Data model of a technology-mapped design.
///
/// Signals are identified by the NetIds of the SOURCE netlist throughout
/// the CAD flow (mapping never invents new logical signals; it only
/// regroups the logic that computes them).
///
/// Threading: a MappedDesign is immutable once techmap returns; concurrent
/// flow stages and batch jobs read it freely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::cad {

using netlist::NetId;       ///< source-netlist signal id, used flow-wide
using netlist::TruthTable;  ///< LUT function representation

/// One LUT function destined for an LE half (<=6 inputs) or a whole LE
/// (exactly 7 inputs through the O2 mux path).
struct LeFunc {
    TruthTable tt;               ///< over `inputs` (variable i = inputs[i])
    std::vector<NetId> inputs;   ///< source-netlist signals (may include `output` itself)
    NetId output;                ///< the signal this function produces
    bool has_feedback = false;   ///< inputs contains output (memory element)
};

/// One Logic Element instance: either two paired halves (A/B) or one
/// 7-input function, plus the optional LUT2 slot.
struct LeInst {
    std::optional<LeFunc> a;      ///< half A (O0)
    std::optional<LeFunc> b;      ///< half B (O1)
    std::optional<LeFunc> full7;  ///< whole-LE function (O2); exclusive with a/b
    std::optional<LeFunc> lut2;   ///< validity slot (O3); inputs must be this LE's outputs

    /// Signals this LE consumes from its input pins (union support, <= 7).
    [[nodiscard]] std::vector<NetId> input_signals() const;
    /// Signals this LE produces (1..3).
    [[nodiscard]] std::vector<NetId> output_signals() const;
    /// Which LE output slot (0..3) produces `signal`, or 4 if none.
    [[nodiscard]] std::uint32_t output_slot(NetId signal) const;
    /// Number of the four hardware outputs in use (filling-ratio numerator).
    [[nodiscard]] std::uint32_t used_outputs() const;
};

/// One Programmable Delay Element instance (from a DELAY cell).
struct PdeInst {
    NetId input;    ///< signal entering the delay line
    NetId output;   ///< delayed signal
    std::int64_t required_delay_ps = 0;  ///< minimum delay the PDE must realise
};

/// The mapped design.
struct MappedDesign {
    std::vector<LeInst> les;    ///< all logic elements
    std::vector<PdeInst> pdes;  ///< all delay elements

    /// Signals that are constants (folded CONST cells): signal -> value.
    std::unordered_map<NetId, bool> constant_signals;
    /// Canonical signal substitution produced by buffer folding.
    std::unordered_map<NetId, NetId> canonical;

    /// Source-netlist primary inputs after canonicalisation (name, signal).
    std::vector<std::pair<std::string, NetId>> primary_inputs;
    /// Source-netlist primary outputs after canonicalisation (name, signal).
    std::vector<std::pair<std::string, NetId>> primary_outputs;

    /// Resolve a signal through the buffer-folding substitution map.
    [[nodiscard]] NetId canon(NetId n) const {
        auto it = canonical.find(n);
        return it == canonical.end() ? n : it->second;
    }

    /// signal -> (le index, output slot) for LE-produced signals.
    [[nodiscard]] std::unordered_map<NetId, std::pair<std::size_t, std::uint32_t>>
    driver_index() const;

    /// Totals for reporting.
    [[nodiscard]] std::size_t num_le_functions() const;
};

}  // namespace afpga::cad
