// Data model of a technology-mapped design.
//
// Signals are identified by the NetIds of the SOURCE netlist throughout the
// CAD flow (mapping never invents new logical signals; it only regroups the
// logic that computes them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::cad {

using netlist::NetId;
using netlist::TruthTable;

/// One LUT function destined for an LE half (<=6 inputs) or a whole LE
/// (exactly 7 inputs through the O2 mux path).
struct LeFunc {
    TruthTable tt;               ///< over `inputs` (variable i = inputs[i])
    std::vector<NetId> inputs;   ///< source-netlist signals (may include `output` itself)
    NetId output;                ///< the signal this function produces
    bool has_feedback = false;   ///< inputs contains output (memory element)
};

/// One Logic Element instance: either two paired halves (A/B) or one
/// 7-input function, plus the optional LUT2 slot.
struct LeInst {
    std::optional<LeFunc> a;      ///< half A (O0)
    std::optional<LeFunc> b;      ///< half B (O1)
    std::optional<LeFunc> full7;  ///< whole-LE function (O2); exclusive with a/b
    std::optional<LeFunc> lut2;   ///< validity slot (O3); inputs must be this LE's outputs

    /// Signals this LE consumes from its input pins (union support, <= 7).
    [[nodiscard]] std::vector<NetId> input_signals() const;
    /// Signals this LE produces (1..3).
    [[nodiscard]] std::vector<NetId> output_signals() const;
    /// Which LE output slot (0..3) produces `signal`, or 4 if none.
    [[nodiscard]] std::uint32_t output_slot(NetId signal) const;
    /// Number of the four hardware outputs in use (filling-ratio numerator).
    [[nodiscard]] std::uint32_t used_outputs() const;
};

/// One Programmable Delay Element instance (from a DELAY cell).
struct PdeInst {
    NetId input;
    NetId output;
    std::int64_t required_delay_ps = 0;
};

/// The mapped design.
struct MappedDesign {
    std::vector<LeInst> les;
    std::vector<PdeInst> pdes;

    /// Signals that are constants (folded CONST cells): signal -> value.
    std::unordered_map<NetId, bool> constant_signals;
    /// Canonical signal substitution produced by buffer folding.
    std::unordered_map<NetId, NetId> canonical;

    /// Source-netlist primary I/O after canonicalisation.
    std::vector<std::pair<std::string, NetId>> primary_inputs;   // name, signal
    std::vector<std::pair<std::string, NetId>> primary_outputs;  // name, signal

    [[nodiscard]] NetId canon(NetId n) const {
        auto it = canonical.find(n);
        return it == canonical.end() ? n : it->second;
    }

    /// signal -> (le index, output slot) for LE-produced signals.
    [[nodiscard]] std::unordered_map<NetId, std::pair<std::size_t, std::uint32_t>>
    driver_index() const;

    /// Totals for reporting.
    [[nodiscard]] std::size_t num_le_functions() const;
};

}  // namespace afpga::cad
