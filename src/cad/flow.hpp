/// \file
/// The end-to-end CAD flow: gates -> LEs -> PLBs -> placement -> routing ->
/// configuration bitstream, plus the delay annotations and PDE solving that
/// asynchronous styles need.
///
/// Threading: run_flow itself is called from one thread, but may fan out
/// internally (multi-seed placement racing via PlaceOptions, partitioned
/// parallel routing + RR build via RouterOptions::threads); concurrent
/// run_flow calls over one shared immutable prebuilt RR graph are the
/// BatchFlowRunner pattern (cad/batch.hpp). Every parallel path is
/// bit-reproducible for any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "asynclib/styles.hpp"
#include "cad/flow_stage.hpp"
#include "cad/mapped.hpp"
#include "cad/pack.hpp"
#include "cad/place.hpp"
#include "cad/route.hpp"
#include "cad/techmap.hpp"
#include "core/bitstream.hpp"
#include "core/elaborate.hpp"
#include "core/rrgraph.hpp"

namespace afpga::cad {

class ArtifactStore;

/// Every knob of the five-stage flow.
struct FlowOptions {
    std::uint64_t seed = 1;   ///< master seed (placement derives from it)
    TechmapOptions techmap;   ///< stage 1 knobs
    PackOptions pack;         ///< stage 2 knobs
    PlaceOptions place;       ///< stage 3 knobs (seed is overridden by `seed`)
    RouterOptions route;      ///< stage 4 knobs, incl. parallel-router threads
    /// Extra relative margin applied to every PDE's required delay on top of
    /// what the generator asked for, absorbing post-route wire delay
    /// (abl_pde_resolution sweeps this).
    double pde_extra_margin = 1.0;
    /// Check every LE function against its source cone after mapping.
    bool verify_mapping = true;
    /// Routing-resource graph to reuse instead of building one per flow. The
    /// graph is immutable through the whole flow (routing and elaboration
    /// only read it), so BatchFlowRunner builds it once per architecture and
    /// shares it across all concurrent jobs. Its ArchSpec fingerprint must
    /// match the arch passed to run_flow.
    std::shared_ptr<const core::RRGraph> prebuilt_rr;
    /// Content-addressed stage cache (cad/artifact.hpp). When set, every
    /// stage consults the store before running and publishes after, so a
    /// re-run that changes only downstream knobs skips the unchanged
    /// upstream stages; telemetry records the per-stage key and hit/miss.
    /// nullptr (the default) disables caching — behaviour and results are
    /// identical either way, caching only skips redundant recomputation.
    std::shared_ptr<ArtifactStore> artifact_store;

    /// Canonical content hash over every SEMANTIC field: the master seed and
    /// all stage option structs. `prebuilt_rr` and `artifact_store` are
    /// excluded — they change where products come from, never what they
    /// are. The implementation pins the struct size so new fields fail
    /// loudly.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Everything the flow produced; enough to elaborate, simulate and report.
struct FlowResult {
    core::ArchSpec arch;      ///< the architecture compiled against
    MappedDesign mapped;      ///< techmap product
    PackedDesign packed;      ///< pack product
    Placement placement;      ///< place product (incl. replica telemetry)
    RoutingResult routing;    ///< route product (incl. partition telemetry)
    /// Shared and immutable: benches reuse it, and concurrent batch jobs on
    /// the same architecture all point at one graph.
    std::shared_ptr<const core::RRGraph> rr;
    std::shared_ptr<core::Bitstream> bits;  ///< the programmed configuration
    /// Pad index -> primary-I/O name, for simulation and reports.
    std::unordered_map<std::uint32_t, std::string> pad_names;
    /// Per-stage wall time, iterations and cost trajectories; serializable
    /// via FlowTelemetry::to_json().
    FlowTelemetry telemetry;

    /// Reconstruct the implemented netlist from the bitstream.
    [[nodiscard]] core::ElaboratedDesign elaborate() const;
};

/// Run the full flow. Throws base::Error when the design cannot be
/// implemented on `arch` (too many PLBs, unroutable, PDE out of range, ...).
[[nodiscard]] FlowResult run_flow(const netlist::Netlist& nl,
                                  const asynclib::MappingHints& hints,
                                  const core::ArchSpec& arch, const FlowOptions& opts = {});

}  // namespace afpga::cad
