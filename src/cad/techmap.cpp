#include "cad/techmap.hpp"

#include <algorithm>
#include <unordered_set>

#include "base/check.hpp"
#include "cad/fingerprint.hpp"

namespace afpga::cad {

using base::check;
using netlist::Cell;
using netlist::CellFunc;
using netlist::CellId;
using netlist::Netlist;

namespace {

/// Outcome of normalising one cell function (constant folding, duplicate and
/// constant input elimination, support pruning).
struct Normalized {
    enum class Kind { Constant, Alias, Function } kind = Kind::Function;
    bool const_value = false;
    NetId alias;
    LeFunc func;
};

Normalized normalize(const TruthTable& tt, const std::vector<NetId>& raw_inputs,
                     NetId output, NetId feedback,
                     const std::unordered_map<NetId, bool>& constants) {
    // Unique, non-constant inputs.
    std::vector<NetId> unique;
    std::vector<std::size_t> var_of_raw(raw_inputs.size());
    std::vector<int> const_of_raw(raw_inputs.size(), -1);
    for (std::size_t i = 0; i < raw_inputs.size(); ++i) {
        const auto cit = constants.find(raw_inputs[i]);
        if (cit != constants.end()) {
            const_of_raw[i] = cit->second ? 1 : 0;
            continue;
        }
        const auto pos = std::find(unique.begin(), unique.end(), raw_inputs[i]);
        if (pos == unique.end()) {
            var_of_raw[i] = unique.size();
            unique.push_back(raw_inputs[i]);
        } else {
            var_of_raw[i] = static_cast<std::size_t>(pos - unique.begin());
        }
    }
    check(unique.size() <= TruthTable::kMaxArity, "techmap: too many distinct inputs");
    TruthTable merged = TruthTable::from_function(
        unique.size(), [&](std::uint32_t m) {
            std::uint32_t raw = 0;
            for (std::size_t i = 0; i < raw_inputs.size(); ++i) {
                const bool v = const_of_raw[i] >= 0 ? const_of_raw[i] == 1
                                                    : ((m >> var_of_raw[i]) & 1u) != 0;
                if (v) raw |= 1u << i;
            }
            return tt.eval(raw);
        });
    std::vector<std::size_t> kept;
    merged = merged.prune_support(&kept);
    std::vector<NetId> inputs;
    inputs.reserve(kept.size());
    for (std::size_t k : kept) inputs.push_back(unique[k]);

    const bool has_feedback =
        feedback.valid() && std::find(inputs.begin(), inputs.end(), feedback) != inputs.end();

    Normalized out;
    if (!has_feedback) {
        if (merged.arity() == 0) {
            out.kind = Normalized::Kind::Constant;
            out.const_value = merged.eval(0);
            return out;
        }
        if (merged.arity() == 1 && merged == TruthTable::identity(1, 0)) {
            out.kind = Normalized::Kind::Alias;
            out.alias = inputs[0];
            return out;
        }
    }
    out.func.tt = std::move(merged);
    out.func.inputs = std::move(inputs);
    out.func.output = output;
    out.func.has_feedback = has_feedback;
    return out;
}

std::vector<NetId> support_union(const LeFunc& x, const LeFunc& y) {
    std::vector<NetId> u = x.inputs;
    for (NetId n : y.inputs)
        if (std::find(u.begin(), u.end(), n) == u.end()) u.push_back(n);
    return u;
}

std::size_t shared_support(const LeFunc& x, const LeFunc& y) {
    std::size_t s = 0;
    for (NetId n : y.inputs)
        if (std::find(x.inputs.begin(), x.inputs.end(), n) != x.inputs.end()) ++s;
    return s;
}

}  // namespace

std::vector<NetId> LeInst::input_signals() const {
    std::vector<NetId> u;
    auto add = [&u](const std::optional<LeFunc>& f) {
        if (!f) return;
        for (NetId n : f->inputs)
            if (std::find(u.begin(), u.end(), n) == u.end()) u.push_back(n);
    };
    add(a);
    add(b);
    add(full7);
    // lut2 inputs are internal LE outputs, not pins.
    return u;
}

std::vector<NetId> LeInst::output_signals() const {
    std::vector<NetId> o;
    if (a) o.push_back(a->output);
    if (b) o.push_back(b->output);
    if (full7) o.push_back(full7->output);
    if (lut2) o.push_back(lut2->output);
    return o;
}

std::uint32_t LeInst::output_slot(NetId signal) const {
    if (a && a->output == signal) return 0;
    if (b && b->output == signal) return 1;
    if (full7 && full7->output == signal) return 2;
    if (lut2 && lut2->output == signal) return 3;
    return 4;
}

std::uint32_t LeInst::used_outputs() const {
    return (a ? 1u : 0u) + (b ? 1u : 0u) + (full7 ? 1u : 0u) + (lut2 ? 1u : 0u);
}

std::unordered_map<NetId, std::pair<std::size_t, std::uint32_t>> MappedDesign::driver_index()
    const {
    std::unordered_map<NetId, std::pair<std::size_t, std::uint32_t>> idx;
    for (std::size_t i = 0; i < les.size(); ++i)
        for (NetId s : les[i].output_signals()) idx[s] = {i, les[i].output_slot(s)};
    return idx;
}

std::size_t MappedDesign::num_le_functions() const {
    std::size_t n = 0;
    for (const LeInst& le : les) n += le.used_outputs();
    return n;
}

MappedDesign techmap(const Netlist& nl, const asynclib::MappingHints& hints,
                     const TechmapOptions& opts) {
    nl.validate();
    MappedDesign md;

    // --- pass A: buffers and constants ---------------------------------------
    for (CellId cid : nl.cell_ids()) {
        const Cell& c = nl.cell(cid);
        if (c.func == CellFunc::Buf) md.canonical[c.output] = c.inputs[0];
        if (c.func == CellFunc::Const0) md.constant_signals[c.output] = false;
        if (c.func == CellFunc::Const1) md.constant_signals[c.output] = true;
    }
    // Path-compress buffer chains.
    for (auto& [from, to] : md.canonical) {
        NetId t = to;
        std::size_t guard = 0;
        while (md.canonical.count(t)) {
            t = md.canonical.at(t);
            check(++guard <= md.canonical.size(), "techmap: buffer cycle");
        }
        to = t;
    }
    auto canon = [&md](NetId n) { return md.canon(n); };
    auto is_const = [&md, &canon](NetId n) { return md.constant_signals.count(canon(n)) != 0; };
    (void)is_const;

    // --- passes B/C: build one function per logic cell ------------------------
    std::vector<LeFunc> funcs;
    std::unordered_map<NetId, std::size_t> func_of_output;

    auto process_cell = [&](const Cell& c) {
        std::vector<NetId> ins;
        ins.reserve(c.inputs.size() + 1);
        for (NetId n : c.inputs) ins.push_back(canon(n));
        NetId feedback;
        TruthTable tt(0);
        if (netlist::is_sequential(c.func)) {
            tt = netlist::cell_function_with_feedback(c.func, c.inputs.size(),
                                                      c.table ? &*c.table : nullptr);
            ins.push_back(c.output);  // the looped variable
            feedback = c.output;
        } else if (c.func == CellFunc::Lut) {
            tt = *c.table;
        } else {
            tt = netlist::cell_function_with_feedback(c.func, c.inputs.size(), nullptr)
                     .cofactor(c.inputs.size(), false);  // drop the unused feedback var
        }
        Normalized n = normalize(tt, ins, c.output, feedback, md.constant_signals);
        switch (n.kind) {
            case Normalized::Kind::Constant:
                md.constant_signals[c.output] = n.const_value;
                break;
            case Normalized::Kind::Alias: {
                md.canonical[c.output] = n.alias;
                break;
            }
            case Normalized::Kind::Function:
                check(n.func.inputs.size() <= 7,
                      "techmap: function wider than 7 inputs: " + c.name);
                func_of_output[c.output] = funcs.size();
                funcs.push_back(std::move(n.func));
                break;
        }
    };

    // Combinational cells in topological order so folding propagates forward;
    // memory elements afterwards (their feedback blocks folding anyway).
    for (CellId cid : nl.topo_order_cut_sequential()) {
        const Cell& c = nl.cell(cid);
        if (c.func == CellFunc::Buf || c.func == CellFunc::Const0 ||
            c.func == CellFunc::Const1 || c.func == CellFunc::Delay)
            continue;
        process_cell(c);
    }
    for (CellId cid : nl.cell_ids()) {
        const Cell& c = nl.cell(cid);
        if (!netlist::is_sequential(c.func)) continue;
        process_cell(c);
    }
    for (CellId cid : nl.cell_ids()) {
        const Cell& c = nl.cell(cid);
        if (c.func != CellFunc::Delay) continue;
        md.pdes.push_back({canon(c.inputs[0]), c.output,
                           c.delay_ps.value_or(netlist::default_delay_ps(c.func))});
    }

    // New aliases may have appeared after funcs were built (only forward in
    // topo order, so existing funcs' inputs may need re-canonicalisation).
    for (LeFunc& f : funcs)
        for (NetId& n : f.inputs) n = canon(n);

    // --- pairing ---------------------------------------------------------------
    std::vector<bool> consumed(funcs.size(), false);
    std::vector<LeInst> les;

    auto make_single = [&](std::size_t i) {
        LeInst le;
        if (funcs[i].inputs.size() == 7)
            le.full7 = funcs[i];
        else
            le.a = funcs[i];
        les.push_back(std::move(le));
    };

    // 7-input functions occupy whole LEs immediately.
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (funcs[i].inputs.size() == 7) {
            make_single(i);
            consumed[i] = true;
        }
    }

    // Hinted rail pairs first.
    if (opts.use_rail_pair_hints) {
        for (const auto& [xo, yo] : hints.rail_pairs) {
            const auto xi = func_of_output.find(canon(xo));
            const auto yi = func_of_output.find(canon(yo));
            if (xi == func_of_output.end() || yi == func_of_output.end()) continue;
            const std::size_t fx = xi->second;
            const std::size_t fy = yi->second;
            if (fx == fy || consumed[fx] || consumed[fy]) continue;
            if (support_union(funcs[fx], funcs[fy]).size() > 6) continue;
            LeInst le;
            le.a = funcs[fx];
            le.b = funcs[fy];
            les.push_back(std::move(le));
            consumed[fx] = consumed[fy] = true;
        }
    }

    // --- validity absorption: try against the rail-pair LEs --------------------
    if (opts.absorb_validity) {
        auto driver_slot = [&les](NetId s) -> std::pair<std::size_t, std::uint32_t> {
            for (std::size_t i = 0; i < les.size(); ++i) {
                const std::uint32_t slot = les[i].output_slot(s);
                if (slot < 4) return {i, slot};
            }
            return {les.size(), 4};
        };
        for (NetId vo : hints.validity_nets) {
            const auto vi = func_of_output.find(canon(vo));
            if (vi == func_of_output.end() || consumed[vi->second]) continue;
            const LeFunc& vf = funcs[vi->second];
            if (vf.inputs.size() != 2 || vf.has_feedback) continue;
            const auto [le0, slot0] = driver_slot(vf.inputs[0]);
            const auto [le1, slot1] = driver_slot(vf.inputs[1]);
            if (le0 >= les.size() || le0 != le1) continue;
            if (slot0 > 2 || slot1 > 2 || les[le0].lut2) continue;
            les[le0].lut2 = vf;
            consumed[vi->second] = true;
        }
    }

    // --- greedy shared-support pairing of the rest ------------------------------
    if (opts.greedy_pairing) {
        for (std::size_t i = 0; i < funcs.size(); ++i) {
            if (consumed[i]) continue;
            std::size_t best = funcs.size();
            std::size_t best_score = 0;
            std::size_t scanned = 0;
            for (std::size_t j = i + 1; j < funcs.size() && scanned < opts.pairing_window; ++j) {
                if (consumed[j]) continue;
                ++scanned;
                if (support_union(funcs[i], funcs[j]).size() > 6) continue;
                const std::size_t score = 1 + shared_support(funcs[i], funcs[j]);
                if (score > best_score) {
                    best_score = score;
                    best = j;
                }
            }
            if (best < funcs.size()) {
                LeInst le;
                le.a = funcs[i];
                le.b = funcs[best];
                les.push_back(std::move(le));
                consumed[i] = consumed[best] = true;
            }
        }
    }
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (!consumed[i]) {
            make_single(i);
            consumed[i] = true;
        }
    }
    md.les = std::move(les);

    // --- primary I/O -------------------------------------------------------------
    for (NetId pi : nl.primary_inputs())
        md.primary_inputs.emplace_back(nl.net(pi).name, pi);
    for (const auto& [name, net] : nl.primary_outputs()) {
        const NetId s = canon(net);
        check(!md.constant_signals.count(s),
              "techmap: constant primary output not supported: " + name);
        md.primary_outputs.emplace_back(name, s);
    }
    return md;
}

void verify_mapping(const Netlist& nl, const MappedDesign& md) {
    // Every LE function must equal the source cell that drives its output,
    // with the cell's inputs resolved through canonicalisation/constants.
    for (const LeInst& le : md.les) {
        for (const LeFunc* f : {le.a ? &*le.a : nullptr, le.b ? &*le.b : nullptr,
                                le.full7 ? &*le.full7 : nullptr, le.lut2 ? &*le.lut2 : nullptr}) {
            if (!f) continue;
            const CellId driver = nl.driver_of(f->output);
            check(driver.valid(), "verify_mapping: LE output is not a cell output");
            const Cell& c = nl.cell(driver);
            const std::size_t arity = f->inputs.size();
            for (std::uint32_t m = 0; m < (1u << arity); ++m) {
                auto value_of = [&](NetId n) -> netlist::Logic {
                    const NetId s = md.canon(n);
                    const auto cit = md.constant_signals.find(s);
                    if (cit != md.constant_signals.end())
                        return netlist::from_bool(cit->second);
                    for (std::size_t i = 0; i < arity; ++i)
                        if (f->inputs[i] == s) return netlist::from_bool((m >> i) & 1u);
                    return netlist::Logic::X;
                };
                std::vector<netlist::Logic> cin;
                cin.reserve(c.inputs.size());
                for (NetId n : c.inputs) cin.push_back(value_of(n));
                const netlist::Logic cur = value_of(c.output);
                const netlist::Logic expect =
                    netlist::eval_cell(c.func, cin, cur, c.table ? &*c.table : nullptr);
                if (expect == netlist::Logic::X) continue;  // cone not fully local
                check(f->tt.eval(m) == (expect == netlist::Logic::T),
                      "verify_mapping: function mismatch on " + c.name);
            }
        }
    }
}

std::uint64_t TechmapOptions::fingerprint() const noexcept {
    // Exhaustiveness guard: growing this struct without mixing the new field
    // here would silently alias artifact keys; fail the build instead.
    static_assert(sizeof(TechmapOptions) == 16,
                  "TechmapOptions changed: update fingerprint() and this assert");
    Fingerprint f;
    f.mix(use_rail_pair_hints)
        .mix(absorb_validity)
        .mix(greedy_pairing)
        .mix(pairing_window);
    return f.digest();
}

}  // namespace afpga::cad
