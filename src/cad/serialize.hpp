/// \file
/// Stable binary serialization of CAD stage artifacts — the encoding layer
/// behind the ArtifactStore's on-disk tier (cad/artifact.hpp).
///
/// Format rules:
///  - every field is little-endian and fixed-width (u8/u32/u64/i64/f64);
///    container sizes are u64 prefixes;
///  - unordered containers are emitted in sorted order, so encoding equal
///    values always yields identical bytes — the disk tier's
///    content-addressing and the bit-identity CI gates rest on this;
///  - decoders validate as they go and throw base::Error on any structural
///    problem (truncation, impossible sizes, arch sanity). The store maps
///    every decode failure to a cache miss, never a crash.
///
/// Versioning: the store prefixes each blob with its format version and a
/// payload checksum (ArtifactStore::kDiskFormatVersion). Whenever an
/// encoder here changes shape, bump that version — old blobs then degrade
/// to misses and are rewritten on the next publish.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cad/artifact.hpp"
#include "core/archspec.hpp"

namespace afpga::cad {

/// Appends little-endian fixed-width fields to a byte buffer.
class BlobWriter {
public:
    void u8(std::uint8_t v);    ///< one byte
    void u32(std::uint32_t v);  ///< 4 bytes, little-endian
    void u64(std::uint64_t v);  ///< 8 bytes, little-endian
    void i64(std::int64_t v);   ///< 8 bytes, little-endian two's complement
    /// Exact bit pattern (bit_cast through u64); NaNs round-trip.
    void f64(double v);
    void boolean(bool v);  ///< one byte, 0 or 1
    /// u64 length prefix + raw bytes.
    void str(std::string_view s);

    /// Everything appended so far.
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
    /// Move the buffer out (the writer is spent afterwards).
    [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Consumes fields written by BlobWriter; throws base::Error on overrun.
class BlobReader {
public:
    /// Reads from `bytes`, which must outlive the reader.
    explicit BlobReader(const std::vector<std::uint8_t>& bytes)
        : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

    [[nodiscard]] std::uint8_t u8();    ///< one byte
    [[nodiscard]] std::uint32_t u32();  ///< 4 bytes, little-endian
    [[nodiscard]] std::uint64_t u64();  ///< 8 bytes, little-endian
    [[nodiscard]] std::int64_t i64();   ///< 8 bytes, little-endian two's complement
    [[nodiscard]] double f64();         ///< exact bit pattern (NaNs round-trip)
    [[nodiscard]] bool boolean();       ///< throws on any byte other than 0/1
    [[nodiscard]] std::string str();    ///< u64 length prefix + raw bytes

    /// Bytes not yet consumed (for count-sanity checks before reserving).
    [[nodiscard]] std::size_t remaining() const noexcept {
        return static_cast<std::size_t>(end_ - p_);
    }
    /// Throws unless every byte was consumed (trailing garbage = corrupt).
    void expect_end() const;

private:
    const std::uint8_t* need(std::size_t n);

    const std::uint8_t* p_;
    const std::uint8_t* end_;
};

/// ArchSpec round-trip (used by the BitstreamArtifact codec so a blob can
/// be decoded without external context). decode_arch() validates the
/// decoded spec and throws base::Error on nonsense parameters.
void encode_arch(const core::ArchSpec& arch, BlobWriter& w);
[[nodiscard]] core::ArchSpec decode_arch(BlobReader& r);

namespace detail {
/// Shared blob entry points layered over each codec's encode/decode:
/// encode_blob yields the full payload, decode_blob additionally requires
/// the payload to be fully consumed.
template <typename T, typename Codec>
struct BlobCodecBase {
    /// Encode `v` into a fresh byte buffer.
    [[nodiscard]] static std::vector<std::uint8_t> encode_blob(const T& v) {
        BlobWriter w;
        Codec::encode(v, w);
        return std::move(w).take();
    }
    /// Decode a full payload; throws base::Error on corruption or
    /// trailing bytes.
    [[nodiscard]] static T decode_blob(const std::vector<std::uint8_t>& bytes) {
        BlobReader r(bytes);
        T v = Codec::decode(r);
        r.expect_end();
        return v;
    }
};
}  // namespace detail

// Each stage product's codec. kTypeId is embedded in the disk-blob header
// (a cross-type read is a miss, not a decode of the wrong shape);
// approx_bytes is the coarse, stable in-memory footprint estimate the
// store's byte budget accounts in.

/// Techmap-product codec.
template <>
struct ArtifactCodec<MappedDesign>
    : detail::BlobCodecBase<MappedDesign, ArtifactCodec<MappedDesign>> {
    static constexpr std::uint32_t kTypeId = 1;  ///< disk-blob header type tag
    /// Coarse in-memory footprint for the store's byte budget.
    [[nodiscard]] static std::size_t approx_bytes(const MappedDesign& v) noexcept;
    static void encode(const MappedDesign& v, BlobWriter& w);  ///< append `v` to `w`
    [[nodiscard]] static MappedDesign decode(BlobReader& r);   ///< throws on corruption
};

/// Pack-product codec.
template <>
struct ArtifactCodec<PackedDesign>
    : detail::BlobCodecBase<PackedDesign, ArtifactCodec<PackedDesign>> {
    static constexpr std::uint32_t kTypeId = 2;  ///< disk-blob header type tag
    /// Coarse in-memory footprint for the store's byte budget.
    [[nodiscard]] static std::size_t approx_bytes(const PackedDesign& v) noexcept;
    static void encode(const PackedDesign& v, BlobWriter& w);  ///< append `v` to `w`
    [[nodiscard]] static PackedDesign decode(BlobReader& r);   ///< throws on corruption
};

/// Placement-product codec.
template <>
struct ArtifactCodec<Placement> : detail::BlobCodecBase<Placement, ArtifactCodec<Placement>> {
    static constexpr std::uint32_t kTypeId = 3;  ///< disk-blob header type tag
    /// Coarse in-memory footprint for the store's byte budget.
    [[nodiscard]] static std::size_t approx_bytes(const Placement& v) noexcept;
    static void encode(const Placement& v, BlobWriter& w);  ///< append `v` to `w`
    [[nodiscard]] static Placement decode(BlobReader& r);   ///< throws on corruption
};

/// Route-product codec.
template <>
struct ArtifactCodec<RouteArtifact>
    : detail::BlobCodecBase<RouteArtifact, ArtifactCodec<RouteArtifact>> {
    static constexpr std::uint32_t kTypeId = 4;  ///< disk-blob header type tag
    /// Coarse in-memory footprint for the store's byte budget.
    [[nodiscard]] static std::size_t approx_bytes(const RouteArtifact& v) noexcept;
    static void encode(const RouteArtifact& v, BlobWriter& w);  ///< append `v` to `w`
    [[nodiscard]] static RouteArtifact decode(BlobReader& r);   ///< throws on corruption
};

/// Bitstream-product codec. The blob embeds its ArchSpec and reuses
/// core::Bitstream's own serialized form, so decoding re-checks the fabric
/// fingerprint and CRC on top of the store's blob checksum.
template <>
struct ArtifactCodec<BitstreamArtifact>
    : detail::BlobCodecBase<BitstreamArtifact, ArtifactCodec<BitstreamArtifact>> {
    static constexpr std::uint32_t kTypeId = 5;  ///< disk-blob header type tag
    /// Coarse in-memory footprint for the store's byte budget.
    [[nodiscard]] static std::size_t approx_bytes(const BitstreamArtifact& v) noexcept;
    static void encode(const BitstreamArtifact& v, BlobWriter& w);  ///< append `v` to `w`
    [[nodiscard]] static BitstreamArtifact decode(BlobReader& r);   ///< throws on corruption
};

}  // namespace afpga::cad
