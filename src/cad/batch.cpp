#include "cad/batch.hpp"

#include <future>
#include <memory>
#include <utility>

#include "base/check.hpp"
#include "base/json.hpp"
#include "base/timer.hpp"

namespace afpga::cad {

using base::check;

BatchFlowRunner::BatchFlowRunner(const core::ArchSpec& arch, BatchOptions opts)
    : arch_(arch),
      opts_(opts),
      threads_(opts.threads != 0 ? opts.threads
                                 : static_cast<unsigned>(base::ThreadPool::default_workers())),
      pool_(threads_) {
    arch_.validate();
    if (opts_.share_rr) shared_rr_ = std::make_shared<core::RRGraph>(arch_);
}

std::vector<BatchJobResult> BatchFlowRunner::run(const std::vector<BatchJob>& jobs) {
    for (const BatchJob& j : jobs)
        check(j.nl != nullptr && j.hints != nullptr,
              "batch: job '" + j.name + "' has no netlist or hints");

    std::vector<std::future<BatchJobResult>> futs;
    futs.reserve(jobs.size());
    base::WallTimer batch_timer;
    for (const BatchJob& job : jobs) {
        futs.push_back(pool_.submit([this, &job] {
            BatchJobResult r;
            r.name = job.name;
            FlowOptions o = job.opts;
            o.prebuilt_rr = shared_rr_;  // nullptr when sharing is off
            base::WallTimer t;
            try {
                r.result = run_flow(*job.nl, *job.hints, arch_, o);
                r.ok = true;
            } catch (const std::exception& e) {
                r.error = e.what();
            }
            r.wall_ms = t.elapsed_ms();
            return r;
        }));
    }

    std::vector<BatchJobResult> out;
    out.reserve(jobs.size());
    for (auto& f : futs) out.push_back(f.get());
    last_batch_ms_ = batch_timer.elapsed_ms();
    return out;
}

std::string BatchFlowRunner::report_json(const std::vector<BatchJobResult>& results) const {
    std::size_t ok = 0;
    for (const BatchJobResult& r : results) ok += r.ok ? 1 : 0;

    base::JsonWriter w;
    w.begin_object();
    w.key("threads").value(std::uint64_t{threads_});
    w.key("share_rr").value(opts_.share_rr);
    w.key("jobs_total").value(std::uint64_t{results.size()});
    w.key("jobs_ok").value(std::uint64_t{ok});
    w.key("batch_wall_ms").value(last_batch_ms_);
    w.key("throughput_jobs_per_s")
        .value(last_batch_ms_ > 0.0
                   ? static_cast<double>(results.size()) * 1000.0 / last_batch_ms_
                   : 0.0);
    w.key("jobs").begin_array();
    for (const BatchJobResult& r : results) {
        w.begin_object();
        w.key("name").value(r.name);
        w.key("ok").value(r.ok);
        w.key("wall_ms").value(r.wall_ms);
        if (r.ok) {
            w.key("telemetry").raw(r.result.telemetry.to_json());
        } else {
            w.key("error").value(r.error);
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace afpga::cad
