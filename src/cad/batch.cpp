#include "cad/batch.hpp"

#include <utility>

#include "base/check.hpp"
#include "base/json.hpp"
#include "base/timer.hpp"

namespace afpga::cad {

using base::check;

namespace {

FlowServiceOptions service_options(const BatchOptions& opts) {
    FlowServiceOptions so;
    so.threads = opts.threads;
    so.share_artifacts = false;  // closed batches re-measure real work
    so.share_rr = opts.share_rr;
    return so;
}

}  // namespace

BatchFlowRunner::BatchFlowRunner(const core::ArchSpec& arch, BatchOptions opts)
    : arch_(arch), opts_(opts), service_(service_options(opts)) {
    arch_.validate();
    if (opts_.share_rr) (void)service_.prewarm_rr(arch_);
}

std::vector<BatchJobResult> BatchFlowRunner::run(const std::vector<BatchJob>& jobs) {
    for (const BatchJob& j : jobs)
        check(j.nl != nullptr && j.hints != nullptr,
              "batch: job '" + j.name + "' has no netlist or hints");

    std::vector<FlowJob> grid;
    grid.reserve(jobs.size());
    for (const BatchJob& job : jobs) {
        FlowJob fj;
        fj.name = job.name;
        fj.nl = job.nl;
        fj.hints = job.hints;
        fj.arch = arch_;
        fj.opts = job.opts;
        fj.opts.prebuilt_rr = nullptr;  // the service injects its own when sharing
        grid.push_back(std::move(fj));
    }

    base::WallTimer batch_timer;
    const std::vector<FlowJobId> ids = service_.submit_grid(std::move(grid));
    std::vector<BatchJobResult> out;
    out.reserve(ids.size());
    for (FlowJobId id : ids) {
        FlowJobResult r = service_.take(id);
        BatchJobResult b;
        b.name = std::move(r.name);
        b.ok = r.status == FlowJobStatus::Ok;
        b.error = std::move(r.error);
        b.result = std::move(r.result);
        b.wall_ms = r.wall_ms;
        out.push_back(std::move(b));
    }
    last_batch_ms_ = batch_timer.elapsed_ms();
    return out;
}

std::string BatchFlowRunner::report_json(const std::vector<BatchJobResult>& results) const {
    std::size_t ok = 0;
    for (const BatchJobResult& r : results) ok += r.ok ? 1 : 0;

    base::JsonWriter w;
    w.begin_object();
    w.key("threads").value(std::uint64_t{threads()});
    w.key("share_rr").value(opts_.share_rr);
    w.key("jobs_total").value(std::uint64_t{results.size()});
    w.key("jobs_ok").value(std::uint64_t{ok});
    w.key("batch_wall_ms").value(last_batch_ms_);
    w.key("throughput_jobs_per_s")
        .value(last_batch_ms_ > 0.0
                   ? static_cast<double>(results.size()) * 1000.0 / last_batch_ms_
                   : 0.0);
    w.key("jobs").begin_array();
    for (const BatchJobResult& r : results) {
        w.begin_object();
        w.key("name").value(r.name);
        w.key("ok").value(r.ok);
        w.key("wall_ms").value(r.wall_ms);
        if (r.ok) {
            w.key("telemetry").raw(r.result.telemetry.to_json());
        } else {
            w.key("error").value(r.error);
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace afpga::cad
