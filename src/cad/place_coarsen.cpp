#include "cad/place_coarsen.hpp"

#include <algorithm>
#include <cmath>

namespace afpga::cad {

namespace {

constexpr std::uint32_t kUnset = 0xffffffffu;

/// Nets with more movable pins than this don't guide matching: a huge net
/// says nothing about which two of its pins belong together, and rating
/// through it costs O(pins^2) across the visit loop.
constexpr std::size_t kMaxMatchPins = 10;

/// Pins are sorted and io pins (>= num_nodes) compare above every movable
/// pin, so the movable pins are a prefix.
std::size_t movable_prefix(const CoarseNet& net, std::size_t num_nodes) {
    std::size_t m = 0;
    while (m < net.pins.size() && net.pins[m] < num_nodes) ++m;
    return m;
}

/// Sort nets lexicographically by pin set and merge equal sets, summing
/// weights. stable_sort keeps the pre-sort order of equal sets, so the FP
/// summation order is a pure function of the input net order on every
/// implementation.
std::vector<CoarseNet> merge_nets(std::vector<CoarseNet> nets) {
    std::stable_sort(nets.begin(), nets.end(),
                     [](const CoarseNet& a, const CoarseNet& b) { return a.pins < b.pins; });
    std::vector<CoarseNet> out;
    out.reserve(nets.size());
    for (CoarseNet& net : nets) {
        if (!out.empty() && out.back().pins == net.pins)
            out.back().weight += net.weight;
        else
            out.push_back(std::move(net));
    }
    return out;
}

}  // namespace

CoarseLevel finest_level(const PlaceModel& model) {
    CoarseLevel lv;
    lv.num_nodes = model.num_clusters;
    lv.num_io = model.io_entity_ids.size();
    lv.node_weight.assign(lv.num_nodes, 1);
    std::vector<CoarseNet> tmp;
    tmp.reserve(model.nets.size());
    for (const PlaceNet& net : model.nets) {
        CoarseNet cn;
        cn.pins.reserve(net.entities.size());
        for (std::size_t eid : net.entities) {
            const PlaceEntity& e = model.entities[eid];
            if (e.kind == PlaceEntity::Kind::Cluster)
                cn.pins.push_back(static_cast<std::uint32_t>(e.index));
            else
                cn.pins.push_back(static_cast<std::uint32_t>(lv.num_nodes + e.io_slot));
        }
        std::sort(cn.pins.begin(), cn.pins.end());
        cn.pins.erase(std::unique(cn.pins.begin(), cn.pins.end()), cn.pins.end());
        if (cn.pins.size() < 2) continue;
        tmp.push_back(std::move(cn));
    }
    lv.nets = merge_nets(std::move(tmp));
    return lv;
}

CoarseLevel coarsen_level(const CoarseLevel& fine, std::size_t target_nodes,
                          std::uint64_t max_node_weight) {
    const std::size_t n = fine.num_nodes;

    // CSR adjacency node -> small nets (the only nets worth rating through).
    std::vector<std::size_t> adj_start(n + 1, 0);
    for (const CoarseNet& net : fine.nets) {
        const std::size_t m = movable_prefix(net, n);
        if (m < 2 || m > kMaxMatchPins) continue;
        for (std::size_t k = 0; k < m; ++k) ++adj_start[net.pins[k] + 1];
    }
    for (std::size_t i = 1; i <= n; ++i) adj_start[i] += adj_start[i - 1];
    std::vector<std::uint32_t> adj(adj_start[n]);
    {
        std::vector<std::size_t> fill(adj_start.begin(), adj_start.end() - 1);
        for (std::size_t ni = 0; ni < fine.nets.size(); ++ni) {
            const CoarseNet& net = fine.nets[ni];
            const std::size_t m = movable_prefix(net, n);
            if (m < 2 || m > kMaxMatchPins) continue;
            for (std::size_t k = 0; k < m; ++k)
                adj[fill[net.pins[k]]++] = static_cast<std::uint32_t>(ni);
        }
    }

    // First-choice matching: ascending visit order, ties to the lowest
    // neighbor index. Joining an existing group is allowed (first-choice),
    // capped by max_node_weight so no level grows a super-node that a
    // region of the fabric can't absorb.
    std::vector<std::uint32_t> group_of(n, kUnset);
    std::vector<std::uint64_t> group_weight;
    group_weight.reserve(n / 2 + 1);
    std::size_t merges_left = n > target_nodes ? n - target_nodes : 0;
    std::vector<double> rating(n, 0.0);
    std::vector<std::uint32_t> touched;
    for (std::size_t v = 0; v < n && merges_left > 0; ++v) {
        if (group_of[v] != kUnset) continue;
        touched.clear();
        for (std::size_t t = adj_start[v]; t < adj_start[v + 1]; ++t) {
            const CoarseNet& net = fine.nets[adj[t]];
            const std::size_t m = movable_prefix(net, n);
            const double w = net.weight / static_cast<double>(m - 1);
            for (std::size_t k = 0; k < m; ++k) {
                const std::uint32_t u = net.pins[k];
                if (u == v) continue;
                if (rating[u] == 0.0) touched.push_back(u);
                rating[u] += w;
            }
        }
        std::uint32_t best = kUnset;
        double best_r = 0.0;
        for (const std::uint32_t u : touched) {
            const std::uint64_t u_weight = group_of[u] == kUnset
                                               ? fine.node_weight[u]
                                               : group_weight[group_of[u]];
            if (u_weight + fine.node_weight[v] > max_node_weight) continue;
            if (rating[u] > best_r || (rating[u] == best_r && best != kUnset && u < best)) {
                best_r = rating[u];
                best = u;
            }
        }
        for (const std::uint32_t u : touched) rating[u] = 0.0;
        if (best == kUnset) continue;
        if (group_of[best] != kUnset) {
            const std::uint32_t g = group_of[best];
            group_of[v] = g;
            group_weight[g] += fine.node_weight[v];
        } else {
            const auto g = static_cast<std::uint32_t>(group_weight.size());
            group_weight.push_back(std::uint64_t{fine.node_weight[v]} + fine.node_weight[best]);
            group_of[v] = g;
            group_of[best] = g;
        }
        --merges_left;
    }

    // Renumber by first appearance (stable ordering); unmatched nodes keep
    // singleton groups. Weight conservation: every fine node adds its
    // weight to exactly one coarse node.
    CoarseLevel out;
    out.num_io = fine.num_io;
    out.map_down.assign(n, kUnset);
    std::vector<std::uint32_t> coarse_of_group(group_weight.size(), kUnset);
    std::uint32_t next = 0;
    for (std::size_t v = 0; v < n; ++v) {
        const std::uint32_t g = group_of[v];
        if (g != kUnset && coarse_of_group[g] != kUnset) {
            out.map_down[v] = coarse_of_group[g];
            out.node_weight[coarse_of_group[g]] += fine.node_weight[v];
            continue;
        }
        if (g != kUnset) coarse_of_group[g] = next;
        out.map_down[v] = next;
        out.node_weight.push_back(fine.node_weight[v]);
        ++next;
    }
    out.num_nodes = next;

    // Contract nets through the mapping: pins collapse, duplicates drop,
    // single-pin leftovers disappear, identical pin sets merge with summed
    // weight (multiplicity).
    std::vector<CoarseNet> tmp;
    tmp.reserve(fine.nets.size());
    for (const CoarseNet& net : fine.nets) {
        CoarseNet cn;
        cn.pins.reserve(net.pins.size());
        for (const std::uint32_t p : net.pins)
            cn.pins.push_back(p < n ? out.map_down[p]
                                    : static_cast<std::uint32_t>(out.num_nodes + (p - n)));
        std::sort(cn.pins.begin(), cn.pins.end());
        cn.pins.erase(std::unique(cn.pins.begin(), cn.pins.end()), cn.pins.end());
        if (cn.pins.size() < 2) continue;
        cn.weight = net.weight;
        tmp.push_back(std::move(cn));
    }
    out.nets = merge_nets(std::move(tmp));
    return out;
}

std::vector<CoarseLevel> build_hierarchy(const PlaceModel& model, double ratio,
                                         std::size_t min_nodes, std::size_t max_levels) {
    ratio = std::clamp(ratio, 0.1, 0.95);
    if (min_nodes == 0) min_nodes = 1;
    std::vector<CoarseLevel> levels;
    levels.push_back(finest_level(model));
    const std::uint64_t total_weight = model.num_clusters;
    while (levels.size() <= max_levels && levels.back().num_nodes > min_nodes) {
        const CoarseLevel& cur = levels.back();
        const auto target = std::max(
            min_nodes, static_cast<std::size_t>(std::ceil(ratio * static_cast<double>(cur.num_nodes))));
        if (target >= cur.num_nodes) break;
        // Cap super-nodes at ~1.5x the average weight of the target level,
        // so density stays spreadable at every level.
        const std::uint64_t max_w =
            std::max<std::uint64_t>(2, (3 * total_weight) / (2 * target) + 1);
        CoarseLevel next = coarsen_level(cur, target, max_w);
        if (next.num_nodes * 20 > cur.num_nodes * 19) break;  // <5% shrink: stalled
        levels.push_back(std::move(next));
    }
    return levels;
}

}  // namespace afpga::cad
