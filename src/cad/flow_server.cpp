#include "cad/flow_server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cstring>
#include <utility>

#include "base/check.hpp"
#include "cad/serialize.hpp"

namespace afpga::cad {

using base::check;

/// One client connection (IO-thread-only).
struct FlowServer::Conn {
    int fd = -1;                      ///< nonblocking socket
    wire::FrameDecoder dec;           ///< inbound reassembly
    std::vector<std::uint8_t> out;    ///< outbound bytes not yet written
    std::size_t out_pos = 0;          ///< written prefix of out
    bool hello_done = false;          ///< Hello/HelloOk exchanged
    bool dead = false;                ///< close at end of loop iteration
    std::uint32_t lane = 0;           ///< FlowService fairness lane
    std::string client_name;          ///< label from Hello

    [[nodiscard]] std::size_t backlog() const noexcept { return out.size() - out_pos; }
};

/// Server-side state of one wire-submitted job (IO-thread-only). The server
/// owns the decoded netlist/hints because FlowService borrows them: they
/// must outlive the job even if the submitting client disconnects.
struct FlowServer::JobCtx {
    FlowJobId id = 0;
    std::unique_ptr<netlist::Netlist> nl;
    std::unique_ptr<asynclib::MappingHints> hints;
    Conn* owner = nullptr;   ///< submitter; nulled on disconnect
    Conn* waiter = nullptr;  ///< conn whose Wait claimed the result
    bool streaming = false;  ///< ResultBegin sent, chunks in flight
    std::vector<std::uint8_t> blob;  ///< encoded result being streamed
    std::size_t blob_off = 0;        ///< next chunk offset
    std::uint64_t checksum = 0;      ///< fnv1a64 over blob
};

namespace {

void set_nonblocking(int fd) {
    const int flags = fcntl(fd, F_GETFL, 0);
    check(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "flow_server: fcntl(O_NONBLOCK) failed");
}

void close_fd(int& fd) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

}  // namespace

FlowServer::FlowServer(FlowServerOptions opts) : opts_(std::move(opts)) {
    check(!opts_.unix_path.empty() || opts_.tcp,
          "flow_server: no listener configured (set unix_path and/or tcp)");

    // The self-pipe bridges worker-thread completions into the poll loop.
    check(::pipe(wake_pipe_) == 0, "flow_server: pipe() failed");
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);

    FlowServiceOptions so = opts_.service;
    so.on_job_finished = [this](FlowJobId id) {
        {
            std::lock_guard<std::mutex> lock(finished_mu_);
            finished_.push_back(id);
        }
        const char b = 1;
        // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
        (void)!::write(wake_pipe_[1], &b, 1);
    };
    svc_ = std::make_unique<FlowService>(so);

    if (!opts_.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        check(opts_.unix_path.size() < sizeof(addr.sun_path),
              "flow_server: unix socket path too long");
        std::memcpy(addr.sun_path, opts_.unix_path.c_str(), opts_.unix_path.size() + 1);
        ::unlink(opts_.unix_path.c_str());
        unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        check(unix_listen_fd_ >= 0, "flow_server: socket(AF_UNIX) failed");
        check(::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
              "flow_server: bind(" + opts_.unix_path + ") failed");
        check(::listen(unix_listen_fd_, 64) == 0, "flow_server: listen(unix) failed");
        set_nonblocking(unix_listen_fd_);
    }
    if (opts_.tcp) {
        tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        check(tcp_listen_fd_ >= 0, "flow_server: socket(AF_INET) failed");
        const int one = 1;
        ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(opts_.tcp_port);
        check(::inet_pton(AF_INET, opts_.tcp_host.c_str(), &addr.sin_addr) == 1,
              "flow_server: bad tcp_host " + opts_.tcp_host);
        check(::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
              "flow_server: bind(tcp) failed");
        check(::listen(tcp_listen_fd_, 64) == 0, "flow_server: listen(tcp) failed");
        set_nonblocking(tcp_listen_fd_);
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        check(::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0,
              "flow_server: getsockname failed");
        tcp_port_ = ntohs(bound.sin_port);
    }
}

FlowServer::~FlowServer() {
    stop();
    // Destroy the service BEFORE the wake pipe: draining jobs still fire
    // on_job_finished, which must write into a live (never a recycled) fd.
    svc_.reset();
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
    if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

void FlowServer::start() {
    check(!running_.exchange(true), "flow_server: already started");
    stop_requested_ = false;
    io_ = std::thread([this] { io_loop(); });
}

void FlowServer::stop() {
    if (!running_.load()) return;
    stop_requested_ = true;
    const char b = 1;
    (void)!::write(wake_pipe_[1], &b, 1);
    if (io_.joinable()) io_.join();
    running_ = false;
    // The IO thread has exited: its fds are safe to close from here.
    for (auto& c : conns_) close_fd(c->fd);
    conns_.clear();
    jobs_.clear();
    close_fd(unix_listen_fd_);
    close_fd(tcp_listen_fd_);
}

void FlowServer::drain() {
    draining_ = true;
    const char b = 1;
    (void)!::write(wake_pipe_[1], &b, 1);
}

void FlowServer::wait_drained() {
    std::unique_lock<std::mutex> lock(drained_mu_);
    drained_cv_.wait(lock, [&] { return drained_; });
}

bool FlowServer::is_drained() {
    std::lock_guard<std::mutex> lock(drained_mu_);
    return drained_;
}

FlowServerStats FlowServer::stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

void FlowServer::io_loop() {
    std::vector<pollfd> pfds;
    std::vector<int> kind;  // 0 = pipe, 1 = unix listener, 2 = tcp listener, 3+i = conn i
    while (!stop_requested_.load()) {
        pfds.clear();
        kind.clear();
        pfds.push_back({wake_pipe_[0], POLLIN, 0});
        kind.push_back(0);
        if (unix_listen_fd_ >= 0) {
            pfds.push_back({unix_listen_fd_, POLLIN, 0});
            kind.push_back(1);
        }
        if (tcp_listen_fd_ >= 0) {
            pfds.push_back({tcp_listen_fd_, POLLIN, 0});
            kind.push_back(2);
        }
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            short ev = POLLIN;
            if (conns_[i]->backlog() > 0) ev |= POLLOUT;
            pfds.push_back({conns_[i]->fd, ev, 0});
            kind.push_back(3 + static_cast<int>(i));
        }

        const int rc = ::poll(pfds.data(), pfds.size(), 500);
        if (rc < 0 && errno != EINTR) break;

        for (std::size_t p = 0; p < pfds.size(); ++p) {
            if (pfds[p].revents == 0) continue;
            if (kind[p] == 0) {
                char buf[256];
                while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {}
            } else if (kind[p] == 1 || kind[p] == 2) {
                const int lfd = kind[p] == 1 ? unix_listen_fd_ : tcp_listen_fd_;
                for (;;) {
                    const int cfd = ::accept(lfd, nullptr, nullptr);
                    if (cfd < 0) break;
                    set_nonblocking(cfd);
                    auto c = std::make_unique<Conn>();
                    c->fd = cfd;
                    conns_.push_back(std::move(c));
                    std::lock_guard<std::mutex> lock(stats_mu_);
                    ++stats_.connections_accepted;
                }
            } else {
                Conn& c = *conns_[static_cast<std::size_t>(kind[p] - 3)];
                if (c.dead) continue;
                if (pfds[p].revents & (POLLERR | POLLHUP | POLLNVAL)) c.dead = true;
                if (!c.dead && (pfds[p].revents & POLLOUT)) flush_conn(c);
                if (!c.dead && (pfds[p].revents & POLLIN)) handle_readable(c);
            }
        }

        // Completions bridged from the worker pool.
        on_finished_ids();

        // Resume any stream whose reader drained below the backlog cap.
        // Collect ids first: pump_stream erases its entry on completion,
        // which would invalidate a live iterator.
        std::vector<FlowJobId> pump;
        for (auto& [id, jc] : jobs_) {
            if (jc->streaming && jc->waiter && !jc->waiter->dead &&
                jc->blob_off < jc->blob.size())
                pump.push_back(id);
        }
        for (const FlowJobId id : pump) {
            const auto it = jobs_.find(id);
            if (it != jobs_.end()) pump_stream(*it->second);
        }
        // Streams whose reader vanished mid-flight keep their ctx but can
        // never complete; sweep them.
        for (auto it = jobs_.begin(); it != jobs_.end();) {
            JobCtx& jc = *it->second;
            if (jc.streaming && !jc.waiter) {
                // Claimed but the reader vanished mid-stream: drop the blob.
                it = jobs_.erase(it);
            } else {
                ++it;
            }
        }

        // Close connections that died this iteration.
        for (std::size_t i = 0; i < conns_.size();) {
            if (conns_[i]->dead)
                drop_conn(i);
            else
                ++i;
        }

        if (draining_.load()) update_drained();
    }
}

void FlowServer::handle_readable(Conn& c) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            c.dead = true;
            return;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            c.dead = true;
            return;
        }
        c.dec.feed(buf, static_cast<std::size_t>(n));
    }
    try {
        while (auto f = c.dec.next()) handle_frame(c, *f);
    } catch (const base::Error& e) {
        poison(c, e.what());
    }
}

void FlowServer::handle_frame(Conn& c, const wire::Frame& f) {
    using wire::MsgType;
    if (!c.hello_done) {
        if (f.type != MsgType::Hello) {
            poison(c, "first frame must be hello");
            return;
        }
        const wire::HelloMsg m = wire::decode_hello(f.payload);
        if (m.protocol != wire::kProtocolVersion) {
            poison(c, "protocol version mismatch");
            return;
        }
        c.client_name = m.client_name;
        c.lane = next_lane_++;
        c.hello_done = true;
        wire::HelloOkMsg ok;
        ok.lane = c.lane;
        ok.max_pending = opts_.max_pending;
        ok.threads = svc_->threads();
        send_frame(c, MsgType::HelloOk, wire::encode_payload(ok));
        return;
    }
    switch (f.type) {
        case MsgType::Submit: handle_submit(c, f.payload); return;
        case MsgType::Status: {
            const wire::StatusMsg m = wire::decode_status(f.payload);
            if (m.job_id >= svc_->num_jobs()) {
                send_error(c, wire::ErrCode::UnknownJob, "no such job");
                return;
            }
            const FlowService::JobBrief b = svc_->peek(m.job_id);
            wire::StatusReplyMsg rep;
            rep.job_id = m.job_id;
            rep.status = static_cast<std::uint8_t>(b.status);
            rep.start_seq = b.start_seq;
            rep.wall_ms = b.wall_ms;
            rep.queue_ms = b.queue_ms;
            rep.error = b.error;
            send_frame(c, MsgType::StatusReply, wire::encode_payload(rep));
            return;
        }
        case MsgType::Wait: {
            const wire::WaitMsg m = wire::decode_wait(f.payload);
            const auto it = jobs_.find(m.job_id);
            if (it == jobs_.end()) {
                send_error(c, wire::ErrCode::UnknownJob,
                           "no such job (or its result was already streamed)");
                return;
            }
            JobCtx& jc = *it->second;
            if (jc.waiter != nullptr) {
                send_error(c, wire::ErrCode::BadRequest, "result already claimed");
                return;
            }
            jc.waiter = &c;
            const FlowService::JobBrief b = svc_->peek(m.job_id);
            if (b.status == FlowJobStatus::Ok || b.status == FlowJobStatus::Failed ||
                b.status == FlowJobStatus::Cancelled)
                begin_stream(jc);
            return;
        }
        case MsgType::Cancel: {
            const wire::CancelMsg m = wire::decode_cancel(f.payload);
            if (m.job_id >= svc_->num_jobs()) {
                send_error(c, wire::ErrCode::UnknownJob, "no such job");
                return;
            }
            const bool cancelled = svc_->cancel(m.job_id);
            if (cancelled) {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.cancels;
            }
            wire::CancelReplyMsg rep;
            rep.job_id = m.job_id;
            rep.cancelled = cancelled;
            send_frame(c, MsgType::CancelReply, wire::encode_payload(rep));
            return;
        }
        case MsgType::Report: {
            (void)wire::decode_report(f.payload);
            wire::ReportReplyMsg rep;
            rep.json = svc_->report_json();
            send_frame(c, MsgType::ReportReply, wire::encode_payload(rep));
            return;
        }
        case MsgType::Drain: {
            (void)wire::decode_drain(f.payload);
            draining_ = true;
            wire::DrainOkMsg rep;
            rep.jobs_total = svc_->num_jobs();
            send_frame(c, MsgType::DrainOk, wire::encode_payload(rep));
            return;
        }
        default:
            // Server-to-client message types arriving at the server are a
            // protocol violation, exactly like unknown bytes.
            poison(c, "unexpected message type " + wire::to_string(f.type));
            return;
    }
}

void FlowServer::handle_submit(Conn& c, const std::vector<std::uint8_t>& payload) {
    // Stats are bumped BEFORE the reply frame goes out so a client that has
    // observed the reply is guaranteed to see the counter (tests rely on it).
    if (draining_.load()) {
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.submits_rejected_draining;
        }
        send_error(c, wire::ErrCode::Draining, "server is draining");
        return;
    }
    const std::size_t depth = svc_->num_pending();
    if (depth >= opts_.max_pending) {
        wire::BusyMsg busy;
        busy.queue_depth = static_cast<std::uint32_t>(depth);
        busy.limit = opts_.max_pending;
        busy.retry_after_ms = opts_.retry_after_ms;
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.submits_rejected_busy;
        }
        send_frame(c, wire::MsgType::Busy, wire::encode_payload(busy));
        return;
    }
    // decode_submit throws on malformed payloads — the caller's catch
    // poisons the connection.
    wire::SubmitMsg m = wire::decode_submit(payload);
    auto jc = std::make_unique<JobCtx>();
    jc->nl = std::make_unique<netlist::Netlist>(std::move(m.nl));
    jc->hints = std::make_unique<asynclib::MappingHints>(std::move(m.hints));
    jc->owner = &c;
    FlowJob job;
    job.name = std::move(m.name);
    job.nl = jc->nl.get();
    job.hints = jc->hints.get();
    job.arch = m.arch;
    job.opts = std::move(m.opts);
    job.priority = m.priority;
    job.lane = c.lane;
    const FlowJobId id = svc_->submit(std::move(job));
    jc->id = id;
    jobs_.emplace(id, std::move(jc));
    const std::size_t now_pending = svc_->num_pending();
    wire::SubmitOkMsg ok;
    ok.job_id = id;
    ok.queue_depth = static_cast<std::uint32_t>(now_pending);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.submits_accepted;
        if (now_pending > stats_.max_queue_depth_observed)
            stats_.max_queue_depth_observed = now_pending;
    }
    send_frame(c, wire::MsgType::SubmitOk, wire::encode_payload(ok));
}

void FlowServer::send_frame(Conn& c, wire::MsgType t, const std::vector<std::uint8_t>& payload) {
    if (c.dead) return;
    const std::vector<std::uint8_t> frame = wire::encode_frame(t, payload);
    c.out.insert(c.out.end(), frame.begin(), frame.end());
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (c.backlog() > stats_.max_outbound_bytes_observed)
            stats_.max_outbound_bytes_observed = c.backlog();
    }
    flush_conn(c);
}

void FlowServer::send_error(Conn& c, wire::ErrCode code, const std::string& msg) {
    wire::ErrorMsg e;
    e.code = static_cast<std::uint32_t>(code);
    e.message = msg;
    send_frame(c, wire::MsgType::Error, wire::encode_payload(e));
}

void FlowServer::poison(Conn& c, const std::string& why) {
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
    }
    send_error(c, wire::ErrCode::BadRequest, why);
    c.dead = true;  // best-effort error frame, then the connection dies
}

void FlowServer::flush_conn(Conn& c) {
    while (c.out_pos < c.out.size()) {
        const ssize_t n = ::send(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            c.dead = true;
            return;
        }
        c.out_pos += static_cast<std::size_t>(n);
    }
    c.out.clear();
    c.out_pos = 0;
}

void FlowServer::drop_conn(std::size_t idx) {
    Conn* c = conns_[idx].get();
    // Cancel the dead client's queued jobs; running ones finish as orphans
    // (the server owns their netlists) and are retired on completion.
    for (auto& [id, jc] : jobs_) {
        if (jc->owner == c) {
            if (svc_->peek(id).status == FlowJobStatus::Queued && svc_->cancel(id)) {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.jobs_cancelled_on_disconnect;
            }
            jc->owner = nullptr;
        }
        if (jc->waiter == c) jc->waiter = nullptr;
    }
    // Retire orphaned jobs that are already terminal and unclaimed.
    std::vector<FlowJobId> done;
    for (auto& [id, jc] : jobs_) {
        if (!jc->owner && !jc->waiter) {
            const FlowJobStatus s = svc_->peek(id).status;
            if (s == FlowJobStatus::Ok || s == FlowJobStatus::Failed ||
                s == FlowJobStatus::Cancelled)
                done.push_back(id);
        }
    }
    for (FlowJobId id : done) retire(id);
    close_fd(c->fd);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(idx));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_dropped;
}

void FlowServer::on_finished_ids() {
    std::deque<FlowJobId> ids;
    {
        std::lock_guard<std::mutex> lock(finished_mu_);
        ids.swap(finished_);
    }
    for (const FlowJobId id : ids) {
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) continue;  // already retired
        JobCtx& jc = *it->second;
        if (jc.waiter && !jc.streaming) {
            begin_stream(jc);  // a Wait was parked on this job
        } else if (!jc.owner && !jc.waiter) {
            retire(id);  // orphan finished: free the result and netlist
        }
        // Otherwise the owner is still connected but has not claimed the
        // result; keep it for a later Wait/Status.
    }
}

void FlowServer::begin_stream(JobCtx& jc) {
    Conn& c = *jc.waiter;
    const FlowService::JobBrief b = svc_->peek(jc.id);
    // take() frees the service-side slot; the blob below is the only copy
    // the server keeps, and it is dropped as soon as the stream completes.
    FlowJobResult res = svc_->take(jc.id);
    wire::ResultBeginMsg begin;
    begin.job_id = jc.id;
    begin.status = static_cast<std::uint8_t>(b.status);
    begin.error = b.error;
    begin.wall_ms = b.wall_ms;
    begin.queue_ms = b.queue_ms;
    begin.start_seq = b.start_seq;
    if (res.ok()) {
        begin.telemetry_json = res.result.telemetry.to_json();
        jc.blob = ArtifactCodec<BitstreamArtifact>::encode_blob(
            BitstreamArtifact{*res.result.bits, res.result.pad_names});
    }
    begin.result_bytes = jc.blob.size();
    jc.checksum = wire::fnv1a64(jc.blob.data(), jc.blob.size());
    jc.streaming = true;
    send_frame(c, wire::MsgType::ResultBegin, wire::encode_payload(begin));
    pump_stream(jc);
}

void FlowServer::pump_stream(JobCtx& jc) {
    Conn& c = *jc.waiter;
    while (jc.blob_off < jc.blob.size()) {
        if (c.backlog() >= opts_.max_conn_outbound_bytes) return;  // slow reader
        const std::size_t n =
            std::min(wire::kResultChunkBytes, jc.blob.size() - jc.blob_off);
        wire::ResultChunkMsg chunk;
        chunk.job_id = jc.id;
        chunk.offset = jc.blob_off;
        chunk.bytes.assign(jc.blob.begin() + static_cast<std::ptrdiff_t>(jc.blob_off),
                           jc.blob.begin() + static_cast<std::ptrdiff_t>(jc.blob_off + n));
        send_frame(c, wire::MsgType::ResultChunk, wire::encode_payload(chunk));
        jc.blob_off += n;
    }
    wire::ResultEndMsg end;
    end.job_id = jc.id;
    end.checksum = jc.checksum;
    send_frame(c, wire::MsgType::ResultEnd, wire::encode_payload(end));
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.results_streamed;
    }
    jobs_.erase(jc.id);  // jc is dangling from here on
}

void FlowServer::retire(FlowJobId id) {
    (void)svc_->take(id);  // job is terminal: frees the heavy result
    jobs_.erase(id);
}

void FlowServer::update_drained() {
    // Drained = every accepted job terminal, every claimed stream finished
    // (complete streams erase their JobCtx), and every outbound buffer
    // flushed to its socket.
    if (svc_->num_pending() != 0) return;
    for (const auto& [id, jc] : jobs_) {
        const FlowJobStatus s = svc_->peek(id).status;
        if (s == FlowJobStatus::Queued || s == FlowJobStatus::Running) return;
        if (jc->streaming) return;  // mid-stream
    }
    for (const auto& c : conns_)
        if (c->backlog() > 0) return;
    {
        std::lock_guard<std::mutex> lock(drained_mu_);
        drained_ = true;
    }
    drained_cv_.notify_all();
}

}  // namespace afpga::cad
