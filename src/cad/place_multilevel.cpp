#include "cad/place_multilevel.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "base/timer.hpp"
#include "cad/place_coarsen.hpp"
#include "cad/place_legalize.hpp"
#include "cad/place_solver.hpp"

namespace afpga::cad {

namespace {

/// Minimum pin separation in B2B weights (matches the flat engine).
constexpr double kB2bEps = 1e-2;

/// Intermediate levels run solver_passes / kLevelPassShrink refinement
/// passes (one pass at the default schedule): the coarse solution already
/// carries the global structure, so the descent only irons out
/// interpolation artifacts. This is where the speedup comes from — the
/// full schedule runs only on the coarsest few hundred super-nodes.
/// Running the descent short also keeps the growing anchor-weight
/// schedule close to the flat engine's range, which measurably improves
/// the finest solution (strong leftover anchors pin nodes to their
/// interpolated spots).
constexpr int kLevelPassShrink = 16;

/// The finest level gets solver_passes / kFinestPassShrink passes — more
/// than the intermediate levels, because its result is the one that
/// legalizes, but still far short of the flat engine's full schedule.
constexpr int kFinestPassShrink = 4;

/// Sub-coarsest levels also cap CG iterations at solver_max_iters /
/// kLevelIterShrink (floor 10): their solves are warm-started from the
/// interpolated parent solution and anchored, so a short budget reaches
/// the same neighbourhood; past ~solver_max_iters/6 the extra iterations
/// only re-tighten what spreading is about to move anyway.
constexpr int kLevelIterShrink = 6;

/// Deterministic RNG-free per-index jitter in [-0.25, 0.25] — the flat
/// engine's init recipe, reused for coarsest init and interpolation so
/// coincident nodes never hand the B2B model all-degenerate bounds.
double jitter(std::size_t i, int shift) {
    const std::uint64_t h = (i + 1) * 0x9E3779B97F4A7C15ull;
    return (static_cast<double>((h >> shift) & 1023) / 1023.0 - 0.5) * 0.5;
}

/// Assemble one axis of the B2B model over a coarse level: identical to
/// the flat engine's build_axis except pins are level nodes / io slots and
/// the contracted net multiplicity multiplies the B2B weight.
void build_level_axis(const CoarseLevel& lv, const PlaceModel& model, int axis,
                      const std::vector<double>& cx, const std::vector<double>& cy,
                      const std::vector<std::uint32_t>& pad_of_io,
                      const std::vector<double>* anchor_targets, double anchor_w,
                      QuadSystem& sys) {
    const std::size_t n = lv.num_nodes;
    sys.reset(n);
    auto coord_of = [&](std::uint32_t pin) -> double {
        if (pin < n) return axis == 0 ? cx[pin] : cy[pin];
        const PlacePt p = model.pad_pts[pad_of_io[pin - n]];
        return axis == 0 ? p.x : p.y;
    };
    for (const CoarseNet& net : lv.nets) {
        const std::size_t p = net.pins.size();
        if (p < 2) continue;
        std::uint32_t lo = net.pins[0];
        std::uint32_t hi = lo;
        double clo = coord_of(lo);
        double chi = clo;
        for (std::size_t k = 1; k < p; ++k) {
            const std::uint32_t pin = net.pins[k];
            const double c = coord_of(pin);
            if (c < clo) {
                clo = c;
                lo = pin;
            }
            if (c > chi) {
                chi = c;
                hi = pin;
            }
        }
        const double base = net.weight * 2.0 / static_cast<double>(p - 1);
        auto add_edge = [&](std::uint32_t a, std::uint32_t b, double ca, double cb) {
            if (a == b) return;
            const double w = base / std::max(std::abs(ca - cb), kB2bEps);
            const bool ma = a < n;
            const bool mb = b < n;
            if (ma && mb)
                sys.connect_movable(a, b, w);
            else if (ma)
                sys.connect_fixed(a, cb, w);
            else if (mb)
                sys.connect_fixed(b, ca, w);
        };
        add_edge(lo, hi, clo, chi);
        for (std::size_t k = 0; k < p; ++k) {
            const std::uint32_t pin = net.pins[k];
            if (pin == lo || pin == hi) continue;
            const double c = coord_of(pin);
            add_edge(pin, lo, c, clo);
            add_edge(pin, hi, c, chi);
        }
    }
    if (anchor_targets != nullptr)
        for (std::size_t i = 0; i < n; ++i)
            sys.connect_fixed(i, (*anchor_targets)[i], anchor_w);
}

/// io slot -> contracted nets touching it at this level. Pins are sorted,
/// so a net's io pins are a suffix.
void build_io_index(const CoarseLevel& lv,
                    std::vector<std::vector<std::uint32_t>>& nets_of_io) {
    nets_of_io.assign(lv.num_io, {});
    for (std::size_t ni = 0; ni < lv.nets.size(); ++ni) {
        const std::vector<std::uint32_t>& pins = lv.nets[ni].pins;
        for (std::size_t k = pins.size(); k-- > 0;) {
            if (pins[k] < lv.num_nodes) break;
            nets_of_io[pins[k] - lv.num_nodes].push_back(static_cast<std::uint32_t>(ni));
        }
    }
}

/// Reusable buffers of refine_level_pads.
struct PadScratch {
    PadFrame frame;
    std::vector<std::uint32_t> out;
};

/// Greedy deterministic pad refinement at one level — the flat engine's
/// refine_pads with node weights: each io slot, in slot order, takes the
/// free pad nearest (Manhattan) to the weight-weighted centroid of the
/// level nodes on its nets; ties keep the lowest pad index. The PadFrame
/// answers each nearest-free query in O(log n_pads), which is what lets
/// the coarsest level run its full pass schedule without an
/// O(n_io * n_pads) scan per pass swamping the cheap coarse solves.
void refine_level_pads(const CoarseLevel& lv, const PlaceModel& model,
                       const std::vector<std::vector<std::uint32_t>>& nets_of_io,
                       const std::vector<double>& cx, const std::vector<double>& cy,
                       std::vector<std::uint32_t>& pad_of_io, PadScratch& scratch) {
    const std::size_t n_io = lv.num_io;
    PadFrame& frame = scratch.frame;
    frame.reset();
    scratch.out.assign(n_io, 0);
    for (std::size_t s = 0; s < n_io; ++s) {
        double sx = 0;
        double sy = 0;
        std::uint64_t cnt = 0;
        for (const std::uint32_t ni : nets_of_io[s])
            for (const std::uint32_t pin : lv.nets[ni].pins) {
                if (pin >= lv.num_nodes) break;  // sorted: io pins are a suffix
                const std::uint32_t w = lv.node_weight[pin];
                sx += cx[pin] * w;
                sy += cy[pin] * w;
                cnt += w;
            }
        std::uint32_t best = 0;
        bool found = false;
        if (cnt == 0) {
            // Disconnected I/O: keep its seeded pad if free, else lowest free.
            if (frame.is_free(pad_of_io[s])) {
                best = pad_of_io[s];
                found = true;
            } else {
                found = frame.lowest_free(best);
            }
        } else {
            found = frame.nearest_free(sx / static_cast<double>(cnt),
                                       sy / static_cast<double>(cnt), best);
        }
        base::check(found, "place_multilevel: ran out of free pads");
        frame.take(best);
        scratch.out[s] = best;
    }
    pad_of_io = scratch.out;
}

}  // namespace

AnalyticalResult place_multilevel_global(const PlaceModel& model, const PlaceOptions& opts,
                                         std::uint64_t seed) {
    const std::uint32_t W = model.arch->width;
    const std::uint32_t H = model.arch->height;
    AnalyticalResult res;

    // Seeded pad shuffle — the same init recipe as the flat engine and the
    // annealer, so the engines start from comparably random I/O assignments.
    res.pad_of_io.resize(model.io_entity_ids.size());
    {
        base::Rng rng(seed);
        std::vector<std::uint32_t> pads(model.geom.num_pads());
        for (std::uint32_t i = 0; i < pads.size(); ++i) pads[i] = i;
        rng.shuffle(pads);
        for (std::size_t i = 0; i < res.pad_of_io.size(); ++i) res.pad_of_io[i] = pads[i];
    }

    const std::vector<CoarseLevel> levels = build_hierarchy(
        model, opts.coarsen_ratio, static_cast<std::size_t>(std::max(1, opts.min_coarse_nodes)),
        static_cast<std::size_t>(std::max(0, opts.max_levels)));
    const std::size_t n_levels = levels.size();
    res.stats.levels.reserve(n_levels);

    std::vector<double> cx;
    std::vector<double> cy;
    std::vector<double> fine_x;
    std::vector<double> fine_y;
    std::vector<double> tgt_x;
    std::vector<double> tgt_y;
    QuadSystem sys;
    PcgScratch pcg;
    SpreadScratch spread;
    PadScratch pads;
    if (!model.io_entity_ids.empty()) pads.frame.build(model.pad_pts, W, H);
    std::vector<std::vector<std::uint32_t>> nets_of_io;
    bool have_targets = false;
    // The anchor pass counter carries across levels: the anchor weight
    // keeps growing down the hierarchy exactly as it grows across the flat
    // engine's passes, so the finest level arrives legalization-ready.
    int anchor_pass = 0;
    double anchor_w = 0.0;

    for (std::size_t li = n_levels; li-- > 0;) {
        const CoarseLevel& lv = levels[li];
        base::WallTimer timer;
        LevelStats ls;
        ls.nodes = lv.num_nodes;
        ls.nets = lv.nets.size();

        if (li == n_levels - 1) {
            // Coarsest: fabric center plus deterministic per-index jitter.
            cx.resize(lv.num_nodes);
            cy.resize(lv.num_nodes);
            for (std::size_t i = 0; i < lv.num_nodes; ++i) {
                cx[i] = (W + 1) * 0.5 + jitter(i, 16);
                cy[i] = (H + 1) * 0.5 + jitter(i, 40);
            }
        } else {
            // Interpolate: every node starts at its coarse parent, nudged
            // apart by jitter; anchor targets interpolate the same way so
            // the first anchored solve pulls toward the parent's region.
            const std::vector<std::uint32_t>& down = levels[li + 1].map_down;
            fine_x.resize(lv.num_nodes);
            fine_y.resize(lv.num_nodes);
            for (std::size_t v = 0; v < lv.num_nodes; ++v) {
                fine_x[v] = std::clamp(cx[down[v]] + jitter(v, 16), 1.0, static_cast<double>(W));
                fine_y[v] = std::clamp(cy[down[v]] + jitter(v, 40), 1.0, static_cast<double>(H));
            }
            if (have_targets) {
                std::vector<double>& px = cx;  // parent targets reuse the old
                std::vector<double>& py = cy;  // position buffers via swap
                px.swap(tgt_x);
                py.swap(tgt_y);
                tgt_x.resize(lv.num_nodes);
                tgt_y.resize(lv.num_nodes);
                for (std::size_t v = 0; v < lv.num_nodes; ++v) {
                    tgt_x[v] = px[down[v]];
                    tgt_y[v] = py[down[v]];
                }
            }
            cx.swap(fine_x);
            cy.swap(fine_y);
        }
        tgt_x.resize(lv.num_nodes);
        tgt_y.resize(lv.num_nodes);
        if (lv.num_io != 0) build_io_index(lv, nets_of_io);

        const int max_iters =
            li == n_levels - 1
                ? std::max(1, opts.solver_max_iters)
                : std::max(10, opts.solver_max_iters / kLevelIterShrink);
        auto solve_axes = [&] {
            for (int axis = 0; axis < 2; ++axis) {
                std::vector<double>& x = axis == 0 ? cx : cy;
                build_level_axis(lv, model, axis, cx, cy, res.pad_of_io,
                                 have_targets ? (axis == 0 ? &tgt_x : &tgt_y) : nullptr,
                                 anchor_w, sys);
                sys.fix_degenerate(x);
                sys.finalize();
                ls.solver_iterations +=
                    solve_pcg(sys, x, max_iters, opts.solver_tolerance, pcg);
                const double hi = axis == 0 ? static_cast<double>(W) : static_cast<double>(H);
                for (double& v : x) v = std::clamp(v, 1.0, hi);
            }
            ++ls.solver_passes;
        };

        const int passes = li == n_levels - 1
                               ? std::max(1, opts.solver_passes)
                               : (li == 0 ? std::max(1, opts.solver_passes / kFinestPassShrink)
                                          : std::max(1, opts.solver_passes / kLevelPassShrink));
        for (int pass = 0; pass < passes; ++pass) {
            solve_axes();
            if (lv.num_io != 0)
                refine_level_pads(lv, model, nets_of_io, cx, cy, res.pad_of_io, pads);
            if (lv.num_nodes != 0) {
                spread_targets(W, H, lv.num_nodes, cx, cy, lv.node_weight.data(), tgt_x,
                               tgt_y, spread);
                have_targets = true;
                ++anchor_pass;
                anchor_w = opts.anchor_weight * static_cast<double>(anchor_pass);
                ++ls.spread_passes;
            }
        }

        if (li == 0) {
            // Closing sequence at the finest level, mirroring the flat
            // engine: re-seat pads, one closing solve, then legalize from a
            // final round of density-feasible bisection targets.
            if (lv.num_io != 0)
                refine_level_pads(lv, model, nets_of_io, cx, cy, res.pad_of_io, pads);
            solve_axes();
            res.stats.pre_legal_cost = fractional_cost(model, cx, cy, res.pad_of_io);
            if (lv.num_nodes != 0) {
                spread_targets(W, H, lv.num_nodes, cx, cy, lv.node_weight.data(), tgt_x,
                               tgt_y, spread);
                ++ls.spread_passes;
            }
        }

        ls.wall_ms = timer.elapsed_ms();
        res.stats.solver_iterations += ls.solver_iterations;
        res.stats.solver_passes += ls.solver_passes;
        res.stats.spread_passes += ls.spread_passes;
        res.stats.levels.push_back(ls);
    }

    res.cluster_loc = legalize_clusters(tgt_x, tgt_y, W, H, &res.stats.legalize);
    res.stats.legalized_cost = model.total_cost(res.cluster_loc, res.pad_of_io);
    return res;
}

}  // namespace afpga::cad
