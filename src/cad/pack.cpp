#include "cad/pack.hpp"

#include <algorithm>
#include <unordered_set>

#include "base/check.hpp"
#include "cad/fingerprint.hpp"

namespace afpga::cad {

using base::check;

namespace {

void add_unique(std::vector<NetId>& v, NetId n) {
    if (std::find(v.begin(), v.end(), n) == v.end()) v.push_back(n);
}

}  // namespace

std::vector<NetId> Cluster::produced(const MappedDesign& md) const {
    std::vector<NetId> out;
    for (std::size_t li : le_indices)
        for (NetId s : md.les[li].output_signals()) add_unique(out, s);
    if (pde_index) add_unique(out, md.pdes[*pde_index].output);
    return out;
}

std::vector<NetId> Cluster::external_inputs(const MappedDesign& md) const {
    const std::vector<NetId> made = produced(md);
    std::vector<NetId> in;
    auto consider = [&](NetId s) {
        if (std::find(made.begin(), made.end(), s) != made.end()) return;
        if (md.constant_signals.count(s)) return;  // IM constants, not pins
        add_unique(in, s);
    };
    for (std::size_t li : le_indices)
        for (NetId s : md.les[li].input_signals()) consider(s);
    if (pde_index) consider(md.pdes[*pde_index].input);
    return in;
}

std::vector<NetId> Cluster::external_outputs(
    const MappedDesign& md,
    const std::unordered_map<NetId, std::vector<std::size_t>>& consumers_of,
    const std::vector<std::size_t>& cluster_of_le, const std::vector<std::size_t>& cluster_of_pde,
    std::size_t self_index) const {
    (void)cluster_of_le;
    (void)cluster_of_pde;
    std::unordered_set<NetId> po_signals;
    for (const auto& [name, s] : md.primary_outputs) po_signals.insert(s);
    std::vector<NetId> out;
    for (NetId s : produced(md)) {
        const auto it = consumers_of.find(s);
        bool external = po_signals.count(s) != 0;
        if (it != consumers_of.end())
            for (std::size_t c : it->second)
                if (c != self_index) external = true;
        if (external) add_unique(out, s);
    }
    return out;
}

std::unordered_map<NetId, std::vector<std::size_t>> PackedDesign::build_consumers(
    const MappedDesign& md) const {
    std::unordered_map<NetId, std::vector<std::size_t>> consumers;
    auto add = [&consumers](NetId s, std::size_t cluster) {
        auto& v = consumers[s];
        if (std::find(v.begin(), v.end(), cluster) == v.end()) v.push_back(cluster);
    };
    for (std::size_t li = 0; li < md.les.size(); ++li)
        for (NetId s : md.les[li].input_signals()) add(s, cluster_of_le[li]);
    for (std::size_t pi = 0; pi < md.pdes.size(); ++pi)
        add(md.pdes[pi].input, cluster_of_pde[pi]);
    return consumers;
}

PackedDesign pack(const MappedDesign& md, const core::ArchSpec& arch, const PackOptions& opts) {
    PackedDesign pd;
    pd.cluster_of_le.assign(md.les.size(), SIZE_MAX);
    pd.cluster_of_pde.assign(md.pdes.size(), SIZE_MAX);

    // Consumers by signal over LE/PDE indices (for affinity and pin counting).
    std::unordered_map<NetId, std::vector<std::size_t>> le_consumers;
    for (std::size_t li = 0; li < md.les.size(); ++li)
        for (NetId s : md.les[li].input_signals()) le_consumers[s].push_back(li);
    std::unordered_set<NetId> po_signals;
    for (const auto& [name, s] : md.primary_outputs) po_signals.insert(s);

    auto cluster_legal = [&](const Cluster& c) {
        if (c.le_indices.size() > arch.les_per_plb) return false;
        if (c.external_inputs(md).size() > arch.plb_inputs) return false;
        // Conservative output bound: count every produced signal that has any
        // consumer or PO (a superset of what finally leaves the cluster).
        std::size_t outs = 0;
        for (NetId s : c.produced(md)) {
            bool needed = po_signals.count(s) != 0;
            const auto it = le_consumers.find(s);
            if (it != le_consumers.end()) {
                for (std::size_t li : it->second)
                    if (std::find(c.le_indices.begin(), c.le_indices.end(), li) ==
                        c.le_indices.end())
                        needed = true;
            }
            for (const PdeInst& p : md.pdes)
                if (p.input == s) needed = true;  // refined after PDE attach
            if (needed) ++outs;
        }
        return outs <= arch.plb_outputs;
    };

    auto affinity = [&](const Cluster& c, std::size_t li) {
        std::size_t shared = 0;
        const auto c_in = c.external_inputs(md);
        const auto c_made = c.produced(md);
        for (NetId s : md.les[li].input_signals()) {
            if (std::find(c_in.begin(), c_in.end(), s) != c_in.end()) ++shared;
            if (std::find(c_made.begin(), c_made.end(), s) != c_made.end()) shared += 2;
        }
        for (NetId s : md.les[li].output_signals()) {
            if (std::find(c_in.begin(), c_in.end(), s) != c_in.end()) shared += 2;
        }
        return shared;
    };

    std::vector<bool> assigned(md.les.size(), false);
    for (std::size_t seed = 0; seed < md.les.size(); ++seed) {
        if (assigned[seed]) continue;
        Cluster c;
        c.le_indices.push_back(seed);
        assigned[seed] = true;
        check(cluster_legal(c), "pack: single LE exceeds PLB pin budget");
        while (c.le_indices.size() < arch.les_per_plb) {
            std::size_t best = SIZE_MAX;
            std::size_t best_aff = 0;
            for (std::size_t li = 0; li < md.les.size(); ++li) {
                if (assigned[li]) continue;
                if (!opts.affinity_clustering) {
                    best = li;  // first-fit
                    break;
                }
                const std::size_t aff = 1 + affinity(c, li);
                if (aff > best_aff) {
                    Cluster trial = c;
                    trial.le_indices.push_back(li);
                    if (!cluster_legal(trial)) continue;
                    best_aff = aff;
                    best = li;
                }
            }
            if (best == SIZE_MAX) break;
            Cluster trial = c;
            trial.le_indices.push_back(best);
            if (!cluster_legal(trial)) break;
            c = std::move(trial);
            assigned[best] = true;
        }
        for (std::size_t li : c.le_indices) pd.cluster_of_le[li] = pd.clusters.size();
        pd.clusters.push_back(std::move(c));
    }

    // Attach PDEs: prefer the cluster producing the PDE's input signal, then
    // any cluster consuming its output, then a fresh cluster.
    for (std::size_t pi = 0; pi < md.pdes.size(); ++pi) {
        const PdeInst& p = md.pdes[pi];
        std::size_t chosen = SIZE_MAX;
        for (std::size_t ci = 0; ci < pd.clusters.size() && chosen == SIZE_MAX; ++ci) {
            if (pd.clusters[ci].pde_index) continue;
            const auto made = pd.clusters[ci].produced(md);
            if (std::find(made.begin(), made.end(), p.input) != made.end()) {
                Cluster trial = pd.clusters[ci];
                trial.pde_index = pi;
                if (trial.external_inputs(md).size() <= arch.plb_inputs) chosen = ci;
            }
        }
        for (std::size_t ci = 0; ci < pd.clusters.size() && chosen == SIZE_MAX; ++ci) {
            if (pd.clusters[ci].pde_index) continue;
            Cluster trial = pd.clusters[ci];
            trial.pde_index = pi;
            if (trial.external_inputs(md).size() <= arch.plb_inputs) chosen = ci;
        }
        if (chosen == SIZE_MAX) {
            Cluster c;
            c.pde_index = pi;
            chosen = pd.clusters.size();
            pd.clusters.push_back(std::move(c));
        } else {
            pd.clusters[chosen].pde_index = pi;
        }
        pd.cluster_of_pde[pi] = chosen;
    }
    return pd;
}

std::uint64_t PackOptions::fingerprint() const noexcept {
    static_assert(sizeof(PackOptions) == 1,
                  "PackOptions changed: update fingerprint() and this assert");
    Fingerprint f;
    f.mix(affinity_clustering);
    return f.digest();
}

}  // namespace afpga::cad
