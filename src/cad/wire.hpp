/// \file
/// The compile-service wire protocol: versioned, checksummed, length-prefixed
/// binary frames carrying the FlowService verbs between flow_client and
/// flow_server over TCP or Unix-domain sockets.
///
/// Framing (24-byte header, all fields little-endian):
///
///     magic u32 ("AFPW") | version u32 | type u32 | payload_len u32 |
///     checksum u64 (FNV-1a over the 4 type bytes ++ the payload)
///
/// Rules, in the spirit of cad/serialize:
///  - payloads are BlobWriter/BlobReader encodings (fixed-width little-endian
///    fields, u64 container-size prefixes), so equal values always frame to
///    identical bytes — the wire-vs-in-process bit-identity gates rest on it;
///  - the decoder validates as it goes (magic, version, type range, payload
///    cap, checksum, then per-field decoding) and throws base::Error on any
///    malformed input without retaining partial state — a server maps that
///    to "poison the connection", never a crash;
///  - covering the type bytes with the checksum means a bit flip cannot
///    relabel one valid message as another valid message.
///
/// Version policy: bump kProtocolVersion whenever any payload codec changes
/// shape; there is no cross-version negotiation (the Hello exchange simply
/// rejects mismatches — client and server ship from one tree).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "cad/flow.hpp"
#include "cad/serialize.hpp"
#include "netlist/netlist.hpp"

namespace afpga::cad::wire {

/// Frame magic: "AFPW" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x57504641u;
/// Protocol version; see the file comment's version policy.
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Fixed frame-header size in bytes.
inline constexpr std::size_t kHeaderBytes = 24;
/// Hard cap on a single frame's payload — anything larger is malformed by
/// definition, so a corrupt length field cannot make a peer buffer gigabytes.
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;
/// Result streaming slices bitstream blobs into chunks of this many bytes,
/// bounding both the frame size and the server's per-connection buffering.
inline constexpr std::size_t kResultChunkBytes = 64u << 10;

/// Every message the protocol speaks. Values are wire-stable.
enum class MsgType : std::uint32_t {
    Hello = 1,         ///< client → server: open a session
    HelloOk = 2,       ///< server → client: session accepted, lane assigned
    Submit = 3,        ///< client → server: one FlowJob (netlist + knobs)
    SubmitOk = 4,      ///< server → client: job accepted, id assigned
    Busy = 5,          ///< server → client: queue full, back off and retry
    Status = 6,        ///< client → server: poll one job
    StatusReply = 7,   ///< server → client: non-blocking job snapshot
    Wait = 8,          ///< client → server: stream the result when done
    ResultBegin = 9,   ///< server → client: terminal status + result size
    ResultChunk = 10,  ///< server → client: one slice of the result blob
    ResultEnd = 11,    ///< server → client: result complete + checksum
    Cancel = 12,       ///< client → server: cancel a queued job
    CancelReply = 13,  ///< server → client: whether the cancel landed
    Report = 14,       ///< client → server: request the service JSON report
    ReportReply = 15,  ///< server → client: FlowService::report_json()
    Drain = 16,        ///< client → server: refuse new submits, finish queue
    DrainOk = 17,      ///< server → client: drain acknowledged
    Error = 18,        ///< server → client: request-level failure
};
/// Largest valid MsgType value (frame validation range-checks against it).
inline constexpr std::uint32_t kMaxMsgType = static_cast<std::uint32_t>(MsgType::Error);

/// Lower-case message name for logs and errors.
[[nodiscard]] std::string to_string(MsgType t);

/// Request-level error codes carried by ErrorMsg. Values are wire-stable.
enum class ErrCode : std::uint32_t {
    BadRequest = 1,  ///< malformed payload or protocol-order violation
    UnknownJob = 2,  ///< job id was never assigned to this connection
    Draining = 3,    ///< server refuses new submits while draining
    Internal = 4,    ///< server-side failure outside the job itself
};

/// FNV-1a over `n` bytes. Chainable: pass a previous digest as `seed` to
/// extend it. Single-byte changes provably change the digest (each step is
/// a bijection in the accumulator), which is what the frame fuzzer pins.
[[nodiscard]] std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// One decoded frame: the type tag plus its raw payload bytes.
struct Frame {
    MsgType type = MsgType::Error;      ///< validated message type
    std::vector<std::uint8_t> payload;  ///< checksum-verified payload bytes
};

/// Frame a payload for the wire; throws base::Error past kMaxPayloadBytes.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(MsgType type,
                                                     const std::vector<std::uint8_t>& payload);

/// Incremental frame reassembly over an arbitrary byte stream (sockets
/// deliver any split). feed() appends; next() yields one validated frame,
/// std::nullopt while incomplete, and throws base::Error on malformed input
/// — after which the stream is poisoned and the caller must drop the peer.
class FrameDecoder {
public:
    /// Append raw bytes from the stream.
    void feed(const std::uint8_t* data, std::size_t n);
    /// Append raw bytes from the stream.
    void feed(const std::vector<std::uint8_t>& bytes) { feed(bytes.data(), bytes.size()); }

    /// Extract the next complete frame; nullopt = need more bytes. Throws
    /// base::Error on bad magic/version/type/length/checksum.
    [[nodiscard]] std::optional<Frame> next();

    /// True when no partial frame is buffered (a clean stream boundary).
    [[nodiscard]] bool idle() const noexcept { return buf_.size() == pos_; }
    /// Bytes buffered but not yet consumed by next().
    [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

// --- reusable payload codecs (also unit-tested directly) --------------------

/// Netlist wire codec: cells/nets/PI/PO tables verbatim — including each
/// net's sink order, which the construction API cannot replay for handshake
/// feedback cycles. decode_netlist rebuilds through Netlist::from_parts, so
/// hostile bytes throw base::Error instead of producing a malformed graph.
void encode_netlist(const netlist::Netlist& nl, BlobWriter& w);
/// Inverse of encode_netlist; throws base::Error on corruption.
[[nodiscard]] netlist::Netlist decode_netlist(BlobReader& r);

/// MappingHints wire codec (net ids are validated by the Submit decoder
/// against the netlist they arrive with, not here).
void encode_hints(const asynclib::MappingHints& h, BlobWriter& w);
/// Inverse of encode_hints; throws base::Error on corruption.
[[nodiscard]] asynclib::MappingHints decode_hints(BlobReader& r);

/// FlowOptions wire codec over every SEMANTIC field (the same set
/// FlowOptions::fingerprint() hashes); the process-local prebuilt_rr /
/// artifact_store pointers never cross the wire — the server wires in its
/// own shared store and RR memo.
void encode_flow_options(const FlowOptions& o, BlobWriter& w);
/// Inverse of encode_flow_options; throws base::Error on corruption.
[[nodiscard]] FlowOptions decode_flow_options(BlobReader& r);

// --- messages ---------------------------------------------------------------

/// Session open (client → server).
struct HelloMsg {
    std::string client_name;                       ///< label for reports/telemetry
    std::uint32_t protocol = kProtocolVersion;     ///< client's protocol version
};

/// Session accepted (server → client).
struct HelloOkMsg {
    std::uint32_t lane = 0;         ///< fairness lane assigned to this client
    std::uint32_t max_pending = 0;  ///< server queue bound (backpressure trips above it)
    std::uint32_t threads = 0;      ///< service worker count — sizing hint for batching
};

/// One compile request (client → server). Self-contained: the netlist,
/// hints, architecture and options all travel in the payload.
struct SubmitMsg {
    std::string name;                ///< job label
    std::int32_t priority = 0;       ///< FlowJob::priority
    netlist::Netlist nl{};           ///< the design, by value
    asynclib::MappingHints hints;    ///< mapper hints (may be empty)
    core::ArchSpec arch;             ///< target architecture
    FlowOptions opts;                ///< flow knobs (semantic fields only)
};

/// Job accepted (server → client).
struct SubmitOkMsg {
    std::uint64_t job_id = 0;       ///< server-side FlowJobId
    std::uint32_t queue_depth = 0;  ///< pending jobs after this submit
};

/// Queue full — back off (server → client).
struct BusyMsg {
    std::uint32_t queue_depth = 0;    ///< current pending depth
    std::uint32_t limit = 0;          ///< configured max_pending
    std::uint32_t retry_after_ms = 0; ///< suggested client backoff
};

/// Poll one job (client → server).
struct StatusMsg {
    std::uint64_t job_id = 0;  ///< job to poll
};

/// Non-blocking job snapshot (server → client); mirrors FlowService::JobBrief.
struct StatusReplyMsg {
    std::uint64_t job_id = 0;     ///< echoed id
    std::uint8_t status = 0;      ///< FlowJobStatus as its underlying value
    std::uint64_t start_seq = 0;  ///< scheduler dispatch order (0 = not started)
    double wall_ms = 0.0;         ///< execution time
    double queue_ms = 0.0;        ///< queue wait
    std::string error;            ///< failure text when Failed
};

/// Ask for the result stream once the job finishes (client → server).
struct WaitMsg {
    std::uint64_t job_id = 0;  ///< job to wait on
};

/// Head of a result stream (server → client). For an Ok job,
/// `result_bytes` of ArtifactCodec<BitstreamArtifact> blob follow in
/// ResultChunk frames; for Failed/Cancelled jobs result_bytes is 0.
struct ResultBeginMsg {
    std::uint64_t job_id = 0;      ///< echoed id
    std::uint8_t status = 0;       ///< terminal FlowJobStatus
    std::string error;             ///< failure text when Failed
    double wall_ms = 0.0;          ///< execution time
    double queue_ms = 0.0;         ///< queue wait
    std::uint64_t start_seq = 0;   ///< scheduler dispatch order
    std::string telemetry_json;    ///< FlowTelemetry::to_json() when Ok
    std::uint64_t result_bytes = 0;  ///< total blob size to expect
};

/// One slice of a result blob (server → client).
struct ResultChunkMsg {
    std::uint64_t job_id = 0;  ///< echoed id
    std::uint64_t offset = 0;  ///< byte offset of this slice
    std::vector<std::uint8_t> bytes;  ///< slice data (≤ kResultChunkBytes)
};

/// Result stream terminator (server → client).
struct ResultEndMsg {
    std::uint64_t job_id = 0;    ///< echoed id
    std::uint64_t checksum = 0;  ///< fnv1a64 over the whole reassembled blob
};

/// Cancel a queued job (client → server).
struct CancelMsg {
    std::uint64_t job_id = 0;  ///< job to cancel
};

/// Cancel outcome (server → client).
struct CancelReplyMsg {
    std::uint64_t job_id = 0;  ///< echoed id
    bool cancelled = false;    ///< true iff it was still queued
};

/// Request the service report (client → server; empty payload).
struct ReportMsg {};

/// FlowService::report_json() plus server-side counters (server → client).
struct ReportReplyMsg {
    std::string json;  ///< the report document
};

/// Begin graceful drain (client → server; empty payload).
struct DrainMsg {};

/// Drain acknowledged (server → client).
struct DrainOkMsg {
    std::uint64_t jobs_total = 0;  ///< jobs the service has accepted so far
};

/// Request-level failure (server → client).
struct ErrorMsg {
    std::uint32_t code = 0;  ///< an ErrCode value
    std::string message;     ///< human-readable detail
};

// Each message encodes to a payload (frame it with its MsgType) and decodes
// from a full payload; decoders throw base::Error on corruption or trailing
// bytes, mirroring the cad/serialize blob contract.

[[nodiscard]] std::vector<std::uint8_t> encode_payload(const HelloMsg& m);         ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const HelloOkMsg& m);       ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const SubmitMsg& m);        ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const SubmitOkMsg& m);      ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const BusyMsg& m);          ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const StatusMsg& m);        ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const StatusReplyMsg& m);   ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const WaitMsg& m);          ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const ResultBeginMsg& m);   ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const ResultChunkMsg& m);   ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const ResultEndMsg& m);     ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const CancelMsg& m);        ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const CancelReplyMsg& m);   ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const ReportMsg& m);        ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const ReportReplyMsg& m);   ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const DrainMsg& m);         ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const DrainOkMsg& m);       ///< → bytes
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const ErrorMsg& m);         ///< → bytes

[[nodiscard]] HelloMsg decode_hello(const std::vector<std::uint8_t>& p);              ///< bytes →
[[nodiscard]] HelloOkMsg decode_hello_ok(const std::vector<std::uint8_t>& p);         ///< bytes →
[[nodiscard]] SubmitMsg decode_submit(const std::vector<std::uint8_t>& p);            ///< bytes →
[[nodiscard]] SubmitOkMsg decode_submit_ok(const std::vector<std::uint8_t>& p);       ///< bytes →
[[nodiscard]] BusyMsg decode_busy(const std::vector<std::uint8_t>& p);                ///< bytes →
[[nodiscard]] StatusMsg decode_status(const std::vector<std::uint8_t>& p);            ///< bytes →
[[nodiscard]] StatusReplyMsg decode_status_reply(const std::vector<std::uint8_t>& p); ///< bytes →
[[nodiscard]] WaitMsg decode_wait(const std::vector<std::uint8_t>& p);                ///< bytes →
[[nodiscard]] ResultBeginMsg decode_result_begin(const std::vector<std::uint8_t>& p); ///< bytes →
[[nodiscard]] ResultChunkMsg decode_result_chunk(const std::vector<std::uint8_t>& p); ///< bytes →
[[nodiscard]] ResultEndMsg decode_result_end(const std::vector<std::uint8_t>& p);     ///< bytes →
[[nodiscard]] CancelMsg decode_cancel(const std::vector<std::uint8_t>& p);            ///< bytes →
[[nodiscard]] CancelReplyMsg decode_cancel_reply(const std::vector<std::uint8_t>& p); ///< bytes →
[[nodiscard]] ReportMsg decode_report(const std::vector<std::uint8_t>& p);            ///< bytes →
[[nodiscard]] ReportReplyMsg decode_report_reply(const std::vector<std::uint8_t>& p); ///< bytes →
[[nodiscard]] DrainMsg decode_drain(const std::vector<std::uint8_t>& p);              ///< bytes →
[[nodiscard]] DrainOkMsg decode_drain_ok(const std::vector<std::uint8_t>& p);         ///< bytes →
[[nodiscard]] ErrorMsg decode_error(const std::vector<std::uint8_t>& p);              ///< bytes →

}  // namespace afpga::cad::wire
