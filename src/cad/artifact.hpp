/// \file
/// Content-addressed storage for CAD stage products.
///
/// The ArtifactStore maps ArtifactKeys (cad/fingerprint.hpp) to immutable
/// stage products: a techmap's MappedDesign, a pack's PackedDesign, a
/// placement, a routed net list, a programmed bitstream. A flow consults
/// the store before running each stage (cad/flow.cpp) and publishes after,
/// so a sweep that re-runs a design with only downstream knobs changed
/// skips every unchanged upstream stage. The store also memoizes one
/// RRGraph per architecture — the single biggest shared allocation of a
/// multi-job grid.
///
/// The store is a two-tier cache:
///  - an in-memory tier capped by a byte budget (per-artifact cost from
///    ArtifactCodec<T>::approx_bytes) with least-recently-used eviction.
///    Eviction only drops the store's reference: outstanding
///    std::shared_ptr readers and in-flight computes are never
///    invalidated, and an evicted product can come back from disk.
///  - an optional on-disk tier of content-addressed blobs
///    (<disk_dir>/<key_hex>, format in cad/serialize.hpp) that survives
///    process restarts. Blobs carry a format version and checksum, so a
///    corrupt, truncated or stale blob degrades to a cache miss — never a
///    crash. Writes go to a temp file and are renamed into place, so
///    concurrent FlowService processes can share one cache directory.
///
/// Ownership/threading contract: entries are std::shared_ptr<const T>;
/// once published an artifact is immutable and may be read by any number
/// of concurrent flows (a cache hit copies the product into the flow's own
/// FlowResult). All store operations are internally synchronized — except
/// configure(), which must happen-before concurrent use. Two jobs racing
/// to publish the same key is benign because equal keys imply
/// bit-identical products (stages are pure functions of their keys). The
/// RR cache hands racing builders of the *same* architecture one
/// shared_future, so a graph is built exactly once per store.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cad/fingerprint.hpp"
#include "cad/mapped.hpp"
#include "cad/pack.hpp"
#include "cad/place.hpp"
#include "cad/route.hpp"
#include "core/bitstream.hpp"
#include "core/rrgraph.hpp"

namespace afpga::base {
class ThreadPool;
}

namespace afpga::cad {

/// Per-product serialization + footprint trait, specialized in
/// cad/serialize.hpp for every cacheable stage product. Translation units
/// that call ArtifactStore::get/put must include that header.
template <typename T>
struct ArtifactCodec;

/// The route stage's cacheable product: the routing itself plus the
/// flattened request list the bitstream stage programs from.
struct RouteArtifact {
    RoutingResult routing;                   ///< routed trees + telemetry counters
    std::vector<RouteRequest> reqs;          ///< flattened per-signal requests
    /// Per request, the consuming cluster of each sink (SIZE_MAX = pad sink).
    std::vector<std::vector<std::size_t>> sink_cluster;
    std::vector<netlist::NetId> req_signal;  ///< the signal each request carries
};

/// The bitstream stage's cacheable product.
struct BitstreamArtifact {
    core::Bitstream bits;  ///< the programmed configuration
    /// Pad index -> primary-I/O name, for simulation and reports.
    std::unordered_map<std::uint32_t, std::string> pad_names;
};

/// Which tier satisfied a get().
enum class ArtifactTier : std::uint8_t {
    Memory,  ///< resident entry
    Disk,    ///< restored from a disk blob (and re-admitted to memory)
};

/// Cache-tier configuration (see the file comment).
struct ArtifactStoreConfig {
    /// In-memory tier byte budget (sum of resident approx_bytes); 0 =
    /// unbounded. The budget is a hard cap: after every admission the
    /// least-recently-used entries are evicted until the tier fits, even
    /// when that evicts the entry just admitted (callers keep their
    /// shared_ptr, and the disk tier keeps the bytes).
    std::size_t memory_budget_bytes = 0;
    /// Directory of the on-disk tier (created on configure, parents
    /// included); empty = disk tier disabled. Safe to share between
    /// concurrent stores and processes on one host.
    std::string disk_dir;
    /// Disk-tier byte budget, enforced by prune_disk() (run automatically
    /// on configure, i.e. at FlowService startup): oldest blobs by
    /// modification time are deleted until the directory fits. 0 =
    /// unbounded.
    std::size_t disk_budget_bytes = 0;
    /// Maximum blob age in seconds for prune_disk(); older blobs are
    /// deleted regardless of the byte budget. 0 = no age limit.
    std::uint64_t disk_max_age_seconds = 0;
};

/// Monotonic counters + current occupancy (schema: docs/TELEMETRY.md).
struct ArtifactStoreStats {
    std::uint64_t hits = 0;            ///< get() served by the memory tier
    std::uint64_t disk_hits = 0;       ///< get() served by the disk tier
    std::uint64_t misses = 0;          ///< get() served by neither
    std::uint64_t evictions = 0;       ///< entries evicted by the byte budget
    std::uint64_t collisions = 0;      ///< cross-type key collisions replaced on put()
    std::uint64_t disk_writes = 0;     ///< blobs durably written (renamed into place)
    std::uint64_t disk_write_failures = 0;  ///< failed blob writes (best-effort, non-fatal)
    std::uint64_t disk_bad_blobs = 0;  ///< corrupt/stale/truncated blobs read as misses
    std::uint64_t disk_pruned = 0;     ///< blobs deleted by disk-tier GC (prune_disk)
    std::uint64_t rr_hits = 0;         ///< rr_for served by the per-arch memo
    std::uint64_t rr_misses = 0;       ///< rr_for that had to build the graph
    std::size_t resident_bytes = 0;    ///< memory-tier footprint (approx_bytes sum)
    std::size_t num_artifacts = 0;     ///< memory-tier entry count
    std::size_t num_rr_graphs = 0;     ///< architectures with a memoized RR graph
    std::size_t memory_budget_bytes = 0;  ///< configured budget (0 = unbounded)
};

/// Thread-safe two-tier content-addressed artifact cache; see the file
/// comment for the ownership contract.
class ArtifactStore {
public:
    /// Version stamped into every disk-blob header. Bump when any encoder
    /// in cad/serialize.cpp changes shape; older blobs then read as misses.
    static constexpr std::uint32_t kDiskFormatVersion = 4;

    /// An unbounded, memory-only store.
    ArtifactStore() = default;
    /// A store with the given tier configuration.
    explicit ArtifactStore(ArtifactStoreConfig cfg) { configure(std::move(cfg)); }
    ArtifactStore(const ArtifactStore&) = delete;             ///< non-copyable
    ArtifactStore& operator=(const ArtifactStore&) = delete;  ///< non-copyable

    /// (Re)configure the tiers. Creates the disk directory; throws
    /// base::Error when it cannot be created. A shrunk byte budget evicts
    /// immediately. Not synchronized against concurrent store use — call it
    /// before the store is shared.
    void configure(ArtifactStoreConfig cfg);

    /// The artifact published under `key`, or nullptr (counted as a miss).
    /// Misses in memory fall through to the disk tier (when configured);
    /// a restored product is re-admitted to the memory tier. `tier` (when
    /// non-null) receives which tier served a non-null result. A type
    /// mismatch (possible only on a 64-bit key collision between stages,
    /// which chain their stage name into the key) is also a miss.
    template <typename T>
    [[nodiscard]] std::shared_ptr<const T> get(ArtifactKey key, ArtifactTier* tier = nullptr) const {
        {
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                if (const auto* p = std::any_cast<std::shared_ptr<const T>>(&it->second.value)) {
                    ++hits_;
                    it->second.last_use = ++lru_clock_;
                    if (tier) *tier = ArtifactTier::Memory;
                    return *p;
                }
                // A differently-typed resident entry (key collision): fall
                // through to the disk tier, whose header names the blob's
                // type and rejects cross-type reads itself.
            }
            if (disk_dir_.empty()) {
                ++misses_;
                return nullptr;
            }
        }
        // The disk probe runs unlocked: blob I/O and decoding must not
        // serialize concurrent flows. Racing restores of one key are
        // benign (equal keys imply equal content).
        std::shared_ptr<const T> restored;
        if (const auto payload = disk_read(key, ArtifactCodec<T>::kTypeId)) {
            try {
                restored = std::make_shared<const T>(ArtifactCodec<T>::decode_blob(*payload));
            } catch (...) {
                count_bad_blob();  // undecodable payload degrades to a miss
            }
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (!restored) {
            ++misses_;
            return nullptr;
        }
        ++disk_hits_;
        if (tier) *tier = ArtifactTier::Disk;
        if (map_.find(key) == map_.end())
            insert_locked(key, std::any(restored), ArtifactCodec<T>::approx_bytes(*restored));
        return restored;
    }

    /// Publish an artifact to both tiers. First writer wins for a same-type
    /// duplicate (equal keys imply equal content); a differently-typed
    /// entry under the key is a 64-bit key collision and is REPLACED —
    /// keeping it would wedge the key for the new type (every get() a
    /// miss, every recomputed put() dropped) — and counted in
    /// `collisions`. Disk-tier writes are best-effort: failures are
    /// counted, never thrown.
    template <typename T>
    void put(ArtifactKey key, std::shared_ptr<const T> value) {
        const std::size_t bytes = ArtifactCodec<T>::approx_bytes(*value);
        bool to_disk = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                if (std::any_cast<std::shared_ptr<const T>>(&it->second.value)) return;
                ++collisions_;
                resident_bytes_ -= it->second.bytes;
                map_.erase(it);
            }
            insert_locked(key, std::any(value), bytes);
            to_disk = !disk_dir_.empty();
        }
        if (to_disk) {
            try {
                disk_write(key, ArtifactCodec<T>::kTypeId, ArtifactCodec<T>::encode_blob(*value));
            } catch (...) {
                count_disk_write_failure();  // encoding failed; stay memory-only
            }
        }
    }

    /// In-flight deduplication, so a concurrently submitted cold grid
    /// computes each shared stage once instead of once per worker: true
    /// means the caller owns the computation of `key` (it MUST call
    /// finish_compute afterwards, on success or failure); false means the
    /// key got published while we waited for another computer — re-get it.
    /// If a computer fails without publishing, one blocked waiter inherits
    /// ownership (true) and reproduces the failure for its own job.
    /// (A tiny budget can evict the fresh product before a waiter re-gets
    /// it; the waiter then claims the key and recomputes — slower, still
    /// correct.)
    [[nodiscard]] bool begin_compute(ArtifactKey key);
    /// Release the computation claim on `key` and wake its waiters.
    void finish_compute(ArtifactKey key);

    /// Drop every resident artifact and memoized RR graph. The disk tier
    /// is untouched: cleared products restore from their blobs on the next
    /// get(). In-flight computations are unaffected: their results publish
    /// into the emptied store. Counters keep counting across clears.
    void clear();

    /// Disk-tier GC: delete stale temp files, every blob older than
    /// `disk_max_age_seconds`, then (oldest modification time first, ties
    /// by filename) enough blobs to bring the directory under
    /// `disk_budget_bytes`. Runs automatically on configure() when either
    /// limit is set; exposed for tests and periodic maintenance. Deleting
    /// a blob another process is reading is safe (POSIX unlink semantics),
    /// and a pruned product simply recomputes on its next miss. Counts
    /// deleted blobs in `disk_pruned`; I/O errors are swallowed (best
    /// effort, like all disk-tier operations). No-op without a disk tier.
    void prune_disk();

    /// The routing-resource graph for `arch`, built on first request and
    /// shared by every subsequent caller (keyed by ArchSpec::fingerprint).
    /// Racing callers for one architecture block on a single build; `pool`
    /// (when non-null) parallelizes that build. A failed build never
    /// poisons the memo: the failing builder's own caller sees the
    /// exception, every other caller (concurrent or later) retries with a
    /// fresh build. Marked const because it is a cache: the returned graph
    /// is immutable either way.
    [[nodiscard]] std::shared_ptr<const core::RRGraph> rr_for(const core::ArchSpec& arch,
                                                              base::ThreadPool* pool = nullptr) const;
    /// rr_for generalized over the build function — the seam the RR memo's
    /// failure-handling tests use. `fp` keys the memo; `build` runs outside
    /// the memo lock and may throw (see rr_for for the failure contract).
    [[nodiscard]] std::shared_ptr<const core::RRGraph> rr_for_keyed(
        std::uint64_t fp,
        const std::function<std::shared_ptr<const core::RRGraph>()>& build) const;
    /// True when `arch`'s graph is memoized or being built right now —
    /// never for a failed build (its memo entry is erased before the error
    /// publishes). Lets callers skip creating a build pool they would not
    /// use; a stale answer only costs an idle pool (or one serial build),
    /// never correctness.
    [[nodiscard]] bool has_rr(const core::ArchSpec& arch) const;

    // --- statistics (telemetry) ---------------------------------------------
    /// Every counter plus current occupancy, one consistent snapshot.
    [[nodiscard]] ArtifactStoreStats stats() const;
    /// get() calls served by the memory tier.
    [[nodiscard]] std::uint64_t hits() const noexcept;
    /// get() calls served by neither tier.
    [[nodiscard]] std::uint64_t misses() const noexcept;
    /// Artifacts currently resident in the memory tier.
    [[nodiscard]] std::size_t num_artifacts() const noexcept;
    /// Architectures with a memoized RR graph.
    [[nodiscard]] std::size_t num_rr_graphs() const noexcept;

private:
    /// One memory-tier entry.
    struct Entry {
        std::any value;            ///< std::shared_ptr<const T>
        std::size_t bytes = 0;     ///< approx_bytes at admission
        std::uint64_t last_use = 0;  ///< lru_clock_ stamp of the last touch
    };

    /// Admit an entry, stamp its recency, and enforce the byte budget.
    void insert_locked(ArtifactKey key, std::any value, std::size_t bytes) const;
    /// Evict least-recently-used entries until resident_bytes_ fits.
    void evict_locked() const;
    /// Read + validate the blob for `key`; nullopt is a miss (no file,
    /// wrong type, or — counted — a corrupt/stale blob).
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> disk_read(ArtifactKey key,
                                                                     std::uint32_t type_id) const;
    /// Write a blob via temp-file + rename; never throws, counts outcomes.
    void disk_write(ArtifactKey key, std::uint32_t type_id,
                    const std::vector<std::uint8_t>& payload) const;
    [[nodiscard]] std::string blob_path(ArtifactKey key) const;
    void count_bad_blob() const;
    void count_disk_write_failure() const;

    mutable std::mutex mu_;
    /// Mutable: get() admits disk restores and refreshes recency stamps —
    /// cache bookkeeping, not observable artifact state.
    mutable std::unordered_map<ArtifactKey, Entry> map_;
    std::size_t memory_budget_bytes_ = 0;
    std::string disk_dir_;
    std::size_t disk_budget_bytes_ = 0;
    std::uint64_t disk_max_age_seconds_ = 0;
    mutable std::size_t resident_bytes_ = 0;
    mutable std::uint64_t lru_clock_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t disk_hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    mutable std::uint64_t evictions_ = 0;
    mutable std::uint64_t collisions_ = 0;
    mutable std::uint64_t disk_writes_ = 0;
    mutable std::uint64_t disk_write_failures_ = 0;
    mutable std::uint64_t disk_bad_blobs_ = 0;
    mutable std::uint64_t disk_pruned_ = 0;

    /// One entry per key currently being computed (begin_compute /
    /// finish_compute); waiters block on the future outside the lock.
    struct Inflight {
        std::shared_ptr<std::promise<void>> done;
        std::shared_future<void> wait;
    };
    std::unordered_map<ArtifactKey, Inflight> inflight_;

    // RR memo: a future per architecture so concurrent first requests build
    // once and everyone else waits for that build instead of duplicating it.
    mutable std::mutex rr_mu_;
    mutable std::unordered_map<std::uint64_t,
                               std::shared_future<std::shared_ptr<const core::RRGraph>>>
        rr_;
    mutable std::uint64_t rr_hits_ = 0;
    mutable std::uint64_t rr_misses_ = 0;
};

}  // namespace afpga::cad
