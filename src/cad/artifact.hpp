/// \file
/// Content-addressed storage for CAD stage products.
///
/// The ArtifactStore maps ArtifactKeys (cad/fingerprint.hpp) to immutable
/// stage products: a techmap's MappedDesign, a pack's PackedDesign, a
/// placement, a routed net list, a programmed bitstream. A flow consults
/// the store before running each stage (cad/flow.cpp) and publishes after,
/// so a sweep that re-runs a design with only downstream knobs changed
/// skips every unchanged upstream stage. The store also memoizes one
/// RRGraph per architecture — the single biggest shared allocation of a
/// multi-job grid.
///
/// Ownership/threading contract: entries are std::shared_ptr<const T>;
/// once published an artifact is immutable and may be read by any number
/// of concurrent flows (a cache hit copies the product into the flow's own
/// FlowResult). All store operations are internally synchronized; two jobs
/// racing to publish the same key is benign because equal keys imply
/// bit-identical products (stages are pure functions of their keys). The
/// RR cache hands racing builders of the *same* architecture one
/// shared_future, so a graph is built exactly once per store.
#pragma once

#include <any>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cad/fingerprint.hpp"
#include "cad/mapped.hpp"
#include "cad/pack.hpp"
#include "cad/place.hpp"
#include "cad/route.hpp"
#include "core/bitstream.hpp"
#include "core/rrgraph.hpp"

namespace afpga::base {
class ThreadPool;
}

namespace afpga::cad {

/// The route stage's cacheable product: the routing itself plus the
/// flattened request list the bitstream stage programs from.
struct RouteArtifact {
    RoutingResult routing;                   ///< routed trees + telemetry counters
    std::vector<RouteRequest> reqs;          ///< flattened per-signal requests
    /// Per request, the consuming cluster of each sink (SIZE_MAX = pad sink).
    std::vector<std::vector<std::size_t>> sink_cluster;
    std::vector<netlist::NetId> req_signal;  ///< the signal each request carries
};

/// The bitstream stage's cacheable product.
struct BitstreamArtifact {
    core::Bitstream bits;  ///< the programmed configuration
    /// Pad index -> primary-I/O name, for simulation and reports.
    std::unordered_map<std::uint32_t, std::string> pad_names;
};

/// Thread-safe content-addressed artifact cache; see the file comment for
/// the ownership contract.
class ArtifactStore {
public:
    /// An empty store.
    ArtifactStore() = default;
    ArtifactStore(const ArtifactStore&) = delete;             ///< non-copyable
    ArtifactStore& operator=(const ArtifactStore&) = delete;  ///< non-copyable

    /// The artifact published under `key`, or nullptr (counted as a miss).
    /// A type mismatch (possible only on a 64-bit key collision between
    /// stages, which chain their stage name into the key) is also a miss.
    template <typename T>
    [[nodiscard]] std::shared_ptr<const T> get(ArtifactKey key) const {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            if (const auto* p = std::any_cast<std::shared_ptr<const T>>(&it->second)) {
                ++hits_;
                return *p;
            }
        }
        ++misses_;
        return nullptr;
    }

    /// Publish an artifact. First writer wins; a duplicate publish of the
    /// same key is dropped (equal keys imply equal content).
    template <typename T>
    void put(ArtifactKey key, std::shared_ptr<const T> value) {
        std::lock_guard<std::mutex> lock(mu_);
        map_.emplace(key, std::move(value));
    }

    /// In-flight deduplication, so a concurrently submitted cold grid
    /// computes each shared stage once instead of once per worker: true
    /// means the caller owns the computation of `key` (it MUST call
    /// finish_compute afterwards, on success or failure); false means the
    /// key got published while we waited for another computer — re-get it.
    /// If a computer fails without publishing, one blocked waiter inherits
    /// ownership (true) and reproduces the failure for its own job.
    [[nodiscard]] bool begin_compute(ArtifactKey key);
    /// Release the computation claim on `key` and wake its waiters.
    void finish_compute(ArtifactKey key);

    /// Drop every published artifact and memoized RR graph. The store is
    /// otherwise unbounded — it pins every product ever published — so a
    /// long-lived FlowService should clear (or swap) its store between
    /// unrelated sweeps; policy-based eviction is a roadmap item. In-flight
    /// computations are unaffected: their results publish into the emptied
    /// store. Hit/miss counters keep counting across clears.
    void clear();

    /// The routing-resource graph for `arch`, built on first request and
    /// shared by every subsequent caller (keyed by ArchSpec::fingerprint).
    /// Racing callers for one architecture block on a single build; `pool`
    /// (when non-null) parallelizes that build. Marked const because it is
    /// a cache: the returned graph is immutable either way.
    [[nodiscard]] std::shared_ptr<const core::RRGraph> rr_for(const core::ArchSpec& arch,
                                                              base::ThreadPool* pool = nullptr) const;
    /// True when `arch`'s graph is memoized (or being built right now).
    /// Lets callers skip creating a build pool they would not use; a stale
    /// false only costs an idle pool, never correctness.
    [[nodiscard]] bool has_rr(const core::ArchSpec& arch) const;

    // --- statistics (telemetry; monotonically increasing) -------------------
    /// Lookups that found a (correctly typed) artifact.
    [[nodiscard]] std::uint64_t hits() const noexcept;
    /// Lookups that found nothing.
    [[nodiscard]] std::uint64_t misses() const noexcept;
    /// Artifacts currently published.
    [[nodiscard]] std::size_t num_artifacts() const noexcept;
    /// Architectures with a memoized RR graph.
    [[nodiscard]] std::size_t num_rr_graphs() const noexcept;

private:
    mutable std::mutex mu_;
    std::unordered_map<ArtifactKey, std::any> map_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;

    /// One entry per key currently being computed (begin_compute /
    /// finish_compute); waiters block on the future outside the lock.
    struct Inflight {
        std::shared_ptr<std::promise<void>> done;
        std::shared_future<void> wait;
    };
    std::unordered_map<ArtifactKey, Inflight> inflight_;

    // RR memo: a future per architecture so concurrent first requests build
    // once and everyone else waits for that build instead of duplicating it.
    mutable std::mutex rr_mu_;
    mutable std::unordered_map<std::uint64_t,
                               std::shared_future<std::shared_ptr<const core::RRGraph>>>
        rr_;
};

}  // namespace afpga::cad
