#include "cad/flow_service.hpp"

#include <cstdio>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "base/json.hpp"

namespace afpga::cad {

using base::check;

std::string to_string(FlowJobStatus s) {
    switch (s) {
        case FlowJobStatus::Queued: return "queued";
        case FlowJobStatus::Running: return "running";
        case FlowJobStatus::Ok: return "ok";
        case FlowJobStatus::Failed: return "failed";
        case FlowJobStatus::Cancelled: return "cancelled";
    }
    return "unknown";
}

FlowService::FlowService(FlowServiceOptions opts)
    : opts_(opts),
      threads_(opts.threads != 0 ? opts.threads
                                 : static_cast<unsigned>(base::ThreadPool::default_workers())),
      store_(std::make_shared<ArtifactStore>(
          ArtifactStoreConfig{opts.artifact_memory_budget_bytes, opts.artifact_cache_dir,
                              opts.artifact_disk_budget_bytes,
                              opts.artifact_disk_max_age_seconds})),
      pool_(threads_) {
    // Make the single-core-container caveat machine-detectable: a pool wider
    // than the hardware can only time-slice, so wall-clock "speedups"
    // measured that way are noise.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && threads_ > hw)
        std::fprintf(stderr,
                     "flow_service: WARNING: %u workers on %u hardware threads — "
                     "oversubscribed, wall-clock scaling numbers are unreliable\n",
                     threads_, hw);
}

FlowService::~FlowService() {
    // A paused service must still drain: re-open the dispatch gate so the
    // pool's destructor (which runs after this body) can finish the queue.
    resume();
}

FlowJobId FlowService::submit(FlowJob job) {
    check(job.nl != nullptr, "flow_service: job '" + job.name + "' has no netlist");
    job.arch.validate();
    FlowJobId id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        id = jobs_.size();
        jobs_.push_back(std::make_unique<Job>());
        Job* slot = jobs_.back().get();
        slot->spec = std::move(job);
        slot->result.name = slot->spec.name;
        slot->id = id;
        slot->queued.reset();
        pending_.push_back(id);
    }
    // Tickets are generic: each one runs whichever pending job the scheduler
    // ranks best at pick time, so priorities/lanes submitted later can still
    // jump ahead of this job.
    pool_.submit([this] { run_one(); });
    return id;
}

std::vector<FlowJobId> FlowService::submit_grid(std::vector<FlowJob> jobs) {
    // Validate the whole grid before enqueueing any of it: a mid-loop throw
    // would discard the handles of already-running jobs, stranding their
    // borrowed netlists.
    for (const FlowJob& j : jobs) {
        check(j.nl != nullptr, "flow_service: job '" + j.name + "' has no netlist");
        j.arch.validate();
    }
    std::vector<FlowJobId> ids;
    ids.reserve(jobs.size());
    for (FlowJob& j : jobs) ids.push_back(submit(std::move(j)));
    return ids;
}

void FlowService::run_one() {
    Job* job = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (paused_ || pending_.empty()) return;  // stale/extra ticket: no-op
        // Pick: highest priority, then the least-recently-started lane
        // (fair round-robin), then submission order. pending_ is ascending
        // by id, so keeping the first of any tie yields submission order.
        std::size_t best = 0;
        auto lane_last = [this](const Job& j) -> std::uint64_t {
            auto it = lane_last_start_.find(j.spec.lane);
            return it == lane_last_start_.end() ? 0 : it->second;
        };
        for (std::size_t i = 1; i < pending_.size(); ++i) {
            const Job& cand = *jobs_[pending_[i]];
            const Job& cur = *jobs_[pending_[best]];
            if (cand.spec.priority > cur.spec.priority ||
                (cand.spec.priority == cur.spec.priority &&
                 lane_last(cand) < lane_last(cur)))
                best = i;
        }
        job = jobs_[pending_[best]].get();
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
        job->result.status = FlowJobStatus::Running;
        job->result.queue_ms = job->queued.elapsed_ms();
        job->result.start_seq = ++start_clock_;
        lane_last_start_[job->spec.lane] = start_clock_;
    }
    execute(*job);
}

void FlowService::execute(Job& job) {
    static const asynclib::MappingHints kNoHints;
    const asynclib::MappingHints& hints = job.spec.hints ? *job.spec.hints : kNoHints;

    FlowJobStatus status = FlowJobStatus::Ok;
    std::string error;
    FlowResult fr;
    base::WallTimer t;
    try {
        // Wire the service's shared state into the job's options. Jobs that
        // brought their own store/graph keep them. This sits inside the try
        // because rr_for propagates RR-build failures — they must land in
        // the Failed path, never escape into the pool (a swallowed escape
        // would leave the job Running and wait() blocked forever).
        FlowOptions o = job.spec.opts;
        if (opts_.share_artifacts && !o.artifact_store) o.artifact_store = store_;
        if (opts_.share_rr && !o.prebuilt_rr) {
            // First flow of a new architecture builds the shared graph; give
            // that build the pool width the job's route stage would use.
            // Jobs whose graph is already memoized skip the pool entirely.
            std::unique_ptr<base::ThreadPool> rr_pool;
            if (o.route.threads >= 1 && !store_->has_rr(job.spec.arch))
                rr_pool = std::make_unique<base::ThreadPool>(o.route.threads);
            o.prebuilt_rr = store_->rr_for(job.spec.arch, rr_pool.get());
        }
        fr = run_flow(*job.spec.nl, hints, job.spec.arch, o);
    } catch (const std::exception& e) {
        status = FlowJobStatus::Failed;
        error = e.what();
    } catch (...) {
        // Anything non-std must still land in the Failed path: the pool
        // future is discarded, so an escape would strand the job in
        // Running and hang every waiter.
        status = FlowJobStatus::Failed;
        error = "non-standard exception";
    }
    const double wall_ms = t.elapsed_ms();

    {
        std::lock_guard<std::mutex> lock(mu_);
        job.result.status = status;
        job.result.error = std::move(error);
        job.result.result = std::move(fr);
        job.result.wall_ms = wall_ms;
    }
    cv_.notify_all();
    if (opts_.on_job_finished) opts_.on_job_finished(job.id);
}

namespace {

bool finished(FlowJobStatus s) noexcept {
    return s == FlowJobStatus::Ok || s == FlowJobStatus::Failed ||
           s == FlowJobStatus::Cancelled;
}

}  // namespace

const FlowJobResult& FlowService::wait(FlowJobId id) {
    std::unique_lock<std::mutex> lock(mu_);
    check(id < jobs_.size(), "flow_service: unknown job id");
    Job& job = *jobs_[id];
    cv_.wait(lock, [&] { return finished(job.result.status); });
    return job.result;
}

FlowJobResult FlowService::take(FlowJobId id) {
    (void)wait(id);
    std::lock_guard<std::mutex> lock(mu_);
    Job& job = *jobs_[id];
    FlowJobResult out = std::move(job.result);
    // Keep the slot honest for report_json(): label, status, timings and
    // error text survive; only the heavy FlowResult/telemetry is gone
    // (reported as "taken"). Drop the borrowed spec too — the job can
    // never run again, so the slot stops pinning netlist/arch data.
    job.result.name = out.name;
    job.result.status = out.status;
    job.result.error = out.error;
    job.result.wall_ms = out.wall_ms;
    job.result.queue_ms = out.queue_ms;
    job.result.start_seq = out.start_seq;
    job.taken = true;
    const int priority = job.spec.priority;
    const std::uint32_t lane = job.spec.lane;
    job.spec = FlowJob{};
    job.spec.priority = priority;
    job.spec.lane = lane;
    return out;
}

void FlowService::wait_all() {
    std::unique_lock<std::mutex> lock(mu_);
    // Snapshot: wait only for jobs that existed when the call began, so a
    // producer thread that keeps submitting cannot starve this waiter.
    const std::size_t upto = jobs_.size();
    cv_.wait(lock, [&] {
        for (std::size_t i = 0; i < upto; ++i)
            if (!finished(jobs_[i]->result.status)) return false;
        return true;
    });
}

bool FlowService::cancel(FlowJobId id) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        check(id < jobs_.size(), "flow_service: unknown job id");
        Job& job = *jobs_[id];
        if (job.result.status != FlowJobStatus::Queued) return false;
        job.result.status = FlowJobStatus::Cancelled;
        // Drop it from the pending list so the next worker ticket skips it;
        // the ticket submitted for it becomes a harmless no-op.
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i] == id) {
                pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    }
    cv_.notify_all();
    if (opts_.on_job_finished) opts_.on_job_finished(id);
    return true;
}

FlowService::JobBrief FlowService::peek(FlowJobId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    check(id < jobs_.size(), "flow_service: unknown job id");
    const Job& job = *jobs_[id];
    JobBrief b;
    b.status = job.result.status;
    b.start_seq = job.result.start_seq;
    b.wall_ms = job.result.wall_ms;
    b.queue_ms = job.result.queue_ms;
    b.error = job.result.error;
    b.taken = job.taken;
    return b;
}

void FlowService::pause() {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
}

void FlowService::resume() {
    std::size_t backlog = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!paused_) return;
        paused_ = false;
        backlog = pending_.size();
    }
    // Tickets consumed as no-ops while paused must be re-issued, one per
    // pending job; any surplus (a pre-pause ticket still in flight) just
    // no-ops against an empty pending list.
    for (std::size_t i = 0; i < backlog; ++i) pool_.submit([this] { run_one(); });
}

std::size_t FlowService::num_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
}

std::shared_ptr<const core::RRGraph> FlowService::prewarm_rr(const core::ArchSpec& arch) {
    return store_->rr_for(arch);
}

std::size_t FlowService::num_jobs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
}

std::string FlowService::report_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t pending = 0;
    for (const auto& j : jobs_) {
        switch (j->result.status) {
            case FlowJobStatus::Ok: ++ok; break;
            case FlowJobStatus::Failed: ++failed; break;
            case FlowJobStatus::Cancelled: ++cancelled; break;
            default: ++pending; break;
        }
    }

    base::JsonWriter w;
    w.begin_object();
    w.key("threads").value(std::uint64_t{threads_});
    w.key("hardware_concurrency")
        .value(std::uint64_t{std::thread::hardware_concurrency()});
    w.key("share_artifacts").value(opts_.share_artifacts);
    w.key("share_rr").value(opts_.share_rr);
    w.key("artifact_cache_dir").value(opts_.artifact_cache_dir);
    w.key("jobs_total").value(std::uint64_t{jobs_.size()});
    w.key("jobs_ok").value(std::uint64_t{ok});
    w.key("jobs_failed").value(std::uint64_t{failed});
    w.key("jobs_cancelled").value(std::uint64_t{cancelled});
    w.key("jobs_pending").value(std::uint64_t{pending});
    const ArtifactStoreStats st = store_->stats();
    w.key("artifacts").begin_object();
    w.key("entries").value(std::uint64_t{st.num_artifacts});
    w.key("rr_graphs").value(std::uint64_t{st.num_rr_graphs});
    w.key("hits").value(st.hits);
    w.key("disk_hits").value(st.disk_hits);
    w.key("misses").value(st.misses);
    w.key("evictions").value(st.evictions);
    w.key("collisions").value(st.collisions);
    w.key("resident_bytes").value(std::uint64_t{st.resident_bytes});
    w.key("memory_budget_bytes").value(std::uint64_t{st.memory_budget_bytes});
    w.key("disk_writes").value(st.disk_writes);
    w.key("disk_write_failures").value(st.disk_write_failures);
    w.key("disk_bad_blobs").value(st.disk_bad_blobs);
    w.key("disk_pruned").value(st.disk_pruned);
    w.key("rr_hits").value(st.rr_hits);
    w.key("rr_misses").value(st.rr_misses);
    w.end_object();
    w.key("jobs").begin_array();
    for (const auto& j : jobs_) {
        const FlowJobResult& r = j->result;
        w.begin_object();
        w.key("name").value(r.name);
        w.key("status").value(to_string(r.status));
        w.key("wall_ms").value(r.wall_ms);
        w.key("queue_ms").value(r.queue_ms);
        w.key("priority").value(std::int64_t{j->spec.priority});
        w.key("lane").value(std::uint64_t{j->spec.lane});
        w.key("start_seq").value(r.start_seq);
        if (j->taken) {
            w.key("taken").value(true);  // result moved out; no telemetry left
        } else if (r.status == FlowJobStatus::Ok) {
            w.key("telemetry").raw(r.result.telemetry.to_json());
        }
        if (r.status == FlowJobStatus::Failed) w.key("error").value(r.error);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace afpga::cad
