#include "cad/flow.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "base/check.hpp"
#include "base/threadpool.hpp"
#include "base/timer.hpp"
#include "cad/artifact.hpp"
#include "cad/fingerprint.hpp"
#include "cad/route_parallel.hpp"
#include "cad/serialize.hpp"

namespace afpga::cad {

using base::check;
using core::PlbCoord;

core::ElaboratedDesign FlowResult::elaborate() const {
    check(rr != nullptr && bits != nullptr, "FlowResult::elaborate: flow not run");
    return core::elaborate(*rr, *bits, pad_names);
}

namespace {

/// Mark a restore that came off the disk tier (docs/TELEMETRY.md): the
/// product is bit-identical either way, but benches and the CI disk-warm
/// gate distinguish a resident hit from a deserialized one.
void note_restore_tier(ArtifactTier tier, StageReport& report) {
    if (tier == ArtifactTier::Disk) report.add_metric("restored_from_disk", 1.0);
}

// ---------------------------------------------------------------------------
// Stage 1: technology mapping
// ---------------------------------------------------------------------------
class TechmapStage final : public FlowStage {
public:
    [[nodiscard]] std::string name() const override { return "techmap"; }
    void run(FlowContext& ctx, StageReport& report) override {
        FlowResult& fr = ctx.result;
        fr.mapped = techmap(ctx.nl, ctx.hints, ctx.opts.techmap);
        if (ctx.opts.verify_mapping) verify_mapping(ctx.nl, fr.mapped);
        report_metrics(fr.mapped, report);
    }

    // Techmap reads nothing architecture- or seed-dependent, so its key is
    // just {netlist, hints} (the base chain) + its own options: an arch or
    // seed sweep reuses one mapping across the whole grid.
    [[nodiscard]] std::uint64_t options_fingerprint(const FlowContext& ctx) const override {
        Fingerprint f;
        f.mix(ctx.opts.techmap.fingerprint()).mix(ctx.opts.verify_mapping);
        return f.digest();
    }
    [[nodiscard]] bool try_restore(FlowContext& ctx, const ArtifactStore& store,
                                   std::uint64_t key, StageReport& report) override {
        ArtifactTier tier = ArtifactTier::Memory;
        const auto cached = store.get<MappedDesign>(key, &tier);
        if (!cached) return false;
        ctx.result.mapped = *cached;  // verification already passed when published
        report_metrics(ctx.result.mapped, report);
        note_restore_tier(tier, report);
        return true;
    }
    void publish(const FlowContext& ctx, ArtifactStore& store, std::uint64_t key) const override {
        store.put(key, std::make_shared<const MappedDesign>(ctx.result.mapped));
    }

private:
    static void report_metrics(const MappedDesign& md, StageReport& report) {
        report.add_metric("les", static_cast<double>(md.les.size()));
        report.add_metric("pdes", static_cast<double>(md.pdes.size()));
    }
};

// ---------------------------------------------------------------------------
// Stage 2: packing
// ---------------------------------------------------------------------------
class PackStage final : public FlowStage {
public:
    [[nodiscard]] std::string name() const override { return "pack"; }
    void run(FlowContext& ctx, StageReport& report) override {
        FlowResult& fr = ctx.result;
        fr.packed = pack(fr.mapped, ctx.arch, ctx.opts.pack);
        report.add_metric("clusters", static_cast<double>(fr.packed.clusters.size()));
    }

    // First stage that reads the architecture: mix it in here so downstream
    // keys inherit it through the chain.
    [[nodiscard]] std::uint64_t options_fingerprint(const FlowContext& ctx) const override {
        Fingerprint f;
        f.mix(ctx.arch.fingerprint()).mix(ctx.opts.pack.fingerprint());
        return f.digest();
    }
    [[nodiscard]] bool try_restore(FlowContext& ctx, const ArtifactStore& store,
                                   std::uint64_t key, StageReport& report) override {
        ArtifactTier tier = ArtifactTier::Memory;
        const auto cached = store.get<PackedDesign>(key, &tier);
        if (!cached) return false;
        ctx.result.packed = *cached;
        report.add_metric("clusters", static_cast<double>(cached->clusters.size()));
        note_restore_tier(tier, report);
        return true;
    }
    void publish(const FlowContext& ctx, ArtifactStore& store, std::uint64_t key) const override {
        store.put(key, std::make_shared<const PackedDesign>(ctx.result.packed));
    }
};

// ---------------------------------------------------------------------------
// Stage 3: placement
// ---------------------------------------------------------------------------
class PlaceStage final : public FlowStage {
public:
    [[nodiscard]] std::string name() const override { return "place"; }
    void run(FlowContext& ctx, StageReport& report) override {
        FlowResult& fr = ctx.result;
        fr.placement = place(fr.packed, fr.mapped, ctx.arch, effective_options(ctx));
        report_metrics(fr.placement, report, /*restored=*/false);
    }

    // First stage that consumes the master seed: key it here so a seed
    // sweep re-places but reuses the grid's shared techmap/pack products.
    // The fingerprint covers the EFFECTIVE options (PlaceOptions::seed is
    // overridden by the flow's master seed, exactly as run does it).
    [[nodiscard]] std::uint64_t options_fingerprint(const FlowContext& ctx) const override {
        return effective_options(ctx).fingerprint();
    }
    [[nodiscard]] bool try_restore(FlowContext& ctx, const ArtifactStore& store,
                                   std::uint64_t key, StageReport& report) override {
        ArtifactTier tier = ArtifactTier::Memory;
        const auto cached = store.get<Placement>(key, &tier);
        if (!cached) return false;
        ctx.result.placement = *cached;
        report_metrics(ctx.result.placement, report, /*restored=*/true);
        note_restore_tier(tier, report);
        return true;
    }
    void publish(const FlowContext& ctx, ArtifactStore& store, std::uint64_t key) const override {
        store.put(key, std::make_shared<const Placement>(ctx.result.placement));
    }

private:
    static PlaceOptions effective_options(const FlowContext& ctx) {
        PlaceOptions popts = ctx.opts.place;
        popts.seed = ctx.opts.seed;
        return popts;
    }
    /// `restored` suppresses the scheduling-dependent replica wall times:
    /// a cache hit re-emits only deterministic product metrics, never the
    /// original run's timings (docs/TELEMETRY.md).
    static void report_metrics(const Placement& pl, StageReport& report, bool restored) {
        report.iterations = pl.anneal_rounds;
        report.cost_trajectory = pl.cost_trajectory;
        report.add_metric("final_cost", pl.final_cost);
        report.add_metric("moves_tried", static_cast<double>(pl.moves_tried));
        report.add_metric("moves_accepted", static_cast<double>(pl.moves_accepted));
        report.add_metric("engine", static_cast<double>(pl.engine));
        if (pl.engine == PlaceEngine::Analytical || pl.engine == PlaceEngine::Multilevel) {
            const AnalyticalStats& an = pl.analytical;
            report.add_metric("solver_iterations", static_cast<double>(an.solver_iterations));
            report.add_metric("solver_passes", static_cast<double>(an.solver_passes));
            report.add_metric("spread_passes", static_cast<double>(an.spread_passes));
            report.add_metric("pre_legal_cost", an.pre_legal_cost);
            report.add_metric("legalized_cost", an.legalized_cost);
            report.add_metric("legalize_max_displacement",
                              static_cast<double>(an.legalize.max_displacement));
            report.add_metric("legalize_avg_displacement", an.legalize.avg_displacement);
            for (std::size_t b = 0; b < an.legalize.displacement_histogram.size(); ++b)
                report.add_metric("legalize_disp_bucket" + std::to_string(b),
                                  static_cast<double>(an.legalize.displacement_histogram[b]));
            // Multilevel V-cycle: one metric group per level, coarsest
            // first (docs/TELEMETRY.md). Level walls are timings and are
            // suppressed on cache hits like the replica walls above.
            report.add_metric("levels", static_cast<double>(an.levels.size()));
            for (std::size_t l = 0; l < an.levels.size(); ++l) {
                const LevelStats& ls = an.levels[l];
                const std::string p = "level" + std::to_string(l) + "_";
                report.add_metric(p + "nodes", static_cast<double>(ls.nodes));
                report.add_metric(p + "nets", static_cast<double>(ls.nets));
                report.add_metric(p + "solver_passes", static_cast<double>(ls.solver_passes));
                report.add_metric(p + "spread_passes", static_cast<double>(ls.spread_passes));
                report.add_metric(p + "solver_iterations",
                                  static_cast<double>(ls.solver_iterations));
                if (!restored) report.add_metric(p + "wall_ms", ls.wall_ms);
            }
        }
        if (!pl.replicas.empty()) {
            report.add_metric("parallel_seeds", static_cast<double>(pl.replicas.size()));
            report.add_metric("winner_replica", static_cast<double>(pl.winner_replica));
            for (std::size_t i = 0; i < pl.replicas.size(); ++i) {
                const PlaceReplica& r = pl.replicas[i];
                report.add_metric("replica" + std::to_string(i) + "_cost", r.final_cost);
                report.add_metric("replica" + std::to_string(i) + "_engine",
                                  static_cast<double>(r.engine));
                if (!restored)
                    report.add_metric("replica" + std::to_string(i) + "_ms", r.wall_ms);
            }
        }
    }
};

// ---------------------------------------------------------------------------
// Stage 4: routing (RR graph build + net list construction + PathFinder)
// ---------------------------------------------------------------------------
class RouteStage final : public FlowStage {
public:
    [[nodiscard]] std::string name() const override { return "route"; }

    void run(FlowContext& ctx, StageReport& report) override {
        FlowResult& fr = ctx.result;
        // RouterOptions::threads >= 1 turns on in-flow parallelism: the RR
        // graph is built per-row on the pool and the nets are routed by the
        // deterministic partitioned PathFinder. Both are bit-reproducible
        // for any worker count, so `threads` is a pure wall-clock knob.
        std::unique_ptr<base::ThreadPool> pool = make_route_pool(ctx.opts.route);

        acquire_rr(ctx, pool.get(), report);

        build_requests(ctx);
        report.add_metric("nets", static_cast<double>(ctx.reqs.size()));

        fr.routing = pool ? route_parallel(*fr.rr, ctx.reqs, ctx.opts.route, *pool)
                          : route(*fr.rr, ctx.reqs, ctx.opts.route);
        check(fr.routing.success,
              "flow: routing failed after " + std::to_string(fr.routing.iterations) +
                  " iterations (" + std::to_string(fr.routing.overused_nodes) +
                  " overused nodes) — widen the channels");

        report_metrics(fr.routing, report);
        report.add_metric("kernel_search_ms", fr.routing.kernel.search_ms);
        if (pool) {
            report.add_metric("route_threads", static_cast<double>(pool->num_workers()));
            report.add_metric("route_bins", static_cast<double>(fr.routing.num_bins));
            report.add_metric("route_boundary_nets",
                              static_cast<double>(fr.routing.boundary_nets));
            report.add_metric("route_boundary_ms", fr.routing.boundary_wall_ms);
            for (std::size_t b = 0; b < fr.routing.bin_wall_ms.size(); ++b)
                report.add_metric("route_bin" + std::to_string(b) + "_ms",
                                  fr.routing.bin_wall_ms[b]);
        }
    }

    [[nodiscard]] std::uint64_t options_fingerprint(const FlowContext& ctx) const override {
        return ctx.opts.route.fingerprint();
    }
    [[nodiscard]] bool try_restore(FlowContext& ctx, const ArtifactStore& store,
                                   std::uint64_t key, StageReport& report) override {
        ArtifactTier tier = ArtifactTier::Memory;
        const auto cached = store.get<RouteArtifact>(key, &tier);
        if (!cached) return false;
        // The graph itself is not part of the artifact (it is a pure
        // function of the architecture); reattach it from wherever this
        // flow sources graphs so elaborate()/bitstream keep working. The
        // reattachment may be the first build of this architecture (e.g.
        // the artifact was published by a prebuilt_rr flow), so give that
        // build the same pool width run() would — but skip the pool when
        // the store already holds the graph.
        std::unique_ptr<base::ThreadPool> pool;
        if (!ctx.opts.prebuilt_rr && !store.has_rr(ctx.arch))
            pool = make_route_pool(ctx.opts.route);
        acquire_rr(ctx, pool.get(), report);
        ctx.reqs = cached->reqs;
        ctx.sink_cluster = cached->sink_cluster;
        ctx.req_signal = cached->req_signal;
        ctx.result.routing = cached->routing;
        report.add_metric("nets", static_cast<double>(ctx.reqs.size()));
        report_metrics(ctx.result.routing, report);
        note_restore_tier(tier, report);
        return true;
    }
    void publish(const FlowContext& ctx, ArtifactStore& store, std::uint64_t key) const override {
        auto art = std::make_shared<RouteArtifact>();
        art->routing = ctx.result.routing;
        art->reqs = ctx.reqs;
        art->sink_cluster = ctx.sink_cluster;
        art->req_signal = ctx.req_signal;
        store.put(key, std::shared_ptr<const RouteArtifact>(std::move(art)));
    }

private:
    /// The one place the pool-selection policy lives: threads >= 1 turns on
    /// in-flow parallelism, 0 keeps everything serial.
    static std::unique_ptr<base::ThreadPool> make_route_pool(const RouterOptions& opts) {
        if (opts.threads < 1) return nullptr;
        return std::make_unique<base::ThreadPool>(opts.threads);
    }

    /// Attach the routing-resource graph: an explicitly prebuilt one wins,
    /// then the artifact store's per-architecture memo, then a local build.
    static void acquire_rr(FlowContext& ctx, base::ThreadPool* pool, StageReport& report) {
        FlowResult& fr = ctx.result;
        if (ctx.opts.prebuilt_rr) {
            // Shared immutable graph (batch jobs). The graph keeps its own
            // ArchSpec copy; the parameter fingerprint proves it describes
            // exactly the fabric this flow targets.
            check(ctx.opts.prebuilt_rr->arch().fingerprint() == ctx.arch.fingerprint(),
                  "flow: prebuilt_rr was built for a different architecture");
            fr.rr = ctx.opts.prebuilt_rr;
            report.add_metric("rr_shared", 1.0);
        } else if (ctx.opts.artifact_store) {
            base::WallTimer rr_timer;
            fr.rr = ctx.opts.artifact_store->rr_for(ctx.arch, pool);
            report.add_metric("rr_store_ms", rr_timer.elapsed_ms());
        } else {
            base::WallTimer rr_timer;
            fr.rr = pool ? std::make_shared<core::RRGraph>(ctx.arch, *pool)
                         : std::make_shared<core::RRGraph>(ctx.arch);
            report.add_metric("rr_build_ms", rr_timer.elapsed_ms());
            if (pool)
                report.add_metric("rr_build_threads",
                                  static_cast<double>(pool->num_workers()));
        }
    }

    static void report_metrics(const RoutingResult& routing, StageReport& report) {
        report.iterations = routing.iterations;
        for (std::size_t o : routing.overuse_trajectory)
            report.cost_trajectory.push_back(static_cast<double>(o));
        report.add_metric("nets_rerouted", static_cast<double>(routing.nets_rerouted));
        report.add_metric("wirelength", static_cast<double>(routing.wirelength));
        // Search-kernel counters: decision-deterministic (identical across
        // thread counts), so warm restores report the same values a fresh
        // route would. Wall time is the exception and reported in run() only.
        const RouteKernelStats& ks = routing.kernel;
        report.add_metric("kernel_heap_pushes", static_cast<double>(ks.heap_pushes));
        report.add_metric("kernel_heap_pops", static_cast<double>(ks.heap_pops));
        report.add_metric("kernel_nodes_expanded", static_cast<double>(ks.nodes_expanded));
        report.add_metric("kernel_edges_scanned", static_cast<double>(ks.edges_scanned));
        report.add_metric("kernel_wavefront_peak", static_cast<double>(ks.wavefront_peak));
        report.add_metric("kernel_allocations", static_cast<double>(ks.allocations));
        report.add_metric("kernel_steady_allocations",
                          static_cast<double>(ks.steady_allocations));
        report.add_metric("kernel_nets_routed", static_cast<double>(ks.nets_routed));
    }

    /// Flatten the packed design into per-signal route requests, remembering
    /// which cluster each sink feeds so the bitstream stage can program the
    /// receiving IM.
    static void build_requests(FlowContext& ctx) {
        FlowResult& fr = ctx.result;
        const core::ArchSpec& arch = ctx.arch;
        const MappedDesign& md = fr.mapped;
        const PackedDesign& pd = fr.packed;

        const auto consumers = pd.build_consumers(md);
        std::unordered_map<NetId, std::string> pi_name_of;
        for (const auto& [name, s] : md.primary_inputs) pi_name_of[s] = name;
        std::unordered_map<NetId, std::vector<std::string>> po_names_of;
        for (const auto& [name, s] : md.primary_outputs) po_names_of[s].push_back(name);
        std::unordered_map<NetId, std::size_t> producer_cluster;
        for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci)
            for (NetId s : pd.clusters[ci].produced(md)) producer_cluster[s] = ci;

        // IM source index of every cluster-produced signal (the LE output slot /
        // PDE output feeding it) — needed up front so routing can avoid output
        // pins the IM topology cannot drive from that source.
        std::unordered_map<NetId, std::uint32_t> im_source_of;
        for (const Cluster& cl : pd.clusters) {
            for (std::size_t slot = 0; slot < cl.le_indices.size(); ++slot) {
                const LeInst& inst = md.les[cl.le_indices[slot]];
                for (NetId s : inst.output_signals())
                    im_source_of[s] = arch.im_src_le_output(static_cast<std::uint32_t>(slot),
                                                            inst.output_slot(s));
            }
            if (cl.pde_index) im_source_of[md.pdes[*cl.pde_index].output] = arch.im_src_pde_out();
        }

        std::vector<NetId> all_signals;
        for (const auto& [s, v] : consumers) all_signals.push_back(s);
        for (const auto& [s, v] : po_names_of)
            if (!consumers.count(s)) all_signals.push_back(s);
        std::sort(all_signals.begin(), all_signals.end());  // deterministic order

        for (NetId s : all_signals) {
            if (md.constant_signals.count(s)) continue;
            RouteRequest rq;
            rq.signal = s;
            std::size_t driver_cluster = SIZE_MAX;
            const auto pit = pi_name_of.find(s);
            if (pit != pi_name_of.end()) {
                rq.src_is_pad = true;
                rq.src_pad = fr.placement.pi_pad.at(pit->second);
            } else {
                const auto dit = producer_cluster.find(s);
                check(dit != producer_cluster.end(), "flow: undriven signal");
                driver_cluster = dit->second;
                rq.src_plb = fr.placement.cluster_loc[driver_cluster];
                if (arch.im_topology != core::ImTopology::FullCrossbar) {
                    const std::uint32_t src = im_source_of.at(s);
                    for (std::uint32_t p = 0; p < arch.plb_outputs; ++p)
                        if (arch.im_connects(src, arch.im_sink_plb_output(p)))
                            rq.allowed_src_pins.push_back(p);
                    check(!rq.allowed_src_pins.empty(),
                          "flow: IM topology " + to_string(arch.im_topology) +
                              " offers no output pin for a signal's source");
                }
            }
            std::vector<std::size_t> scl;
            const auto cit = consumers.find(s);
            if (cit != consumers.end()) {
                for (std::size_t c : cit->second) {
                    if (c == driver_cluster) continue;  // IM-internal
                    RouteRequest::Sink sk;
                    sk.plb = fr.placement.cluster_loc[c];
                    rq.sinks.push_back(sk);
                    scl.push_back(c);
                }
            }
            const auto poit = po_names_of.find(s);
            if (poit != po_names_of.end()) {
                check(pit == pi_name_of.end(), "flow: PI-to-PO pass-through not supported");
                for (const std::string& name : poit->second) {
                    RouteRequest::Sink sk;
                    sk.is_pad = true;
                    sk.pad = fr.placement.po_pad.at(name);
                    rq.sinks.push_back(sk);
                    scl.push_back(SIZE_MAX);
                }
            }
            if (rq.sinks.empty()) continue;
            // Route nearer sinks first (keeps trees short).
            std::vector<std::size_t> order(rq.sinks.size());
            for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
            const auto src_pos = rq.src_is_pad
                                     ? std::pair<double, double>{0, 0}
                                     : std::pair<double, double>{rq.src_plb.x + 0.5,
                                                                 rq.src_plb.y + 0.5};
            auto sink_dist = [&](const RouteRequest::Sink& sk) {
                if (sk.is_pad) return 1e6;  // pads last
                return std::abs(sk.plb.x + 0.5 - src_pos.first) +
                       std::abs(sk.plb.y + 0.5 - src_pos.second);
            };
            std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
                return sink_dist(rq.sinks[a]) < sink_dist(rq.sinks[b]);
            });
            RouteRequest sorted = rq;
            std::vector<std::size_t> sorted_cl(scl.size());
            for (std::size_t i = 0; i < order.size(); ++i) {
                sorted.sinks[i] = rq.sinks[order[i]];
                sorted_cl[i] = scl[order[i]];
            }
            ctx.reqs.push_back(std::move(sorted));
            ctx.sink_cluster.push_back(std::move(sorted_cl));
            ctx.req_signal.push_back(s);
        }
    }
};

// ---------------------------------------------------------------------------
// Stage 5: bitstream programming (routing switches, IM config, pads)
// ---------------------------------------------------------------------------
class BitstreamStage final : public FlowStage {
public:
    [[nodiscard]] std::string name() const override { return "bitstream"; }

    void run(FlowContext& ctx, StageReport& report) override {
        FlowResult& fr = ctx.result;
        const core::ArchSpec& arch = ctx.arch;
        const core::RRGraph& rr = *fr.rr;
        const MappedDesign& md = fr.mapped;
        const PackedDesign& pd = fr.packed;

        fr.bits = std::make_shared<core::Bitstream>(arch, rr.num_edges());
        core::Bitstream& bits = *fr.bits;

        // (signal, cluster) -> PLB input pin delivering it.
        std::unordered_map<std::uint64_t, std::uint32_t> entry_pin;
        auto sig_cluster_key = [](NetId s, std::size_t cluster) {
            return (static_cast<std::uint64_t>(s.value()) << 24) ^
                   static_cast<std::uint64_t>(cluster);
        };
        // signal -> chosen output pin on its driver PLB.
        std::unordered_map<NetId, std::uint32_t> exit_pin;

        for (std::size_t ri = 0; ri < ctx.reqs.size(); ++ri) {
            const RouteTree& tree = fr.routing.trees[ri];
            if (!ctx.reqs[ri].src_is_pad) {
                check(tree.root_opin != UINT32_MAX, "flow: routed net without a root");
                exit_pin[ctx.req_signal[ri]] = rr.pin_index(tree.root_opin);
            }
            for (std::size_t si = 0; si < tree.sinks.size(); ++si) {
                if (ctx.sink_cluster[ri][si] == SIZE_MAX) continue;  // pad sink
                entry_pin[sig_cluster_key(ctx.req_signal[ri], ctx.sink_cluster[ri][si])] =
                    rr.pin_index(tree.sinks[si].ipin);
            }
            for (std::uint32_t e : tree.edges) bits.set_edge(e, true);
        }

        for (std::size_t ci = 0; ci < pd.clusters.size(); ++ci) {
            const Cluster& cl = pd.clusters[ci];
            const PlbCoord loc = fr.placement.cluster_loc[ci];
            core::PlbConfig& cfg = bits.plb(loc);

            // slot/source of every signal produced inside this PLB
            std::unordered_map<NetId, std::uint32_t> internal_src;
            for (std::size_t slot = 0; slot < cl.le_indices.size(); ++slot) {
                const LeInst& inst = md.les[cl.le_indices[slot]];
                for (NetId s : inst.output_signals())
                    internal_src[s] = arch.im_src_le_output(static_cast<std::uint32_t>(slot),
                                                            inst.output_slot(s));
            }
            if (cl.pde_index)
                internal_src[md.pdes[*cl.pde_index].output] = arch.im_src_pde_out();

            auto resolve_source = [&](NetId s) -> std::uint32_t {
                const auto iit = internal_src.find(s);
                if (iit != internal_src.end()) return iit->second;
                const auto cit2 = md.constant_signals.find(s);
                if (cit2 != md.constant_signals.end())
                    return cit2->second ? arch.im_src_const1() : arch.im_src_const0();
                const auto eit = entry_pin.find(sig_cluster_key(s, ci));
                check(eit != entry_pin.end(), "flow: signal not delivered to cluster");
                return arch.im_src_plb_input(eit->second);
            };

            for (std::size_t slot = 0; slot < cl.le_indices.size(); ++slot) {
                const LeInst& inst = md.les[cl.le_indices[slot]];
                core::LeConfig& le = cfg.le[slot];
                const std::vector<NetId> signals = inst.input_signals();
                check(signals.size() <= arch.le_inputs, "flow: LE input overflow");

                // Topology-aware pin assignment: each signal needs an LE input
                // pin whose IM sink can listen to the signal's source (always
                // satisfiable on the full crossbar; a real constraint for the
                // sparse-IM ablations). Halves may only use pins 0..5.
                const std::size_t max_pin = inst.full7 ? 7 : 6;
                std::vector<std::size_t> pin_of_signal(signals.size(), SIZE_MAX);
                std::vector<bool> pin_taken(max_pin, false);
                auto can_use = [&](std::size_t sig, std::size_t pin) {
                    return arch.im_connects(
                        resolve_source(signals[sig]),
                        arch.im_sink_le_input(static_cast<std::uint32_t>(slot),
                                              static_cast<std::uint32_t>(pin)));
                };
                std::function<bool(std::size_t)> assign = [&](std::size_t sig) {
                    if (sig == signals.size()) return true;
                    for (std::size_t p = 0; p < max_pin; ++p) {
                        if (pin_taken[p] || !can_use(sig, p)) continue;
                        pin_taken[p] = true;
                        pin_of_signal[sig] = p;
                        if (assign(sig + 1)) return true;
                        pin_taken[p] = false;
                        pin_of_signal[sig] = SIZE_MAX;
                    }
                    return false;
                };
                check(assign(0),
                      "flow: IM topology " + to_string(arch.im_topology) +
                          " cannot deliver all inputs of an LE (memory feedback or "
                          "sparse crossbar conflict)");
                auto pin_of = [&](NetId s) {
                    for (std::size_t i = 0; i < signals.size(); ++i)
                        if (signals[i] == s) return pin_of_signal[i];
                    base::fail("flow: signal not an LE input");
                };

                if (inst.full7) {
                    // set_full7 needs exactly one variable on pin 6; if the
                    // matcher left pin 6 free, rotate one variable onto it.
                    bool pin6_used = false;
                    for (std::size_t v : pin_of_signal) pin6_used |= (v == 6);
                    if (!pin6_used) {
                        for (std::size_t i = 0; i < signals.size(); ++i) {
                            if (can_use(i, 6)) {
                                pin_of_signal[i] = 6;
                                break;
                            }
                        }
                    }
                    std::vector<std::size_t> pin_map;
                    for (NetId s : inst.full7->inputs) pin_map.push_back(pin_of(s));
                    core::LeProgram::set_full7(le, inst.full7->tt, pin_map);
                } else {
                    if (inst.a) {
                        std::vector<std::size_t> pin_map;
                        for (NetId s : inst.a->inputs) pin_map.push_back(pin_of(s));
                        core::LeProgram::set_half(le, false, inst.a->tt, pin_map);
                    }
                    if (inst.b) {
                        std::vector<std::size_t> pin_map;
                        for (NetId s : inst.b->inputs) pin_map.push_back(pin_of(s));
                        core::LeProgram::set_half(le, true, inst.b->tt, pin_map);
                    }
                }
                if (inst.lut2) {
                    const std::uint32_t sel0 = inst.output_slot(inst.lut2->inputs[0]);
                    const std::uint32_t sel1 = inst.output_slot(inst.lut2->inputs[1]);
                    check(sel0 < 3 && sel1 < 3, "flow: LUT2 input is not an LE output");
                    core::LeProgram::set_lut2(le, inst.lut2->tt, sel0, sel1);
                }
                for (std::size_t i = 0; i < signals.size(); ++i)
                    cfg.im.connect(
                        arch,
                        arch.im_sink_le_input(static_cast<std::uint32_t>(slot),
                                              static_cast<std::uint32_t>(pin_of_signal[i])),
                        resolve_source(signals[i]));
            }

            if (cl.pde_index) {
                const PdeInst& p = md.pdes[*cl.pde_index];
                cfg.im.connect(arch, arch.im_sink_pde_in(), resolve_source(p.input));
                const double required =
                    static_cast<double>(p.required_delay_ps) * (1.0 + ctx.opts.pde_extra_margin);
                const auto tap = static_cast<std::int64_t>(
                    std::ceil(required / static_cast<double>(arch.pde_quantum_ps)));
                check(tap >= 0 && tap < static_cast<std::int64_t>(arch.pde_taps),
                      "flow: PDE range exceeded (need " + std::to_string(required) +
                          " ps, max " +
                          std::to_string((arch.pde_taps - 1) * arch.pde_quantum_ps) + " ps)");
                cfg.pde.tap = static_cast<std::uint8_t>(std::max<std::int64_t>(tap, 1));
            }

            // PLB output pins for signals that leave this cluster.
            for (NetId s : cl.produced(md)) {
                const auto xit = exit_pin.find(s);
                if (xit == exit_pin.end()) continue;  // consumed internally only
                cfg.im.connect(arch, arch.im_sink_plb_output(xit->second), resolve_source(s));
            }
        }

        // --- pads ---------------------------------------------------------------
        for (const auto& [name, pad] : fr.placement.pi_pad) {
            // Only program pads whose signal actually reached the fabric; an
            // unconnected PI stays unprogrammed.
            bits.set_pad_mode(pad, core::PadMode::Input);
            fr.pad_names[pad] = name;
        }
        for (const auto& [name, pad] : fr.placement.po_pad) {
            bits.set_pad_mode(pad, core::PadMode::Output);
            fr.pad_names[pad] = name;
        }

        report.add_metric("switches_on", static_cast<double>(bits.num_enabled_edges()));
    }

    [[nodiscard]] std::uint64_t options_fingerprint(const FlowContext& ctx) const override {
        Fingerprint f;
        f.mix(ctx.opts.pde_extra_margin);
        return f.digest();
    }
    [[nodiscard]] bool try_restore(FlowContext& ctx, const ArtifactStore& store,
                                   std::uint64_t key, StageReport& report) override {
        ArtifactTier tier = ArtifactTier::Memory;
        const auto cached = store.get<BitstreamArtifact>(key, &tier);
        if (!cached) return false;
        // Copy: FlowResult::bits is mutable and callers may edit their own.
        ctx.result.bits = std::make_shared<core::Bitstream>(cached->bits);
        ctx.result.pad_names = cached->pad_names;
        report.add_metric("switches_on",
                          static_cast<double>(cached->bits.num_enabled_edges()));
        note_restore_tier(tier, report);
        return true;
    }
    void publish(const FlowContext& ctx, ArtifactStore& store, std::uint64_t key) const override {
        store.put(key, std::make_shared<const BitstreamArtifact>(
                           BitstreamArtifact{*ctx.result.bits, ctx.result.pad_names}));
    }
};

}  // namespace

std::uint64_t FlowOptions::fingerprint() const noexcept {
    // prebuilt_rr and artifact_store are deliberately NOT mixed: they are
    // plumbing, not semantics (the RR graph is a pure function of the arch,
    // and the store only changes where products come from).
    static_assert(sizeof(FlowOptions) == 232,
                  "FlowOptions changed: update fingerprint() and this assert");
    Fingerprint f;
    f.mix(seed)
        .mix(techmap.fingerprint())
        .mix(pack.fingerprint())
        .mix(place.fingerprint())
        .mix(route.fingerprint())
        .mix(pde_extra_margin)
        .mix(verify_mapping);
    return f.digest();
}

FlowResult run_flow(const netlist::Netlist& nl, const asynclib::MappingHints& hints,
                    const core::ArchSpec& arch, const FlowOptions& opts) {
    arch.validate();
    // Multi-capacity channels are a router-level model (see cad::route and
    // RRGraph::node_capacity): the bitstream and elaboration layers assume
    // one net per wire node, so a bundled routing would program a short.
    check(arch.wire_capacity == 1,
          "flow: wire_capacity > 1 is supported by the standalone router only; "
          "the bitstream layer models one net per wire");
    FlowResult fr;
    fr.arch = arch;
    FlowContext ctx{nl, hints, arch, opts, fr, {}, {}, {}};

    TechmapStage techmap_stage;
    PackStage pack_stage;
    PlaceStage place_stage;
    RouteStage route_stage;
    BitstreamStage bitstream_stage;
    FlowStage* const pipeline[] = {&techmap_stage, &pack_stage, &place_stage, &route_stage,
                                   &bitstream_stage};

    // Artifact caching: the base chain keys the design itself; each stage
    // then chains {stage name, its option fingerprint} on top, so a key
    // match certifies that every fingerprinted input — direct or inherited
    // through the chain — is identical to the run that published.
    ArtifactStore* const store = opts.artifact_store.get();
    ArtifactKey chain = 0;
    if (store) {
        Fingerprint base_fp;
        base_fp.mix(fingerprint_netlist(nl)).mix(fingerprint_hints(hints));
        chain = base_fp.digest();
    }

    base::WallTimer total;
    for (FlowStage* stage : pipeline) {
        StageReport report;
        report.stage = stage->name();
        base::WallTimer t;
        if (store) {
            chain = chain_key(chain, report.stage, stage->options_fingerprint(ctx));
            report.cache_key = key_hex(chain);
            bool hit = stage->try_restore(ctx, *store, chain, report);
            if (!hit && store->begin_compute(chain)) {
                // We own this key: concurrent flows on the same chain block
                // in begin_compute instead of duplicating the stage.
                try {
                    stage->run(ctx, report);
                    stage->publish(ctx, *store, chain);
                } catch (...) {
                    store->finish_compute(chain);  // a waiter inherits the key
                    throw;
                }
                store->finish_compute(chain);
            } else if (!hit) {
                // Published while we waited for the concurrent computer.
                hit = stage->try_restore(ctx, *store, chain, report);
                if (!hit) {
                    // Reachable when a tight byte budget evicted the fresh
                    // product before we re-got it (and no disk tier holds
                    // it): recompute locally rather than re-enter the
                    // begin_compute queue.
                    stage->run(ctx, report);
                    stage->publish(ctx, *store, chain);
                }
            }
            report.cache_hit = hit ? 1 : 0;
        } else {
            stage->run(ctx, report);
        }
        report.wall_ms = t.elapsed_ms();
        fr.telemetry.stages.push_back(std::move(report));
    }
    fr.telemetry.total_ms = total.elapsed_ms();
    return fr;
}

}  // namespace afpga::cad
