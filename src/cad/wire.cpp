#include "cad/wire.hpp"

#include <utility>

#include "base/check.hpp"
#include "cad/flow_service.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::cad::wire {

using base::check;

std::string to_string(MsgType t) {
    switch (t) {
        case MsgType::Hello: return "hello";
        case MsgType::HelloOk: return "hello_ok";
        case MsgType::Submit: return "submit";
        case MsgType::SubmitOk: return "submit_ok";
        case MsgType::Busy: return "busy";
        case MsgType::Status: return "status";
        case MsgType::StatusReply: return "status_reply";
        case MsgType::Wait: return "wait";
        case MsgType::ResultBegin: return "result_begin";
        case MsgType::ResultChunk: return "result_chunk";
        case MsgType::ResultEnd: return "result_end";
        case MsgType::Cancel: return "cancel";
        case MsgType::CancelReply: return "cancel_reply";
        case MsgType::Report: return "report";
        case MsgType::ReportReply: return "report_reply";
        case MsgType::Drain: return "drain";
        case MsgType::DrainOk: return "drain_ok";
        case MsgType::Error: return "error";
    }
    return "unknown";
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n, std::uint64_t seed) {
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// --- framing ----------------------------------------------------------------

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/// Checksum of a frame: the 4 little-endian type bytes chained into the
/// payload, so a bit flip in the type field cannot relabel a valid frame.
std::uint64_t frame_checksum(std::uint32_t type, const std::uint8_t* payload, std::size_t n) {
    std::uint8_t tb[4] = {static_cast<std::uint8_t>(type), static_cast<std::uint8_t>(type >> 8),
                          static_cast<std::uint8_t>(type >> 16),
                          static_cast<std::uint8_t>(type >> 24)};
    return fnv1a64(payload, n, fnv1a64(tb, 4));
}

}  // namespace

std::vector<std::uint8_t> encode_frame(MsgType type, const std::vector<std::uint8_t>& payload) {
    check(payload.size() <= kMaxPayloadBytes, "wire: payload exceeds frame cap");
    const auto t = static_cast<std::uint32_t>(type);
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + payload.size());
    append_u32(out, kMagic);
    append_u32(out, kProtocolVersion);
    append_u32(out, t);
    append_u32(out, static_cast<std::uint32_t>(payload.size()));
    append_u64(out, frame_checksum(t, payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
    if (buffered() < kHeaderBytes) return std::nullopt;
    const std::uint8_t* h = buf_.data() + pos_;
    check(read_u32(h) == kMagic, "wire: bad frame magic");
    check(read_u32(h + 4) == kProtocolVersion, "wire: protocol version mismatch");
    const std::uint32_t type = read_u32(h + 8);
    check(type >= 1 && type <= kMaxMsgType, "wire: unknown message type");
    const std::uint32_t len = read_u32(h + 12);
    check(len <= kMaxPayloadBytes, "wire: oversized frame payload");
    if (buffered() < kHeaderBytes + len) return std::nullopt;
    const std::uint64_t stored = read_u64(h + 16);
    check(stored == frame_checksum(type, h + kHeaderBytes, len),
          "wire: frame checksum mismatch");
    Frame f;
    f.type = static_cast<MsgType>(type);
    f.payload.assign(h + kHeaderBytes, h + kHeaderBytes + len);
    pos_ += kHeaderBytes + len;
    // Compact lazily: only once the consumed prefix dominates the buffer, so
    // a stream of small frames does not memmove per frame.
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    return f;
}

// --- shared payload helpers -------------------------------------------------

namespace {

/// A decoded count must be realizable within the remaining payload (every
/// element consumes at least `min_elem_bytes`), so corrupt counts fail
/// before any large allocation. Division avoids the n*min overflow.
std::size_t get_count(BlobReader& r, std::size_t min_elem_bytes) {
    const std::uint64_t n = r.u64();
    check(n <= r.remaining() / min_elem_bytes, "wire: count overruns payload");
    return static_cast<std::size_t>(n);
}

void put_bytes(BlobWriter& w, const std::uint8_t* data, std::size_t n) {
    w.str(std::string_view(reinterpret_cast<const char*>(data), n));
}

std::vector<std::uint8_t> get_bytes(BlobReader& r) {
    const std::string s = r.str();
    return {s.begin(), s.end()};
}

void put_netid(BlobWriter& w, netlist::NetId id) { w.u32(id.value()); }
netlist::NetId get_netid(BlobReader& r) { return netlist::NetId{r.u32()}; }

void put_tt(BlobWriter& w, const netlist::TruthTable& tt) {
    w.u64(tt.arity());
    const std::size_t rows = tt.rows();
    for (std::size_t base = 0; base < rows; base += 64) {
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < 64 && base + b < rows; ++b)
            if (tt.eval(static_cast<std::uint32_t>(base + b))) word |= 1ull << b;
        w.u64(word);
    }
}

netlist::TruthTable get_tt(BlobReader& r) {
    const std::uint64_t arity = r.u64();
    check(arity <= netlist::TruthTable::kMaxArity, "wire: truth-table arity out of range");
    netlist::TruthTable tt(static_cast<std::size_t>(arity));
    const std::size_t rows = tt.rows();
    for (std::size_t base = 0; base < rows; base += 64) {
        const std::uint64_t word = r.u64();
        for (std::size_t b = 0; b < 64 && base + b < rows; ++b)
            tt.set_row(static_cast<std::uint32_t>(base + b), (word >> b) & 1u);
    }
    return tt;
}

}  // namespace

// --- netlist / hints / options codecs ---------------------------------------

void encode_netlist(const netlist::Netlist& nl, BlobWriter& w) {
    w.str(nl.name());
    w.u64(nl.num_cells());
    for (std::size_t i = 0; i < nl.num_cells(); ++i) {
        const netlist::Cell& c = nl.cell(netlist::CellId{i});
        w.u8(static_cast<std::uint8_t>(c.func));
        w.str(c.name);
        w.u64(c.inputs.size());
        for (netlist::NetId in : c.inputs) put_netid(w, in);
        put_netid(w, c.output);
        w.boolean(c.table.has_value());
        if (c.table) put_tt(w, *c.table);
        w.boolean(c.delay_ps.has_value());
        if (c.delay_ps) w.i64(*c.delay_ps);
    }
    w.u64(nl.num_nets());
    for (std::size_t i = 0; i < nl.num_nets(); ++i) {
        const netlist::Net& n = nl.net(netlist::NetId{i});
        w.str(n.name);
        w.u32(n.driver.value());
        w.boolean(n.is_primary_input);
        // Sinks travel verbatim: their order encodes the construction
        // history (rewire_input reorders them), which fingerprint_netlist
        // ignores but the mapper's traversals observe.
        w.u64(n.sinks.size());
        for (const netlist::PinRef& s : n.sinks) {
            w.u32(s.cell.value());
            w.u32(s.pin);
        }
    }
    w.u64(nl.primary_inputs().size());
    for (netlist::NetId pi : nl.primary_inputs()) put_netid(w, pi);
    w.u64(nl.primary_outputs().size());
    for (const auto& [name, net] : nl.primary_outputs()) {
        w.str(name);
        put_netid(w, net);
    }
}

netlist::Netlist decode_netlist(BlobReader& r) {
    std::string name = r.str();
    const std::size_t ncells = get_count(r, 16);
    std::vector<netlist::Cell> cells;
    cells.reserve(ncells);
    for (std::size_t i = 0; i < ncells; ++i) {
        netlist::Cell c;
        const std::uint8_t func = r.u8();
        check(func <= static_cast<std::uint8_t>(netlist::CellFunc::Lut),
              "wire: cell function out of range");
        c.func = static_cast<netlist::CellFunc>(func);
        c.name = r.str();
        const std::size_t nin = get_count(r, 4);
        c.inputs.reserve(nin);
        for (std::size_t k = 0; k < nin; ++k) c.inputs.push_back(get_netid(r));
        c.output = get_netid(r);
        if (r.boolean()) c.table = get_tt(r);
        if (r.boolean()) c.delay_ps = r.i64();
        cells.push_back(std::move(c));
    }
    const std::size_t nnets = get_count(r, 14);
    std::vector<netlist::Net> nets;
    nets.reserve(nnets);
    for (std::size_t i = 0; i < nnets; ++i) {
        netlist::Net n;
        n.name = r.str();
        n.driver = netlist::CellId{r.u32()};
        n.is_primary_input = r.boolean();
        const std::size_t nsinks = get_count(r, 8);
        n.sinks.reserve(nsinks);
        for (std::size_t k = 0; k < nsinks; ++k) {
            const std::uint32_t cell = r.u32();
            const std::uint32_t pin = r.u32();
            n.sinks.push_back({netlist::CellId{cell}, pin});
        }
        nets.push_back(std::move(n));
    }
    const std::size_t npis = get_count(r, 4);
    std::vector<netlist::NetId> pis;
    pis.reserve(npis);
    for (std::size_t i = 0; i < npis; ++i) pis.push_back(get_netid(r));
    const std::size_t npos = get_count(r, 12);
    std::vector<std::pair<std::string, netlist::NetId>> pos;
    pos.reserve(npos);
    for (std::size_t i = 0; i < npos; ++i) {
        std::string po_name = r.str();
        pos.emplace_back(std::move(po_name), get_netid(r));
    }
    // from_parts bounds-checks every cross-reference and ends in validate(),
    // so a hostile payload lands here as a thrown base::Error, never as a
    // malformed graph handed to the flow.
    return netlist::Netlist::from_parts(std::move(name), std::move(cells), std::move(nets),
                                        std::move(pis), std::move(pos));
}

void encode_hints(const asynclib::MappingHints& h, BlobWriter& w) {
    w.u64(h.rail_pairs.size());
    for (const auto& [a, b] : h.rail_pairs) {
        put_netid(w, a);
        put_netid(w, b);
    }
    w.u64(h.validity_nets.size());
    for (netlist::NetId n : h.validity_nets) put_netid(w, n);
}

asynclib::MappingHints decode_hints(BlobReader& r) {
    asynclib::MappingHints h;
    const std::size_t npairs = get_count(r, 8);
    h.rail_pairs.reserve(npairs);
    for (std::size_t i = 0; i < npairs; ++i) {
        const netlist::NetId a = get_netid(r);
        const netlist::NetId b = get_netid(r);
        h.rail_pairs.emplace_back(a, b);
    }
    const std::size_t nval = get_count(r, 4);
    h.validity_nets.reserve(nval);
    for (std::size_t i = 0; i < nval; ++i) h.validity_nets.push_back(get_netid(r));
    return h;
}

void encode_flow_options(const FlowOptions& o, BlobWriter& w) {
    // Pin every struct whose fields are enumerated here, exactly like the
    // fingerprint() implementations: adding a knob without teaching the wire
    // about it must fail the build, not silently desynchronize client and
    // server.
    static_assert(sizeof(FlowOptions) == 232, "FlowOptions changed: update wire codec");
    static_assert(sizeof(TechmapOptions) == 16, "TechmapOptions changed: update wire codec");
    static_assert(sizeof(PackOptions) == 1, "PackOptions changed: update wire codec");
    static_assert(sizeof(PlaceOptions) == 88, "PlaceOptions changed: update wire codec");
    static_assert(sizeof(RouterOptions) == 64, "RouterOptions changed: update wire codec");

    w.u64(o.seed);
    w.boolean(o.techmap.use_rail_pair_hints);
    w.boolean(o.techmap.absorb_validity);
    w.boolean(o.techmap.greedy_pairing);
    w.u64(o.techmap.pairing_window);
    w.boolean(o.pack.affinity_clustering);
    w.u64(o.place.seed);
    w.f64(o.place.alpha);
    w.f64(o.place.moves_scale);
    w.boolean(o.place.anneal);
    w.boolean(o.place.incremental);
    w.u8(static_cast<std::uint8_t>(o.place.algorithm));
    w.i64(o.place.parallel_seeds);
    w.u32(o.place.threads);
    w.i64(o.place.max_rounds);
    w.i64(o.place.solver_passes);
    w.i64(o.place.solver_max_iters);
    w.i64(o.place.polish_rounds);
    w.f64(o.place.solver_tolerance);
    w.f64(o.place.anchor_weight);
    w.f64(o.place.coarsen_ratio);
    w.i64(o.place.min_coarse_nodes);
    w.i64(o.place.max_levels);
    w.i64(o.route.max_iterations);
    w.f64(o.route.pres_fac_first);
    w.f64(o.route.pres_fac_mult);
    w.f64(o.route.hist_fac);
    w.f64(o.route.astar_fac);
    w.boolean(o.route.incremental);
    w.i64(o.route.stall_full_reroute);
    w.boolean(o.route.verbose);
    w.u32(o.route.threads);
    w.u32(o.route.bin_margin);
    w.u32(o.route.min_bin_dim);
    w.f64(o.pde_extra_margin);
    w.boolean(o.verify_mapping);
}

FlowOptions decode_flow_options(BlobReader& r) {
    FlowOptions o;
    o.seed = r.u64();
    o.techmap.use_rail_pair_hints = r.boolean();
    o.techmap.absorb_validity = r.boolean();
    o.techmap.greedy_pairing = r.boolean();
    o.techmap.pairing_window = static_cast<std::size_t>(r.u64());
    o.pack.affinity_clustering = r.boolean();
    o.place.seed = r.u64();
    o.place.alpha = r.f64();
    o.place.moves_scale = r.f64();
    o.place.anneal = r.boolean();
    o.place.incremental = r.boolean();
    const std::uint8_t alg = r.u8();
    check(alg <= static_cast<std::uint8_t>(PlaceAlgorithm::Multilevel),
          "wire: place algorithm out of range");
    o.place.algorithm = static_cast<PlaceAlgorithm>(alg);
    o.place.parallel_seeds = static_cast<int>(r.i64());
    o.place.threads = r.u32();
    o.place.max_rounds = static_cast<int>(r.i64());
    o.place.solver_passes = static_cast<int>(r.i64());
    o.place.solver_max_iters = static_cast<int>(r.i64());
    o.place.polish_rounds = static_cast<int>(r.i64());
    o.place.solver_tolerance = r.f64();
    o.place.anchor_weight = r.f64();
    o.place.coarsen_ratio = r.f64();
    o.place.min_coarse_nodes = static_cast<int>(r.i64());
    o.place.max_levels = static_cast<int>(r.i64());
    o.route.max_iterations = static_cast<int>(r.i64());
    o.route.pres_fac_first = r.f64();
    o.route.pres_fac_mult = r.f64();
    o.route.hist_fac = r.f64();
    o.route.astar_fac = r.f64();
    o.route.incremental = r.boolean();
    o.route.stall_full_reroute = static_cast<int>(r.i64());
    o.route.verbose = r.boolean();
    o.route.threads = r.u32();
    o.route.bin_margin = r.u32();
    o.route.min_bin_dim = r.u32();
    o.pde_extra_margin = r.f64();
    o.verify_mapping = r.boolean();
    return o;
}

// --- message payloads -------------------------------------------------------

namespace {

/// Run `f` over a reader of `p` and require full consumption — every
/// message decoder shares the cad/serialize "trailing garbage = corrupt"
/// contract.
template <typename F>
auto decode_full(const std::vector<std::uint8_t>& p, F&& f) {
    BlobReader r(p);
    auto v = f(r);
    r.expect_end();
    return v;
}

}  // namespace

std::vector<std::uint8_t> encode_payload(const HelloMsg& m) {
    BlobWriter w;
    w.str(m.client_name);
    w.u32(m.protocol);
    return std::move(w).take();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        HelloMsg m;
        m.client_name = r.str();
        m.protocol = r.u32();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const HelloOkMsg& m) {
    BlobWriter w;
    w.u32(m.lane);
    w.u32(m.max_pending);
    w.u32(m.threads);
    return std::move(w).take();
}

HelloOkMsg decode_hello_ok(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        HelloOkMsg m;
        m.lane = r.u32();
        m.max_pending = r.u32();
        m.threads = r.u32();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const SubmitMsg& m) {
    BlobWriter w;
    w.str(m.name);
    w.i64(m.priority);
    encode_netlist(m.nl, w);
    encode_hints(m.hints, w);
    encode_arch(m.arch, w);
    encode_flow_options(m.opts, w);
    return std::move(w).take();
}

SubmitMsg decode_submit(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        SubmitMsg m;
        m.name = r.str();
        m.priority = static_cast<std::int32_t>(r.i64());
        m.nl = decode_netlist(r);
        m.hints = decode_hints(r);
        // Hint net ids are meaningless outside the netlist they arrived
        // with; bound them here so the mapper never indexes out of range.
        const std::size_t nn = m.nl.num_nets();
        for (const auto& [a, b] : m.hints.rail_pairs) {
            check(a.valid() && a.index() < nn && b.valid() && b.index() < nn,
                  "wire: hint rail pair out of range");
        }
        for (netlist::NetId v : m.hints.validity_nets)
            check(v.valid() && v.index() < nn, "wire: hint validity net out of range");
        m.arch = decode_arch(r);
        m.opts = decode_flow_options(r);
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const SubmitOkMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    w.u32(m.queue_depth);
    return std::move(w).take();
}

SubmitOkMsg decode_submit_ok(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        SubmitOkMsg m;
        m.job_id = r.u64();
        m.queue_depth = r.u32();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const BusyMsg& m) {
    BlobWriter w;
    w.u32(m.queue_depth);
    w.u32(m.limit);
    w.u32(m.retry_after_ms);
    return std::move(w).take();
}

BusyMsg decode_busy(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        BusyMsg m;
        m.queue_depth = r.u32();
        m.limit = r.u32();
        m.retry_after_ms = r.u32();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const StatusMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    return std::move(w).take();
}

StatusMsg decode_status(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        StatusMsg m;
        m.job_id = r.u64();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const StatusReplyMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    w.u8(m.status);
    w.u64(m.start_seq);
    w.f64(m.wall_ms);
    w.f64(m.queue_ms);
    w.str(m.error);
    return std::move(w).take();
}

StatusReplyMsg decode_status_reply(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        StatusReplyMsg m;
        m.job_id = r.u64();
        m.status = r.u8();
        check(m.status <= static_cast<std::uint8_t>(FlowJobStatus::Cancelled),
              "wire: job status out of range");
        m.start_seq = r.u64();
        m.wall_ms = r.f64();
        m.queue_ms = r.f64();
        m.error = r.str();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const WaitMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    return std::move(w).take();
}

WaitMsg decode_wait(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        WaitMsg m;
        m.job_id = r.u64();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const ResultBeginMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    w.u8(m.status);
    w.str(m.error);
    w.f64(m.wall_ms);
    w.f64(m.queue_ms);
    w.u64(m.start_seq);
    w.str(m.telemetry_json);
    w.u64(m.result_bytes);
    return std::move(w).take();
}

ResultBeginMsg decode_result_begin(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        ResultBeginMsg m;
        m.job_id = r.u64();
        m.status = r.u8();
        check(m.status <= static_cast<std::uint8_t>(FlowJobStatus::Cancelled),
              "wire: job status out of range");
        m.error = r.str();
        m.wall_ms = r.f64();
        m.queue_ms = r.f64();
        m.start_seq = r.u64();
        m.telemetry_json = r.str();
        m.result_bytes = r.u64();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const ResultChunkMsg& m) {
    check(m.bytes.size() <= kResultChunkBytes, "wire: oversized result chunk");
    BlobWriter w;
    w.u64(m.job_id);
    w.u64(m.offset);
    put_bytes(w, m.bytes.data(), m.bytes.size());
    return std::move(w).take();
}

ResultChunkMsg decode_result_chunk(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        ResultChunkMsg m;
        m.job_id = r.u64();
        m.offset = r.u64();
        m.bytes = get_bytes(r);
        check(m.bytes.size() <= kResultChunkBytes, "wire: oversized result chunk");
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const ResultEndMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    w.u64(m.checksum);
    return std::move(w).take();
}

ResultEndMsg decode_result_end(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        ResultEndMsg m;
        m.job_id = r.u64();
        m.checksum = r.u64();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const CancelMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    return std::move(w).take();
}

CancelMsg decode_cancel(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        CancelMsg m;
        m.job_id = r.u64();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const CancelReplyMsg& m) {
    BlobWriter w;
    w.u64(m.job_id);
    w.boolean(m.cancelled);
    return std::move(w).take();
}

CancelReplyMsg decode_cancel_reply(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        CancelReplyMsg m;
        m.job_id = r.u64();
        m.cancelled = r.boolean();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const ReportMsg&) { return {}; }

ReportMsg decode_report(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader&) { return ReportMsg{}; });
}

std::vector<std::uint8_t> encode_payload(const ReportReplyMsg& m) {
    BlobWriter w;
    w.str(m.json);
    return std::move(w).take();
}

ReportReplyMsg decode_report_reply(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        ReportReplyMsg m;
        m.json = r.str();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const DrainMsg&) { return {}; }

DrainMsg decode_drain(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader&) { return DrainMsg{}; });
}

std::vector<std::uint8_t> encode_payload(const DrainOkMsg& m) {
    BlobWriter w;
    w.u64(m.jobs_total);
    return std::move(w).take();
}

DrainOkMsg decode_drain_ok(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        DrainOkMsg m;
        m.jobs_total = r.u64();
        return m;
    });
}

std::vector<std::uint8_t> encode_payload(const ErrorMsg& m) {
    BlobWriter w;
    w.u32(m.code);
    w.str(m.message);
    return std::move(w).take();
}

ErrorMsg decode_error(const std::vector<std::uint8_t>& p) {
    return decode_full(p, [](BlobReader& r) {
        ErrorMsg m;
        m.code = r.u32();
        m.message = r.str();
        return m;
    });
}

}  // namespace afpga::cad::wire
