/// \file
/// Technology mapping: cover a gate-level asynchronous netlist with LE
/// instances (fracturable LUT7-3 halves + LUT2 validity slots).
///
/// Key moves, in order:
///  1. constant propagation and buffer folding;
///  2. every remaining gate becomes a LUT function; memory elements
///     (C-elements, latches) get their own output appended as a feedback
///     input — the looped-combinational-logic realisation of Section 3;
///  3. pairing: the generator's rail-pair hints go first (the two rails of
///     a dual-rail function share their support and fill one LE), then a
///     greedy shared-support matcher pairs the rest under the
///     union-support <= 6 rule; 7-input functions take a whole LE via the
///     O2 mux path;
///  4. validity absorption: a hinted 2-input function whose inputs are
///     exactly the two outputs of one LE moves into that LE's LUT2 slot.
///
/// Threading: techmap runs single-threaded at the head of every flow.
#pragma once

#include "asynclib/styles.hpp"
#include "cad/mapped.hpp"
#include "netlist/netlist.hpp"

namespace afpga::cad {

/// Mapping knobs (mostly ablation switches for the benches).
struct TechmapOptions {
    bool use_rail_pair_hints = true;  ///< ablation: ignore generator hints
    bool absorb_validity = true;      ///< ablation: keep validity in plain halves
    bool greedy_pairing = true;       ///< ablation: one function per LE
    std::size_t pairing_window = 64;  ///< greedy matcher search bound

    /// Canonical content hash over EVERY field, used as artifact-key
    /// material (cad/fingerprint.hpp). Adding a field without extending the
    /// implementation trips its struct-size static_assert.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Map `nl` to LEs/PDEs. Throws base::Error on unmappable cells
/// (e.g. gates wider than 7 inputs or a 7-input memory element).
[[nodiscard]] MappedDesign techmap(const netlist::Netlist& nl,
                                   const asynclib::MappingHints& hints = {},
                                   const TechmapOptions& opts = {});

/// Exhaustively verify that the mapped design computes the same function as
/// the source netlist for every signal an LE produces (checks each LE
/// function against the source cell cone it covers, including feedback
/// variables). Throws on mismatch; used by tests and as a flow assertion.
void verify_mapping(const netlist::Netlist& nl, const MappedDesign& mapped);

}  // namespace afpga::cad
