/// \file
/// Deterministic netlist coarsening for multilevel placement: heavy-edge /
/// first-choice matching over the placement model (cad/place_model.hpp),
/// producing a hierarchy of shrinking CoarseLevel graphs that
/// cad/place_multilevel.hpp solves top-down.
///
/// Matching is first-choice with a fixed visit order (ascending node index)
/// and lexicographic tie-breaks (highest connectivity rating, then lowest
/// neighbor index), so the hierarchy is a pure function of the model and
/// the coarsening knobs — bit-identical across runs, machines and thread
/// counts. Cluster weights are conserved exactly at every level (the sum
/// of node weights always equals the model's cluster count), nets are
/// contracted with multiplicity (nets whose pins collapse to the same set
/// merge, summing their weights), and I/O pads survive as fixed anchors at
/// every level via stable slot-indexed pins.
///
/// Threading: pure functions of their arguments; safe to call concurrently
/// over one shared PlaceModel.
#pragma once

#include <cstdint>
#include <vector>

#include "cad/place_model.hpp"

namespace afpga::cad {

/// One contracted net: sorted, duplicate-free pins plus the summed weight
/// of every finer net that collapsed onto this pin set.
struct CoarseNet {
    std::vector<std::uint32_t> pins;  ///< < num_nodes: movable node; else num_nodes + io slot
    double weight = 1.0;
};

/// One level of the coarsening hierarchy. Level 0 is the model itself
/// (one node per cluster, unit weights); each further level groups the
/// previous one. Pins below num_nodes index movable nodes of this level;
/// pin num_nodes + s is I/O slot s, which keeps its identity (and its
/// fixed pad anchor) at every level.
struct CoarseLevel {
    std::size_t num_nodes = 0;               ///< movable nodes at this level
    std::size_t num_io = 0;                   ///< io slots (constant across levels)
    std::vector<std::uint32_t> node_weight;   ///< clusters represented per node
    std::vector<CoarseNet> nets;              ///< contracted nets, deterministic order
    /// Finer-level node -> node at this level. Empty at level 0.
    std::vector<std::uint32_t> map_down;
};

/// Build level 0 from the model: one unit-weight node per cluster, model
/// nets translated to level pins. Nets with identical pin sets merge with
/// summed weight (net order: lexicographic by pin set).
[[nodiscard]] CoarseLevel finest_level(const PlaceModel& model);

/// Coarsen one level by first-choice matching: visit nodes in ascending
/// index order; each unmatched node rates its neighbors by summed
/// connectivity weight(net) / (movable_pins - 1) over the small nets they
/// share, then joins the best-rated group (ties to the lowest index) whose
/// combined weight stays within `max_node_weight`, until the level would
/// shrink below `target_nodes`. Coarse indices are assigned by first
/// appearance, keeping the ordering stable.
[[nodiscard]] CoarseLevel coarsen_level(const CoarseLevel& fine, std::size_t target_nodes,
                                        std::uint64_t max_node_weight);

/// Build the full hierarchy, finest first: coarsen with `ratio` (each
/// level targets ceil(ratio * nodes)) until the movable count drops to
/// `min_nodes`, the level count hits `max_levels`, or a level fails to
/// shrink by at least 5% (matching saturated). Always returns at least
/// level 0.
[[nodiscard]] std::vector<CoarseLevel> build_hierarchy(const PlaceModel& model, double ratio,
                                                       std::size_t min_nodes,
                                                       std::size_t max_levels);

}  // namespace afpga::cad
