#include "cad/flow_client.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "cad/serialize.hpp"

namespace afpga::cad {

using base::check;

BitstreamArtifact RemoteFlowResult::decode_bitstream() const {
    check(ok(), "remote result '" + name + "' is not ok: " + error);
    return ArtifactCodec<BitstreamArtifact>::decode_blob(result_blob);
}

FlowClient FlowClient::connect_unix(const std::string& path, const std::string& client_name) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    check(path.size() < sizeof(addr.sun_path), "flow_client: unix socket path too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check(fd >= 0, "flow_client: socket(AF_UNIX) failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        base::fail("flow_client: connect(" + path + ") failed: " + std::strerror(errno));
    }
    return FlowClient(fd, client_name);
}

FlowClient FlowClient::connect_tcp(const std::string& host, std::uint16_t port,
                                   const std::string& client_name) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "flow_client: bad host " + host);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd >= 0, "flow_client: socket(AF_INET) failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        base::fail("flow_client: connect(" + host + ":" + std::to_string(port) +
                   ") failed: " + std::strerror(errno));
    }
    return FlowClient(fd, client_name);
}

FlowClient::FlowClient(int fd, const std::string& client_name) : fd_(fd) {
    wire::HelloMsg hello;
    hello.client_name = client_name;
    write_all(wire::encode_frame(wire::MsgType::Hello, wire::encode_payload(hello)));
    const wire::Frame f = read_frame();
    check(f.type == wire::MsgType::HelloOk,
          "flow_client: expected hello_ok, got " + wire::to_string(f.type));
    hello_ = wire::decode_hello_ok(f.payload);
    if (hello_.max_pending != 0) last_busy_retry_ms_ = 50;
}

FlowClient::~FlowClient() { close(); }

FlowClient::FlowClient(FlowClient&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      dec_(std::move(o.dec_)),
      hello_(o.hello_),
      last_busy_retry_ms_(o.last_busy_retry_ms_) {}

FlowClient& FlowClient::operator=(FlowClient&& o) noexcept {
    if (this != &o) {
        close();
        fd_ = std::exchange(o.fd_, -1);
        dec_ = std::move(o.dec_);
        hello_ = o.hello_;
        last_busy_retry_ms_ = o.last_busy_retry_ms_;
    }
    return *this;
}

void FlowClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void FlowClient::write_all(const std::vector<std::uint8_t>& bytes) {
    check(fd_ >= 0, "flow_client: connection is closed");
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            base::fail(std::string("flow_client: send failed: ") + std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

wire::Frame FlowClient::read_frame() {
    check(fd_ >= 0, "flow_client: connection is closed");
    for (;;) {
        if (auto f = dec_.next()) return *std::move(f);
        std::uint8_t buf[64 * 1024];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            base::fail(std::string("flow_client: recv failed: ") + std::strerror(errno));
        }
        check(n != 0, "flow_client: server closed the connection");
        dec_.feed(buf, static_cast<std::size_t>(n));
    }
}

namespace {

/// Request-level Error frames become thrown base::Error with the server's
/// message; every verb reply path funnels through here.
[[noreturn]] void throw_server_error(const wire::Frame& f) {
    const wire::ErrorMsg e = wire::decode_error(f.payload);
    base::fail("flow_client: server error " + std::to_string(e.code) + ": " + e.message);
}

}  // namespace

std::optional<std::uint64_t> FlowClient::try_submit(const RemoteJobSpec& job) {
    check(job.nl != nullptr, "flow_client: job '" + job.name + "' has no netlist");
    wire::SubmitMsg m;
    m.name = job.name;
    m.priority = job.priority;
    m.nl = *job.nl;
    if (job.hints) m.hints = *job.hints;
    m.arch = job.arch;
    m.opts = job.opts;
    // The shared-state pointers are process-local and never travel.
    m.opts.prebuilt_rr = nullptr;
    m.opts.artifact_store = nullptr;
    write_all(wire::encode_frame(wire::MsgType::Submit, wire::encode_payload(m)));
    const wire::Frame f = read_frame();
    if (f.type == wire::MsgType::Busy) {
        const wire::BusyMsg busy = wire::decode_busy(f.payload);
        if (busy.retry_after_ms > 0) last_busy_retry_ms_ = busy.retry_after_ms;
        return std::nullopt;
    }
    if (f.type == wire::MsgType::Error) throw_server_error(f);
    check(f.type == wire::MsgType::SubmitOk,
          "flow_client: expected submit_ok, got " + wire::to_string(f.type));
    return wire::decode_submit_ok(f.payload).job_id;
}

std::uint64_t FlowClient::submit(const RemoteJobSpec& job) {
    for (;;) {
        if (const auto id = try_submit(job)) return *id;
        std::this_thread::sleep_for(std::chrono::milliseconds(last_busy_retry_ms_));
    }
}

wire::StatusReplyMsg FlowClient::status(std::uint64_t job_id) {
    wire::StatusMsg m;
    m.job_id = job_id;
    write_all(wire::encode_frame(wire::MsgType::Status, wire::encode_payload(m)));
    const wire::Frame f = read_frame();
    if (f.type == wire::MsgType::Error) throw_server_error(f);
    check(f.type == wire::MsgType::StatusReply,
          "flow_client: expected status_reply, got " + wire::to_string(f.type));
    return wire::decode_status_reply(f.payload);
}

bool FlowClient::cancel(std::uint64_t job_id) {
    wire::CancelMsg m;
    m.job_id = job_id;
    write_all(wire::encode_frame(wire::MsgType::Cancel, wire::encode_payload(m)));
    const wire::Frame f = read_frame();
    if (f.type == wire::MsgType::Error) throw_server_error(f);
    check(f.type == wire::MsgType::CancelReply,
          "flow_client: expected cancel_reply, got " + wire::to_string(f.type));
    return wire::decode_cancel_reply(f.payload).cancelled;
}

RemoteFlowResult FlowClient::wait(std::uint64_t job_id, std::string name) {
    wire::WaitMsg m;
    m.job_id = job_id;
    write_all(wire::encode_frame(wire::MsgType::Wait, wire::encode_payload(m)));

    wire::Frame f = read_frame();
    if (f.type == wire::MsgType::Error) throw_server_error(f);
    check(f.type == wire::MsgType::ResultBegin,
          "flow_client: expected result_begin, got " + wire::to_string(f.type));
    const wire::ResultBeginMsg begin = wire::decode_result_begin(f.payload);
    check(begin.job_id == job_id, "flow_client: result stream for the wrong job");

    RemoteFlowResult res;
    res.name = std::move(name);
    res.status = static_cast<FlowJobStatus>(begin.status);
    res.error = begin.error;
    res.wall_ms = begin.wall_ms;
    res.queue_ms = begin.queue_ms;
    res.start_seq = begin.start_seq;
    res.telemetry_json = begin.telemetry_json;
    res.result_blob.reserve(static_cast<std::size_t>(begin.result_bytes));

    for (;;) {
        f = read_frame();
        if (f.type == wire::MsgType::ResultChunk) {
            const wire::ResultChunkMsg chunk = wire::decode_result_chunk(f.payload);
            check(chunk.job_id == job_id, "flow_client: chunk for the wrong job");
            check(chunk.offset == res.result_blob.size(),
                  "flow_client: result chunk out of order");
            res.result_blob.insert(res.result_blob.end(), chunk.bytes.begin(),
                                   chunk.bytes.end());
            check(res.result_blob.size() <= begin.result_bytes,
                  "flow_client: result stream longer than announced");
            continue;
        }
        if (f.type == wire::MsgType::Error) throw_server_error(f);
        check(f.type == wire::MsgType::ResultEnd,
              "flow_client: expected result_end, got " + wire::to_string(f.type));
        const wire::ResultEndMsg end = wire::decode_result_end(f.payload);
        check(end.job_id == job_id, "flow_client: result end for the wrong job");
        check(res.result_blob.size() == begin.result_bytes,
              "flow_client: result stream truncated");
        check(end.checksum == wire::fnv1a64(res.result_blob.data(), res.result_blob.size()),
              "flow_client: result stream checksum mismatch");
        return res;
    }
}

std::string FlowClient::report_json() {
    write_all(wire::encode_frame(wire::MsgType::Report, wire::encode_payload(wire::ReportMsg{})));
    const wire::Frame f = read_frame();
    if (f.type == wire::MsgType::Error) throw_server_error(f);
    check(f.type == wire::MsgType::ReportReply,
          "flow_client: expected report_reply, got " + wire::to_string(f.type));
    return wire::decode_report_reply(f.payload).json;
}

std::uint64_t FlowClient::drain_server() {
    write_all(wire::encode_frame(wire::MsgType::Drain, wire::encode_payload(wire::DrainMsg{})));
    const wire::Frame f = read_frame();
    if (f.type == wire::MsgType::Error) throw_server_error(f);
    check(f.type == wire::MsgType::DrainOk,
          "flow_client: expected drain_ok, got " + wire::to_string(f.type));
    return wire::decode_drain_ok(f.payload).jobs_total;
}

std::vector<RemoteFlowResult> RemoteBatchRunner::run(const std::vector<RemoteJobSpec>& jobs) {
    // Submit everything first (submit() rides out Busy backpressure), then
    // collect in job order — the FlowService end already schedules fairly.
    std::vector<std::uint64_t> ids;
    ids.reserve(jobs.size());
    for (const RemoteJobSpec& j : jobs) ids.push_back(client_.submit(j));
    std::vector<RemoteFlowResult> results;
    results.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        results.push_back(client_.wait(ids[i], jobs[i].name));
    return results;
}

}  // namespace afpga::cad
