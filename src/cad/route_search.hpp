/// \file
/// Internal single-net search core shared by the serial PathFinder
/// (cad/route) and the deterministic partitioned parallel PathFinder
/// (cad/route_parallel).
///
/// route_one_net() performs the multi-sink A* wavefront search of one net
/// against the caller's congestion state (occupancy, history, present-cost
/// factor) and commits the resulting tree's occupancy. It is a pure function
/// of its inputs: the same (request, costs, scratch-reset) always yields the
/// same tree, which is the property both routers' determinism rests on.
///
/// Threading: route_one_net itself is single-threaded. The parallel router
/// calls it concurrently from several workers, one SearchScratch per worker
/// and one RouteBBox per net; node-disjointness of the bounding boxes (see
/// cad/route_parallel) is what makes the concurrent occupancy writes
/// race-free. `hist` is read-only during a routing phase and only updated at
/// the end-of-iteration barrier.
#pragma once

#include <cstdint>
#include <vector>

#include "cad/route.hpp"
#include "core/rrgraph.hpp"

namespace afpga::cad::detail {

/// Inclusive PLB-space rectangle restricting a net's search region.
///
/// The channel-space reading (matching core/fabric.hpp's coordinate system):
/// a net confined to PLB rect [x0,x1]x[y0,y1] may use CHANX wires with
/// x in [x0,x1] and channel row ych in [y0,y1+1], and CHANY wires with
/// channel column xch in [x0,x1+1] and y in [y0,y1]. Two boxes whose PLB
/// rects are separated by at least one full column (or row) therefore touch
/// disjoint RR-node sets — the invariant the parallel router's partition
/// cuts enforce.
struct RouteBBox {
    std::uint32_t x0 = 0;  ///< leftmost PLB column, inclusive
    std::uint32_t y0 = 0;  ///< bottom PLB row, inclusive
    std::uint32_t x1 = 0;  ///< rightmost PLB column, inclusive
    std::uint32_t y1 = 0;  ///< top PLB row, inclusive

    /// True when `other` lies entirely inside this box.
    [[nodiscard]] bool contains(const RouteBBox& other) const noexcept {
        return other.x0 >= x0 && other.x1 <= x1 && other.y0 >= y0 && other.y1 <= y1;
    }
    /// Grow by `m` PLBs on every side, clamped to fabric [0,W)x[0,H).
    [[nodiscard]] RouteBBox expanded(std::uint32_t m, std::uint32_t width,
                                     std::uint32_t height) const noexcept {
        RouteBBox r;
        r.x0 = x0 > m ? x0 - m : 0;
        r.y0 = y0 > m ? y0 - m : 0;
        r.x1 = x1 + m < width ? x1 + m : width - 1;
        r.y1 = y1 + m < height ? y1 + m : height - 1;
        return r;
    }
    /// True when RR node `n` may be occupied by a net confined to this box.
    /// Pad pin nodes always pass: they are endpoints only (a pad OPIN has no
    /// in-edges and the search never expands through an IPIN), so they can
    /// never leak occupancy outside the box.
    [[nodiscard]] bool allows(const core::RRNode& n) const noexcept {
        if (n.is_pad) return true;
        switch (n.kind) {
            case core::RRKind::ChanX:
                return n.x >= x0 && n.x <= x1 && n.y >= y0 && n.y <= y1 + 1;
            case core::RRKind::ChanY:
                return n.x >= x0 && n.x <= x1 + 1 && n.y >= y0 && n.y <= y1;
            default:  // Opin / Ipin of a PLB
                return n.x >= x0 && n.x <= x1 && n.y >= y0 && n.y <= y1;
        }
    }
};

/// Per-searcher scratch arrays (one per routing thread): the label arrays of
/// the A* search, recycled across nets via a visit-mark epoch instead of a
/// clear. Never shared between concurrently-running searches.
struct SearchScratch {
    std::vector<double> best;                ///< cheapest backward cost found
    std::vector<std::uint32_t> prev_edge;    ///< incoming edge of `best`
    std::vector<std::uint32_t> visit_mark;   ///< epoch a node was last labelled
    std::uint32_t mark = 0;                  ///< current epoch

    explicit SearchScratch(std::size_t num_nodes)
        : best(num_nodes, 0.0), prev_edge(num_nodes, UINT32_MAX),
          visit_mark(num_nodes, 0) {}
};

/// Everything route_one_net decided about one net.
struct NetRouteState {
    RouteTree tree;                        ///< per-sink results + edge list
    std::vector<std::uint32_t> nodes;      ///< RR nodes the tree occupies
    bool all_sinks_found = true;           ///< false: some sink unreachable
};

/// Route one net from scratch under the current congestion costs and commit
/// its occupancy (`++occ` on every tree node).
///
/// `bbox`, when non-null, confines the wavefront: nodes outside the box are
/// never pushed (pad endpoints excepted, see RouteBBox::allows). A sink that
/// cannot be reached inside the box is reported through all_sinks_found and
/// its RouteTree::SinkResult stays UINT32_MAX — the caller's business to
/// retry with a wider box on a later iteration.
///
/// Caller contract: the net's previous occupancy must already be ripped up,
/// `hist` must not change during the call, and `scratch` must not be used by
/// any concurrent search.
[[nodiscard]] NetRouteState route_one_net(const core::RRGraph& rr, const RouteRequest& rq,
                                          const RouterOptions& opts, double pres_fac,
                                          const std::vector<double>& hist,
                                          std::vector<std::uint16_t>& occ,
                                          SearchScratch& scratch,
                                          const RouteBBox* bbox);

/// Shared post-success pass: total channel-wire count into
/// RoutingResult::wirelength and root-to-sink delay accumulation into every
/// RouteTree::SinkResult::delay_ps.
void finalize_routing(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                      const std::vector<std::vector<std::uint32_t>>& net_nodes,
                      RoutingResult& result);

/// Shared failure pass: per-overused-node conflict descriptions plus the
/// unrouted-sink count into RoutingResult::overuse_report.
void report_overuse(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                    const std::vector<std::vector<std::uint32_t>>& net_nodes,
                    const std::vector<std::uint16_t>& occ, RoutingResult& result);

}  // namespace afpga::cad::detail
