/// \file
/// Internal single-net search core shared by the serial PathFinder
/// (cad/route) and the deterministic partitioned parallel PathFinder
/// (cad/route_parallel).
///
/// route_one_net() performs the multi-sink A* wavefront search of one net
/// against the caller's congestion state (occupancy, history, present-cost
/// factor) and commits the resulting tree's occupancy. It is a pure function
/// of its inputs: the same (request, costs, scratch-reset) always yields the
/// same tree, which is the property both routers' determinism rests on.
///
/// Threading: route_one_net itself is single-threaded. The parallel router
/// calls it concurrently from several workers, one SearchScratch per worker
/// and one RouteBBox per net; node-disjointness of the bounding boxes (see
/// cad/route_parallel) is what makes the concurrent occupancy writes
/// race-free. `hist` is read-only during a routing phase and only updated at
/// the end-of-iteration barrier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cad/route.hpp"
#include "core/rrgraph.hpp"

namespace afpga::cad::detail {

/// Inclusive PLB-space rectangle restricting a net's search region.
///
/// The channel-space reading (matching core/fabric.hpp's coordinate system):
/// a net confined to PLB rect [x0,x1]x[y0,y1] may use CHANX wires with
/// x in [x0,x1] and channel row ych in [y0,y1+1], and CHANY wires with
/// channel column xch in [x0,x1+1] and y in [y0,y1]. Two boxes whose PLB
/// rects are separated by at least one full column (or row) therefore touch
/// disjoint RR-node sets — the invariant the parallel router's partition
/// cuts enforce.
struct RouteBBox {
    std::uint32_t x0 = 0;  ///< leftmost PLB column, inclusive
    std::uint32_t y0 = 0;  ///< bottom PLB row, inclusive
    std::uint32_t x1 = 0;  ///< rightmost PLB column, inclusive
    std::uint32_t y1 = 0;  ///< top PLB row, inclusive

    /// True when `other` lies entirely inside this box.
    [[nodiscard]] bool contains(const RouteBBox& other) const noexcept {
        return other.x0 >= x0 && other.x1 <= x1 && other.y0 >= y0 && other.y1 <= y1;
    }
    /// Grow by `m` PLBs on every side, clamped to fabric [0,W)x[0,H).
    [[nodiscard]] RouteBBox expanded(std::uint32_t m, std::uint32_t width,
                                     std::uint32_t height) const noexcept {
        RouteBBox r;
        r.x0 = x0 > m ? x0 - m : 0;
        r.y0 = y0 > m ? y0 - m : 0;
        r.x1 = x1 + m < width ? x1 + m : width - 1;
        r.y1 = y1 + m < height ? y1 + m : height - 1;
        return r;
    }
    /// True when RR node `n` may be occupied by a net confined to this box.
    /// Pad pin nodes always pass: they are endpoints only (a pad OPIN has no
    /// in-edges and the search never expands through an IPIN), so they can
    /// never leak occupancy outside the box.
    [[nodiscard]] bool allows(const core::RRNode& n) const noexcept {
        if (n.is_pad) return true;
        switch (n.kind) {
            case core::RRKind::ChanX:
                return n.x >= x0 && n.x <= x1 && n.y >= y0 && n.y <= y1 + 1;
            case core::RRKind::ChanY:
                return n.x >= x0 && n.x <= x1 + 1 && n.y >= y0 && n.y <= y1;
            default:  // Opin / Ipin of a PLB
                return n.x >= x0 && n.x <= x1 && n.y >= y0 && n.y <= y1;
        }
    }
    /// Same predicate over the packed SoA position word (wavefront hot path).
    [[nodiscard]] bool allows(core::RRNodeWord n) const noexcept {
        if (n.is_pad()) return true;
        switch (n.kind()) {
            case core::RRKind::ChanX:
                return n.x() >= x0 && n.x() <= x1 && n.y() >= y0 && n.y() <= y1 + 1;
            case core::RRKind::ChanY:
                return n.x() >= x0 && n.x() <= x1 + 1 && n.y() >= y0 && n.y() <= y1;
            default:  // Opin / Ipin of a PLB
                return n.x() >= x0 && n.x() <= x1 && n.y() >= y0 && n.y() <= y1;
        }
    }
};

/// One wavefront entry of the A* search.
struct HeapItem {
    double cost;         ///< accumulated + heuristic (the heap key)
    double backward;     ///< accumulated only
    std::uint32_t node;  ///< RR node this entry would expand
    /// Max-heap ordering on cost inverted into a min-heap, exactly like the
    /// seed kernel's `std::priority_queue` comparator.
    friend bool operator<(const HeapItem& a, const HeapItem& b) noexcept {
        return a.cost > b.cost;
    }
};

/// Pooled min-heap of the wavefront: a flat vector driven by std::push_heap /
/// std::pop_heap whose capacity is retained across sinks, nets and PathFinder
/// iterations — after warm-up the wavefront loop performs zero heap
/// allocation.
///
/// Deliberately a *binary* heap through the standard heap algorithms, not a
/// 4-ary layout: std::priority_queue::push is specified as push_back +
/// push_heap and ::pop as pop_heap + pop_back, so this heap's pop order —
/// including the order among cost ties, which decides which target pin and
/// prev_edge win a search — is identical to the seed kernel's by definition.
/// A 4-ary sift would reorder ties and change routed bitstreams, violating
/// the bit-identity contract the route_kernel bench tier gates on.
class PooledHeap {
public:
    /// Push one item. Returns true when the buffer had to grow (an
    /// allocation event — the telemetry's zero-steady-state gate material).
    bool push(HeapItem it) {
        const bool grew = v_.size() == v_.capacity();
        v_.push_back(it);
        std::push_heap(v_.begin(), v_.end());
        return grew;
    }
    /// Pop the cheapest item (ties resolved exactly as std::priority_queue).
    HeapItem pop() {
        std::pop_heap(v_.begin(), v_.end());
        const HeapItem it = v_.back();
        v_.pop_back();
        return it;
    }
    /// True when the wavefront is exhausted.
    [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
    /// Live entries (stale duplicates included).
    [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
    /// Retained storage, in items.
    [[nodiscard]] std::size_t capacity() const noexcept { return v_.capacity(); }
    /// Forget contents, keep capacity.
    void clear() noexcept { v_.clear(); }
    /// Pre-size the buffer (not an allocation event for telemetry — callers
    /// use this at the warm-up boundary, before the steady-state clock runs).
    void reserve(std::size_t n) { v_.reserve(n); }

private:
    std::vector<HeapItem> v_;
};

/// Per-searcher scratch (one per routing thread): the label arrays, pooled
/// wavefront heap and pooled terminal buffers of the A* search, recycled
/// across sinks/nets/iterations via mark epochs instead of clears — in steady
/// state a search allocates nothing. Never shared between concurrently-
/// running searches.
struct SearchScratch {
    std::vector<double> best;                ///< cheapest backward cost found
    std::vector<std::uint32_t> prev_edge;    ///< incoming edge of `best`
    std::vector<std::uint32_t> visit_mark;   ///< epoch a node was last labelled
    std::vector<std::uint32_t> target_mark;  ///< epoch a node was last a sink target
    std::vector<std::uint32_t> tree_mark;    ///< epoch a node last joined a route tree
    std::uint32_t mark = 0;                  ///< per-sink epoch (visit + target)
    std::uint32_t tree_epoch = 0;            ///< per-net epoch (tree membership)

    PooledHeap heap;                       ///< pooled wavefront
    std::vector<std::uint32_t> targets;    ///< pooled per-sink target-pin buffer
    std::vector<std::uint32_t> sources;    ///< pooled per-net source-pin buffer
    RouteKernelStats stats;                ///< counters, accumulated across calls

    explicit SearchScratch(std::size_t num_nodes)
        : best(num_nodes, 0.0), prev_edge(num_nodes, UINT32_MAX), visit_mark(num_nodes, 0),
          target_mark(num_nodes, 0), tree_mark(num_nodes, 0) {}

    /// Open a fresh per-sink epoch. On the (astronomically rare) 32-bit
    /// wraparound, stale stamps could collide with reissued epochs, so both
    /// stamp arrays are washed back to 0 and the counter restarts at 1.
    void begin_sink() {
        if (++mark == 0) {
            std::fill(visit_mark.begin(), visit_mark.end(), 0u);
            std::fill(target_mark.begin(), target_mark.end(), 0u);
            mark = 1;
        }
    }
    /// Open a fresh per-net tree epoch (same wraparound rule).
    void begin_net() {
        if (++tree_epoch == 0) {
            std::fill(tree_mark.begin(), tree_mark.end(), 0u);
            tree_epoch = 1;
        }
    }
};

/// Everything route_one_net decided about one net.
struct NetRouteState {
    RouteTree tree;                        ///< per-sink results + edge list
    std::vector<std::uint32_t> nodes;      ///< RR nodes the tree occupies
    bool all_sinks_found = true;           ///< false: some sink unreachable
};

/// Route one net from scratch under the current congestion costs and commit
/// its occupancy (`++occ` on every tree node).
///
/// `bbox`, when non-null, confines the wavefront: nodes outside the box are
/// never pushed (pad endpoints excepted, see RouteBBox::allows). A sink that
/// cannot be reached inside the box is reported through all_sinks_found and
/// its RouteTree::SinkResult stays UINT32_MAX — the caller's business to
/// retry with a wider box on a later iteration.
///
/// Caller contract: the net's previous occupancy must already be ripped up,
/// `hist` must not change during the call, and `scratch` must not be used by
/// any concurrent search.
[[nodiscard]] NetRouteState route_one_net(const core::RRGraph& rr, const RouteRequest& rq,
                                          const RouterOptions& opts, double pres_fac,
                                          const std::vector<double>& hist,
                                          std::vector<std::uint16_t>& occ,
                                          SearchScratch& scratch,
                                          const RouteBBox* bbox);

/// Shared post-success pass: total channel-wire count into
/// RoutingResult::wirelength and root-to-sink delay accumulation into every
/// RouteTree::SinkResult::delay_ps.
void finalize_routing(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                      const std::vector<std::vector<std::uint32_t>>& net_nodes,
                      RoutingResult& result);

/// Shared failure pass: per-overused-node conflict descriptions plus the
/// unrouted-sink count into RoutingResult::overuse_report.
void report_overuse(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                    const std::vector<std::vector<std::uint32_t>>& net_nodes,
                    const std::vector<std::uint16_t>& occ, RoutingResult& result);

// --- pre-rework reference kernel --------------------------------------------

/// The seed search kernel (per-sink std::priority_queue, std::find tree
/// membership, RRNode-struct reads), retained verbatim so tests and the
/// route_kernel bench tier can demand the pooled kernel's bitstreams
/// bit-identical to pre-rework results. Functionally interchangeable with
/// route_one_net(); fills no kernel telemetry.
[[nodiscard]] NetRouteState route_one_net_reference(
    const core::RRGraph& rr, const RouteRequest& rq, const RouterOptions& opts,
    double pres_fac, const std::vector<double>& hist, std::vector<std::uint16_t>& occ,
    SearchScratch& scratch, const RouteBBox* bbox);

/// Pre-rework finalize_routing (per-net unordered_map adjacency), retained
/// verbatim alongside route_one_net_reference.
void finalize_routing_reference(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                                const std::vector<std::vector<std::uint32_t>>& net_nodes,
                                RoutingResult& result);

/// Pre-rework report_overuse (nets x overused-nodes scan), retained verbatim
/// alongside route_one_net_reference.
void report_overuse_reference(const core::RRGraph& rr, const std::vector<RouteRequest>& reqs,
                              const std::vector<std::vector<std::uint32_t>>& net_nodes,
                              const std::vector<std::uint16_t>& occ, RoutingResult& result);

/// Test/bench hook: route every subsequent route()/route_parallel() call with
/// the reference kernel instead of the pooled one. The flag is read ONCE at
/// router entry (never mid-run), so flipping it concurrently with a routing
/// call selects whole runs, not individual nets.
void set_use_reference_kernel(bool on) noexcept;
/// Current state of the set_use_reference_kernel() hook.
[[nodiscard]] bool use_reference_kernel() noexcept;

}  // namespace afpga::cad::detail
