#include "cad/fingerprint.hpp"

#include <bit>
#include <cstdio>

namespace afpga::cad {

Fingerprint& Fingerprint::mix_word(std::uint64_t v) noexcept {
    // splitmix64 finalizer over (state ^ input): order-sensitive and
    // avalanche-complete, so single-field edits flip the digest.
    std::uint64_t z = h_ ^ (v + 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    h_ = z ^ (z >> 31);
    return *this;
}

Fingerprint& Fingerprint::mix(double v) noexcept {
    return mix_word(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::mix(std::string_view s) noexcept {
    mix_word(s.size());
    // Pack 8 bytes per word; the length prefix disambiguates the tail.
    std::uint64_t word = 0;
    int n = 0;
    for (unsigned char c : s) {
        word = (word << 8) | c;
        if (++n == 8) {
            mix_word(word);
            word = 0;
            n = 0;
        }
    }
    if (n) mix_word(word);
    return *this;
}

ArtifactKey chain_key(ArtifactKey upstream, std::string_view stage,
                      std::uint64_t stage_fp) noexcept {
    Fingerprint f;
    f.mix(upstream).mix(stage).mix(stage_fp);
    return f.digest();
}

std::string key_hex(ArtifactKey key) {
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(key));
    return buf;
}

namespace {

void mix_table(Fingerprint& f, const netlist::TruthTable& tt) {
    f.mix(tt.arity());
    // Row bits packed 64 per word (arity is bounded by kMaxArity = 16).
    std::uint64_t word = 0;
    int n = 0;
    for (std::uint32_t m = 0; m < tt.rows(); ++m) {
        word = (word << 1) | (tt.eval(m) ? 1u : 0u);
        if (++n == 64) {
            f.mix(word);
            word = 0;
            n = 0;
        }
    }
    if (n) f.mix(word);
}

}  // namespace

std::uint64_t fingerprint_netlist(const netlist::Netlist& nl) {
    Fingerprint f;
    f.mix(nl.name());
    f.mix(nl.num_cells());
    for (netlist::CellId id : nl.cell_ids()) {
        const netlist::Cell& c = nl.cell(id);
        f.mix(c.func).mix(c.name).mix(c.output.value());
        f.mix(c.inputs.size());
        for (netlist::NetId in : c.inputs) f.mix(in.value());
        f.mix(c.table.has_value());
        if (c.table) mix_table(f, *c.table);
        f.mix(c.delay_ps.has_value());
        if (c.delay_ps) f.mix(*c.delay_ps);
    }
    // Net names matter (pad assignment and testbench lookup are by name);
    // driver/sink structure is implied by the cell list above.
    f.mix(nl.num_nets());
    for (netlist::NetId id : nl.net_ids()) {
        const netlist::Net& net = nl.net(id);
        f.mix(net.name).mix(net.is_primary_input);
    }
    f.mix(nl.primary_inputs().size());
    for (netlist::NetId pi : nl.primary_inputs()) f.mix(pi.value());
    f.mix(nl.primary_outputs().size());
    for (const auto& [name, net] : nl.primary_outputs()) f.mix(name).mix(net.value());
    return f.digest();
}

std::uint64_t fingerprint_hints(const asynclib::MappingHints& hints) {
    Fingerprint f;
    f.mix(hints.rail_pairs.size());
    for (const auto& [t, fl] : hints.rail_pairs) f.mix(t.value()).mix(fl.value());
    f.mix(hints.validity_nets.size());
    for (netlist::NetId v : hints.validity_nets) f.mix(v.value());
    return f.digest();
}

}  // namespace afpga::cad
