// The paper's demonstration circuits (Fig. 3): a 1-bit full adder in QDI
// dual-rail (DIMS) and in micropipeline bundled-data style, plus the n-bit
// ripple-carry generalisations used by the filling-ratio sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asynclib/dualrail.hpp"
#include "asynclib/micropipeline.hpp"
#include "asynclib/styles.hpp"
#include "netlist/netlist.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::asynclib {

/// sum(a,b,cin) and cout(a,b,cin) truth tables (variable order a,b,cin).
[[nodiscard]] netlist::TruthTable full_adder_sum_tt();
[[nodiscard]] netlist::TruthTable full_adder_cout_tt();

/// A QDI dual-rail combinational block with completion detection.
/// Primary inputs: the input rails; primary outputs: the output rails plus
/// "done". The environment runs the 4-phase protocol around it.
struct QdiAdder {
    netlist::Netlist nl;
    std::vector<DualRail> a;   ///< n bits
    std::vector<DualRail> b;   ///< n bits
    DualRail cin;
    std::vector<DualRail> sum;  ///< n bits
    DualRail cout;
    netlist::NetId done;
    MappingHints hints;
};

/// How the QDI adder's completion (done) signal is built.
enum class QdiCompletion : std::uint8_t {
    GroupValidity,  ///< per-LE minterm-pair OR2s in the LUT2 slots (paper's
                    ///< intended LUT2 use), OR-combined per digit, C-joined
    OutputRails,    ///< classic per-output validity ORs + C-tree
    None,           ///< bare function block (no done output)
};

/// Fig. 3b: 1-bit DIMS full adder (n = 1), or its n-bit ripple extension.
[[nodiscard]] QdiAdder make_qdi_adder(std::size_t n_bits,
                                      QdiCompletion completion = QdiCompletion::GroupValidity);

/// A micropipeline bundled-data adder: one pipeline stage whose datapath is
/// an n-bit ripple-carry adder (XOR3/MAJ3 per bit, as in Fig. 3a).
/// Primary inputs: a[n], b[n], cin, req_in, ack_out.
/// Primary outputs: sum[n], cout, req_out, ack_in.
struct MpAdder {
    netlist::Netlist nl;
    std::vector<netlist::NetId> a;
    std::vector<netlist::NetId> b;
    netlist::NetId cin;
    std::vector<netlist::NetId> sum;
    netlist::NetId cout;
    netlist::NetId req_in;    ///< PI
    netlist::NetId ack_out;   ///< PI (sink's acknowledge)
    netlist::NetId req_out;   ///< PO
    netlist::NetId ack_in;    ///< PO (to the source)
    MpStage stage;
    std::int64_t matched_delay_ps = 0;
};

/// Fig. 3a generalised to n bits. `delay_margin` is the relative safety
/// margin programmed into the matched delay (0.25 = 25% slack).
[[nodiscard]] MpAdder make_micropipeline_adder(std::size_t n_bits, double delay_margin = 0.25);

/// A QDI dual-rail multiplier (n x n -> 2n bits, n <= 3), built as one DIMS
/// block over the 2n input bits — the brute-force-but-delay-insensitive
/// construction (C-gate arity = 2n, so n = 3 uses the LE's full 6+feedback
/// reach). Strict completion included.
struct QdiMultiplier {
    netlist::Netlist nl;
    std::vector<DualRail> a;
    std::vector<DualRail> b;
    std::vector<DualRail> p;  ///< 2n product bits
    netlist::NetId done;
    MappingHints hints;
};

[[nodiscard]] QdiMultiplier make_qdi_multiplier(std::size_t n_bits);

}  // namespace afpga::asynclib
