#include "asynclib/oneofn.hpp"

#include "asynclib/dualrail.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"

namespace afpga::asynclib {

using base::bus_bit;
using base::check;
using netlist::CellFunc;
using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;

std::vector<OneOfFour> add_one_of_four_inputs(Netlist& nl, const std::string& name,
                                              std::size_t n) {
    std::vector<OneOfFour> digits;
    digits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        OneOfFour d;
        for (std::size_t s = 0; s < 4; ++s)
            d.rail[s] = nl.add_input(bus_bit(name, i) + ".r" + std::to_string(s));
        digits.push_back(d);
    }
    return digits;
}

Of4Result expand_one_of_four(Netlist& nl, const std::vector<TruthTable>& specs_bits,
                             const std::vector<OneOfFour>& inputs, const std::string& prefix) {
    const std::size_t nd = inputs.size();
    check(nd >= 1 && nd <= 3, "expand_one_of_four: 1..3 input digits supported");
    check(!specs_bits.empty() && specs_bits.size() % 2 == 0,
          "expand_one_of_four: need an even number of bit specs (2 per output digit)");
    for (const TruthTable& t : specs_bits)
        check(t.arity() == 2 * nd, "expand_one_of_four: spec arity mismatch");

    Of4Result res;
    const std::size_t n_combos = std::size_t{1} << (2 * nd);  // 4^nd symbol combinations

    // One C-gate per input-symbol combination (arity = number of digits).
    std::vector<NetId> minterm(n_combos);
    for (std::uint32_t m = 0; m < n_combos; ++m) {
        std::vector<NetId> rails;
        rails.reserve(nd);
        for (std::size_t i = 0; i < nd; ++i) {
            const std::uint32_t sym = (m >> (2 * i)) & 3u;
            rails.push_back(inputs[i].rail[sym]);
        }
        if (nd == 1) {
            minterm[m] = rails[0];
        } else {
            minterm[m] =
                nl.add_cell(CellFunc::C, prefix + ".min" + std::to_string(m), std::move(rails));
            ++res.num_minterm_gates;
        }
    }

    const std::size_t n_out_digits = specs_bits.size() / 2;
    for (std::size_t o = 0; o < n_out_digits; ++o) {
        OneOfFour out;
        for (std::uint32_t s = 0; s < 4; ++s) {
            std::vector<NetId> terms;
            for (std::uint32_t m = 0; m < n_combos; ++m) {
                const std::uint32_t bit0 = specs_bits[2 * o].eval(m) ? 1u : 0u;
                const std::uint32_t bit1 = specs_bits[2 * o + 1].eval(m) ? 1u : 0u;
                if ((bit1 << 1 | bit0) == s) terms.push_back(minterm[m]);
            }
            const std::string nm =
                prefix + ".d" + std::to_string(o) + ".r" + std::to_string(s);
            if (terms.empty()) {
                out.rail[s] = nl.add_cell(CellFunc::Const0, nm, {});
            } else {
                out.rail[s] = or_tree(nl, std::move(terms), nm, 4);
                ++res.num_or_gates;
            }
        }
        // Record the four rails pairwise so the mapper can co-locate them
        // two per LE (each LE hosts half a digit).
        res.hints.rail_pairs.emplace_back(out.rail[0], out.rail[1]);
        res.hints.rail_pairs.emplace_back(out.rail[2], out.rail[3]);
        res.outputs.push_back(out);
    }
    return res;
}

NetId add_of4_completion(Netlist& nl, const std::vector<OneOfFour>& digits,
                         const std::string& name) {
    check(!digits.empty(), "add_of4_completion: no digits");
    std::vector<NetId> valids;
    valids.reserve(digits.size());
    for (std::size_t i = 0; i < digits.size(); ++i) {
        valids.push_back(nl.add_cell(
            CellFunc::Or, name + ".v" + std::to_string(i),
            {digits[i].rail[0], digits[i].rail[1], digits[i].rail[2], digits[i].rail[3]}));
    }
    return c_tree(nl, std::move(valids), name + ".done", 4);
}

OneOfFour recode_dual_rail_pair(Netlist& nl, const DualRail& lo, const DualRail& hi,
                                const std::string& prefix) {
    OneOfFour d;
    // symbol s = hi<<1 | lo
    d.rail[0] = nl.add_cell(CellFunc::C, prefix + ".r0", {lo.f, hi.f});
    d.rail[1] = nl.add_cell(CellFunc::C, prefix + ".r1", {lo.t, hi.f});
    d.rail[2] = nl.add_cell(CellFunc::C, prefix + ".r2", {lo.f, hi.t});
    d.rail[3] = nl.add_cell(CellFunc::C, prefix + ".r3", {lo.t, hi.t});
    return d;
}

std::pair<DualRail, DualRail> decode_to_dual_rail(Netlist& nl, const OneOfFour& digit,
                                                  const std::string& prefix) {
    DualRail lo;
    DualRail hi;
    lo.t = nl.add_cell(CellFunc::Or, prefix + ".lo.t", {digit.rail[1], digit.rail[3]});
    lo.f = nl.add_cell(CellFunc::Or, prefix + ".lo.f", {digit.rail[0], digit.rail[2]});
    hi.t = nl.add_cell(CellFunc::Or, prefix + ".hi.t", {digit.rail[2], digit.rail[3]});
    hi.f = nl.add_cell(CellFunc::Or, prefix + ".hi.f", {digit.rail[0], digit.rail[1]});
    return {lo, hi};
}

}  // namespace afpga::asynclib
