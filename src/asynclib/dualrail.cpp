#include "asynclib/dualrail.hpp"

#include "base/check.hpp"
#include "base/strings.hpp"

namespace afpga::asynclib {

using base::bus_bit;
using base::check;
using netlist::CellFunc;
using netlist::NetId;

std::vector<DualRail> add_dual_rail_inputs(Netlist& nl, const std::string& name, std::size_t n) {
    std::vector<DualRail> bits;
    bits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DualRail b;
        b.t = nl.add_input(bus_bit(name, i) + ".t");
        b.f = nl.add_input(bus_bit(name, i) + ".f");
        bits.push_back(b);
    }
    return bits;
}

namespace {

/// Generic balanced reduction tree.
NetId reduce_tree(Netlist& nl, std::vector<NetId> nets, CellFunc func, const std::string& name,
                  std::size_t max_arity) {
    check(!nets.empty(), "reduce_tree: no inputs");
    check(max_arity >= 2 && max_arity <= 7, "reduce_tree: bad arity");
    if (nets.size() == 1) return nl.add_cell(CellFunc::Buf, name, {nets[0]});
    std::size_t level = 0;
    while (nets.size() > 1) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i < nets.size(); i += max_arity) {
            const std::size_t hi = std::min(i + max_arity, nets.size());
            if (hi - i == 1) {
                next.push_back(nets[i]);
                continue;
            }
            std::vector<NetId> group(nets.begin() + static_cast<std::ptrdiff_t>(i),
                                     nets.begin() + static_cast<std::ptrdiff_t>(hi));
            const std::string nm = nets.size() <= max_arity
                                       ? name
                                       : name + ".l" + std::to_string(level) + "_" +
                                             std::to_string(i / max_arity);
            next.push_back(nl.add_cell(func, nm, std::move(group)));
        }
        nets = std::move(next);
        ++level;
    }
    return nets[0];
}

}  // namespace

NetId or_tree(Netlist& nl, std::vector<NetId> nets, const std::string& name,
              std::size_t max_arity) {
    return reduce_tree(nl, std::move(nets), CellFunc::Or, name, max_arity);
}

NetId c_tree(Netlist& nl, std::vector<NetId> nets, const std::string& name,
             std::size_t max_arity) {
    return reduce_tree(nl, std::move(nets), CellFunc::C, name, max_arity);
}

NetId add_validity(Netlist& nl, const DualRail& sig, const std::string& name,
                   MappingHints* hints) {
    const NetId v = nl.add_cell(CellFunc::Or, name, {sig.t, sig.f});
    if (hints) hints->validity_nets.push_back(v);
    return v;
}

DimsResult expand_dims(Netlist& nl, const std::vector<TruthTable>& specs,
                       const std::vector<DualRail>& inputs, const std::string& prefix) {
    const std::size_t n = inputs.size();
    check(n >= 1 && n <= 7, "expand_dims: 1..7 inputs supported");
    check(!specs.empty(), "expand_dims: no outputs");
    for (const TruthTable& t : specs)
        check(t.arity() == n, "expand_dims: spec arity mismatch");

    DimsResult res;

    // Minterm C-gates, shared across outputs: every minterm is needed by
    // every output (it feeds either the 1-rail or the 0-rail OR plane).
    std::vector<NetId> minterm(std::size_t{1} << n);
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
        std::vector<NetId> rails;
        rails.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            rails.push_back(((m >> i) & 1u) ? inputs[i].t : inputs[i].f);
        if (n == 1) {
            minterm[m] = rails[0];  // a single rail is already the "join"
        } else {
            minterm[m] = nl.add_cell(CellFunc::C, prefix + ".min" + std::to_string(m),
                                     std::move(rails));
            ++res.num_minterm_gates;
        }
    }
    // Adjacent minterms (m, m^1) differ in one input bit only, so the pair
    // shares all rails but one — ideal co-tenants for an LE's two halves.
    for (std::uint32_t m = 0; n >= 2 && m + 1 < (1u << n); m += 2)
        res.hints.rail_pairs.emplace_back(minterm[m], minterm[m | 1]);
    res.minterms = minterm;

    // Per-output OR planes.
    for (std::size_t o = 0; o < specs.size(); ++o) {
        std::vector<NetId> ones;
        std::vector<NetId> zeros;
        for (std::uint32_t m = 0; m < (1u << n); ++m)
            (specs[o].eval(m) ? ones : zeros).push_back(minterm[m]);
        const std::string base = prefix + ".o" + std::to_string(o);
        DualRail out;
        // A constant spec has an empty rail; tie it to const-0 (never fires).
        out.t = ones.empty() ? nl.add_cell(CellFunc::Const0, base + ".t", {})
                             : or_tree(nl, std::move(ones), base + ".t", 4);
        out.f = zeros.empty() ? nl.add_cell(CellFunc::Const0, base + ".f", {})
                              : or_tree(nl, std::move(zeros), base + ".f", 4);
        res.num_or_gates += (ones.empty() ? 0 : 1) + (zeros.empty() ? 0 : 1);
        res.hints.rail_pairs.emplace_back(out.t, out.f);
        res.outputs.push_back(out);
    }
    return res;
}

NetId add_completion_detector(Netlist& nl, const std::vector<DualRail>& signals,
                              const std::string& name, MappingHints* hints) {
    check(!signals.empty(), "add_completion_detector: no signals");
    std::vector<NetId> valids;
    valids.reserve(signals.size());
    MappingHints local;
    for (std::size_t i = 0; i < signals.size(); ++i)
        valids.push_back(add_validity(nl, signals[i], name + ".v" + std::to_string(i), &local));
    const NetId done = c_tree(nl, std::move(valids), name + ".done", 4);
    if (hints) hints->merge(local);
    return done;
}

NetId add_dims_group_completion(Netlist& nl, DimsResult& dims, const std::string& name) {
    check(dims.minterms.size() >= 4, "add_dims_group_completion: need >= 2 input variables");
    std::vector<NetId> partials;
    for (std::size_t m = 0; m + 1 < dims.minterms.size(); m += 2) {
        const NetId v = nl.add_cell(CellFunc::Or, name + ".pv" + std::to_string(m / 2),
                                    {dims.minterms[m], dims.minterms[m + 1]});
        dims.hints.validity_nets.push_back(v);
        partials.push_back(v);
    }
    if (dims.minterms.size() % 2 != 0) partials.push_back(dims.minterms.back());
    return or_tree(nl, std::move(partials), name + ".v", 4);
}

NetId add_dims_completion(Netlist& nl, DimsResult& dims, const std::string& name) {
    std::vector<NetId> join;
    join.push_back(add_dims_group_completion(nl, dims, name));
    for (std::size_t o = 0; o < dims.outputs.size(); ++o)
        join.push_back(nl.add_cell(CellFunc::Or, name + ".ov" + std::to_string(o),
                                   {dims.outputs[o].t, dims.outputs[o].f}));
    return c_tree(nl, std::move(join), name + ".done", 4);
}

WchbStage add_wchb_stage(Netlist& nl, const std::vector<DualRail>& in, NetId ack_from_next,
                         const std::string& prefix) {
    check(!in.empty(), "add_wchb_stage: empty word");
    WchbStage st;
    // Common enable: next stage empty (ack low) -> enable high -> accept token.
    const NetId en = nl.add_cell(CellFunc::Inv, prefix + ".en", {ack_from_next});
    st.en_cell = nl.driver_of(en);
    st.out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        DualRail o;
        o.t = nl.add_cell(CellFunc::C, base::bus_bit(prefix + ".q", i) + ".t", {in[i].t, en});
        o.f = nl.add_cell(CellFunc::C, base::bus_bit(prefix + ".q", i) + ".f", {in[i].f, en});
        st.hints.rail_pairs.emplace_back(o.t, o.f);
        st.out.push_back(o);
    }
    st.ack_to_prev = add_completion_detector(nl, st.out, prefix + ".cd", &st.hints);
    return st;
}

}  // namespace afpga::asynclib
