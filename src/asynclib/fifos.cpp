#include "asynclib/fifos.hpp"

#include "base/check.hpp"
#include "base/strings.hpp"

namespace afpga::asynclib {

using base::check;
using netlist::CellFunc;
using netlist::NetId;

WchbFifo make_wchb_fifo(std::size_t n_bits, std::size_t n_stages) {
    check(n_bits >= 1 && n_stages >= 1, "make_wchb_fifo: bad shape");
    WchbFifo f;
    f.nl = netlist::Netlist("wchb_fifo_" + std::to_string(n_bits) + "x" +
                            std::to_string(n_stages));
    f.in = add_dual_rail_inputs(f.nl, "in", n_bits);
    f.ack_out = f.nl.add_input("ack_out");

    // Acknowledges flow backwards: build each stage against a placeholder,
    // then rewire every enable to the completion of the following stage.
    const NetId placeholder = f.nl.add_cell(CellFunc::Const0, "ack_placeholder", {});
    std::vector<DualRail> word = f.in;
    for (std::size_t s = 0; s < n_stages; ++s) {
        WchbStage st = add_wchb_stage(f.nl, word, placeholder, "st" + std::to_string(s));
        word = st.out;
        f.hints.merge(st.hints);
        f.stages.push_back(std::move(st));
    }
    for (std::size_t s = 0; s < n_stages; ++s) {
        const NetId ack_next =
            (s + 1 < n_stages) ? f.stages[s + 1].ack_to_prev : f.ack_out;
        f.nl.rewire_input(f.stages[s].en_cell, 0, ack_next);
    }

    f.out = word;
    f.ack_in = f.stages.front().ack_to_prev;
    for (std::size_t i = 0; i < n_bits; ++i) {
        f.nl.add_output(base::bus_bit("out", i) + ".t", f.out[i].t);
        f.nl.add_output(base::bus_bit("out", i) + ".f", f.out[i].f);
    }
    f.nl.add_output("ack_in", f.ack_in);
    f.nl.validate();
    return f;
}

MpFifo make_micropipeline_fifo(std::size_t n_bits, std::size_t n_stages, double delay_margin) {
    check(n_bits >= 1 && n_stages >= 1, "make_micropipeline_fifo: bad shape");
    MpFifo f;
    f.nl = netlist::Netlist("mp_fifo_" + std::to_string(n_bits) + "x" +
                            std::to_string(n_stages));
    for (std::size_t i = 0; i < n_bits; ++i) f.in.push_back(f.nl.add_input(base::bus_bit("in", i)));
    f.req_in = f.nl.add_input("req_in");
    f.ack_out = f.nl.add_input("ack_out");

    const NetId placeholder = f.nl.add_cell(CellFunc::Const0, "ack_placeholder", {});
    std::vector<NetId> word = f.in;
    NetId req = f.req_in;
    for (std::size_t s = 0; s < n_stages; ++s) {
        MpStage st = add_micropipeline_stage(f.nl, word, req, placeholder,
                                             "st" + std::to_string(s));
        word = st.q;
        req = st.req_out;
        f.stages.push_back(std::move(st));
    }
    for (std::size_t s = 0; s < n_stages; ++s) {
        const NetId ack_next = (s + 1 < n_stages) ? f.stages[s + 1].ack_to_prev : f.ack_out;
        f.nl.rewire_input(f.stages[s].nack_cell, 0, ack_next);
    }
    // No logic between stages: the matched delay only needs to cover the
    // latch propagation to the next stage's D inputs.
    for (std::size_t s = 0; s < n_stages; ++s) {
        const std::vector<NetId> endpoints = f.stages[s].q;
        tune_matched_delay(f.nl, f.stages[s], endpoints, delay_margin);
    }

    f.out = word;
    f.req_out = req;
    f.ack_in = f.stages.front().ack_to_prev;
    for (std::size_t i = 0; i < n_bits; ++i) f.nl.add_output(base::bus_bit("out", i), f.out[i]);
    f.nl.add_output("req_out", f.req_out);
    f.nl.add_output("ack_in", f.ack_in);
    f.nl.validate();
    return f;
}

MousetrapFifo make_mousetrap_fifo(std::size_t n_bits, std::size_t n_stages,
                                  double delay_margin) {
    check(n_bits >= 1 && n_stages >= 1, "make_mousetrap_fifo: bad shape");
    MousetrapFifo f;
    f.nl = netlist::Netlist("mt_fifo_" + std::to_string(n_bits) + "x" +
                            std::to_string(n_stages));
    for (std::size_t i = 0; i < n_bits; ++i)
        f.in.push_back(f.nl.add_input(base::bus_bit("in", i)));
    f.req_in = f.nl.add_input("req_in");
    f.ack_out = f.nl.add_input("ack_out");

    const NetId placeholder = f.nl.add_cell(CellFunc::Const0, "ack_placeholder", {});
    std::vector<NetId> word = f.in;
    NetId req = f.req_in;
    for (std::size_t s = 0; s < n_stages; ++s) {
        MousetrapStage st =
            add_mousetrap_stage(f.nl, word, req, placeholder, "st" + std::to_string(s));
        word = st.q;
        req = st.req_out;
        f.stages.push_back(std::move(st));
    }
    // Acks flow backwards: stage s listens to the NEXT stage's captured
    // phase (its ack_to_prev), the last stage to the environment.
    for (std::size_t s = 0; s < n_stages; ++s) {
        const NetId ack_next = (s + 1 < n_stages) ? f.stages[s + 1].ack_to_prev : f.ack_out;
        f.nl.rewire_input(f.stages[s].en_cell, 1, ack_next);
    }
    for (std::size_t s = 0; s < n_stages; ++s)
        tune_mousetrap_delay(f.nl, f.stages[s], f.stages[s].q, delay_margin);

    f.out = word;
    f.req_out = req;
    f.ack_in = f.stages.front().ack_to_prev;
    for (std::size_t i = 0; i < n_bits; ++i) f.nl.add_output(base::bus_bit("out", i), f.out[i]);
    f.nl.add_output("req_out", f.req_out);
    f.nl.add_output("ack_in", f.ack_in);
    f.nl.validate();
    return f;
}

}  // namespace afpga::asynclib
