// Linear pipeline (FIFO) generators used by the throughput experiments:
// WCHB dual-rail FIFOs and bundled-data micropipeline FIFOs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asynclib/dualrail.hpp"
#include "asynclib/micropipeline.hpp"
#include "asynclib/styles.hpp"

namespace afpga::asynclib {

/// A dual-rail WCHB FIFO.
/// Primary inputs: in rails + ack_out; primary outputs: out rails + ack_in.
struct WchbFifo {
    netlist::Netlist nl;
    std::vector<DualRail> in;
    std::vector<DualRail> out;
    netlist::NetId ack_in;   ///< PO: acknowledge to the source
    netlist::NetId ack_out;  ///< PI: acknowledge from the sink
    std::vector<WchbStage> stages;
    MappingHints hints;
};

[[nodiscard]] WchbFifo make_wchb_fifo(std::size_t n_bits, std::size_t n_stages);

/// A bundled-data micropipeline FIFO (no logic between stages).
/// Primary inputs: data + req_in + ack_out; outputs: data + req_out + ack_in.
struct MpFifo {
    netlist::Netlist nl;
    std::vector<netlist::NetId> in;
    std::vector<netlist::NetId> out;
    netlist::NetId req_in;   ///< PI
    netlist::NetId ack_out;  ///< PI
    netlist::NetId req_out;  ///< PO
    netlist::NetId ack_in;   ///< PO
    std::vector<MpStage> stages;
};

[[nodiscard]] MpFifo make_micropipeline_fifo(std::size_t n_bits, std::size_t n_stages,
                                             double delay_margin = 0.25);

/// A 2-phase MOUSETRAP FIFO (transition signalling — the third style).
/// Primary inputs: data + req_in + ack_out; outputs: data + req_out + ack_in.
struct MousetrapFifo {
    netlist::Netlist nl;
    std::vector<netlist::NetId> in;
    std::vector<netlist::NetId> out;
    netlist::NetId req_in;   ///< PI (toggles per token)
    netlist::NetId ack_out;  ///< PI (sink's toggle acknowledge)
    netlist::NetId req_out;  ///< PO
    netlist::NetId ack_in;   ///< PO
    std::vector<MousetrapStage> stages;
};

[[nodiscard]] MousetrapFifo make_mousetrap_fifo(std::size_t n_bits, std::size_t n_stages,
                                                double delay_margin = 0.25);

}  // namespace afpga::asynclib
