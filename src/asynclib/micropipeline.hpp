// Micropipeline (4-phase bundled-data) circuit generation.
//
// The style that exercises the PLB's Programmable Delay Element: data travels
// on plain single-rail wires, validity is signalled by a request whose path
// carries a matched delay at least as long as the datapath (the "bundling
// constraint"). Latch controllers are Muller-C based half-buffers
// (Sparsø & Furber, ch. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "netlist/netlist.hpp"

namespace afpga::asynclib {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

/// One bundled-data pipeline stage.
///
/// Handshake structure (4-phase RTZ, normally-transparent latches):
///   c        = C2(req_in, INV(ack_from_next))   -- stage state
///   ack_prev = c                                -- to the upstream stage
///   latch_en = INV(c)                           -- latches close on capture
///   req_out  = DELAY(c)                         -- matched delay (the PDE)
struct MpStage {
    std::vector<NetId> q;   ///< latch outputs (stage-local data)
    NetId c;                ///< controller state net
    NetId ack_to_prev;      ///< equals c (half-buffer)
    NetId req_out;          ///< delayed request to the next stage
    CellId delay_cell;      ///< the matched-delay cell, for later tuning / PDE binding
    CellId nack_cell;       ///< the INV on ack_from_next (pin 0 rewirable)
    std::vector<CellId> latch_cells;
};

/// Append one latch+controller stage capturing `data_in` on `req_in`.
[[nodiscard]] MpStage add_micropipeline_stage(Netlist& nl, const std::vector<NetId>& data_in,
                                              NetId req_in, NetId ack_from_next,
                                              const std::string& prefix);

/// Retune a stage's matched delay so that it covers the longest static path
/// from the stage's latch outputs to `endpoints` (typically the next stage's
/// latch data inputs), times (1 + margin). Uses intrinsic cell delays plus
/// `extra_net_delay_ps` per net hop; the CAD flow re-runs this after routing
/// with real wire delays. Returns the delay installed (ps).
std::int64_t tune_matched_delay(Netlist& nl, const MpStage& stage,
                                const std::vector<NetId>& endpoints, double margin,
                                std::int64_t extra_net_delay_ps = 0);

/// One 2-phase (transition-signalling) bundled-data stage — MOUSETRAP
/// (Singh & Nowick). Every transition of req is a token; the latch bank is
/// normally transparent and snaps shut the instant a token is captured:
///   q_i      = LATCH(d_i, en)
///   req_l    = LATCH(req_in, en)     -- the captured phase bit
///   en       = XNOR(req_l, ack_from_next)
///   ack_prev = req_l
///   req_out  = DELAY(req_l)          -- matched delay (the PDE)
struct MousetrapStage {
    std::vector<NetId> q;
    NetId req_latched;   ///< captured phase (= ack_to_prev)
    NetId ack_to_prev;
    NetId req_out;       ///< delayed request to the next stage
    NetId en;
    CellId delay_cell;
    CellId en_cell;      ///< the XNOR; pin 1 (ack side) is rewirable
    std::vector<CellId> latch_cells;
};

[[nodiscard]] MousetrapStage add_mousetrap_stage(Netlist& nl,
                                                 const std::vector<NetId>& data_in,
                                                 NetId req_in, NetId ack_from_next,
                                                 const std::string& prefix);

/// Retune a MOUSETRAP stage's matched delay (same contract as the 4-phase
/// version).
std::int64_t tune_mousetrap_delay(Netlist& nl, const MousetrapStage& stage,
                                  const std::vector<NetId>& endpoints, double margin,
                                  std::int64_t extra_net_delay_ps = 0);

}  // namespace afpga::asynclib
