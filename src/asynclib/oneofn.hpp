// 1-of-4 (multi-rail) QDI circuit generation — the encoding the LE's
// multi-output LUT is explicitly designed to serve ("1 of N encoding needs
// to be supported at the hardware level to have the best PLB filling ratio").
#pragma once

#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "netlist/netlist.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::asynclib {

/// Create `n` 1-of-4 primary-input digits named `<name>[i].r0..r3`.
[[nodiscard]] std::vector<OneOfFour> add_one_of_four_inputs(netlist::Netlist& nl,
                                                            const std::string& name,
                                                            std::size_t n);

/// Result of a 1-of-4 minterm expansion.
struct Of4Result {
    std::vector<OneOfFour> outputs;  ///< one digit per output digit of the spec
    MappingHints hints;              ///< rail quadruples recorded pairwise
    std::size_t num_minterm_gates = 0;
    std::size_t num_or_gates = 0;
};

/// Minterm synthesis for 1-of-4 digits (the radix-4 analogue of DIMS).
///
/// `spec` maps input digit symbols to output digit symbols: it is evaluated
/// bitwise — input digit i contributes bits (2i, 2i+1) of the assignment,
/// output digit o reads bits (2o, 2o+1) of the result. A C-gate joins one
/// rail of every input digit per input-symbol combination; each output rail
/// ORs the minterms mapping to its symbol.
///
/// `specs_bits` holds 2*num_out_digits truth tables over 2*inputs.size()
/// boolean variables (LSB-first digit packing).
[[nodiscard]] Of4Result expand_one_of_four(netlist::Netlist& nl,
                                           const std::vector<netlist::TruthTable>& specs_bits,
                                           const std::vector<OneOfFour>& inputs,
                                           const std::string& prefix);

/// Completion detector over 1-of-4 digits (per-digit OR4, then C-tree).
[[nodiscard]] netlist::NetId add_of4_completion(netlist::Netlist& nl,
                                                const std::vector<OneOfFour>& digits,
                                                const std::string& name);

/// Dual-rail -> 1-of-4 recoder for two dual-rail bits (r[s] = C2 join of the
/// rails encoding symbol s).
[[nodiscard]] OneOfFour recode_dual_rail_pair(netlist::Netlist& nl, const DualRail& lo,
                                              const DualRail& hi, const std::string& prefix);

/// 1-of-4 -> dual-rail decoder (each output rail is an OR of two symbol rails).
[[nodiscard]] std::pair<DualRail, DualRail> decode_to_dual_rail(netlist::Netlist& nl,
                                                                const OneOfFour& digit,
                                                                const std::string& prefix);

}  // namespace afpga::asynclib
