#include "asynclib/styles.hpp"

namespace afpga::asynclib {

std::string to_string(Protocol p) {
    switch (p) {
        case Protocol::FourPhase: return "4-phase";
        case Protocol::TwoPhase: return "2-phase";
    }
    return "?";
}

std::string to_string(Encoding e) {
    switch (e) {
        case Encoding::BundledData: return "bundled-data";
        case Encoding::DualRail: return "dual-rail";
        case Encoding::OneOfFour: return "1-of-4";
    }
    return "?";
}

std::string to_string(TimingModel t) {
    switch (t) {
        case TimingModel::DelayInsensitive: return "DI";
        case TimingModel::QuasiDelayInsensitive: return "QDI";
        case TimingModel::BundledDataAssumption: return "bundled";
    }
    return "?";
}

const std::vector<Style>& standard_styles() {
    static const std::vector<Style> kStyles = {
        {"qdi-dual-rail", Protocol::FourPhase, Encoding::DualRail,
         TimingModel::QuasiDelayInsensitive},
        {"qdi-1of4", Protocol::FourPhase, Encoding::OneOfFour,
         TimingModel::QuasiDelayInsensitive},
        {"micropipeline", Protocol::FourPhase, Encoding::BundledData,
         TimingModel::BundledDataAssumption},
        {"mousetrap-2ph", Protocol::TwoPhase, Encoding::BundledData,
         TimingModel::BundledDataAssumption},
    };
    return kStyles;
}

void MappingHints::merge(const MappingHints& other) {
    rail_pairs.insert(rail_pairs.end(), other.rail_pairs.begin(), other.rail_pairs.end());
    validity_nets.insert(validity_nets.end(), other.validity_nets.begin(),
                         other.validity_nets.end());
}

}  // namespace afpga::asynclib
