// QDI dual-rail circuit generation: DIMS function expansion, completion
// detection and WCHB pipeline buffers (4-phase return-to-zero).
#pragma once

#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "netlist/netlist.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::asynclib {

using netlist::Netlist;
using netlist::TruthTable;

/// Create `n` dual-rail primary-input bits named `<name>[i].t/.f`.
[[nodiscard]] std::vector<DualRail> add_dual_rail_inputs(Netlist& nl, const std::string& name,
                                                         std::size_t n);

/// Balanced OR tree over `nets` (max_arity-ary); returns the root net.
/// A single input is passed through a BUF so the result is a fresh net.
[[nodiscard]] netlist::NetId or_tree(Netlist& nl, std::vector<netlist::NetId> nets,
                                     const std::string& name, std::size_t max_arity = 4);

/// Balanced Muller-C tree (joins when all inputs agree) — the canonical
/// completion-detection combiner.
[[nodiscard]] netlist::NetId c_tree(Netlist& nl, std::vector<netlist::NetId> nets,
                                    const std::string& name, std::size_t max_arity = 4);

/// Per-signal validity: OR of the two rails (fires on valid, clears on
/// spacer). Recorded in `hints` as a validity net if provided.
[[nodiscard]] netlist::NetId add_validity(Netlist& nl, const DualRail& sig,
                                          const std::string& name,
                                          MappingHints* hints = nullptr);

/// Result of a DIMS expansion.
struct DimsResult {
    std::vector<DualRail> outputs;   ///< one dual-rail signal per spec output
    MappingHints hints;              ///< rail pairs for the mapper
    std::vector<netlist::NetId> minterms;  ///< the shared minterm join nets
    std::size_t num_minterm_gates = 0;
    std::size_t num_or_gates = 0;
};

/// Delay-Insensitive Minterm Synthesis (the construction behind Fig. 3b).
///
/// For every input assignment `m` a Muller C-gate joins the corresponding
/// input rails (minterm becomes valid only when ALL inputs are valid and
/// match `m`, and clears only when ALL inputs are back to spacer — this is
/// what makes the block QDI). Each output's 1-rail ORs the minterms where
/// the spec is 1; the 0-rail ORs the rest. Minterm gates are shared between
/// outputs.
///
/// `specs` are functions over the same `inputs.size()` variables
/// (2..7 supported: the C-gate arity equals the input count).
[[nodiscard]] DimsResult expand_dims(Netlist& nl, const std::vector<TruthTable>& specs,
                                     const std::vector<DualRail>& inputs,
                                     const std::string& prefix);

/// Completion detector over a set of dual-rail signals: per-signal validity
/// ORs combined by a C-tree. Fires when every signal is valid; clears when
/// every signal is back to spacer.
[[nodiscard]] netlist::NetId add_completion_detector(Netlist& nl,
                                                     const std::vector<DualRail>& signals,
                                                     const std::string& name,
                                                     MappingHints* hints = nullptr);

/// Group validity of a DIMS block's minterm code: the minterms form a
/// 1-of-2^n code (exactly one fires per token), so their OR signals input
/// arrival. Built as per-pair OR2s (tagged as validity functions so the
/// mapper drops them into the LUT2 slot of the LE hosting that minterm pair —
/// the paper's intended LUT2 use) followed by an OR tree. Requires n >= 2.
///
/// NOTE: this certifies that the minterm layer fired, NOT that the OR planes
/// behind it have settled — on its own it is a timing assumption, not QDI.
/// Use add_dims_completion for a strict completion signal.
[[nodiscard]] netlist::NetId add_dims_group_completion(Netlist& nl, DimsResult& dims,
                                                       const std::string& name);

/// Strict (weak-condition) completion for a DIMS block: C-joins the group
/// validity (which fills the minterm LEs' LUT2 slots) with the per-output
/// rail validities, so `done` rises only after every output rail has settled
/// and falls only after every rail returned to spacer. QDI-safe under any
/// routing skew.
[[nodiscard]] netlist::NetId add_dims_completion(Netlist& nl, DimsResult& dims,
                                                 const std::string& name);

/// One WCHB (weak-conditioned half buffer) pipeline stage for a dual-rail
/// word. `en` semantics: out rails join input rails with the common enable
/// (the inverted acknowledge from the next stage); ack to the previous stage
/// is the stage's own completion.
struct WchbStage {
    std::vector<DualRail> out;
    netlist::NetId ack_to_prev;  ///< completion of this stage's latch
    netlist::CellId en_cell;     ///< the INV on ack_from_next (pin 0 rewirable)
    MappingHints hints;
};

/// Build a WCHB stage: `ack_from_next` is the downstream acknowledge
/// (active-high: raised when the next stage has consumed the token).
[[nodiscard]] WchbStage add_wchb_stage(Netlist& nl, const std::vector<DualRail>& in,
                                       netlist::NetId ack_from_next, const std::string& prefix);

}  // namespace afpga::asynclib
