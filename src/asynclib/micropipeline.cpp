#include "asynclib/micropipeline.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/strings.hpp"
#include "netlist/analyze.hpp"

namespace afpga::asynclib {

using base::bus_bit;
using base::check;
using netlist::CellFunc;

MpStage add_micropipeline_stage(Netlist& nl, const std::vector<NetId>& data_in, NetId req_in,
                                NetId ack_from_next, const std::string& prefix) {
    check(!data_in.empty(), "add_micropipeline_stage: no data");
    MpStage st;
    const NetId nack = nl.add_cell(CellFunc::Inv, prefix + ".nack", {ack_from_next});
    st.nack_cell = nl.driver_of(nack);
    st.c = nl.add_cell(CellFunc::C, prefix + ".c", {req_in, nack});
    st.ack_to_prev = st.c;
    const NetId en = nl.add_cell(CellFunc::Inv, prefix + ".en", {st.c});
    st.q.reserve(data_in.size());
    for (std::size_t i = 0; i < data_in.size(); ++i) {
        const NetId q = nl.add_cell(CellFunc::Latch, bus_bit(prefix + ".q", i), {data_in[i], en});
        st.latch_cells.push_back(nl.driver_of(q));
        st.q.push_back(q);
    }
    st.req_out = nl.add_cell(CellFunc::Delay, prefix + ".dly", {st.c});
    st.delay_cell = nl.driver_of(st.req_out);
    return st;
}

MousetrapStage add_mousetrap_stage(Netlist& nl, const std::vector<NetId>& data_in,
                                   NetId req_in, NetId ack_from_next,
                                   const std::string& prefix) {
    check(!data_in.empty(), "add_mousetrap_stage: no data");
    MousetrapStage st;
    // Latch the phase bit first with a placeholder enable, then build the
    // XNOR from the latched phase and rewire the latches onto it (the enable
    // depends on its own latch's output — the mousetrap's snap).
    const NetId placeholder = nl.add_cell(CellFunc::Const1, prefix + ".en0", {});
    st.req_latched = nl.add_cell(CellFunc::Latch, prefix + ".rl", {req_in, placeholder});
    st.latch_cells.push_back(nl.driver_of(st.req_latched));
    st.q.reserve(data_in.size());
    for (std::size_t i = 0; i < data_in.size(); ++i) {
        const NetId q =
            nl.add_cell(CellFunc::Latch, bus_bit(prefix + ".q", i), {data_in[i], placeholder});
        st.latch_cells.push_back(nl.driver_of(q));
        st.q.push_back(q);
    }
    st.en = nl.add_cell(CellFunc::Xnor, prefix + ".en", {st.req_latched, ack_from_next});
    st.en_cell = nl.driver_of(st.en);
    for (CellId latch : st.latch_cells) nl.rewire_input(latch, 1, st.en);
    st.ack_to_prev = st.req_latched;
    st.req_out = nl.add_cell(CellFunc::Delay, prefix + ".dly", {st.req_latched});
    st.delay_cell = nl.driver_of(st.req_out);
    return st;
}

std::int64_t tune_mousetrap_delay(Netlist& nl, const MousetrapStage& stage,
                                  const std::vector<NetId>& endpoints, double margin,
                                  std::int64_t extra_net_delay_ps) {
    check(margin >= 0.0, "tune_mousetrap_delay: negative margin");
    const auto arrival = netlist::net_arrival_times(nl, extra_net_delay_ps);
    std::int64_t worst = 0;
    for (NetId e : endpoints) {
        check(e.valid() && e.index() < arrival.size(), "tune_mousetrap_delay: bad endpoint");
        worst = std::max(worst, arrival[e.index()]);
    }
    const auto delay = static_cast<std::int64_t>(static_cast<double>(worst) * (1.0 + margin));
    nl.set_cell_delay(stage.delay_cell, std::max<std::int64_t>(delay, 1));
    return std::max<std::int64_t>(delay, 1);
}

std::int64_t tune_matched_delay(Netlist& nl, const MpStage& stage,
                                const std::vector<NetId>& endpoints, double margin,
                                std::int64_t extra_net_delay_ps) {
    check(margin >= 0.0, "tune_matched_delay: negative margin");
    // Arrival analysis launches from sequential outputs (the latches) at t=0;
    // the worst endpoint arrival is the datapath delay the request must cover.
    const auto arrival = netlist::net_arrival_times(nl, extra_net_delay_ps);
    std::int64_t worst = 0;
    for (NetId e : endpoints) {
        check(e.valid() && e.index() < arrival.size(), "tune_matched_delay: bad endpoint");
        worst = std::max(worst, arrival[e.index()]);
    }
    // The request leaves through the controller's C-gate as well; the matched
    // delay only needs to cover the datapath *beyond* what the control path
    // already spends, but the conservative choice (full datapath + margin)
    // is what a designer would program into the PDE.
    const auto delay = static_cast<std::int64_t>(static_cast<double>(worst) * (1.0 + margin));
    nl.set_cell_delay(stage.delay_cell, std::max<std::int64_t>(delay, 1));
    return std::max<std::int64_t>(delay, 1);
}

}  // namespace afpga::asynclib
