#include "asynclib/adders.hpp"

#include "base/check.hpp"
#include "base/strings.hpp"

namespace afpga::asynclib {

using base::bus_bit;
using base::check;
using netlist::CellFunc;
using netlist::NetId;
using netlist::TruthTable;

TruthTable full_adder_sum_tt() {
    return TruthTable::from_function(
        3, [](std::uint32_t m) { return (((m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1)) & 1) != 0; });
}

TruthTable full_adder_cout_tt() {
    return TruthTable::from_function(
        3, [](std::uint32_t m) { return ((m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1)) >= 2; });
}

QdiAdder make_qdi_adder(std::size_t n_bits, QdiCompletion completion) {
    check(n_bits >= 1, "make_qdi_adder: need at least 1 bit");
    QdiAdder r;
    r.nl = netlist::Netlist("qdi_adder" + std::to_string(n_bits));
    r.a = add_dual_rail_inputs(r.nl, "a", n_bits);
    r.b = add_dual_rail_inputs(r.nl, "b", n_bits);
    DualRail carry;
    carry.t = r.nl.add_input("cin.t");
    carry.f = r.nl.add_input("cin.f");
    r.cin = carry;

    std::vector<netlist::NetId> group_valids;
    const std::vector<TruthTable> specs = {full_adder_sum_tt(), full_adder_cout_tt()};
    for (std::size_t i = 0; i < n_bits; ++i) {
        DimsResult fa = expand_dims(r.nl, specs, {r.a[i], r.b[i], carry},
                                    "fa" + std::to_string(i));
        r.sum.push_back(fa.outputs[0]);
        carry = fa.outputs[1];
        if (completion == QdiCompletion::GroupValidity)
            group_valids.push_back(
                add_dims_group_completion(r.nl, fa, "fa" + std::to_string(i)));
        r.hints.merge(fa.hints);
        r.nl.set_net_name(fa.outputs[0].t, bus_bit("sum", i) + ".t");
        r.nl.set_net_name(fa.outputs[0].f, bus_bit("sum", i) + ".f");
    }
    r.cout = carry;
    r.nl.set_net_name(r.cout.t, "cout.t");
    r.nl.set_net_name(r.cout.f, "cout.f");

    for (std::size_t i = 0; i < n_bits; ++i) {
        r.nl.add_output(bus_bit("sum", i) + ".t", r.sum[i].t);
        r.nl.add_output(bus_bit("sum", i) + ".f", r.sum[i].f);
    }
    r.nl.add_output("cout.t", r.cout.t);
    r.nl.add_output("cout.f", r.cout.f);

    switch (completion) {
        case QdiCompletion::GroupValidity: {
            // Strict weak-condition completion: join the per-FA minterm group
            // validities (which fill the minterm LEs' LUT2 slots) with the
            // output-rail validities, so done certifies that every OR plane
            // has actually settled — robust against any routing skew.
            std::vector<netlist::NetId> join = std::move(group_valids);
            for (std::size_t i = 0; i < n_bits; ++i)
                join.push_back(r.nl.add_cell(CellFunc::Or, "cd.ov" + std::to_string(i),
                                             {r.sum[i].t, r.sum[i].f}));
            join.push_back(r.nl.add_cell(CellFunc::Or, "cd.ovc", {r.cout.t, r.cout.f}));
            r.done = c_tree(r.nl, std::move(join), "cd.done", 4);
            r.nl.add_output("done", r.done);
            break;
        }
        case QdiCompletion::OutputRails: {
            std::vector<DualRail> outs = r.sum;
            outs.push_back(r.cout);
            r.done = add_completion_detector(r.nl, outs, "cd", &r.hints);
            r.nl.add_output("done", r.done);
            break;
        }
        case QdiCompletion::None: break;
    }
    r.nl.validate();
    return r;
}

MpAdder make_micropipeline_adder(std::size_t n_bits, double delay_margin) {
    check(n_bits >= 1, "make_micropipeline_adder: need at least 1 bit");
    MpAdder r;
    r.nl = netlist::Netlist("mp_adder" + std::to_string(n_bits));
    for (std::size_t i = 0; i < n_bits; ++i) r.a.push_back(r.nl.add_input(bus_bit("a", i)));
    for (std::size_t i = 0; i < n_bits; ++i) r.b.push_back(r.nl.add_input(bus_bit("b", i)));
    r.cin = r.nl.add_input("cin");
    r.req_in = r.nl.add_input("req_in");
    r.ack_out = r.nl.add_input("ack_out");

    // Stage latches bundle all data wires of the input channel.
    std::vector<NetId> data = r.a;
    data.insert(data.end(), r.b.begin(), r.b.end());
    data.push_back(r.cin);
    r.stage = add_micropipeline_stage(r.nl, data, r.req_in, r.ack_out, "st0");

    // Datapath: ripple-carry adder on the latched values (Fig. 3a per bit:
    // sum = XOR3, cout = MAJ3).
    NetId carry = r.stage.q[2 * n_bits];  // latched cin
    for (std::size_t i = 0; i < n_bits; ++i) {
        const NetId qa = r.stage.q[i];
        const NetId qb = r.stage.q[n_bits + i];
        const NetId s =
            r.nl.add_cell(CellFunc::Xor, bus_bit("sum", i), {qa, qb, carry});
        carry = r.nl.add_cell(CellFunc::Maj, bus_bit("cy", i), {qa, qb, carry});
        r.sum.push_back(s);
    }
    r.cout = carry;
    r.nl.set_net_name(r.cout, "cout");

    std::vector<NetId> endpoints = r.sum;
    endpoints.push_back(r.cout);
    r.matched_delay_ps = tune_matched_delay(r.nl, r.stage, endpoints, delay_margin);

    for (std::size_t i = 0; i < n_bits; ++i) r.nl.add_output(bus_bit("sum", i), r.sum[i]);
    r.nl.add_output("cout", r.cout);
    r.nl.add_output("req_out", r.stage.req_out);
    r.nl.add_output("ack_in", r.stage.ack_to_prev);
    r.req_out = r.stage.req_out;
    r.ack_in = r.stage.ack_to_prev;
    r.nl.validate();
    return r;
}

QdiMultiplier make_qdi_multiplier(std::size_t n_bits) {
    check(n_bits >= 1 && n_bits <= 3, "make_qdi_multiplier: 1..3 bits supported");
    QdiMultiplier r;
    r.nl = netlist::Netlist("qdi_mul" + std::to_string(n_bits));
    r.a = add_dual_rail_inputs(r.nl, "a", n_bits);
    r.b = add_dual_rail_inputs(r.nl, "b", n_bits);

    std::vector<DualRail> ins = r.a;
    ins.insert(ins.end(), r.b.begin(), r.b.end());
    std::vector<TruthTable> specs;
    for (std::size_t o = 0; o < 2 * n_bits; ++o) {
        specs.push_back(TruthTable::from_function(2 * n_bits, [&](std::uint32_t m) {
            const std::uint32_t a = m & ((1u << n_bits) - 1);
            const std::uint32_t b = (m >> n_bits) & ((1u << n_bits) - 1);
            return ((a * b) >> o) & 1u;
        }));
    }
    DimsResult res = expand_dims(r.nl, specs, ins, "mul");
    r.p = res.outputs;
    r.hints.merge(res.hints);
    r.done = add_dims_completion(r.nl, res, "cd");
    r.hints.merge(res.hints);
    for (std::size_t o = 0; o < 2 * n_bits; ++o) {
        r.nl.set_net_name(r.p[o].t, bus_bit("p", o) + ".t");
        r.nl.set_net_name(r.p[o].f, bus_bit("p", o) + ".f");
        r.nl.add_output(bus_bit("p", o) + ".t", r.p[o].t);
        r.nl.add_output(bus_bit("p", o) + ".f", r.p[o].f);
    }
    r.nl.add_output("done", r.done);
    r.nl.validate();
    return r;
}

}  // namespace afpga::asynclib
