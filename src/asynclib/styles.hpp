// Taxonomy of asynchronous design styles (Section 2 of the paper) and the
// net-level channel descriptors shared by all circuit generators.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace afpga::asynclib {

using netlist::NetId;

/// Handshake protocol family.
enum class Protocol : std::uint8_t {
    FourPhase,  ///< return-to-zero; the paper's demonstration protocol
    TwoPhase,   ///< transition signalling (modelled by the channel monitors)
};

/// Data encoding on a channel.
enum class Encoding : std::uint8_t {
    BundledData,  ///< single-rail data + matched-delay request (micropipeline)
    DualRail,     ///< 1-of-2 per bit (QDI)
    OneOfFour,    ///< 1-of-4 per digit (2 bits per digit, QDI multi-rail)
};

/// Timing discipline of a circuit style.
enum class TimingModel : std::uint8_t {
    DelayInsensitive,    ///< no assumptions (DI)
    QuasiDelayInsensitive,  ///< isochronic forks only (QDI)
    BundledDataAssumption,  ///< matched delays (micropipeline)
};

[[nodiscard]] std::string to_string(Protocol p);
[[nodiscard]] std::string to_string(Encoding e);
[[nodiscard]] std::string to_string(TimingModel t);

/// A named style = protocol + encoding + timing model, e.g. the paper's two
/// demonstrators: QDI / dual-rail / 4-phase and micropipeline / bundled / 4-phase.
struct Style {
    std::string name;
    Protocol protocol;
    Encoding encoding;
    TimingModel timing;
};

/// The styles exercised by the reproduction.
[[nodiscard]] const std::vector<Style>& standard_styles();

/// One dual-rail bit: `t` is the 1-rail, `f` the 0-rail.
struct DualRail {
    NetId t;
    NetId f;
};

/// One 1-of-4 digit (two data bits per digit).
struct OneOfFour {
    std::array<NetId, 4> rail;  ///< rail[s] fires for symbol s in 0..3
};

/// Dual-rail channel endpoint: data rails plus the acknowledge wire.
struct DrChannel {
    std::vector<DualRail> bits;
    NetId ack;
};

/// Bundled-data channel endpoint: data wires, request and acknowledge.
struct BdChannel {
    std::vector<NetId> data;
    NetId req;
    NetId ack;
};

/// 1-of-4 channel endpoint.
struct Of4Channel {
    std::vector<OneOfFour> digits;
    NetId ack;
};

/// Style-agnostic mapping hints the generators hand to the technology
/// mapper so it can exploit the LE's multi-output LUT structure:
/// - `rail_pairs`: two nets that are the complementary rails of one function
///   and therefore share their input support — ideal for the two LUT6
///   halves of one LE;
/// - `validity_nets`: 2-input functions whose inputs are exactly a rail pair
///   (the per-signal validity OR) — candidates for the LE's LUT2 slot.
struct MappingHints {
    std::vector<std::pair<NetId, NetId>> rail_pairs;
    std::vector<NetId> validity_nets;

    void merge(const MappingHints& other);
};

}  // namespace afpga::asynclib
