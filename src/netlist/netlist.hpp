// Gate-level netlist: cells connected by single-driver nets.
//
// This is the exchange format of the whole flow: the asynchronous generators
// produce a Netlist of library gates; the technology mapper consumes it; the
// fabric elaborator produces another Netlist (of LUT/Delay cells) for
// post-route simulation; the simulator runs any Netlist.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/ids.hpp"
#include "netlist/cells.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::netlist {

struct CellTag {};
struct NetTag {};
using CellId = base::StrongId<CellTag>;
using NetId = base::StrongId<NetTag>;

/// One connection point: input pin `pin` of cell `cell`.
struct PinRef {
    CellId cell;
    std::uint32_t pin = 0;
    friend bool operator==(const PinRef&, const PinRef&) noexcept = default;
};

/// A logic gate instance. Every cell drives exactly one net.
struct Cell {
    CellFunc func = CellFunc::Buf;
    std::string name;
    std::vector<NetId> inputs;
    NetId output;
    /// Present iff func == Lut.
    std::optional<TruthTable> table;
    /// Intrinsic delay override (ps); default_delay_ps(func) if absent.
    std::optional<std::int64_t> delay_ps;
};

/// A signal: one driver (cell or primary input), any number of sinks.
struct Net {
    std::string name;
    CellId driver;             // invalid for primary inputs
    bool is_primary_input = false;
    std::vector<PinRef> sinks;
};

/// The netlist graph plus its primary I/O lists.
class Netlist {
public:
    explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

    // --- construction -----------------------------------------------------
    /// Create a primary input; returns the net it drives.
    NetId add_input(const std::string& name);
    /// Declare `net` as a primary output under `name`.
    void add_output(const std::string& name, NetId net);
    /// Add a gate; creates and returns its output net (named after the cell).
    NetId add_cell(CellFunc func, const std::string& name, std::vector<NetId> inputs);
    /// Add a LUT cell with an explicit truth table.
    NetId add_lut(const std::string& name, TruthTable table, std::vector<NetId> inputs);
    /// Override the intrinsic delay of a cell.
    void set_cell_delay(CellId cell, std::int64_t delay_ps);
    /// Reconnect input `pin` of `cell` to `new_net`. Needed by generators to
    /// close handshake cycles (acknowledges flow against construction order)
    /// and by the mapper to retarget sinks.
    void rewire_input(CellId cell, std::uint32_t pin, NetId new_net);
    /// Rename a net (purely cosmetic; also used by generators to tag rails).
    void set_net_name(NetId net, const std::string& name);

    /// Rebuild a netlist from raw tables (the wire decoder's entry point:
    /// replaying the construction API cannot reproduce the sink ordering of
    /// handshake feedback cycles, so decoded nets carry their sinks
    /// verbatim). Bounds-checks every cross-reference, requires the
    /// input-pin/sink relation to be an exact bijection, rebuilds the
    /// name index, and finishes with validate(); throws base::Error on any
    /// inconsistency, so hostile bytes cannot produce a malformed graph.
    [[nodiscard]] static Netlist from_parts(
        std::string name, std::vector<Cell> cells, std::vector<Net> nets,
        std::vector<NetId> pis, std::vector<std::pair<std::string, NetId>> pos);

    // --- access -----------------------------------------------------------
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }
    [[nodiscard]] std::size_t num_nets() const noexcept { return nets_.size(); }
    [[nodiscard]] const Cell& cell(CellId id) const;
    [[nodiscard]] const Net& net(NetId id) const;
    [[nodiscard]] CellId driver_of(NetId id) const { return net(id).driver; }

    [[nodiscard]] const std::vector<NetId>& primary_inputs() const noexcept { return pis_; }
    /// (name, net) pairs in declaration order.
    [[nodiscard]] const std::vector<std::pair<std::string, NetId>>& primary_outputs()
        const noexcept {
        return pos_;
    }

    /// Net by exact name; invalid id if absent.
    [[nodiscard]] NetId find_net(const std::string& name) const;

    /// All cell ids (dense, insertion order).
    [[nodiscard]] std::vector<CellId> cell_ids() const;
    [[nodiscard]] std::vector<NetId> net_ids() const;

    // --- structure checks & analysis ---------------------------------------
    /// Throws base::Error on: dangling inputs, arity violations, duplicate
    /// output names, LUT cells without tables.
    void validate() const;

    /// Count cells of each kind.
    [[nodiscard]] std::unordered_map<CellFunc, std::size_t> histogram() const;

    /// True if the combinational subgraph (ignoring sequential cells, which
    /// legitimately sit on cycles in asynchronous logic) contains a cycle.
    [[nodiscard]] bool has_combinational_cycle() const;

    /// Topological order of cells where edges through sequential cells are
    /// cut (usable for static delay estimation of bundled datapaths).
    [[nodiscard]] std::vector<CellId> topo_order_cut_sequential() const;

    /// Graphviz rendering for inspection.
    [[nodiscard]] std::string to_dot() const;

private:
    NetId new_net(const std::string& name);

    std::string name_;
    std::vector<Cell> cells_;
    std::vector<Net> nets_;
    std::vector<NetId> pis_;
    std::vector<std::pair<std::string, NetId>> pos_;
    std::unordered_map<std::string, NetId> net_by_name_;
};

}  // namespace afpga::netlist
