#include "netlist/cells.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "base/check.hpp"

namespace afpga::netlist {

using base::check;

std::string to_string(CellFunc f) {
    switch (f) {
        case CellFunc::Const0: return "CONST0";
        case CellFunc::Const1: return "CONST1";
        case CellFunc::Buf: return "BUF";
        case CellFunc::Inv: return "INV";
        case CellFunc::And: return "AND";
        case CellFunc::Or: return "OR";
        case CellFunc::Nand: return "NAND";
        case CellFunc::Nor: return "NOR";
        case CellFunc::Xor: return "XOR";
        case CellFunc::Xnor: return "XNOR";
        case CellFunc::Mux: return "MUX";
        case CellFunc::Maj: return "MAJ";
        case CellFunc::C: return "C";
        case CellFunc::CAsym2P: return "C_ASYM2P";
        case CellFunc::Latch: return "LATCH";
        case CellFunc::Delay: return "DELAY";
        case CellFunc::Lut: return "LUT";
    }
    return "?";
}

bool is_sequential(CellFunc f) noexcept {
    return f == CellFunc::C || f == CellFunc::CAsym2P || f == CellFunc::Latch;
}

ArityRange arity_range(CellFunc f) noexcept {
    switch (f) {
        case CellFunc::Const0:
        case CellFunc::Const1: return {0, 0};
        case CellFunc::Buf:
        case CellFunc::Inv:
        case CellFunc::Delay: return {1, 1};
        case CellFunc::And:
        case CellFunc::Or:
        case CellFunc::Nand:
        case CellFunc::Nor:
        case CellFunc::Xor:
        case CellFunc::Xnor: return {2, 7};
        case CellFunc::Mux:
        case CellFunc::Maj: return {3, 3};
        case CellFunc::C: return {2, 7};
        case CellFunc::CAsym2P: return {2, 2};
        case CellFunc::Latch: return {2, 2};
        case CellFunc::Lut: return {0, TruthTable::kMaxArity};
    }
    return {0, 0};
}

namespace {

Logic logic_and(std::span<const Logic> in) {
    bool any_x = false;
    for (Logic v : in) {
        if (v == Logic::F) return Logic::F;
        if (v == Logic::X) any_x = true;
    }
    return any_x ? Logic::X : Logic::T;
}

Logic logic_or(std::span<const Logic> in) {
    bool any_x = false;
    for (Logic v : in) {
        if (v == Logic::T) return Logic::T;
        if (v == Logic::X) any_x = true;
    }
    return any_x ? Logic::X : Logic::F;
}

Logic logic_not(Logic v) {
    if (v == Logic::X) return Logic::X;
    return v == Logic::T ? Logic::F : Logic::T;
}

Logic logic_xor(std::span<const Logic> in) {
    bool parity = false;
    for (Logic v : in) {
        if (v == Logic::X) return Logic::X;
        parity ^= (v == Logic::T);
    }
    return from_bool(parity);
}

Logic eval_lut(const TruthTable& table, std::span<const Logic> in) {
    // Exact three-valued evaluation: enumerate completions of the unknown
    // inputs; if every completion agrees the value is known.
    std::vector<std::size_t> unknowns;
    std::uint32_t base_assign = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        if (in[i] == Logic::X)
            unknowns.push_back(i);
        else if (in[i] == Logic::T)
            base_assign |= 1u << i;
    }
    if (unknowns.size() > 10) return Logic::X;  // pessimistic cap
    bool first = true;
    bool value = false;
    for (std::uint32_t m = 0; m < (1u << unknowns.size()); ++m) {
        std::uint32_t a = base_assign;
        for (std::size_t k = 0; k < unknowns.size(); ++k)
            if ((m >> k) & 1u) a |= 1u << unknowns[k];
        const bool v = table.eval(a);
        if (first) {
            value = v;
            first = false;
        } else if (v != value) {
            return Logic::X;
        }
    }
    return from_bool(value);
}

}  // namespace

Logic eval_cell(CellFunc f, std::span<const Logic> inputs, Logic current,
                const TruthTable* table) {
    switch (f) {
        case CellFunc::Const0: return Logic::F;
        case CellFunc::Const1: return Logic::T;
        case CellFunc::Buf:
        case CellFunc::Delay: return inputs[0];
        case CellFunc::Inv: return logic_not(inputs[0]);
        case CellFunc::And: return logic_and(inputs);
        case CellFunc::Or: return logic_or(inputs);
        case CellFunc::Nand: return logic_not(logic_and(inputs));
        case CellFunc::Nor: return logic_not(logic_or(inputs));
        case CellFunc::Xor: return logic_xor(inputs);
        case CellFunc::Xnor: return logic_not(logic_xor(inputs));
        case CellFunc::Mux: {
            const Logic sel = inputs[0];
            if (sel == Logic::F) return inputs[1];
            if (sel == Logic::T) return inputs[2];
            return inputs[1] == inputs[2] ? inputs[1] : Logic::X;
        }
        case CellFunc::Maj: {
            int t = 0;
            int fcount = 0;
            for (Logic v : inputs) {
                t += (v == Logic::T);
                fcount += (v == Logic::F);
            }
            if (t >= 2) return Logic::T;
            if (fcount >= 2) return Logic::F;
            return Logic::X;
        }
        case CellFunc::C: {
            const bool all_t = std::ranges::all_of(inputs, [](Logic v) { return v == Logic::T; });
            const bool all_f = std::ranges::all_of(inputs, [](Logic v) { return v == Logic::F; });
            if (all_t) return Logic::T;
            if (all_f) return Logic::F;
            return current;  // hold (X inputs cannot force a transition)
        }
        case CellFunc::CAsym2P: {
            // out' = a & (b | out): rises on a&b, falls on !a.
            const Logic a = inputs[0];
            const Logic b = inputs[1];
            const Logic hold = logic_or(std::array{b, current});
            return logic_and(std::array{a, hold});
        }
        case CellFunc::Latch: {
            const Logic d = inputs[0];
            const Logic en = inputs[1];
            if (en == Logic::T) return d;
            if (en == Logic::F) return current;
            return d == current ? current : Logic::X;
        }
        case CellFunc::Lut: {
            AFPGA_ASSERT(table != nullptr, "LUT cell without truth table");
            AFPGA_ASSERT(inputs.size() == table->arity(), "LUT arity mismatch");
            return eval_lut(*table, inputs);
        }
    }
    return Logic::X;
}

bool eval_cell_bool(CellFunc f, const std::vector<bool>& inputs, const TruthTable* table) {
    check(!is_sequential(f), "eval_cell_bool on sequential cell");
    std::vector<Logic> in(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) in[i] = from_bool(inputs[i]);
    const Logic out = eval_cell(f, in, Logic::X, table);
    AFPGA_ASSERT(is_known(out), "combinational cell produced X on known inputs");
    return out == Logic::T;
}

TruthTable cell_function_with_feedback(CellFunc f, std::size_t n_inputs,
                                       const TruthTable* table) {
    check(f != CellFunc::Delay, "DELAY has no LUT realisation");
    const auto [amin, amax] = arity_range(f);
    check(n_inputs >= amin && n_inputs <= amax, "cell_function_with_feedback: bad arity");
    if (f == CellFunc::Lut) check(table && table->arity() == n_inputs, "LUT table arity mismatch");
    TruthTable t(n_inputs + 1);
    std::vector<Logic> in(n_inputs);
    for (std::uint32_t m = 0; m < (1u << (n_inputs + 1)); ++m) {
        for (std::size_t i = 0; i < n_inputs; ++i) in[i] = from_bool((m >> i) & 1u);
        const Logic cur = from_bool((m >> n_inputs) & 1u);
        const Logic out = eval_cell(f, in, cur, table);
        AFPGA_ASSERT(is_known(out), "feedback function produced X");
        t.set_row(m, out == Logic::T);
    }
    return t;
}

std::int64_t default_delay_ps(CellFunc f) noexcept {
    switch (f) {
        case CellFunc::Const0:
        case CellFunc::Const1: return 0;
        case CellFunc::Buf:
        case CellFunc::Inv: return 50;
        case CellFunc::C:
        case CellFunc::CAsym2P: return 120;
        case CellFunc::Latch: return 80;
        case CellFunc::Delay: return 200;
        case CellFunc::Lut: return 100;
        default: return 100;
    }
}

}  // namespace afpga::netlist
