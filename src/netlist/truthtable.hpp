// Truth tables over up to 16 variables.
//
// Truth tables are the common currency between the asynchronous circuit
// generators, the technology mapper and the LE configuration model: a LUT6
// half of an LE is exactly a 6-variable TruthTable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/bitvector.hpp"

namespace afpga::netlist {

/// A complete Boolean function of `arity()` ordered variables.
///
/// Row `m` (0 <= m < 2^arity) holds f(x) for the input assignment where
/// variable `i` equals bit `i` of `m` (variable 0 is the LSB).
class TruthTable {
public:
    static constexpr std::size_t kMaxArity = 16;

    /// Constant-0 function of `arity` variables.
    explicit TruthTable(std::size_t arity = 0);

    /// Build from an evaluator called on every input assignment.
    static TruthTable from_function(std::size_t arity,
                                    const std::function<bool(std::uint32_t)>& f);

    /// Build from the raw table word (row m = bit m). arity <= 6.
    static TruthTable from_bits(std::size_t arity, std::uint64_t bits);

    static TruthTable constant(std::size_t arity, bool value);
    /// Projection onto variable `var`.
    static TruthTable identity(std::size_t arity, std::size_t var);

    [[nodiscard]] std::size_t arity() const noexcept { return arity_; }
    [[nodiscard]] std::size_t rows() const noexcept { return bits_.size(); }

    [[nodiscard]] bool eval(std::uint32_t assignment) const;
    void set_row(std::uint32_t assignment, bool value);

    /// Low 2^arity bits as a word; arity must be <= 6.
    [[nodiscard]] std::uint64_t bits64() const;

    [[nodiscard]] bool is_constant() const;
    [[nodiscard]] bool depends_on(std::size_t var) const;
    /// Indices of variables the function actually depends on.
    [[nodiscard]] std::vector<std::size_t> support() const;

    /// f with variable `var` fixed to `value`; result has arity-1 variables
    /// (remaining variables keep their relative order).
    [[nodiscard]] TruthTable cofactor(std::size_t var, bool value) const;

    /// Remove variables the function does not depend on; `kept` (if non-null)
    /// receives the original indices of the surviving variables in order.
    [[nodiscard]] TruthTable prune_support(std::vector<std::size_t>* kept = nullptr) const;

    /// Reorder/extend variables: new variable `i` is old variable `perm[i]`
    /// (perm may repeat or omit old variables; result arity = perm.size()).
    [[nodiscard]] TruthTable remap(const std::vector<std::size_t>& perm,
                                   std::size_t new_arity) const;

    [[nodiscard]] TruthTable operator~() const;
    [[nodiscard]] TruthTable operator&(const TruthTable& o) const;
    [[nodiscard]] TruthTable operator|(const TruthTable& o) const;
    [[nodiscard]] TruthTable operator^(const TruthTable& o) const;

    friend bool operator==(const TruthTable& a, const TruthTable& b) noexcept = default;

    /// Rows as a 0/1 string, row 0 first.
    [[nodiscard]] std::string to_string() const;

private:
    std::size_t arity_;
    base::BitVector bits_;
};

}  // namespace afpga::netlist
