#include "netlist/netlist.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace afpga::netlist {

using base::check;

NetId Netlist::new_net(const std::string& name) {
    const NetId id{nets_.size()};
    Net n;
    n.name = name;
    nets_.push_back(std::move(n));
    if (!name.empty()) net_by_name_.emplace(name, id);
    return id;
}

NetId Netlist::add_input(const std::string& name) {
    const NetId id = new_net(name);
    nets_[id.index()].is_primary_input = true;
    pis_.push_back(id);
    return id;
}

void Netlist::add_output(const std::string& name, NetId net) {
    check(net.valid() && net.index() < nets_.size(), "add_output: bad net");
    for (const auto& [n, _] : pos_) check(n != name, "add_output: duplicate output name " + name);
    pos_.emplace_back(name, net);
}

NetId Netlist::add_cell(CellFunc func, const std::string& name, std::vector<NetId> inputs) {
    check(func != CellFunc::Lut, "use add_lut for LUT cells");
    const auto [amin, amax] = arity_range(func);
    check(inputs.size() >= amin && inputs.size() <= amax,
          "add_cell: bad arity for " + to_string(func) + " cell " + name);
    const CellId cid{cells_.size()};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        check(inputs[i].valid() && inputs[i].index() < nets_.size(),
              "add_cell: invalid input net on " + name);
        nets_[inputs[i].index()].sinks.push_back({cid, static_cast<std::uint32_t>(i)});
    }
    const NetId out = new_net(name);
    nets_[out.index()].driver = cid;
    Cell c;
    c.func = func;
    c.name = name;
    c.inputs = std::move(inputs);
    c.output = out;
    cells_.push_back(std::move(c));
    return out;
}

NetId Netlist::add_lut(const std::string& name, TruthTable table, std::vector<NetId> inputs) {
    check(inputs.size() == table.arity(), "add_lut: input count != table arity on " + name);
    const CellId cid{cells_.size()};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        check(inputs[i].valid() && inputs[i].index() < nets_.size(),
              "add_lut: invalid input net on " + name);
        nets_[inputs[i].index()].sinks.push_back({cid, static_cast<std::uint32_t>(i)});
    }
    const NetId out = new_net(name);
    nets_[out.index()].driver = cid;
    Cell c;
    c.func = CellFunc::Lut;
    c.name = name;
    c.inputs = std::move(inputs);
    c.output = out;
    c.table = std::move(table);
    cells_.push_back(std::move(c));
    return out;
}

void Netlist::set_cell_delay(CellId cell, std::int64_t delay_ps) {
    check(cell.valid() && cell.index() < cells_.size(), "set_cell_delay: bad cell");
    check(delay_ps >= 0, "set_cell_delay: negative delay");
    cells_[cell.index()].delay_ps = delay_ps;
}

void Netlist::rewire_input(CellId cell, std::uint32_t pin, NetId new_net) {
    check(cell.valid() && cell.index() < cells_.size(), "rewire_input: bad cell");
    Cell& c = cells_[cell.index()];
    check(pin < c.inputs.size(), "rewire_input: bad pin");
    check(new_net.valid() && new_net.index() < nets_.size(), "rewire_input: bad net");
    const NetId old = c.inputs[pin];
    auto& old_sinks = nets_[old.index()].sinks;
    std::erase(old_sinks, PinRef{cell, pin});
    c.inputs[pin] = new_net;
    nets_[new_net.index()].sinks.push_back({cell, pin});
}

void Netlist::set_net_name(NetId net, const std::string& name) {
    check(net.valid() && net.index() < nets_.size(), "set_net_name: bad net");
    auto& n = nets_[net.index()];
    if (!n.name.empty()) net_by_name_.erase(n.name);
    n.name = name;
    if (!name.empty()) net_by_name_[name] = net;
}

Netlist Netlist::from_parts(std::string name, std::vector<Cell> cells,
                            std::vector<Net> nets, std::vector<NetId> pis,
                            std::vector<std::pair<std::string, NetId>> pos) {
    // Bounds-check every cross-reference up front: validate() assumes
    // in-range ids (it indexes without checking), so on untrusted input the
    // range checks must come first.
    const std::size_t nc = cells.size();
    const std::size_t nn = nets.size();
    std::size_t input_edges = 0;
    for (const Cell& c : cells) {
        for (NetId in : c.inputs)
            check(in.valid() && in.index() < nn, "from_parts: cell input net out of range");
        check(c.output.valid() && c.output.index() < nn,
              "from_parts: cell output net out of range");
        input_edges += c.inputs.size();
    }
    std::size_t sink_edges = 0;
    for (const Net& n : nets) {
        if (n.driver.valid())
            check(n.driver.index() < nc, "from_parts: net driver out of range");
        for (const PinRef& s : n.sinks) {
            check(s.cell.valid() && s.cell.index() < nc, "from_parts: sink cell out of range");
            check(s.pin < cells[s.cell.index()].inputs.size(), "from_parts: sink pin out of range");
        }
        sink_edges += n.sinks.size();
    }
    // validate() proves every sink points at a matching input pin; requiring
    // equal edge counts and no duplicate sinks upgrades that to a bijection
    // (no input pin silently missing from its net's sink list).
    check(sink_edges == input_edges, "from_parts: sink/input edge count mismatch");
    std::vector<bool> seen(input_edges, false);
    std::vector<std::size_t> pin_base(nc, 0);
    for (std::size_t i = 1; i < nc; ++i)
        pin_base[i] = pin_base[i - 1] + cells[i - 1].inputs.size();
    for (const Net& n : nets)
        for (const PinRef& s : n.sinks) {
            const std::size_t slot = pin_base[s.cell.index()] + s.pin;
            check(!seen[slot], "from_parts: duplicate sink entry");
            seen[slot] = true;
        }
    std::vector<bool> pi_seen(nn, false);
    for (NetId pi : pis) {
        check(pi.valid() && pi.index() < nn, "from_parts: primary input out of range");
        check(nets[pi.index()].is_primary_input,
              "from_parts: primary-input list names a non-PI net");
        check(!pi_seen[pi.index()], "from_parts: duplicate primary input");
        pi_seen[pi.index()] = true;
    }
    std::size_t pi_nets = 0;
    for (const Net& n : nets) pi_nets += n.is_primary_input ? 1 : 0;
    check(pi_nets == pis.size(), "from_parts: primary-input list incomplete");
    for (const auto& [po_name, po_net] : pos)
        check(po_net.valid() && po_net.index() < nn,
              "from_parts: primary output '" + po_name + "' out of range");

    Netlist nl(std::move(name));
    nl.cells_ = std::move(cells);
    nl.nets_ = std::move(nets);
    nl.pis_ = std::move(pis);
    nl.pos_ = std::move(pos);
    for (std::size_t i = 0; i < nl.nets_.size(); ++i)
        if (!nl.nets_[i].name.empty()) nl.net_by_name_.emplace(nl.nets_[i].name, NetId{i});
    nl.validate();
    return nl;
}

const Cell& Netlist::cell(CellId id) const {
    check(id.valid() && id.index() < cells_.size(), "cell: bad id");
    return cells_[id.index()];
}

const Net& Netlist::net(NetId id) const {
    check(id.valid() && id.index() < nets_.size(), "net: bad id");
    return nets_[id.index()];
}

NetId Netlist::find_net(const std::string& name) const {
    const auto it = net_by_name_.find(name);
    return it == net_by_name_.end() ? NetId::invalid() : it->second;
}

std::vector<CellId> Netlist::cell_ids() const {
    std::vector<CellId> ids;
    ids.reserve(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) ids.emplace_back(i);
    return ids;
}

std::vector<NetId> Netlist::net_ids() const {
    std::vector<NetId> ids;
    ids.reserve(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i) ids.emplace_back(i);
    return ids;
}

void Netlist::validate() const {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Cell& c = cells_[i];
        if (c.func == CellFunc::Lut) {
            check(c.table.has_value(), "validate: LUT without table: " + c.name);
            check(c.table->arity() == c.inputs.size(), "validate: LUT arity mismatch: " + c.name);
        } else {
            const auto [amin, amax] = arity_range(c.func);
            check(c.inputs.size() >= amin && c.inputs.size() <= amax,
                  "validate: arity violation on " + c.name);
        }
        for (NetId in : c.inputs) check(in.valid(), "validate: dangling input on " + c.name);
        check(c.output.valid(), "validate: cell without output: " + c.name);
        check(nets_[c.output.index()].driver == CellId{i}, "validate: driver mismatch: " + c.name);
    }
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        const Net& n = nets_[i];
        check(n.is_primary_input != n.driver.valid(),
              "validate: net must have exactly one driver source: " + n.name);
        for (const PinRef& s : n.sinks) {
            check(s.cell.valid() && s.cell.index() < cells_.size(), "validate: bad sink");
            check(s.pin < cells_[s.cell.index()].inputs.size(), "validate: bad sink pin");
            check(cells_[s.cell.index()].inputs[s.pin] == NetId{i},
                  "validate: sink back-reference mismatch on " + n.name);
        }
    }
    for (const auto& [name, net] : pos_)
        check(net.valid() && net.index() < nets_.size(), "validate: bad primary output " + name);
}

std::unordered_map<CellFunc, std::size_t> Netlist::histogram() const {
    std::unordered_map<CellFunc, std::size_t> h;
    for (const Cell& c : cells_) ++h[c.func];
    return h;
}

bool Netlist::has_combinational_cycle() const {
    // DFS over cells; edges go from a cell to the cells its output feeds.
    // Sequential cells break the path (their output is a state variable).
    enum class Mark : std::uint8_t { White, Grey, Black };
    std::vector<Mark> mark(cells_.size(), Mark::White);
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (cell, next sink idx)

    auto sinks_of = [this](std::size_t ci) -> const std::vector<PinRef>& {
        return nets_[cells_[ci].output.index()].sinks;
    };

    for (std::size_t root = 0; root < cells_.size(); ++root) {
        if (mark[root] != Mark::White || is_sequential(cells_[root].func)) continue;
        stack.emplace_back(root, 0);
        mark[root] = Mark::Grey;
        while (!stack.empty()) {
            auto& [ci, next] = stack.back();
            const auto& sinks = sinks_of(ci);
            bool advanced = false;
            while (next < sinks.size()) {
                const std::size_t tgt = sinks[next++].cell.index();
                if (is_sequential(cells_[tgt].func)) continue;
                if (mark[tgt] == Mark::Grey) return true;
                if (mark[tgt] == Mark::White) {
                    mark[tgt] = Mark::Grey;
                    stack.emplace_back(tgt, 0);
                    advanced = true;
                    break;
                }
            }
            if (!advanced && (stack.back().second >= sinks_of(stack.back().first).size())) {
                mark[stack.back().first] = Mark::Black;
                stack.pop_back();
            }
        }
    }
    return false;
}

std::vector<CellId> Netlist::topo_order_cut_sequential() const {
    // Kahn's algorithm; combinational in-degree only (inputs that come from
    // PIs or sequential cells count as satisfied).
    std::vector<std::size_t> indeg(cells_.size(), 0);
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (is_sequential(cells_[i].func)) continue;
        for (NetId in : cells_[i].inputs) {
            const CellId d = nets_[in.index()].driver;
            if (d.valid() && !is_sequential(cells_[d.index()].func)) ++indeg[i];
        }
    }
    std::vector<CellId> order;
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < cells_.size(); ++i)
        if (!is_sequential(cells_[i].func) && indeg[i] == 0) queue.push_back(i);
    while (!queue.empty()) {
        const std::size_t ci = queue.back();
        queue.pop_back();
        order.emplace_back(ci);
        for (const PinRef& s : nets_[cells_[ci].output.index()].sinks) {
            const std::size_t t = s.cell.index();
            if (is_sequential(cells_[t].func)) continue;
            if (--indeg[t] == 0) queue.push_back(t);
        }
    }
    return order;  // shorter than #comb cells iff a combinational cycle exists
}

std::string Netlist::to_dot() const {
    std::string out = "digraph \"" + name_ + "\" {\n  rankdir=LR;\n";
    for (std::size_t i = 0; i < nets_.size(); ++i)
        if (nets_[i].is_primary_input)
            out += "  pi" + std::to_string(i) + " [shape=triangle,label=\"" + nets_[i].name +
                   "\"];\n";
    for (std::size_t i = 0; i < cells_.size(); ++i)
        out += "  c" + std::to_string(i) + " [shape=box,label=\"" + cells_[i].name + "\\n" +
               to_string(cells_[i].func) + "\"];\n";
    auto src_node = [this](NetId n) {
        const Net& net = nets_[n.index()];
        return net.is_primary_input ? "pi" + std::to_string(n.index())
                                    : "c" + std::to_string(net.driver.index());
    };
    for (std::size_t i = 0; i < cells_.size(); ++i)
        for (NetId in : cells_[i].inputs) out += "  " + src_node(in) + " -> c" + std::to_string(i) + ";\n";
    for (const auto& [nm, n] : pos_) {
        out += "  po_" + nm + " [shape=invtriangle,label=\"" + nm + "\"];\n";
        out += "  " + src_node(n) + " -> po_" + nm + ";\n";
    }
    out += "}\n";
    return out;
}

}  // namespace afpga::netlist
