// Static netlist analyses: exhaustive functional extraction (for equivalence
// checking in tests and the mapper) and static longest-path delay (the input
// to the micropipeline bundling constraint).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/truthtable.hpp"

namespace afpga::netlist {

/// Evaluate a purely combinational netlist on one input assignment.
///
/// `pi_values[i]` corresponds to `primary_inputs()[i]`. Throws if the netlist
/// contains sequential cells or combinational cycles.
[[nodiscard]] std::vector<bool> eval_combinational(const Netlist& nl,
                                                   const std::vector<bool>& pi_values);

/// Exhaustively extract the function of every primary output as a truth
/// table over the primary inputs (<= 16 PIs).
[[nodiscard]] std::vector<TruthTable> extract_functions(const Netlist& nl);

/// Static arrival-time analysis over the combinational subgraph.
///
/// Sequential cell outputs and primary inputs start at time 0; each
/// combinational cell adds its intrinsic delay plus `extra_net_delay_ps`
/// applied per traversed net sink (a crude stand-in for wire delay before
/// routing). Returns the arrival time of every net (ps).
[[nodiscard]] std::vector<std::int64_t> net_arrival_times(const Netlist& nl,
                                                          std::int64_t extra_net_delay_ps = 0);

/// Longest combinational delay (ps) from any start point to `target` net.
[[nodiscard]] std::int64_t longest_path_to(const Netlist& nl, NetId target,
                                           std::int64_t extra_net_delay_ps = 0);

}  // namespace afpga::netlist
