#include "netlist/truthtable.hpp"

#include "base/check.hpp"

namespace afpga::netlist {

using base::check;

TruthTable::TruthTable(std::size_t arity) : arity_(arity), bits_(std::size_t{1} << arity) {
    check(arity <= kMaxArity, "TruthTable arity too large");
}

TruthTable TruthTable::from_function(std::size_t arity,
                                     const std::function<bool(std::uint32_t)>& f) {
    TruthTable t(arity);
    for (std::uint32_t m = 0; m < (1u << arity); ++m) t.set_row(m, f(m));
    return t;
}

TruthTable TruthTable::from_bits(std::size_t arity, std::uint64_t bits) {
    check(arity <= 6, "from_bits: arity must be <= 6");
    TruthTable t(arity);
    for (std::uint32_t m = 0; m < (1u << arity); ++m) t.set_row(m, (bits >> m) & 1ULL);
    return t;
}

TruthTable TruthTable::constant(std::size_t arity, bool value) {
    TruthTable t(arity);
    for (std::uint32_t m = 0; m < (1u << arity); ++m) t.set_row(m, value);
    return t;
}

TruthTable TruthTable::identity(std::size_t arity, std::size_t var) {
    check(var < arity, "identity: var out of range");
    return from_function(arity, [var](std::uint32_t m) { return (m >> var) & 1u; });
}

bool TruthTable::eval(std::uint32_t assignment) const {
    check(assignment < rows(), "TruthTable::eval: assignment out of range");
    return bits_.get(assignment);
}

void TruthTable::set_row(std::uint32_t assignment, bool value) {
    check(assignment < rows(), "TruthTable::set_row: assignment out of range");
    bits_.set(assignment, value);
}

std::uint64_t TruthTable::bits64() const {
    check(arity_ <= 6, "bits64: arity must be <= 6");
    return bits_.get_bits(0, rows());
}

bool TruthTable::is_constant() const {
    const bool v0 = bits_.get(0);
    for (std::size_t m = 1; m < rows(); ++m)
        if (bits_.get(m) != v0) return false;
    return true;
}

bool TruthTable::depends_on(std::size_t var) const {
    check(var < arity_, "depends_on: var out of range");
    const std::uint32_t bit = 1u << var;
    for (std::uint32_t m = 0; m < rows(); ++m)
        if (!(m & bit) && bits_.get(m) != bits_.get(m | bit)) return true;
    return false;
}

std::vector<std::size_t> TruthTable::support() const {
    std::vector<std::size_t> s;
    for (std::size_t v = 0; v < arity_; ++v)
        if (depends_on(v)) s.push_back(v);
    return s;
}

TruthTable TruthTable::cofactor(std::size_t var, bool value) const {
    check(var < arity_, "cofactor: var out of range");
    TruthTable t(arity_ - 1);
    for (std::uint32_t m = 0; m < (1u << (arity_ - 1)); ++m) {
        const std::uint32_t lo = m & ((1u << var) - 1u);
        const std::uint32_t hi = (m >> var) << (var + 1);
        const std::uint32_t full = hi | (value ? (1u << var) : 0u) | lo;
        t.set_row(m, eval(full));
    }
    return t;
}

TruthTable TruthTable::prune_support(std::vector<std::size_t>* kept) const {
    std::vector<std::size_t> keep = support();
    TruthTable t(keep.size());
    for (std::uint32_t m = 0; m < (1u << keep.size()); ++m) {
        std::uint32_t full = 0;
        for (std::size_t i = 0; i < keep.size(); ++i)
            if ((m >> i) & 1u) full |= 1u << keep[i];
        t.set_row(m, eval(full));
    }
    if (kept) *kept = std::move(keep);
    return t;
}

TruthTable TruthTable::remap(const std::vector<std::size_t>& perm, std::size_t new_arity) const {
    check(perm.size() == arity_, "remap: perm arity mismatch");
    for (std::size_t p : perm) check(p < new_arity, "remap: target var out of range");
    TruthTable t(new_arity);
    for (std::uint32_t m = 0; m < (1u << new_arity); ++m) {
        std::uint32_t old = 0;
        for (std::size_t i = 0; i < arity_; ++i)
            if ((m >> perm[i]) & 1u) old |= 1u << i;
        t.set_row(m, eval(old));
    }
    return t;
}

TruthTable TruthTable::operator~() const {
    TruthTable t(arity_);
    for (std::uint32_t m = 0; m < rows(); ++m) t.set_row(m, !eval(m));
    return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
    check(arity_ == o.arity_, "operator&: arity mismatch");
    TruthTable t(arity_);
    for (std::uint32_t m = 0; m < rows(); ++m) t.set_row(m, eval(m) && o.eval(m));
    return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
    check(arity_ == o.arity_, "operator|: arity mismatch");
    TruthTable t(arity_);
    for (std::uint32_t m = 0; m < rows(); ++m) t.set_row(m, eval(m) || o.eval(m));
    return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
    check(arity_ == o.arity_, "operator^: arity mismatch");
    TruthTable t(arity_);
    for (std::uint32_t m = 0; m < rows(); ++m) t.set_row(m, eval(m) != o.eval(m));
    return t;
}

std::string TruthTable::to_string() const {
    std::string s;
    s.reserve(rows());
    for (std::uint32_t m = 0; m < rows(); ++m) s.push_back(eval(m) ? '1' : '0');
    return s;
}

}  // namespace afpga::netlist
