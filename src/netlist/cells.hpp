// The asynchronous gate library: cell kinds and their evaluation semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "netlist/truthtable.hpp"

namespace afpga::netlist {

/// Three-valued logic used by the event-driven simulator.
enum class Logic : std::uint8_t { F = 0, T = 1, X = 2 };

[[nodiscard]] constexpr char to_char(Logic v) noexcept {
    switch (v) {
        case Logic::F: return '0';
        case Logic::T: return '1';
        default: return 'X';
    }
}
[[nodiscard]] constexpr Logic from_bool(bool b) noexcept { return b ? Logic::T : Logic::F; }
[[nodiscard]] constexpr bool is_known(Logic v) noexcept { return v != Logic::X; }

/// Gate kinds understood by generators, mapper and simulator.
///
/// AND/OR/NAND/NOR/XOR/XNOR accept 2..7 inputs. MUX is (sel, a, b) -> sel?b:a.
/// MAJ is 3-input majority. C is an n-input Muller C-element (output joins
/// when all inputs agree, otherwise holds). C_ASYM2P is a 2-input asymmetric
/// C-element (input 1 participates in the rising join only: out rises on
/// a&b, falls on !a). LATCH is a transparent D-latch (D, EN; transparent when
/// EN=1). DELAY is a pure transport-delay buffer (the PDE's behavioural
/// model). LUT evaluates an attached TruthTable.
enum class CellFunc : std::uint8_t {
    Const0,
    Const1,
    Buf,
    Inv,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Mux,
    Maj,
    C,
    CAsym2P,
    Latch,
    Delay,
    Lut,
};

[[nodiscard]] std::string to_string(CellFunc f);

/// True for cells whose next output depends on their current output
/// (C-elements and latches — the "memory elements" of Section 3).
[[nodiscard]] bool is_sequential(CellFunc f) noexcept;

/// Legal input count range for a cell kind (LUT range comes from its table).
struct ArityRange {
    std::size_t min;
    std::size_t max;
};
[[nodiscard]] ArityRange arity_range(CellFunc f) noexcept;

/// Evaluate a cell over three-valued inputs.
///
/// `current` is the present output value (used by C/Latch; ignored
/// otherwise). `table` must be provided iff `f == CellFunc::Lut`.
/// X-propagation is pessimistic but exact for the controlling-value cases
/// (e.g. AND with any 0 input is 0 even if others are X).
[[nodiscard]] Logic eval_cell(CellFunc f, std::span<const Logic> inputs, Logic current,
                              const TruthTable* table = nullptr);

/// Boolean-only convenience for combinational evaluation in tests/mapper
/// (no X, no state). `f` must not be sequential.
[[nodiscard]] bool eval_cell_bool(CellFunc f, const std::vector<bool>& inputs,
                                  const TruthTable* table = nullptr);

/// The combinational function a (possibly sequential) cell computes when its
/// own output is appended as the LAST input variable — this is exactly the
/// looped-LUT form used to implement memory elements through the IM.
/// For combinational cells the extra variable is simply ignored.
[[nodiscard]] TruthTable cell_function_with_feedback(CellFunc f, std::size_t n_inputs,
                                                     const TruthTable* table = nullptr);

/// Default intrinsic delay (picoseconds) used when a cell has no override.
[[nodiscard]] std::int64_t default_delay_ps(CellFunc f) noexcept;

}  // namespace afpga::netlist
