#include "netlist/analyze.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace afpga::netlist {

using base::check;

std::vector<bool> eval_combinational(const Netlist& nl, const std::vector<bool>& pi_values) {
    check(pi_values.size() == nl.primary_inputs().size(), "eval_combinational: PI count mismatch");
    for (CellId c : nl.cell_ids())
        check(!is_sequential(nl.cell(c).func), "eval_combinational: sequential cell present");
    check(!nl.has_combinational_cycle(), "eval_combinational: combinational cycle");

    std::vector<std::uint8_t> known(nl.num_nets(), 0);
    std::vector<bool> value(nl.num_nets(), false);
    for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
        const NetId pi = nl.primary_inputs()[i];
        known[pi.index()] = 1;
        value[pi.index()] = pi_values[i];
    }
    const std::vector<CellId> order = nl.topo_order_cut_sequential();
    AFPGA_ASSERT(order.size() == nl.num_cells(), "topo order incomplete");
    std::vector<bool> ins;
    for (CellId cid : order) {
        const Cell& c = nl.cell(cid);
        ins.clear();
        for (NetId in : c.inputs) {
            AFPGA_ASSERT(known[in.index()], "input not yet evaluated (dangling net?)");
            ins.push_back(value[in.index()]);
        }
        const bool out = eval_cell_bool(c.func, ins, c.table ? &*c.table : nullptr);
        known[c.output.index()] = 1;
        value[c.output.index()] = out;
    }
    std::vector<bool> pos;
    pos.reserve(nl.primary_outputs().size());
    for (const auto& [name, net] : nl.primary_outputs()) {
        check(known[net.index()], "eval_combinational: primary output undriven: " + name);
        pos.push_back(value[net.index()]);
    }
    return pos;
}

std::vector<TruthTable> extract_functions(const Netlist& nl) {
    const std::size_t n = nl.primary_inputs().size();
    check(n <= TruthTable::kMaxArity, "extract_functions: too many primary inputs");
    std::vector<TruthTable> tables(nl.primary_outputs().size(), TruthTable(n));
    std::vector<bool> pi(n);
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
        for (std::size_t i = 0; i < n; ++i) pi[i] = (m >> i) & 1u;
        const std::vector<bool> po = eval_combinational(nl, pi);
        for (std::size_t o = 0; o < po.size(); ++o) tables[o].set_row(m, po[o]);
    }
    return tables;
}

std::vector<std::int64_t> net_arrival_times(const Netlist& nl, std::int64_t extra_net_delay_ps) {
    std::vector<std::int64_t> arrival(nl.num_nets(), 0);
    const std::vector<CellId> order = nl.topo_order_cut_sequential();
    for (CellId cid : order) {
        const Cell& c = nl.cell(cid);
        std::int64_t latest = 0;
        for (NetId in : c.inputs) {
            const Net& net = nl.net(in);
            // Inputs driven by sequential cells launch at t=0 (they are the
            // stage boundaries of a bundled datapath).
            const bool launched =
                net.is_primary_input ||
                (net.driver.valid() && is_sequential(nl.cell(net.driver).func));
            const std::int64_t t = launched ? 0 : arrival[in.index()];
            latest = std::max(latest, t + extra_net_delay_ps);
        }
        const std::int64_t d = c.delay_ps.value_or(default_delay_ps(c.func));
        arrival[c.output.index()] = latest + d;
    }
    return arrival;
}

std::int64_t longest_path_to(const Netlist& nl, NetId target, std::int64_t extra_net_delay_ps) {
    const auto arrival = net_arrival_times(nl, extra_net_delay_ps);
    check(target.valid() && target.index() < arrival.size(), "longest_path_to: bad net");
    return arrival[target.index()];
}

}  // namespace afpga::netlist
