// Umbrella header: the whole public API of the multi-style asynchronous
// FPGA library. Include piecemeal headers in translation units that care
// about compile time; include this when prototyping.
#pragma once

#include "base/bitvector.hpp"   // IWYU pragma: export
#include "base/check.hpp"       // IWYU pragma: export
#include "base/ids.hpp"         // IWYU pragma: export
#include "base/rng.hpp"         // IWYU pragma: export
#include "base/strings.hpp"     // IWYU pragma: export
#include "base/table.hpp"       // IWYU pragma: export
#include "base/threadpool.hpp"  // IWYU pragma: export

#include "netlist/analyze.hpp"  // IWYU pragma: export
#include "netlist/cells.hpp"    // IWYU pragma: export
#include "netlist/netlist.hpp"  // IWYU pragma: export
#include "netlist/truthtable.hpp"  // IWYU pragma: export

#include "asynclib/adders.hpp"         // IWYU pragma: export
#include "asynclib/dualrail.hpp"       // IWYU pragma: export
#include "asynclib/fifos.hpp"          // IWYU pragma: export
#include "asynclib/micropipeline.hpp"  // IWYU pragma: export
#include "asynclib/oneofn.hpp"         // IWYU pragma: export
#include "asynclib/styles.hpp"         // IWYU pragma: export

#include "sim/channels.hpp"   // IWYU pragma: export
#include "sim/monitors.hpp"   // IWYU pragma: export
#include "sim/simulator.hpp"  // IWYU pragma: export
#include "sim/testbench.hpp"  // IWYU pragma: export
#include "sim/vcd.hpp"        // IWYU pragma: export

#include "core/archspec.hpp"   // IWYU pragma: export
#include "core/bitstream.hpp"  // IWYU pragma: export
#include "core/elaborate.hpp"  // IWYU pragma: export
#include "core/fabric.hpp"     // IWYU pragma: export
#include "core/le.hpp"         // IWYU pragma: export
#include "core/plb.hpp"        // IWYU pragma: export
#include "core/rrgraph.hpp"    // IWYU pragma: export

#include "cad/batch.hpp"    // IWYU pragma: export
#include "cad/flow.hpp"     // IWYU pragma: export
#include "cad/mapped.hpp"   // IWYU pragma: export
#include "cad/pack.hpp"     // IWYU pragma: export
#include "cad/place.hpp"    // IWYU pragma: export
#include "cad/route.hpp"    // IWYU pragma: export
#include "cad/techmap.hpp"  // IWYU pragma: export

#include "eval/baseline.hpp"  // IWYU pragma: export
#include "eval/metrics.hpp"   // IWYU pragma: export
