/// \file
/// Error-handling helpers.
///
/// Library-level contract violations and data errors throw
/// afpga::base::Error; internal invariants use AFPGA_ASSERT which also
/// throws (so tests can verify failure paths without death tests).
///
/// Threading: everything here is stateless and safe to call from any
/// thread; exceptions thrown inside pool tasks propagate through the
/// task's future (see base/threadpool.hpp).
#pragma once

#include <stdexcept>
#include <string>

namespace afpga::base {

/// Root exception for all library errors.
class Error : public std::runtime_error {
public:
    /// Wrap a diagnostic message.
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw Error with `message` if `condition` is false.
inline void check(bool condition, const std::string& message) {
    if (!condition) throw Error(message);
}

/// Unconditionally throw Error with `message`.
[[noreturn]] inline void fail(const std::string& message) { throw Error(message); }

}  // namespace afpga::base

/// Internal invariant check; always enabled (cost is negligible next to the
/// algorithms it guards) so release builds keep their safety net.
#define AFPGA_ASSERT(cond, msg)                                                      \
    do {                                                                             \
        if (!(cond))                                                                 \
            throw ::afpga::base::Error(std::string("assertion failed: ") + (msg) +   \
                                       " [" #cond "] at " __FILE__ ":" +             \
                                       std::to_string(__LINE__));                    \
    } while (false)
