// Strongly-typed integer identifiers.
//
// Every object table in the code base (cells, nets, RR nodes, PLBs, ...)
// indexes its elements with a distinct StrongId instantiation so that an
// index into one table cannot silently be used against another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace afpga::base {

/// A type-safe wrapper around a 32-bit index.
///
/// `Tag` is any (possibly incomplete) type used purely to distinguish
/// instantiations. The sentinel value (all ones) denotes "invalid".
template <typename Tag>
class StrongId {
public:
    using value_type = std::uint32_t;
    static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

    constexpr StrongId() noexcept = default;
    constexpr explicit StrongId(value_type v) noexcept : value_(v) {}
    constexpr explicit StrongId(std::size_t v) noexcept : value_(static_cast<value_type>(v)) {}

    [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }
    [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
    /// Convenience for indexing std::vector without casts at call sites.
    [[nodiscard]] constexpr std::size_t index() const noexcept { return value_; }

    [[nodiscard]] static constexpr StrongId invalid() noexcept { return StrongId{}; }

    friend constexpr bool operator==(StrongId a, StrongId b) noexcept = default;
    friend constexpr auto operator<=>(StrongId a, StrongId b) noexcept = default;

    friend std::ostream& operator<<(std::ostream& os, StrongId id) {
        if (!id.valid()) return os << "<invalid>";
        return os << id.value();
    }

private:
    value_type value_ = kInvalid;
};

}  // namespace afpga::base

template <typename Tag>
struct std::hash<afpga::base::StrongId<Tag>> {
    std::size_t operator()(afpga::base::StrongId<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value());
    }
};
