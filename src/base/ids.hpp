/// \file
/// Strongly-typed integer identifiers.
///
/// Every object table in the code base (cells, nets, RR nodes, PLBs, ...)
/// indexes its elements with a distinct StrongId instantiation so that an
/// index into one table cannot silently be used against another.
///
/// Threading: StrongId is a trivially-copyable value type; no shared state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace afpga::base {

/// A type-safe wrapper around a 32-bit index.
///
/// `Tag` is any (possibly incomplete) type used purely to distinguish
/// instantiations. The sentinel value (all ones) denotes "invalid".
template <typename Tag>
class StrongId {
public:
    using value_type = std::uint32_t;  ///< underlying index type
    /// Sentinel raw value of an invalid id.
    static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

    /// Invalid id.
    constexpr StrongId() noexcept = default;
    /// Wrap a raw index.
    constexpr explicit StrongId(value_type v) noexcept : value_(v) {}
    /// Wrap a size_t index (narrowing to 32 bits).
    constexpr explicit StrongId(std::size_t v) noexcept : value_(static_cast<value_type>(v)) {}

    /// False for the sentinel value.
    [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }
    /// The raw index.
    [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
    /// Convenience for indexing std::vector without casts at call sites.
    [[nodiscard]] constexpr std::size_t index() const noexcept { return value_; }

    /// The sentinel id.
    [[nodiscard]] static constexpr StrongId invalid() noexcept { return StrongId{}; }

    /// Value equality.
    friend constexpr bool operator==(StrongId a, StrongId b) noexcept = default;
    /// Value ordering (ids are ordered by raw index).
    friend constexpr auto operator<=>(StrongId a, StrongId b) noexcept = default;

    /// Stream as the raw index, or "<invalid>".
    friend std::ostream& operator<<(std::ostream& os, StrongId id) {
        if (!id.valid()) return os << "<invalid>";
        return os << id.value();
    }

private:
    value_type value_ = kInvalid;
};

}  // namespace afpga::base

/// std::hash support so StrongId keys unordered containers directly.
template <typename Tag>
struct std::hash<afpga::base::StrongId<Tag>> {
    /// Hash of the raw index.
    std::size_t operator()(afpga::base::StrongId<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value());
    }
};
