/// \file
/// Small string utilities shared across modules.
///
/// Threading: pure functions over their arguments; safe from any thread.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace afpga::base {

/// printf-style double formatting with fixed decimals.
[[nodiscard]] std::string format_double(double v, int decimals);

/// "12.3%" style percentage rendering of a ratio in [0,1].
[[nodiscard]] std::string format_percent(double ratio, int decimals = 1);

/// Join elements with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split on a single-character separator; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// name + "[" + i + "]" — the canonical bus-bit naming used by generators.
[[nodiscard]] std::string bus_bit(std::string_view name, std::size_t i);

}  // namespace afpga::base
