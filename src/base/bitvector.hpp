// Dynamic bit vector used for LUT truth tables and configuration bitstreams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace afpga::base {

/// A resizable vector of bits with word-level access.
///
/// Bit `i` lives in word `i / 64`, bit position `i % 64`. Unused high bits of
/// the last word are kept zero (maintained by all mutators) so that word-wise
/// comparison and hashing are well defined.
class BitVector {
public:
    BitVector() = default;
    explicit BitVector(std::size_t nbits, bool fill = false);

    [[nodiscard]] std::size_t size() const noexcept { return nbits_; }
    [[nodiscard]] bool empty() const noexcept { return nbits_ == 0; }

    [[nodiscard]] bool get(std::size_t i) const;
    void set(std::size_t i, bool v);
    void flip(std::size_t i);

    /// Append a single bit at the end.
    void push_back(bool v);
    /// Append the low `n` bits of `word` (LSB first).
    void append_bits(std::uint64_t word, std::size_t n);
    /// Read `n` bits starting at `pos` as an LSB-first word. n <= 64.
    [[nodiscard]] std::uint64_t get_bits(std::size_t pos, std::size_t n) const;
    /// Overwrite `n` bits starting at `pos` with the low bits of `word`.
    void set_bits(std::size_t pos, std::uint64_t word, std::size_t n);

    void resize(std::size_t nbits, bool fill = false);
    void clear() noexcept;

    [[nodiscard]] std::size_t count_ones() const noexcept;
    /// True if every bit is zero.
    [[nodiscard]] bool none() const noexcept;

    /// CRC-32 (IEEE 802.3 polynomial) over the packed byte representation.
    [[nodiscard]] std::uint32_t crc32() const noexcept;

    /// "0101..." LSB-first rendering, for diagnostics.
    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

    friend bool operator==(const BitVector& a, const BitVector& b) noexcept = default;

private:
    void mask_tail() noexcept;

    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace afpga::base
