/// \file
/// Dynamic bit vector used for LUT truth tables and configuration
/// bitstreams.
///
/// Threading: BitVector is a plain value type with no internal
/// synchronisation — share const references freely, never mutate one
/// object from two threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace afpga::base {

/// A resizable vector of bits with word-level access.
///
/// Bit `i` lives in word `i / 64`, bit position `i % 64`. Unused high bits of
/// the last word are kept zero (maintained by all mutators) so that word-wise
/// comparison and hashing are well defined.
class BitVector {
public:
    /// Empty vector.
    BitVector() = default;
    /// `nbits` bits, all set to `fill`.
    explicit BitVector(std::size_t nbits, bool fill = false);

    /// Number of bits.
    [[nodiscard]] std::size_t size() const noexcept { return nbits_; }
    /// True when size() == 0.
    [[nodiscard]] bool empty() const noexcept { return nbits_ == 0; }

    /// Read bit `i` (bounds-checked).
    [[nodiscard]] bool get(std::size_t i) const;
    /// Write bit `i` (bounds-checked).
    void set(std::size_t i, bool v);
    /// Invert bit `i` (bounds-checked).
    void flip(std::size_t i);

    /// Append a single bit at the end.
    void push_back(bool v);
    /// Append the low `n` bits of `word` (LSB first).
    void append_bits(std::uint64_t word, std::size_t n);
    /// Read `n` bits starting at `pos` as an LSB-first word. n <= 64.
    [[nodiscard]] std::uint64_t get_bits(std::size_t pos, std::size_t n) const;
    /// Overwrite `n` bits starting at `pos` with the low bits of `word`.
    void set_bits(std::size_t pos, std::uint64_t word, std::size_t n);

    /// Grow or shrink to `nbits`; new bits are set to `fill`.
    void resize(std::size_t nbits, bool fill = false);
    /// Remove all bits.
    void clear() noexcept;

    /// Population count.
    [[nodiscard]] std::size_t count_ones() const noexcept;
    /// True if every bit is zero.
    [[nodiscard]] bool none() const noexcept;

    /// CRC-32 (IEEE 802.3 polynomial) over the packed byte representation.
    [[nodiscard]] std::uint32_t crc32() const noexcept;

    /// "0101..." LSB-first rendering, for diagnostics.
    [[nodiscard]] std::string to_string() const;

    /// The packed 64-bit words (LSB-first; tail bits zero).
    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

    /// Bitwise equality (same size and same bits).
    friend bool operator==(const BitVector& a, const BitVector& b) noexcept = default;

private:
    void mask_tail() noexcept;

    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace afpga::base
