#include "base/threadpool.hpp"

#include <cstdlib>
#include <exception>
#include <string>

namespace afpga::base {

std::size_t ThreadPool::default_workers() {
    if (const char* env = std::getenv("AFPGA_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) workers = default_workers();
    queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(sleep_mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
    std::size_t target;
    {
        std::lock_guard<std::mutex> lk(sleep_mu_);
        target = next_queue_++ % queues_.size();
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lk(queues_[target]->mu);
        queues_[target]->tasks.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool ThreadPool::try_take(std::size_t self, std::function<void()>& out) {
    // Own deque first (back = most recently enqueued, cache-warm), then sweep
    // the others as a thief (front = oldest waiting). One full sweep per wake
    // keeps the fast path lock-cheap; missed races fall back to the
    // condition variable.
    {
        std::lock_guard<std::mutex> lk(queues_[self]->mu);
        if (!queues_[self]->tasks.empty()) {
            out = std::move(queues_[self]->tasks.back());
            queues_[self]->tasks.pop_back();
            return true;
        }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        const std::size_t victim = (self + k) % queues_.size();
        std::lock_guard<std::mutex> lk(queues_[victim]->mu);
        if (!queues_[victim]->tasks.empty()) {
            out = std::move(queues_[victim]->tasks.front());
            queues_[victim]->tasks.pop_front();
            return true;
        }
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t self) {
    for (;;) {
        std::function<void()> task;
        if (try_take(self, task)) {
            {
                std::lock_guard<std::mutex> lk(sleep_mu_);
                --pending_;
            }
            task();  // packaged_task captures any exception into its future
            continue;
        }
        std::unique_lock<std::mutex> lk(sleep_mu_);
        cv_.wait(lk, [this] { return pending_ > 0 || stop_; });
        if (stop_ && pending_ == 0) return;
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) futs.push_back(submit([&fn, i] { fn(i); }));
    // Drain every future before rethrowing so no task still references fn.
    std::exception_ptr first;
    for (std::future<void>& f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first) first = std::current_exception();
        }
    }
    if (first) std::rethrow_exception(first);
}

}  // namespace afpga::base
