#include "base/rng.hpp"

namespace afpga::base {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}
}  // namespace

std::uint64_t Rng::derive_seed(std::uint64_t base_seed, std::uint64_t stream_id) noexcept {
    // Decorrelate from the raw base seed, then mix in the stream id through
    // an odd-constant multiply (injective mod 2^64) before a final avalanche,
    // so distinct (base_seed, stream_id) pairs map to well-separated seeds.
    std::uint64_t x = base_seed;
    std::uint64_t h = splitmix64(x);
    h ^= (stream_id + 1) * 0x9E3779B97F4A7C15ULL;
    return splitmix64(h);
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
    // Hash the full 256-bit state word by word so forks taken at different
    // points of the parent's sequence differ, without drawing from (and so
    // perturbing) the parent.
    std::uint64_t h = stream_id;
    for (std::uint64_t w : s_) {
        h ^= w;
        h = splitmix64(h);
    }
    return Rng(derive_seed(h, stream_id));
}

void Rng::reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    // Avoid the all-zero state (splitmix64 cannot produce four zeros from any
    // seed in practice, but keep the guarantee explicit).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

}  // namespace afpga::base
