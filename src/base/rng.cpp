#include "base/rng.hpp"

namespace afpga::base {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    // Avoid the all-zero state (splitmix64 cannot produce four zeros from any
    // seed in practice, but keep the guarantee explicit).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

}  // namespace afpga::base
