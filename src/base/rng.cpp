#include "base/rng.hpp"

namespace afpga::base {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    // Avoid the all-zero state (splitmix64 cannot produce four zeros from any
    // seed in practice, but keep the guarantee explicit).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Lemire's rejection method for unbiased bounded draws.
    if (bound == 0) return 0;
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace afpga::base
