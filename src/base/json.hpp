/// \file
/// Minimal JSON emission for machine-readable reports (flow telemetry,
/// bench output). Writing only — nothing in the tool reads JSON back.
///
/// Threading: JsonWriter is single-owner mutable state; build a document on
/// one thread (or one per worker) and combine the strings afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace afpga::base {

/// Streaming JSON writer with automatic comma/nesting management.
///
/// Usage:
///     JsonWriter w;
///     w.begin_object();
///     w.key("name").value("place");
///     w.key("trajectory").begin_array();
///     for (double c : costs) w.value(c);
///     w.end_array();
///     w.end_object();
///     std::string s = w.str();
///
/// Misuse (value without key inside an object, unbalanced end_*) throws
/// base::Error.
class JsonWriter {
public:
    /// Open an object ("{").
    JsonWriter& begin_object();
    /// Close the innermost object ("}").
    JsonWriter& end_object();
    /// Open an array ("[").
    JsonWriter& begin_array();
    /// Close the innermost array ("]").
    JsonWriter& end_array();

    /// Object member key; must be followed by exactly one value/container.
    JsonWriter& key(std::string_view k);

    /// Emit a string value (escaped).
    JsonWriter& value(std::string_view v);
    /// Emit a C-string value (escaped).
    JsonWriter& value(const char* v) { return value(std::string_view(v)); }
    /// Emit a number (shortest round-trip formatting).
    JsonWriter& value(double v);
    /// Emit a signed integer.
    JsonWriter& value(std::int64_t v);
    /// Emit an unsigned integer.
    JsonWriter& value(std::uint64_t v);
    /// Emit an int (as int64).
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    /// Emit true/false.
    JsonWriter& value(bool v);

    /// Splice a pre-serialized JSON document in value position (e.g. a
    /// FlowTelemetry::to_json() string inside a bench report).
    JsonWriter& raw(std::string_view json);

    /// The finished document; throws if containers are still open.
    [[nodiscard]] std::string str() const;

private:
    enum class Scope : std::uint8_t { Object, Array };
    void before_value();
    void emit_string(std::string_view s);

    std::string out_;
    std::vector<Scope> scopes_;
    std::vector<bool> has_items_;  // parallel to scopes_
    bool key_pending_ = false;
};

}  // namespace afpga::base
