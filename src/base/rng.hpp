/// \file
/// Deterministic random number generation for CAD algorithms and test
/// sweeps.
///
/// All stochastic stages (placement, tie-breaking, workload generation)
/// take an explicit Rng so that a fixed seed reproduces the exact same
/// bitstream.
///
/// Threading: an Rng object is never shared between threads. Parallel work
/// derives one independent stream per task up front — derive_seed for
/// replica seeds, fork for child generators — which is the seed-derivation
/// half of the determinism contract (docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <vector>

namespace afpga::base {

/// splitmix64-seeded xoshiro256** generator.
///
/// Chosen over std::mt19937_64 for a compact, well-documented state that makes
/// determinism across standard-library implementations trivial to guarantee.
/// The draw methods are header-inline: the annealer takes millions of draws
/// per flow and an out-of-line call per draw showed up in profiles.
class Rng {
public:
    /// Seed the generator (splitmix64 expansion of `seed`).
    explicit Rng(std::uint64_t seed = 0xA5F0'12D3'55AA'9E37ULL) noexcept { reseed(seed); }

    /// Reset the state as if freshly constructed with `seed`.
    void reseed(std::uint64_t seed) noexcept;

    /// Canonical seed of sub-stream `stream_id` under `base_seed`. Parallel
    /// replicas (multi-seed placement, batch jobs) seed replica i with
    /// derive_seed(job_seed, i): the mapping is a pure function of the two
    /// arguments, so the same job seed reproduces the same replica streams
    /// regardless of thread count or scheduling.
    [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base_seed,
                                                   std::uint64_t stream_id) noexcept;

    /// An independent child generator derived from the current state and
    /// `stream_id`. Does not advance this generator: forking any number of
    /// children leaves the parent's sequence untouched, and distinct
    /// stream_ids (or distinct parent states) yield uncorrelated streams.
    [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

    /// Uniform 64-bit word.
    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) noexcept {
        // Lemire's rejection method for unbiased bounded draws.
        if (bound == 0) return 0;
        const std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
        if (hi <= lo) return lo;
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Bernoulli draw.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) noexcept {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Pick a uniformly random element index; container must be non-empty.
    template <typename T>
    std::size_t pick_index(const std::vector<T>& v) noexcept {
        return static_cast<std::size_t>(below(v.size()));
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4] = {};
};

}  // namespace afpga::base
