// Deterministic random number generation for CAD algorithms and test sweeps.
//
// All stochastic stages (placement, tie-breaking, workload generation) take an
// explicit Rng so that a fixed seed reproduces the exact same bitstream.
#pragma once

#include <cstdint>
#include <vector>

namespace afpga::base {

/// splitmix64-seeded xoshiro256** generator.
///
/// Chosen over std::mt19937_64 for a compact, well-documented state that makes
/// determinism across standard-library implementations trivial to guarantee.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0xA5F0'12D3'55AA'9E37ULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept;

    /// Uniform 64-bit word.
    std::uint64_t next() noexcept;

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Bernoulli draw.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) noexcept {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Pick a uniformly random element index; container must be non-empty.
    template <typename T>
    std::size_t pick_index(const std::vector<T>& v) noexcept {
        return static_cast<std::size_t>(below(v.size()));
    }

private:
    std::uint64_t s_[4] = {};
};

}  // namespace afpga::base
