#include "base/json.hpp"

#include <cmath>
#include <cstdio>

#include "base/check.hpp"

namespace afpga::base {

void JsonWriter::before_value() {
    if (scopes_.empty()) {
        check(out_.empty(), "JsonWriter: multiple top-level values");
        return;
    }
    if (scopes_.back() == Scope::Object) {
        check(key_pending_, "JsonWriter: object member needs a key first");
        key_pending_ = false;
        return;
    }
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
}

void JsonWriter::emit_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out_ += "\\\""; break;
            case '\\': out_ += "\\\\"; break;
            case '\n': out_ += "\\n"; break;
            case '\r': out_ += "\\r"; break;
            case '\t': out_ += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
        }
    }
    out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    out_ += '{';
    scopes_.push_back(Scope::Object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    check(!scopes_.empty() && scopes_.back() == Scope::Object && !key_pending_,
          "JsonWriter: unbalanced end_object");
    out_ += '}';
    scopes_.pop_back();
    has_items_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    out_ += '[';
    scopes_.push_back(Scope::Array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    check(!scopes_.empty() && scopes_.back() == Scope::Array, "JsonWriter: unbalanced end_array");
    out_ += ']';
    scopes_.pop_back();
    has_items_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    check(!scopes_.empty() && scopes_.back() == Scope::Object && !key_pending_,
          "JsonWriter: key() only valid directly inside an object");
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
    emit_string(k);
    out_ += ':';
    key_pending_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
    before_value();
    emit_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    before_value();
    if (!std::isfinite(v)) {
        out_ += "null";  // JSON has no Inf/NaN
        return *this;
    }
    // Integral values print without a mantissa; everything else gets enough
    // digits to be useful in a report without round-trip noise.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out_ += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        out_ += buf;
    }
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    before_value();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    before_value();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    before_value();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
    before_value();
    out_ += json;
    return *this;
}

std::string JsonWriter::str() const {
    check(scopes_.empty(), "JsonWriter: unclosed containers");
    return out_;
}

}  // namespace afpga::base
