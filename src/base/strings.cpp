#include "base/strings.hpp"

#include <cstdio>

namespace afpga::base {

std::string format_double(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

std::string format_percent(double ratio, int decimals) {
    return format_double(ratio * 100.0, decimals) + "%";
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string bus_bit(std::string_view name, std::size_t i) {
    return std::string(name) + "[" + std::to_string(i) + "]";
}

}  // namespace afpga::base
