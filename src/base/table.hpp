/// \file
/// Aligned text tables — the output format of every bench binary.
///
/// Threading: single-owner mutable state, like JsonWriter; build per
/// thread, print once.
#pragma once

#include <string>
#include <vector>

namespace afpga::base {

/// Builds a monospace table with a header row, auto-sized columns and an
/// ASCII rule under the header; benches print these to reproduce the paper's
/// tables/figure data as rows.
class TextTable {
public:
    /// Start a table with the given column headers.
    explicit TextTable(std::vector<std::string> header);

    /// Append a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Render with columns padded to the widest cell.
    [[nodiscard]] std::string render() const;

    /// Number of data rows added so far.
    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace afpga::base
