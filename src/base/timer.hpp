/// \file
/// Monotonic wall-clock timing for the flow telemetry and benches.
///
/// Threading: a WallTimer is a single value; each worker/bin/stage times
/// itself with its own instance. Timings feed telemetry only — never
/// routing or placement decisions, which must stay schedule-independent.
#pragma once

#include <chrono>

namespace afpga::base {

/// Stopwatch over std::chrono::steady_clock; starts on construction.
class WallTimer {
public:
    /// Start timing now.
    WallTimer() noexcept : start_(Clock::now()) {}

    /// Restart from now.
    void reset() noexcept { start_ = Clock::now(); }

    /// Milliseconds since construction or the last reset().
    [[nodiscard]] double elapsed_ms() const noexcept {
        return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace afpga::base
