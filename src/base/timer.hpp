// Monotonic wall-clock timing for the flow telemetry and benches.
#pragma once

#include <chrono>

namespace afpga::base {

/// Stopwatch over std::chrono::steady_clock; starts on construction.
class WallTimer {
public:
    WallTimer() noexcept : start_(Clock::now()) {}

    void reset() noexcept { start_ = Clock::now(); }

    [[nodiscard]] double elapsed_ms() const noexcept {
        return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace afpga::base
