/// \file
/// Fixed-size thread pool with a work-stealing task queue.
///
/// The CAD layer races independent annealing replicas, routes partition
/// bins, and runs independent flow jobs concurrently; all are coarse tasks
/// (microseconds to seconds), so the pool optimizes for simplicity and
/// predictable shutdown rather than nanosecond dispatch. Each worker owns a
/// deque: submissions are distributed round-robin, a worker pops its own
/// deque from the back and steals from the front of a victim's deque when
/// it runs dry, so a burst of uneven tasks balances itself without a
/// central bottleneck.
///
/// Determinism contract: the pool never decides *what* is computed, only
/// *when*. Callers that need bit-reproducible results must make each task a
/// pure function of its inputs (see Rng::derive_seed) and combine task
/// results in task-index order, never completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace afpga::base {

class ThreadPool {
public:
    /// `workers == 0` means default_workers().
    explicit ThreadPool(std::size_t workers = 0);
    /// Drains remaining tasks, then joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;             ///< non-copyable
    ThreadPool& operator=(const ThreadPool&) = delete;  ///< non-copyable

    /// Number of worker threads (fixed at construction).
    [[nodiscard]] std::size_t num_workers() const noexcept { return queues_.size(); }

    /// Enqueue a nullary callable; the future carries its result or exception.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /// Run fn(0) .. fn(n-1) on the pool and block until all complete. The
    /// first task exception (lowest index) is rethrown after all finish.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Worker count used for `workers == 0`: the AFPGA_THREADS environment
    /// variable when set to a positive integer (CI pins pool sizes through
    /// it), otherwise std::thread::hardware_concurrency(), never below 1.
    [[nodiscard]] static std::size_t default_workers();

private:
    /// One worker's deque. The owner pops the back (most recently enqueued,
    /// cache-warm), thieves take the front, so idle workers drain the
    /// longest-waiting work first.
    struct Queue {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> task);
    void worker_loop(std::size_t self);
    [[nodiscard]] bool try_take(std::size_t self, std::function<void()>& out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    // Sleep/wake state: pending_ counts queued-but-unstarted tasks; workers
    // wait on cv_ when every deque is empty.
    std::mutex sleep_mu_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    bool stop_ = false;
    std::size_t next_queue_ = 0;  ///< round-robin submission cursor
};

}  // namespace afpga::base
