#include "base/bitvector.hpp"

#include <bit>

#include "base/check.hpp"

namespace afpga::base {

namespace {
constexpr std::size_t kWordBits = 64;
std::size_t word_count(std::size_t nbits) { return (nbits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(std::size_t nbits, bool fill)
    : nbits_(nbits), words_(word_count(nbits), fill ? ~0ULL : 0ULL) {
    mask_tail();
}

bool BitVector::get(std::size_t i) const {
    check(i < nbits_, "BitVector::get out of range");
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool v) {
    check(i < nbits_, "BitVector::set out of range");
    const std::uint64_t mask = 1ULL << (i % kWordBits);
    if (v)
        words_[i / kWordBits] |= mask;
    else
        words_[i / kWordBits] &= ~mask;
}

void BitVector::flip(std::size_t i) {
    check(i < nbits_, "BitVector::flip out of range");
    words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

void BitVector::push_back(bool v) {
    resize(nbits_ + 1);
    set(nbits_ - 1, v);
}

void BitVector::append_bits(std::uint64_t word, std::size_t n) {
    check(n <= kWordBits, "append_bits: n > 64");
    for (std::size_t i = 0; i < n; ++i) push_back((word >> i) & 1ULL);
}

std::uint64_t BitVector::get_bits(std::size_t pos, std::size_t n) const {
    check(n <= kWordBits, "get_bits: n > 64");
    check(pos + n <= nbits_, "get_bits out of range");
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (get(pos + i)) out |= 1ULL << i;
    return out;
}

void BitVector::set_bits(std::size_t pos, std::uint64_t word, std::size_t n) {
    check(n <= kWordBits, "set_bits: n > 64");
    check(pos + n <= nbits_, "set_bits out of range");
    for (std::size_t i = 0; i < n; ++i) set(pos + i, (word >> i) & 1ULL);
}

void BitVector::resize(std::size_t nbits, bool fill) {
    const std::size_t old_bits = nbits_;
    nbits_ = nbits;
    words_.resize(word_count(nbits), 0);
    if (fill && nbits > old_bits) {
        // mask_tail above/below keeps invariants; set new bits individually.
        for (std::size_t i = old_bits; i < nbits; ++i) set(i, true);
    }
    mask_tail();
}

void BitVector::clear() noexcept {
    nbits_ = 0;
    words_.clear();
}

std::size_t BitVector::count_ones() const noexcept {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool BitVector::none() const noexcept {
    for (std::uint64_t w : words_)
        if (w != 0) return false;
    return true;
}

std::uint32_t BitVector::crc32() const noexcept {
    std::uint32_t crc = 0xFFFFFFFFu;
    auto feed = [&crc](std::uint8_t byte) {
        crc ^= byte;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    };
    for (std::uint64_t w : words_)
        for (int b = 0; b < 8; ++b) feed(static_cast<std::uint8_t>(w >> (8 * b)));
    // Length participates so that trailing zeros change the digest.
    for (int b = 0; b < 8; ++b) feed(static_cast<std::uint8_t>(nbits_ >> (8 * b)));
    return ~crc;
}

std::string BitVector::to_string() const {
    std::string s;
    s.reserve(nbits_);
    for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
    return s;
}

void BitVector::mask_tail() noexcept {
    const std::size_t rem = nbits_ % kWordBits;
    if (rem != 0 && !words_.empty()) words_.back() &= (1ULL << rem) - 1ULL;
}

}  // namespace afpga::base
