// Value-change-dump tracing for waveform inspection of simulations.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace afpga::sim {

/// Streams net transitions of a running Simulator into a VCD file
/// (timescale 1 ps). Attach before running; the file is finalised when the
/// writer is destroyed.
class VcdWriter {
public:
    /// Trace the given nets (or every named net when `nets` is empty).
    VcdWriter(Simulator& sim, const std::string& path, std::vector<NetId> nets = {});
    ~VcdWriter();

    VcdWriter(const VcdWriter&) = delete;
    VcdWriter& operator=(const VcdWriter&) = delete;

private:
    void emit(std::size_t idx, Logic v, std::int64_t t);

    Simulator& sim_;
    std::ofstream out_;
    std::vector<std::string> codes_;
    std::int64_t last_time_ = -1;
};

}  // namespace afpga::sim
