#include "sim/monitors.hpp"

#include "base/check.hpp"

namespace afpga::sim {

GlitchMonitor::GlitchMonitor(Simulator& sim, std::vector<NetId> nets,
                             std::int64_t min_pulse_ps) {
    last_change_.assign(nets.size(), -1);
    for (std::size_t i = 0; i < nets.size(); ++i) {
        const NetId net = nets[i];
        sim.on_commit(net, [this, i, net, min_pulse_ps](Logic, std::int64_t t) {
            if (last_change_[i] >= 0 && t - last_change_[i] < min_pulse_ps)
                glitches_.push_back({net, t, t - last_change_[i]});
            last_change_[i] = t;
        });
    }
}

DualRailChannelMonitor::DualRailChannelMonitor(Simulator& sim,
                                               std::vector<asynclib::DualRail> bits, NetId ack,
                                               std::string name)
    : sim_(sim), bits_(std::move(bits)), ack_(ack), name_(std::move(name)) {
    for (std::size_t b = 0; b < bits_.size(); ++b) {
        sim_.on_commit(bits_[b].t, [this, b](Logic v, std::int64_t t) {
            rail_changed(b, true, v, t);
        });
        sim_.on_commit(bits_[b].f, [this, b](Logic v, std::int64_t t) {
            rail_changed(b, false, v, t);
        });
    }
}

void DualRailChannelMonitor::rail_changed(std::size_t bit, bool is_true_rail, Logic v,
                                          std::int64_t t) {
    const auto& dr = bits_[bit];
    const Logic other = sim_.value(is_true_rail ? dr.f : dr.t);
    if (v == Logic::T && other == Logic::T)
        violations_.push_back(
            {name_ + ": both rails of bit " + std::to_string(bit) + " high", t});
    // Phase-discipline checks need the acknowledge; without one only the
    // exclusivity invariant and token counting are meaningful.
    if (ack_.valid()) {
        const Logic ack = sim_.value(ack_);
        if (ack == Logic::F && v == Logic::F && word_was_complete_)
            violations_.push_back({name_ + ": rail of bit " + std::to_string(bit) +
                                       " retracted before acknowledge",
                                   t});
        if (ack == Logic::T && v == Logic::T)
            violations_.push_back({name_ + ": rail of bit " + std::to_string(bit) +
                                       " rose during return-to-zero",
                                   t});
    }
    check_word_complete(t);
}

void DualRailChannelMonitor::check_word_complete(std::int64_t) {
    bool complete = true;
    bool empty = true;
    for (const auto& dr : bits_) {
        const bool valid = sim_.value(dr.t) == Logic::T || sim_.value(dr.f) == Logic::T;
        complete = complete && valid;
        empty = empty && !valid;
    }
    if (complete && !word_was_complete_) {
        ++tokens_;
        word_was_complete_ = true;
    }
    if (empty) word_was_complete_ = false;
}

TwoPhaseBundledMonitor::TwoPhaseBundledMonitor(Simulator& sim, std::vector<NetId> data,
                                               NetId req, NetId ack, std::string name)
    : sim_(sim), data_(std::move(data)), name_(std::move(name)) {
    sim_.on_commit(req, [this](Logic, std::int64_t) {
        outstanding_ = true;
        std::uint64_t word = 0;
        for (std::size_t i = 0; i < data_.size(); ++i)
            if (sim_.value(data_[i]) == Logic::T) word |= 1ULL << i;
        tokens_.push_back(word);
    });
    if (ack.valid())
        sim_.on_commit(ack, [this](Logic, std::int64_t) { outstanding_ = false; });
    for (std::size_t i = 0; i < data_.size(); ++i) {
        sim_.on_commit(data_[i], [this, i](Logic, std::int64_t t) {
            if (outstanding_)
                violations_.push_back({name_ + ": data[" + std::to_string(i) +
                                           "] changed inside a 2-phase token window",
                                       t});
        });
    }
}

BundledChannelMonitor::BundledChannelMonitor(Simulator& sim, std::vector<NetId> data, NetId req,
                                             NetId ack, std::string name)
    : sim_(sim), data_(std::move(data)), req_(req), ack_(ack), name_(std::move(name)) {
    sim_.on_commit(req_, [this](Logic v, std::int64_t t) {
        if (v == Logic::T) {
            outstanding_ = true;
            sampled_ = sample_word();
            tokens_.push_back(sampled_);
        } else {
            outstanding_ = false;
        }
        (void)t;
    });
    if (ack_.valid())
        sim_.on_commit(ack_, [this](Logic v, std::int64_t) {
            // Once the receiver acknowledges, it has captured the data; the
            // bundling window closes.
            if (v == Logic::T) outstanding_ = false;
        });
    for (std::size_t i = 0; i < data_.size(); ++i) {
        sim_.on_commit(data_[i], [this, i](Logic, std::int64_t t) {
            if (outstanding_)
                violations_.push_back({name_ + ": data[" + std::to_string(i) +
                                           "] changed while request outstanding "
                                           "(bundling constraint broken)",
                                       t});
        });
    }
}

std::uint64_t BundledChannelMonitor::sample_word() const {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (sim_.value(data_[i]) == Logic::T) w |= 1ULL << i;
    return w;
}

}  // namespace afpga::sim
