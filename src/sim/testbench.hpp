// Token-level blocking testbench helpers.
//
// These run one 4-phase transaction at a time against a device under test
// and return decoded results — the workhorse of the functional tests and of
// the pre-/post-route equivalence checks.
#pragma once

#include <cstdint>
#include <vector>

#include "asynclib/styles.hpp"
#include "sim/simulator.hpp"

namespace afpga::sim {

/// Interface of a QDI combinational block with completion detection
/// (e.g. asynclib::QdiAdder): input rails are PIs, `done` is the completion
/// output, output rails are read after done rises.
struct QdiCombIface {
    std::vector<asynclib::DualRail> inputs;   ///< PIs, LSB first
    std::vector<asynclib::DualRail> outputs;  ///< LSB first
    NetId done;
};

/// Apply one dual-rail token through a full 4-phase cycle:
/// drive codeword -> wait done rise -> decode outputs -> drive spacer ->
/// wait done fall. Throws on timeout or on X/incomplete output codewords.
[[nodiscard]] std::uint64_t qdi_apply_token(Simulator& sim, const QdiCombIface& iface,
                                            std::uint64_t value,
                                            std::int64_t timeout_ps = 1'000'000);

/// Interface of a single-stage bundled-data block (e.g. asynclib::MpAdder).
struct BundledStageIface {
    std::vector<NetId> data_in;   ///< PIs
    NetId req_in;                 ///< PI
    NetId ack_out;                ///< PI (we play the sink)
    std::vector<NetId> data_out;  ///< read at req_out rise
    NetId req_out;
    NetId ack_in;                 ///< DUT ack to us (the source)
};

/// Apply one bundled token through a full 4-phase cycle and return the
/// sampled output word. `data_settle_ps` is the source-side bundling slack.
[[nodiscard]] std::uint64_t bundled_apply_token(Simulator& sim, const BundledStageIface& iface,
                                                std::uint64_t value,
                                                std::int64_t data_settle_ps = 50,
                                                std::int64_t timeout_ps = 1'000'000);

/// Decode a dual-rail word from current simulator values; throws if any bit
/// is not a valid 1-of-2 codeword.
[[nodiscard]] std::uint64_t decode_dual_rail(const Simulator& sim,
                                             const std::vector<asynclib::DualRail>& word);

}  // namespace afpga::sim
