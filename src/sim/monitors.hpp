// Runtime checkers attached to a Simulator:
//  - GlitchMonitor: detects pulses narrower than a threshold (hazards);
//  - DualRailChannelMonitor: 1-of-2 exclusivity + 4-phase monotonicity;
//  - BundledChannelMonitor: the bundling constraint (data stable while the
//    request is pending) — the property the PDE exists to guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "sim/simulator.hpp"

namespace afpga::sim {

/// One detected protocol/hazard violation.
struct Violation {
    std::string what;
    std::int64_t at_ps = 0;
};

/// Flags any net pulse (value held for less than `min_pulse_ps`) on the
/// watched nets. Asynchronous logic must be hazard-free: a glitch on a
/// request or rail wire is a functional bug, not a timing nuisance.
class GlitchMonitor {
public:
    GlitchMonitor(Simulator& sim, std::vector<NetId> nets, std::int64_t min_pulse_ps);

    struct Glitch {
        NetId net;
        std::int64_t at_ps;
        std::int64_t width_ps;
    };
    [[nodiscard]] const std::vector<Glitch>& glitches() const noexcept { return glitches_; }

private:
    std::vector<std::int64_t> last_change_;
    std::vector<Glitch> glitches_;
};

/// Watches a dual-rail word + acknowledge for 4-phase RTZ discipline:
///  - both rails of a bit high -> "exclusivity" violation;
///  - a rail falling while ack is low (retraction before acknowledge) or
///    rising while ack is high (new data before return-to-zero) ->
///    "monotonicity" violation.
class DualRailChannelMonitor {
public:
    DualRailChannelMonitor(Simulator& sim, std::vector<asynclib::DualRail> bits, NetId ack,
                           std::string name);

    [[nodiscard]] const std::vector<Violation>& violations() const noexcept { return violations_; }
    /// Number of complete valid codewords observed.
    [[nodiscard]] std::uint64_t tokens_seen() const noexcept { return tokens_; }

private:
    void rail_changed(std::size_t bit, bool is_true_rail, Logic v, std::int64_t t);
    void check_word_complete(std::int64_t t);

    Simulator& sim_;
    std::vector<asynclib::DualRail> bits_;
    NetId ack_;
    std::string name_;
    std::vector<Violation> violations_;
    std::uint64_t tokens_ = 0;
    bool word_was_complete_ = false;
};

/// 2-phase (transition-signalling) bundling checker: a token is outstanding
/// between any req toggle and the following ack toggle; data must hold
/// still in that window.
class TwoPhaseBundledMonitor {
public:
    TwoPhaseBundledMonitor(Simulator& sim, std::vector<NetId> data, NetId req, NetId ack,
                           std::string name);

    [[nodiscard]] const std::vector<Violation>& violations() const noexcept { return violations_; }
    [[nodiscard]] const std::vector<std::uint64_t>& tokens() const noexcept { return tokens_; }

private:
    Simulator& sim_;
    std::vector<NetId> data_;
    std::string name_;
    std::vector<Violation> violations_;
    std::vector<std::uint64_t> tokens_;
    bool outstanding_ = false;
};

/// Watches a bundled-data channel: samples data at req rise and reports any
/// data wire change while the token is outstanding (req high, ack low).
class BundledChannelMonitor {
public:
    BundledChannelMonitor(Simulator& sim, std::vector<NetId> data, NetId req, NetId ack,
                          std::string name);

    [[nodiscard]] const std::vector<Violation>& violations() const noexcept { return violations_; }
    /// Data words sampled at each req rise (LSB = data[0]).
    [[nodiscard]] const std::vector<std::uint64_t>& tokens() const noexcept { return tokens_; }

private:
    [[nodiscard]] std::uint64_t sample_word() const;

    Simulator& sim_;
    std::vector<NetId> data_;
    NetId req_;
    NetId ack_;
    std::string name_;
    std::vector<Violation> violations_;
    std::vector<std::uint64_t> tokens_;
    bool outstanding_ = false;
    std::uint64_t sampled_ = 0;
};

}  // namespace afpga::sim
