#include "sim/simulator.hpp"

#include <algorithm>
#include <span>

#include "base/check.hpp"

namespace afpga::sim {

using base::check;
using netlist::Cell;
using netlist::CellFunc;
using netlist::Net;

Simulator::Simulator(const Netlist& nl, InitState init) : nl_(nl) {
    const Logic v0 = init == InitState::AllZero ? Logic::F : Logic::X;
    net_value_.assign(nl.num_nets(), v0);
    transitions_.assign(nl.num_nets(), 0);
    pending_stamp_.assign(nl.num_nets(), 0);
    pending_value_.assign(nl.num_nets(), Logic::X);
    callbacks_.resize(nl.num_nets());
    sink_delay_.resize(nl.num_nets());
    for (std::size_t n = 0; n < nl.num_nets(); ++n)
        sink_delay_[n].assign(nl.net(NetId{n}).sinks.size(), 0);

    pin_base_.resize(nl.num_cells() + 1, 0);
    for (std::size_t c = 0; c < nl.num_cells(); ++c)
        pin_base_[c + 1] = pin_base_[c] + nl.cell(CellId{c}).inputs.size();
    pin_value_.assign(pin_base_.back(), v0);

    // Settle the initial state: every cell whose output disagrees with the
    // init value fires at t=0 (e.g. inverters rise out of the all-zero state).
    for (std::size_t c = 0; c < nl.num_cells(); ++c) evaluate_cell(CellId{c});
}

Logic Simulator::value(NetId net) const {
    check(net.valid() && net.index() < net_value_.size(), "Simulator::value: bad net");
    return net_value_[net.index()];
}

Logic Simulator::value(const std::string& net_name) const {
    const NetId id = nl_.find_net(net_name);
    check(id.valid(), "Simulator::value: unknown net " + net_name);
    return value(id);
}

void Simulator::schedule_pi(NetId pi, Logic v, std::int64_t delay_ps) {
    check(pi.valid() && nl_.net(pi).is_primary_input, "schedule_pi: not a primary input");
    check(delay_ps >= 0, "schedule_pi: negative delay");
    // Transport semantics (stamp 0): successive environment edges all apply.
    queue_.push(Event{now_ + delay_ps, seq_++, pi.value(), v, Event::Kind::NetCommit, 0});
}

void Simulator::set_sink_delay(NetId net, std::size_t sink_idx, std::int64_t delay_ps) {
    check(net.valid() && net.index() < sink_delay_.size(), "set_sink_delay: bad net");
    check(sink_idx < sink_delay_[net.index()].size(), "set_sink_delay: bad sink");
    check(delay_ps >= 0, "set_sink_delay: negative delay");
    sink_delay_[net.index()][sink_idx] = delay_ps;
}

void Simulator::set_net_delay(NetId net, std::int64_t delay_ps) {
    check(net.valid() && net.index() < sink_delay_.size(), "set_net_delay: bad net");
    for (auto& d : sink_delay_[net.index()]) d = delay_ps;
}

void Simulator::schedule_commit(NetId net, Logic v, std::int64_t at) {
    const std::size_t n = net.index();
    if (pending_stamp_[n] != 0) {
        if (pending_value_[n] == v) return;       // already on its way
        pending_stamp_[n] = 0;                    // inertial cancellation
    }
    if (v == net_value_[n]) return;               // nothing to do
    static_assert(sizeof(seq_) == 8);
    const std::uint64_t stamp = ++stamp_counter_;
    pending_stamp_[n] = stamp;
    pending_value_[n] = v;
    queue_.push(Event{at, seq_++, net.value(), v, Event::Kind::NetCommit, stamp});
}

void Simulator::evaluate_cell(CellId cell) {
    const Cell& c = nl_.cell(cell);
    const std::size_t base = pin_base_[cell.index()];
    const std::span<const Logic> pins(pin_value_.data() + base, c.inputs.size());
    const Logic current = net_value_[c.output.index()];
    const Logic out =
        netlist::eval_cell(c.func, pins, current, c.table ? &*c.table : nullptr);
    const std::int64_t d = c.delay_ps.value_or(netlist::default_delay_ps(c.func));
    if (c.func == CellFunc::Delay) {
        // Pure transport: every input edge is forwarded unconditionally (a
        // same-value commit is a no-op at delivery time).
        queue_.push(Event{now_ + d, seq_++, c.output.value(), out, Event::Kind::NetCommit, 0});
        return;
    }
    schedule_commit(c.output, out, now_ + d);
}

void Simulator::commit_net(NetId net, Logic v) {
    const std::size_t n = net.index();
    if (net_value_[n] == v) return;
    net_value_[n] = v;
    ++transitions_[n];
    const Net& info = nl_.net(net);
    for (std::size_t s = 0; s < info.sinks.size(); ++s) {
        const std::int64_t extra = sink_delay_[n][s];
        const netlist::PinRef sink = info.sinks[s];
        const std::uint32_t pin_global =
            static_cast<std::uint32_t>(pin_base_[sink.cell.index()] + sink.pin);
        queue_.push(Event{now_ + extra, seq_++, pin_global, v, Event::Kind::PinUpdate, 0});
    }
    for (const auto& cb : callbacks_[n]) cb(v, now_);
}

RunResult Simulator::run(std::int64_t max_time_ps) {
    return run_until(NetId::invalid(), Logic::X, max_time_ps);
}

RunResult Simulator::run_until(NetId net, Logic v, std::int64_t max_time_ps) {
    RunResult res;
    const bool has_condition = net.valid();
    if (has_condition && net_value_[net.index()] == v) {
        res.end_time_ps = now_;
        return res;
    }
    std::uint64_t processed = 0;
    while (!queue_.empty()) {
        const Event ev = queue_.top();
        if (ev.time > max_time_ps) break;
        queue_.pop();
        if (processed >= event_budget_) {
            res.budget_exceeded = true;
            break;
        }
        now_ = ev.time;
        ++processed;
        ++total_events_;
        if (ev.kind == Event::Kind::NetCommit) {
            const NetId target{ev.target};
            if (ev.stamp != 0) {
                if (pending_stamp_[target.index()] != ev.stamp) continue;  // cancelled
                pending_stamp_[target.index()] = 0;
            }
            commit_net(target, ev.value);
            if (has_condition && net_value_[net.index()] == v) {
                res.end_time_ps = now_;
                res.events = processed;
                return res;
            }
        } else {
            // Locate the owning cell by binary search on pin_base_.
            const std::uint32_t pin_global = ev.target;
            auto it = std::upper_bound(pin_base_.begin(), pin_base_.end(), pin_global);
            const std::size_t cell_idx = static_cast<std::size_t>(it - pin_base_.begin()) - 1;
            if (pin_value_[pin_global] == ev.value) continue;
            pin_value_[pin_global] = ev.value;
            evaluate_cell(CellId{cell_idx});
        }
    }
    res.end_time_ps = now_;
    res.events = processed;
    res.quiescent = queue_.empty();
    return res;
}

void Simulator::on_commit(NetId net, std::function<void(Logic, std::int64_t)> cb) {
    check(net.valid() && net.index() < callbacks_.size(), "on_commit: bad net");
    callbacks_[net.index()].push_back(std::move(cb));
}

std::uint64_t Simulator::transitions(NetId net) const {
    check(net.valid() && net.index() < transitions_.size(), "transitions: bad net");
    return transitions_[net.index()];
}

}  // namespace afpga::sim
