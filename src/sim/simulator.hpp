// Event-driven three-valued gate-level simulator.
//
// Semantics:
//  - every net carries a Logic value (0/1/X); initial state is configurable
//    (all-zero models the post-reset RTZ idle state asynchronous 4-phase
//    circuits start from);
//  - each cell has an intrinsic inertial delay (override or library default);
//    a re-evaluation that contradicts a pending output transition cancels it
//    (classic inertial-delay glitch suppression), except for DELAY cells
//    which are pure transport delays (every edge propagates — exactly what a
//    programmable delay line does);
//  - per-sink extra wire delays model routing: a net commit is seen by each
//    sink pin after its own annotated delay (this is how post-route timing
//    and deliberately broken isochronic forks are injected);
//  - primary inputs change only via schedule_pi();
//  - observers can register commit callbacks per net (channel sources/sinks,
//    protocol monitors, VCD tracing are all built on this hook).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace afpga::sim {

using netlist::CellId;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;

/// Initial net values at time 0.
enum class InitState : std::uint8_t {
    AllZero,  ///< post-reset idle (the usual choice for 4-phase RTZ circuits)
    AllX,     ///< fully unknown (used to study initialisation behaviour)
};

/// Simulation outcome of a run_* call.
struct RunResult {
    std::int64_t end_time_ps = 0;   ///< time of the last processed event
    std::uint64_t events = 0;       ///< events processed during this call
    bool quiescent = false;         ///< event queue drained
    bool budget_exceeded = false;   ///< stopped by the event budget (oscillation guard)
};

class Simulator {
public:
    explicit Simulator(const Netlist& nl, InitState init = InitState::AllZero);

    [[nodiscard]] const Netlist& netlist() const noexcept { return nl_; }
    [[nodiscard]] std::int64_t now() const noexcept { return now_; }
    [[nodiscard]] Logic value(NetId net) const;
    /// Value of a named net (throws if the name is unknown).
    [[nodiscard]] Logic value(const std::string& net_name) const;

    /// Schedule a primary-input change `delay_ps` after now().
    void schedule_pi(NetId pi, Logic v, std::int64_t delay_ps = 0);

    /// Extra wire delay from `net`'s driver to sink pin index `sink_idx`
    /// (index into Netlist net sinks). Cumulative with the cell delay of the
    /// sink's evaluation.
    void set_sink_delay(NetId net, std::size_t sink_idx, std::int64_t delay_ps);
    /// Same extra delay for every sink of `net`.
    void set_net_delay(NetId net, std::int64_t delay_ps);

    /// Process events until the queue drains or `max_time_ps` / the event
    /// budget is hit.
    RunResult run(std::int64_t max_time_ps = std::numeric_limits<std::int64_t>::max());

    /// Run until `net` commits value `v` (returns immediately if it already
    /// holds). RunResult.quiescent is false if the condition was met first.
    RunResult run_until(NetId net, Logic v,
                        std::int64_t max_time_ps = std::numeric_limits<std::int64_t>::max());

    /// Commit observer; fired after `net` takes a new value. Keep callbacks
    /// re-entrant-safe: they may call schedule_pi but not run().
    void on_commit(NetId net, std::function<void(Logic, std::int64_t)> cb);

    /// Total committed transitions per net since construction.
    [[nodiscard]] std::uint64_t transitions(NetId net) const;
    [[nodiscard]] std::uint64_t total_events() const noexcept { return total_events_; }

    /// Oscillation guard: maximum events per run() call (default 20M).
    void set_event_budget(std::uint64_t budget) noexcept { event_budget_ = budget; }

private:
    struct Event {
        std::int64_t time;
        std::uint64_t seq;    // FIFO tie-break for determinism
        std::uint32_t target; // pin-update: encoded (cell,pin); net-commit: net
        Logic value;
        enum class Kind : std::uint8_t { NetCommit, PinUpdate } kind;
        std::uint64_t stamp;  // cancellation stamp for inertial delays
    };
    struct EventOrder {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void commit_net(NetId net, Logic v);
    void evaluate_cell(CellId cell);
    void schedule_commit(NetId net, Logic v, std::int64_t at);

    const Netlist& nl_;
    std::int64_t now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t stamp_counter_ = 0;
    std::uint64_t total_events_ = 0;
    std::uint64_t event_budget_ = 20'000'000;

    std::vector<Logic> net_value_;
    std::vector<Logic> pin_value_;                // flattened cell input pins
    std::vector<std::size_t> pin_base_;           // cell -> first pin index
    std::vector<std::vector<std::int64_t>> sink_delay_;  // per net, per sink
    // Pending inertial commit per net: stamp of the live scheduled event.
    std::vector<std::uint64_t> pending_stamp_;
    std::vector<Logic> pending_value_;
    std::vector<std::uint64_t> transitions_;
    std::vector<std::vector<std::function<void(Logic, std::int64_t)>>> callbacks_;

    std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

}  // namespace afpga::sim
