#include "sim/channels.hpp"

#include "base/check.hpp"

namespace afpga::sim {

using base::check;

double TokenTimes::steady_period_ps() const {
    if (at_ps.size() < 3) return 0.0;
    const std::size_t start = at_ps.size() / 2;
    const std::size_t n = at_ps.size() - 1 - start;
    if (n == 0) return 0.0;
    return static_cast<double>(at_ps.back() - at_ps[start]) / static_cast<double>(n);
}

// --- DrStreamSource ---------------------------------------------------------

DrStreamSource::DrStreamSource(Simulator& sim, std::vector<asynclib::DualRail> rails,
                               NetId ack_in, std::vector<std::uint64_t> tokens,
                               std::int64_t env_delay_ps)
    : sim_(sim), rails_(std::move(rails)), tokens_(std::move(tokens)), env_delay_(env_delay_ps) {
    check(!rails_.empty(), "DrStreamSource: no rails");
    sim_.on_commit(ack_in, [this](Logic v, std::int64_t) {
        if (v == Logic::T && in_flight_) {
            drive_spacer();
        } else if (v == Logic::F && in_flight_) {
            // RTZ complete; token fully handed over.
            in_flight_ = false;
            ++sent_;
            if (next_ < tokens_.size()) drive_token();
        }
    });
}

void DrStreamSource::start() {
    if (next_ < tokens_.size()) drive_token();
}

void DrStreamSource::drive_token() {
    const std::uint64_t v = tokens_[next_++];
    in_flight_ = true;
    for (std::size_t i = 0; i < rails_.size(); ++i) {
        const bool bit = (v >> i) & 1ULL;
        sim_.schedule_pi(rails_[i].t, netlist::from_bool(bit), env_delay_);
        sim_.schedule_pi(rails_[i].f, netlist::from_bool(!bit), env_delay_);
    }
}

void DrStreamSource::drive_spacer() {
    for (const auto& r : rails_) {
        sim_.schedule_pi(r.t, Logic::F, env_delay_);
        sim_.schedule_pi(r.f, Logic::F, env_delay_);
    }
}

// --- DrStreamSink -----------------------------------------------------------

DrStreamSink::DrStreamSink(Simulator& sim, std::vector<asynclib::DualRail> rails, NetId ack_pi,
                           std::int64_t env_delay_ps)
    : sim_(sim), rails_(std::move(rails)), ack_pi_(ack_pi), env_delay_(env_delay_ps) {
    check(!rails_.empty(), "DrStreamSink: no rails");
    for (const auto& r : rails_) {
        sim_.on_commit(r.t, [this](Logic, std::int64_t) { rails_changed(); });
        sim_.on_commit(r.f, [this](Logic, std::int64_t) { rails_changed(); });
    }
}

void DrStreamSink::rails_changed() {
    bool complete = true;
    bool empty = true;
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < rails_.size(); ++i) {
        const bool t = sim_.value(rails_[i].t) == Logic::T;
        const bool f = sim_.value(rails_[i].f) == Logic::T;
        if (t) word |= 1ULL << i;
        complete = complete && (t || f);
        empty = empty && !(t || f);
    }
    if (complete && !holding_token_) {
        holding_token_ = true;
        values_.push_back(word);
        times_.at_ps.push_back(sim_.now());
        sim_.schedule_pi(ack_pi_, Logic::T, env_delay_);
    } else if (empty && holding_token_) {
        holding_token_ = false;
        sim_.schedule_pi(ack_pi_, Logic::F, env_delay_);
    }
}

// --- BdStreamSource ---------------------------------------------------------

BdStreamSource::BdStreamSource(Simulator& sim, std::vector<NetId> data_pis, NetId req_pi,
                               NetId ack_in, std::vector<std::uint64_t> tokens,
                               std::int64_t env_delay_ps, std::int64_t data_settle_ps)
    : sim_(sim),
      data_(std::move(data_pis)),
      req_(req_pi),
      tokens_(std::move(tokens)),
      env_delay_(env_delay_ps),
      settle_(data_settle_ps) {
    sim_.on_commit(ack_in, [this](Logic v, std::int64_t) {
        if (v == Logic::T && in_flight_) {
            // Token accepted: return request to zero.
            sim_.schedule_pi(req_, Logic::F, env_delay_);
        } else if (v == Logic::F && in_flight_) {
            in_flight_ = false;
            ++sent_;
            if (next_ < tokens_.size()) drive_token();
        }
    });
}

void BdStreamSource::start() {
    if (next_ < tokens_.size()) drive_token();
}

void BdStreamSource::drive_token() {
    const std::uint64_t v = tokens_[next_++];
    in_flight_ = true;
    for (std::size_t i = 0; i < data_.size(); ++i)
        sim_.schedule_pi(data_[i], netlist::from_bool((v >> i) & 1ULL), env_delay_);
    // Bundling at the source: the request follows the data by the settle time.
    sim_.schedule_pi(req_, Logic::T, env_delay_ + settle_);
}

// --- Bd2StreamSource (2-phase) ----------------------------------------------

Bd2StreamSource::Bd2StreamSource(Simulator& sim, std::vector<NetId> data_pis, NetId req_pi,
                                 NetId ack_in, std::vector<std::uint64_t> tokens,
                                 std::int64_t env_delay_ps, std::int64_t data_settle_ps)
    : sim_(sim),
      data_(std::move(data_pis)),
      req_(req_pi),
      tokens_(std::move(tokens)),
      env_delay_(env_delay_ps),
      settle_(data_settle_ps) {
    // Every toggle of the DUT's ack means "token consumed, send the next".
    sim_.on_commit(ack_in, [this](Logic, std::int64_t) {
        ++sent_;
        if (next_ < tokens_.size()) drive_token();
    });
}

void Bd2StreamSource::start() {
    if (next_ < tokens_.size()) drive_token();
}

void Bd2StreamSource::drive_token() {
    const std::uint64_t v = tokens_[next_++];
    for (std::size_t i = 0; i < data_.size(); ++i)
        sim_.schedule_pi(data_[i], netlist::from_bool((v >> i) & 1ULL), env_delay_);
    req_phase_ = !req_phase_;
    sim_.schedule_pi(req_, netlist::from_bool(req_phase_), env_delay_ + settle_);
}

// --- Bd2StreamSink (2-phase) --------------------------------------------------

Bd2StreamSink::Bd2StreamSink(Simulator& sim, std::vector<NetId> data, NetId req_in,
                             NetId ack_pi, std::int64_t env_delay_ps)
    : sim_(sim), data_(std::move(data)), ack_pi_(ack_pi), env_delay_(env_delay_ps) {
    sim_.on_commit(req_in, [this](Logic, std::int64_t) {
        std::uint64_t word = 0;
        for (std::size_t i = 0; i < data_.size(); ++i)
            if (sim_.value(data_[i]) == Logic::T) word |= 1ULL << i;
        values_.push_back(word);
        times_.at_ps.push_back(sim_.now());
        ack_phase_ = !ack_phase_;
        sim_.schedule_pi(ack_pi_, netlist::from_bool(ack_phase_), env_delay_);
    });
}

// --- BdStreamSink -----------------------------------------------------------

BdStreamSink::BdStreamSink(Simulator& sim, std::vector<NetId> data, NetId req_in, NetId ack_pi,
                           std::int64_t env_delay_ps)
    : sim_(sim), data_(std::move(data)), ack_pi_(ack_pi), env_delay_(env_delay_ps) {
    sim_.on_commit(req_in, [this](Logic v, std::int64_t) {
        if (v == Logic::T) {
            std::uint64_t word = 0;
            for (std::size_t i = 0; i < data_.size(); ++i)
                if (sim_.value(data_[i]) == Logic::T) word |= 1ULL << i;
            values_.push_back(word);
            times_.at_ps.push_back(sim_.now());
            sim_.schedule_pi(ack_pi_, Logic::T, env_delay_);
        } else {
            sim_.schedule_pi(ack_pi_, Logic::F, env_delay_);
        }
    });
}

}  // namespace afpga::sim
