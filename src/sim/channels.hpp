// Environment processes that source and sink 4-phase channel traffic.
//
// Each process is a small state machine driven by Simulator commit
// callbacks; it reacts to the device under test with a configurable
// environment response delay, so pipelines can be streamed at speed and
// their cycle time measured.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "sim/simulator.hpp"

namespace afpga::sim {

/// Statistics common to sources and sinks.
struct TokenTimes {
    std::vector<std::int64_t> at_ps;  ///< completion time of each token

    /// Steady-state token period: mean inter-token gap over the second half
    /// of the stream (warm-up excluded). 0 if fewer than 3 tokens.
    [[nodiscard]] double steady_period_ps() const;
};

/// Streams dual-rail tokens into PI rails; listens to the DUT acknowledge.
class DrStreamSource {
public:
    /// `rails` must be primary inputs; `ack_in` is the DUT's acknowledge
    /// output net (rises when the token is consumed, falls after RTZ).
    DrStreamSource(Simulator& sim, std::vector<asynclib::DualRail> rails, NetId ack_in,
                   std::vector<std::uint64_t> tokens, std::int64_t env_delay_ps = 100);

    /// Drive the first token (call once before running the simulator).
    void start();

    [[nodiscard]] std::size_t tokens_sent() const noexcept { return sent_; }
    [[nodiscard]] bool done() const noexcept { return next_ >= tokens_.size() && !in_flight_; }

private:
    void drive_token();
    void drive_spacer();

    Simulator& sim_;
    std::vector<asynclib::DualRail> rails_;
    std::vector<std::uint64_t> tokens_;
    std::int64_t env_delay_;
    std::size_t next_ = 0;
    std::size_t sent_ = 0;
    bool in_flight_ = false;
};

/// Consumes dual-rail tokens from DUT output rails; drives the PI ack.
class DrStreamSink {
public:
    DrStreamSink(Simulator& sim, std::vector<asynclib::DualRail> rails, NetId ack_pi,
                 std::int64_t env_delay_ps = 100);

    [[nodiscard]] const std::vector<std::uint64_t>& received() const noexcept { return values_; }
    [[nodiscard]] const TokenTimes& times() const noexcept { return times_; }

private:
    void rails_changed();

    Simulator& sim_;
    std::vector<asynclib::DualRail> rails_;
    NetId ack_pi_;
    std::int64_t env_delay_;
    bool holding_token_ = false;
    std::vector<std::uint64_t> values_;
    TokenTimes times_;
};

/// Streams bundled-data tokens: drives data PIs and the req PI, listens to
/// the DUT's ack output.
class BdStreamSource {
public:
    BdStreamSource(Simulator& sim, std::vector<NetId> data_pis, NetId req_pi, NetId ack_in,
                   std::vector<std::uint64_t> tokens, std::int64_t env_delay_ps = 100,
                   std::int64_t data_settle_ps = 50);

    void start();

    [[nodiscard]] std::size_t tokens_sent() const noexcept { return sent_; }
    [[nodiscard]] bool done() const noexcept { return next_ >= tokens_.size() && !in_flight_; }

private:
    void drive_token();

    Simulator& sim_;
    std::vector<NetId> data_;
    NetId req_;
    std::vector<std::uint64_t> tokens_;
    std::int64_t env_delay_;
    std::int64_t settle_;
    std::size_t next_ = 0;
    std::size_t sent_ = 0;
    bool in_flight_ = false;
};

/// Streams 2-phase (transition-signalling) bundled tokens: every req TOGGLE
/// carries a token; the DUT acknowledges by toggling its ack output.
class Bd2StreamSource {
public:
    Bd2StreamSource(Simulator& sim, std::vector<NetId> data_pis, NetId req_pi, NetId ack_in,
                    std::vector<std::uint64_t> tokens, std::int64_t env_delay_ps = 100,
                    std::int64_t data_settle_ps = 50);

    void start();

    [[nodiscard]] std::size_t tokens_sent() const noexcept { return sent_; }

private:
    void drive_token();

    Simulator& sim_;
    std::vector<NetId> data_;
    NetId req_;
    std::vector<std::uint64_t> tokens_;
    std::int64_t env_delay_;
    std::int64_t settle_;
    std::size_t next_ = 0;
    std::size_t sent_ = 0;
    bool req_phase_ = false;  ///< next edge direction
};

/// Consumes 2-phase bundled tokens: samples data at every req toggle and
/// toggles the ack PI back.
class Bd2StreamSink {
public:
    Bd2StreamSink(Simulator& sim, std::vector<NetId> data, NetId req_in, NetId ack_pi,
                  std::int64_t env_delay_ps = 100);

    [[nodiscard]] const std::vector<std::uint64_t>& received() const noexcept { return values_; }
    [[nodiscard]] const TokenTimes& times() const noexcept { return times_; }

private:
    Simulator& sim_;
    std::vector<NetId> data_;
    NetId ack_pi_;
    std::int64_t env_delay_;
    bool ack_phase_ = false;
    std::vector<std::uint64_t> values_;
    TokenTimes times_;
};

/// Consumes bundled-data tokens: samples data at req rise, drives the ack PI.
class BdStreamSink {
public:
    BdStreamSink(Simulator& sim, std::vector<NetId> data, NetId req_in, NetId ack_pi,
                 std::int64_t env_delay_ps = 100);

    [[nodiscard]] const std::vector<std::uint64_t>& received() const noexcept { return values_; }
    [[nodiscard]] const TokenTimes& times() const noexcept { return times_; }

private:
    Simulator& sim_;
    std::vector<NetId> data_;
    NetId ack_pi_;
    std::int64_t env_delay_;
    std::vector<std::uint64_t> values_;
    TokenTimes times_;
};

}  // namespace afpga::sim
