#include "sim/testbench.hpp"

#include "base/check.hpp"

namespace afpga::sim {

using base::check;

std::uint64_t decode_dual_rail(const Simulator& sim,
                               const std::vector<asynclib::DualRail>& word) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < word.size(); ++i) {
        const Logic t = sim.value(word[i].t);
        const Logic f = sim.value(word[i].f);
        check(t != Logic::X && f != Logic::X, "decode_dual_rail: X on rails");
        check(t != f, "decode_dual_rail: bit " + std::to_string(i) +
                          " is not a valid codeword (t==f)");
        if (t == Logic::T) v |= 1ULL << i;
    }
    return v;
}

std::uint64_t qdi_apply_token(Simulator& sim, const QdiCombIface& iface, std::uint64_t value,
                              std::int64_t timeout_ps) {
    const std::int64_t deadline = sim.now() + timeout_ps;
    // Drive the codeword.
    for (std::size_t i = 0; i < iface.inputs.size(); ++i) {
        const bool bit = (value >> i) & 1ULL;
        sim.schedule_pi(iface.inputs[i].t, netlist::from_bool(bit));
        sim.schedule_pi(iface.inputs[i].f, netlist::from_bool(!bit));
    }
    RunResult r = sim.run_until(iface.done, Logic::T, deadline);
    check(sim.value(iface.done) == Logic::T, "qdi_apply_token: completion did not rise");
    check(!r.budget_exceeded, "qdi_apply_token: event budget exceeded (oscillation?)");
    const std::uint64_t out = decode_dual_rail(sim, iface.outputs);
    // Return to zero.
    for (const auto& in : iface.inputs) {
        sim.schedule_pi(in.t, Logic::F);
        sim.schedule_pi(in.f, Logic::F);
    }
    r = sim.run_until(iface.done, Logic::F, deadline);
    check(sim.value(iface.done) == Logic::F, "qdi_apply_token: completion did not fall");
    check(!r.budget_exceeded, "qdi_apply_token: event budget exceeded during RTZ");
    return out;
}

std::uint64_t bundled_apply_token(Simulator& sim, const BundledStageIface& iface,
                                  std::uint64_t value, std::int64_t data_settle_ps,
                                  std::int64_t timeout_ps) {
    const std::int64_t deadline = sim.now() + timeout_ps;
    for (std::size_t i = 0; i < iface.data_in.size(); ++i)
        sim.schedule_pi(iface.data_in[i], netlist::from_bool((value >> i) & 1ULL));
    sim.schedule_pi(iface.req_in, Logic::T, data_settle_ps);

    RunResult r = sim.run_until(iface.ack_in, Logic::T, deadline);
    check(sim.value(iface.ack_in) == Logic::T, "bundled_apply_token: input not accepted");
    sim.schedule_pi(iface.req_in, Logic::F);

    r = sim.run_until(iface.req_out, Logic::T, deadline);
    check(sim.value(iface.req_out) == Logic::T, "bundled_apply_token: no output request");
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < iface.data_out.size(); ++i) {
        const Logic v = sim.value(iface.data_out[i]);
        check(v != Logic::X, "bundled_apply_token: X on output data");
        if (v == Logic::T) out |= 1ULL << i;
    }
    sim.schedule_pi(iface.ack_out, Logic::T);

    r = sim.run_until(iface.req_out, Logic::F, deadline);
    check(sim.value(iface.req_out) == Logic::F, "bundled_apply_token: request did not RTZ");
    sim.schedule_pi(iface.ack_out, Logic::F);
    r = sim.run_until(iface.ack_in, Logic::F, deadline);
    check(sim.value(iface.ack_in) == Logic::F, "bundled_apply_token: ack did not RTZ");
    check(!r.budget_exceeded, "bundled_apply_token: event budget exceeded");
    return out;
}

}  // namespace afpga::sim
