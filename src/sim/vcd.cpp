#include "sim/vcd.hpp"

#include "base/check.hpp"

namespace afpga::sim {

namespace {

/// Printable VCD identifier codes: base-94 over '!'..'~'.
std::string vcd_code(std::size_t i) {
    std::string s;
    do {
        s.push_back(static_cast<char>('!' + i % 94));
        i /= 94;
    } while (i != 0);
    return s;
}

std::string sanitize(const std::string& name) {
    std::string s = name.empty() ? "unnamed" : name;
    for (char& c : s)
        if (c == ' ' || c == '\t') c = '_';
    return s;
}

}  // namespace

VcdWriter::VcdWriter(Simulator& sim, const std::string& path, std::vector<NetId> nets)
    : sim_(sim), out_(path) {
    base::check(out_.good(), "VcdWriter: cannot open " + path);
    if (nets.empty()) {
        for (NetId n : sim.netlist().net_ids())
            if (!sim.netlist().net(n).name.empty()) nets.push_back(n);
    }
    out_ << "$timescale 1ps $end\n$scope module " << sanitize(sim.netlist().name())
         << " $end\n";
    codes_.reserve(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
        codes_.push_back(vcd_code(i));
        out_ << "$var wire 1 " << codes_[i] << ' '
             << sanitize(sim.netlist().net(nets[i]).name) << " $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
    for (std::size_t i = 0; i < nets.size(); ++i)
        out_ << netlist::to_char(sim.value(nets[i])) << codes_[i] << '\n';
    out_ << "$end\n";
    for (std::size_t i = 0; i < nets.size(); ++i) {
        sim_.on_commit(nets[i],
                       [this, i](Logic v, std::int64_t t) { emit(i, v, t); });
    }
}

void VcdWriter::emit(std::size_t idx, Logic v, std::int64_t t) {
    if (t != last_time_) {
        out_ << '#' << t << '\n';
        last_time_ = t;
    }
    out_ << netlist::to_char(v) << codes_[idx] << '\n';
}

VcdWriter::~VcdWriter() { out_.flush(); }

}  // namespace afpga::sim
