// CAD flow scaling sweep: run the full techmap -> pack -> place -> route ->
// bitstream flow on generated designs across increasing fabric sizes, in both
// the optimized configuration (incremental place cost + incremental
// PathFinder) and the pre-refactor baseline (rescan evaluator + full rip-up),
// and emit BENCH_flow.json with per-stage wall times, router iterations,
// total wirelength and the end-to-end speedup per design.
//
// A second section sweeps the parallel CAD subsystem over thread counts
// (1/2/4/8): multi-seed placement racing (4 replicas) and the concurrent
// BatchFlowRunner (8 jobs), reporting wall-clock speedup against the
// one-worker run plus the QoR delta / bit-identity checks that prove
// parallelism never changes results.
//
// Placement sections gate the analytical engine against the annealer and
// the multilevel V-cycle against the flat analytical engine (the
// placer_scale tier); any gate violation makes the bench exit non-zero.
//
// The flow_server tier drives the socket front-end with concurrent clients
// over a Unix socket: p50/p95/p99 submit->result latency, throughput, Busy
// backpressure counts, and a bit-identity gate against in-process run_flow.
//
// Usage: cad_scaling [--smoke] [--reps N] [--out FILE]
//   --smoke   only the smallest fabric and thread counts {1,2}, one rep
//   --reps N  repetitions per configuration, best time kept (default 2)
//   --out     output path (default BENCH_flow.json in the cwd)
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/bitvector.hpp"
#include "base/json.hpp"
#include "base/threadpool.hpp"
#include "base/timer.hpp"
#include "cad/batch.hpp"
#include "cad/flow.hpp"
#include "cad/flow_client.hpp"
#include "cad/flow_server.hpp"
#include "cad/flow_service.hpp"
#include "cad/serialize.hpp"
#include "cad/pack.hpp"
#include "cad/place_analytical.hpp"
#include "cad/place_model.hpp"
#include "cad/place_multilevel.hpp"
#include "cad/route_search.hpp"
#include "cad/techmap.hpp"
#include "eval/sweep.hpp"

using namespace afpga;

namespace {

struct SweepPoint {
    std::size_t adder_bits;
    std::uint32_t fabric;         // width == height
    std::uint32_t channel_width;
};

struct RunResult {
    double total_ms = 1e18;
    cad::FlowResult fr;  // of the best rep
};

RunResult run_flow_best(const netlist::Netlist& nl, const asynclib::MappingHints& hints,
                        const core::ArchSpec& arch, bool incremental, int reps) {
    RunResult best;
    for (int r = 0; r < reps; ++r) {
        cad::FlowOptions opts;
        opts.seed = 7;
        opts.place.incremental = incremental;
        opts.route.incremental = incremental;
        base::WallTimer t;
        auto fr = cad::run_flow(nl, hints, arch, opts);
        const double ms = t.elapsed_ms();
        if (ms < best.total_ms) {
            best.total_ms = ms;
            best.fr = std::move(fr);
        }
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    int reps = 2;
    std::string out_path = "BENCH_flow.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: cad_scaling [--smoke] [--reps N] [--out FILE]\n");
            return 2;
        }
    }

    std::vector<SweepPoint> sweep{
        {4, 10, 12},
        {8, 14, 14},
        {16, 20, 16},
        {24, 24, 16},
    };
    if (smoke) {
        sweep.resize(1);
        reps = 1;
    }

    base::JsonWriter w;
    w.begin_object();
    w.key("bench").value("cad_scaling");
    w.key("reps").value(reps);
    // Machine-detectable parallelism context: every thread-sweep speedup in
    // this file is only meaningful when the hardware actually has that many
    // cores (the dev container famously has one). Consumers should compare
    // each sweep's thread count against hardware_concurrency instead of
    // trusting a prose footnote.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    w.key("hardware_concurrency").value(std::uint64_t{hw_threads});
    w.key("effective_workers")
        .value(std::uint64_t{base::ThreadPool::default_workers()});
    w.key("designs").begin_array();

    for (const SweepPoint& pt : sweep) {
        auto adder = asynclib::make_qdi_adder(pt.adder_bits);
        core::ArchSpec arch;
        arch.width = pt.fabric;
        arch.height = pt.fabric;
        arch.channel_width = pt.channel_width;

        const RunResult opt = run_flow_best(adder.nl, adder.hints, arch, true, reps);
        const RunResult base = run_flow_best(adder.nl, adder.hints, arch, false, reps);
        const double speedup = base.total_ms / opt.total_ms;

        std::printf("qdi_adder_%zu on %ux%u cw=%u: optimized %.1f ms, baseline %.1f ms, "
                    "speedup %.2fx, route iters %d, wirelength %zu\n",
                    pt.adder_bits, pt.fabric, pt.fabric, pt.channel_width, opt.total_ms,
                    base.total_ms, speedup, opt.fr.routing.iterations,
                    opt.fr.routing.wirelength);

        w.begin_object();
        w.key("name").value("qdi_adder_" + std::to_string(pt.adder_bits));
        w.key("fabric").value(std::to_string(pt.fabric) + "x" + std::to_string(pt.fabric));
        w.key("channel_width").value(std::uint64_t{pt.channel_width});
        w.key("clusters").value(std::uint64_t{opt.fr.packed.clusters.size()});
        w.key("nets").value(std::uint64_t{opt.fr.routing.trees.size()});
        w.key("optimized_total_ms").value(opt.total_ms);
        w.key("baseline_total_ms").value(base.total_ms);
        w.key("speedup").value(speedup);
        w.key("route_iterations").value(opt.fr.routing.iterations);
        w.key("nets_rerouted").value(std::uint64_t{opt.fr.routing.nets_rerouted});
        w.key("wirelength").value(std::uint64_t{opt.fr.routing.wirelength});
        w.key("placement_cost").value(opt.fr.placement.final_cost);
        // Per-stage wall times and trajectories of the optimized flow.
        w.key("telemetry").raw(opt.fr.telemetry.to_json());
        w.end_object();
    }

    w.end_array();

    // --- parallel subsystem sweep: thread counts 1/2/4/8 ----------------------
    std::vector<unsigned> thread_counts{1, 2, 4, 8};
    if (smoke) thread_counts = {1, 2};
    if (hw_threads != 0 && thread_counts.back() > hw_threads)
        std::fprintf(stderr,
                     "cad_scaling: WARNING: sweeping up to %u threads on %u hardware "
                     "threads — oversubscribed points only time-slice, treat their "
                     "speedups as noise\n",
                     thread_counts.back(), hw_threads);

    // Tier 1: multi-seed placement racing. Four replicas on a growing pool;
    // the winner must be bit-identical whatever the pool size, so the only
    // moving number is the wall clock.
    {
        const std::size_t bits = smoke ? 4 : 8;
        auto adder = asynclib::make_qdi_adder(bits);
        core::ArchSpec arch;
        arch.width = arch.height = smoke ? 10 : 14;
        arch.channel_width = smoke ? 12 : 14;
        const auto md = cad::techmap(adder.nl, adder.hints, {});
        const auto pd = cad::pack(md, arch, {});

        cad::PlaceOptions single;
        single.seed = 7;
        const double single_cost = cad::place(pd, md, arch, single).final_cost;

        cad::PlaceOptions race = single;
        race.parallel_seeds = 4;

        double one_worker_ms = 0.0;
        w.key("parallel_place").begin_array();
        for (unsigned t : thread_counts) {
            race.threads = t;
            double best_ms = 1e18;
            cad::Placement pl;
            for (int r = 0; r < reps; ++r) {
                base::WallTimer timer;
                cad::Placement p = cad::place(pd, md, arch, race);
                const double ms = timer.elapsed_ms();
                if (ms < best_ms) {
                    best_ms = ms;
                    pl = std::move(p);
                }
            }
            if (t == thread_counts.front()) one_worker_ms = best_ms;
            const double speedup = one_worker_ms / best_ms;
            const double qor_delta_pct =
                single_cost > 0 ? (single_cost - pl.final_cost) / single_cost * 100.0 : 0.0;
            std::printf("parallel_place qdi_adder_%zu: %u threads, 4 seeds: %.1f ms "
                        "(%.2fx vs 1 thread), winner replica %zu cost %.1f "
                        "(%.1f%% vs single seed)\n",
                        bits, t, best_ms, speedup, pl.winner_replica, pl.final_cost,
                        qor_delta_pct);
            w.begin_object();
            w.key("threads").value(std::uint64_t{t});
            w.key("parallel_seeds").value(std::uint64_t{4});
            w.key("wall_ms").value(best_ms);
            w.key("speedup_vs_1_thread").value(speedup);
            w.key("winner_replica").value(std::uint64_t{pl.winner_replica});
            w.key("winner_cost").value(pl.final_cost);
            w.key("qor_delta_vs_single_seed_pct").value(qor_delta_pct);
            w.end_object();
        }
        w.end_array();
    }

    // Tier 2: BatchFlowRunner throughput. Eight independent jobs (same
    // design, different seeds) against the one-worker batch; per-job QoR must
    // be bit-identical to a sequential run_flow of the same options.
    {
        auto adder = asynclib::make_qdi_adder(4);
        core::ArchSpec arch;
        arch.width = arch.height = 10;
        arch.channel_width = 12;

        // The batch runner amortizes one shared RRGraph outside its timed
        // run() window; hand the sequential reference the same prebuilt
        // graph so both sides do equal work and the speedup measures pure
        // concurrency.
        const std::shared_ptr<const core::RRGraph> prebuilt_rr =
            std::make_shared<core::RRGraph>(arch);

        std::vector<cad::BatchJob> jobs;
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            cad::BatchJob j;
            j.name = "qdi_adder_4_s" + std::to_string(seed);
            j.nl = &adder.nl;
            j.hints = &adder.hints;
            j.opts.seed = seed;
            j.opts.prebuilt_rr = prebuilt_rr;  // the runner swaps in its own
            jobs.push_back(j);
        }

        // Sequential reference: the same eight flows, one after another. Only
        // run_flow is timed — serialization happens outside the window, like
        // the batch side.
        std::vector<base::BitVector> sequential_bits;
        double sequential_ms = 1e18;
        for (int r = 0; r < reps; ++r) {
            std::vector<cad::FlowResult> frs;
            frs.reserve(jobs.size());
            base::WallTimer timer;
            for (const cad::BatchJob& j : jobs)
                frs.push_back(cad::run_flow(*j.nl, *j.hints, arch, j.opts));
            const double ms = timer.elapsed_ms();
            if (ms < sequential_ms) {
                sequential_ms = ms;
                sequential_bits.clear();
                for (const cad::FlowResult& fr : frs) sequential_bits.push_back(fr.bits->serialize());
            }
        }

        w.key("batch_runner").begin_array();
        for (unsigned t : thread_counts) {
            cad::BatchOptions bopts;
            bopts.threads = t;
            cad::BatchFlowRunner runner(arch, bopts);
            double best_ms = 1e18;
            bool qor_identical = true;  // ANDed over every rep: one drift fails it
            for (int r = 0; r < reps; ++r) {
                const auto results = runner.run(jobs);
                for (std::size_t i = 0; i < results.size(); ++i)
                    qor_identical = qor_identical && results[i].ok &&
                                    results[i].result.bits->serialize() == sequential_bits[i];
                best_ms = std::min(best_ms, runner.last_batch_ms());
            }
            const double speedup = sequential_ms / best_ms;
            const double throughput =
                best_ms > 0 ? static_cast<double>(jobs.size()) * 1000.0 / best_ms : 0.0;
            std::printf("batch_runner: %u threads, %zu jobs: %.1f ms (%.2fx vs "
                        "sequential, %.2f jobs/s), qor_identical=%d\n",
                        t, jobs.size(), best_ms, speedup, throughput, qor_identical);
            w.begin_object();
            w.key("threads").value(std::uint64_t{t});
            w.key("jobs").value(std::uint64_t{jobs.size()});
            w.key("wall_ms").value(best_ms);
            w.key("sequential_ms").value(sequential_ms);
            w.key("speedup_vs_sequential").value(speedup);
            w.key("throughput_jobs_per_s").value(throughput);
            w.key("qor_identical").value(qor_identical);
            w.end_object();
        }
        w.end_array();
    }

    // Tier 3: deterministic in-flow parallel routing. The largest sweep
    // design re-runs with the partitioned PathFinder at growing worker
    // counts; the bitstream must be bit-identical at every count (that is
    // the router's core guarantee), so wall clock is again the only moving
    // number. threads=1 (same algorithm, one worker) is the scaling
    // baseline; the serial reference router's stage time is reported for
    // context.
    {
        const SweepPoint pt = smoke ? sweep.front() : sweep.back();
        auto adder = asynclib::make_qdi_adder(pt.adder_bits);
        core::ArchSpec arch;
        arch.width = pt.fabric;
        arch.height = pt.fabric;
        arch.channel_width = pt.channel_width;

        auto route_stage_ms = [](const cad::FlowResult& fr) {
            const cad::StageReport* s = fr.telemetry.stage("route");
            return s ? s->wall_ms : 0.0;
        };

        cad::FlowOptions opts;
        opts.seed = 7;
        const auto serial_fr = cad::run_flow(adder.nl, adder.hints, arch, opts);
        const double serial_route_ms = route_stage_ms(serial_fr);

        double one_worker_ms = 0.0;
        base::BitVector ref_bits;
        w.key("parallel_route").begin_array();
        for (unsigned t : thread_counts) {
            cad::FlowOptions popts;
            popts.seed = 7;
            popts.route.threads = t;
            double best_ms = 1e18;
            cad::FlowResult best_fr;
            for (int r = 0; r < reps; ++r) {
                auto fr = cad::run_flow(adder.nl, adder.hints, arch, popts);
                const double ms = route_stage_ms(fr);
                if (ms < best_ms) {
                    best_ms = ms;
                    best_fr = std::move(fr);
                }
            }
            const base::BitVector bits = best_fr.bits->serialize();
            bool qor_identical = true;
            if (t == thread_counts.front()) {
                one_worker_ms = best_ms;
                ref_bits = bits;
            } else {
                qor_identical = bits == ref_bits;
            }
            const double speedup = one_worker_ms / best_ms;
            const cad::StageReport* s = best_fr.telemetry.stage("route");
            const double* bins = s ? s->metric("route_bins") : nullptr;
            const double* boundary = s ? s->metric("route_boundary_nets") : nullptr;
            const double* rr_ms = s ? s->metric("rr_build_ms") : nullptr;
            std::printf("parallel_route qdi_adder_%zu on %ux%u: %u threads: route stage "
                        "%.1f ms (%.2fx vs 1 thread, serial ref %.1f ms), bins %.0f, "
                        "boundary nets %.0f, qor_identical=%d\n",
                        pt.adder_bits, pt.fabric, pt.fabric, t, best_ms, speedup,
                        serial_route_ms, bins ? *bins : 0.0, boundary ? *boundary : 0.0,
                        qor_identical);
            w.begin_object();
            w.key("threads").value(std::uint64_t{t});
            w.key("route_stage_ms").value(best_ms);
            w.key("serial_reference_ms").value(serial_route_ms);
            w.key("speedup_vs_1_thread").value(speedup);
            w.key("rr_build_ms").value(rr_ms ? *rr_ms : 0.0);
            w.key("bins").value(bins ? *bins : 0.0);
            w.key("boundary_nets").value(boundary ? *boundary : 0.0);
            w.key("wirelength").value(std::uint64_t{best_fr.routing.wirelength});
            w.key("route_iterations").value(best_fr.routing.iterations);
            // Kernel counters: decision-deterministic, so identical at every
            // thread count — BENCH_flow.json tracks expansions/net over time.
            const cad::RouteKernelStats& ks = best_fr.routing.kernel;
            w.key("kernel_heap_pushes").value(ks.heap_pushes);
            w.key("kernel_heap_pops").value(ks.heap_pops);
            w.key("kernel_nodes_expanded").value(ks.nodes_expanded);
            w.key("kernel_edges_scanned").value(ks.edges_scanned);
            w.key("kernel_wavefront_peak").value(ks.wavefront_peak);
            w.key("kernel_expansions_per_net")
                .value(ks.nets_routed > 0 ? static_cast<double>(ks.nodes_expanded) /
                                                static_cast<double>(ks.nets_routed)
                                          : 0.0);
            w.key("qor_identical").value(qor_identical);
            w.end_object();
        }
        w.end_array();
    }

    // Tier 3b: route_kernel — the pooled search kernel raced against the
    // retained pre-rework reference kernel on the largest sweep design.
    // Three checks, all CI gates (a violation makes the bench exit
    // non-zero): (1) the bitstream must be byte-identical to the reference
    // kernel's, serially and at every thread count — the whole rework is
    // sold as observation-equivalent; (2) the pooled kernel must actually
    // have run (heap_pops > 0 — the reference kernel fills no telemetry,
    // so a silent fallback would zero the counters); (3) zero steady-state
    // heap growth (steady_allocations == 0: after the first PathFinder
    // iteration every scratch buffer has reached capacity). The recorded
    // speedup is reference route-stage wall over pooled route-stage wall.
    bool route_kernel_gate_ok = true;
    {
        const SweepPoint pt = smoke ? sweep.front() : sweep.back();
        auto adder = asynclib::make_qdi_adder(pt.adder_bits);
        core::ArchSpec arch;
        arch.width = pt.fabric;
        arch.height = pt.fabric;
        arch.channel_width = pt.channel_width;

        auto route_stage_ms = [](const cad::FlowResult& fr) {
            const cad::StageReport* s = fr.telemetry.stage("route");
            return s ? s->wall_ms : 0.0;
        };
        auto best_serial_flow = [&](int n) {
            cad::FlowOptions opts;
            opts.seed = 7;
            RunResult best;
            double best_route = 1e18;
            for (int r = 0; r < n; ++r) {
                auto fr = cad::run_flow(adder.nl, adder.hints, arch, opts);
                const double ms = route_stage_ms(fr);
                if (ms < best_route) {
                    best_route = ms;
                    best.total_ms = ms;
                    best.fr = std::move(fr);
                }
            }
            return best;
        };

        cad::detail::set_use_reference_kernel(true);
        const RunResult ref = best_serial_flow(reps);
        cad::detail::set_use_reference_kernel(false);
        const RunResult pooled = best_serial_flow(reps);

        const base::BitVector ref_bits = ref.fr.bits->serialize();
        const base::BitVector pooled_bits = pooled.fr.bits->serialize();
        bool bit_identical = pooled_bits == ref_bits;

        // Thread matrix: the equivalence must also hold inside the
        // partitioned parallel router, where the kernel runs on per-worker
        // scratches. Reference vs pooled compared at each thread count.
        for (unsigned t : thread_counts) {
            cad::FlowOptions popts;
            popts.seed = 7;
            popts.route.threads = t;
            cad::detail::set_use_reference_kernel(true);
            const auto rfr = cad::run_flow(adder.nl, adder.hints, arch, popts);
            cad::detail::set_use_reference_kernel(false);
            const auto nfr = cad::run_flow(adder.nl, adder.hints, arch, popts);
            if (!(rfr.bits->serialize() == nfr.bits->serialize())) {
                std::fprintf(stderr,
                             "route_kernel: pooled kernel bitstream DIVERGES from "
                             "reference at %u threads\n",
                             t);
                bit_identical = false;
            }
        }

        const cad::RouteKernelStats& ks = pooled.fr.routing.kernel;
        const double speedup =
            pooled.total_ms > 0.0 ? ref.total_ms / pooled.total_ms : 0.0;
        route_kernel_gate_ok =
            bit_identical && ks.heap_pops > 0 && ks.steady_allocations == 0;

        std::printf("route_kernel qdi_adder_%zu on %ux%u cw=%u: reference %.1f ms, "
                    "pooled %.1f ms (%.2fx), pops %llu, expanded %llu, wavefront "
                    "peak %llu, steady allocs %llu, bit_identical=%d -> gate %s\n",
                    pt.adder_bits, pt.fabric, pt.fabric, pt.channel_width,
                    ref.total_ms, pooled.total_ms, speedup,
                    static_cast<unsigned long long>(ks.heap_pops),
                    static_cast<unsigned long long>(ks.nodes_expanded),
                    static_cast<unsigned long long>(ks.wavefront_peak),
                    static_cast<unsigned long long>(ks.steady_allocations),
                    bit_identical, route_kernel_gate_ok ? "ok" : "VIOLATED");

        w.key("route_kernel").begin_object();
        w.key("design").value("qdi_adder_" + std::to_string(pt.adder_bits));
        w.key("fabric").value(std::to_string(pt.fabric) + "x" + std::to_string(pt.fabric));
        w.key("channel_width").value(std::uint64_t{pt.channel_width});
        w.key("reference_route_ms").value(ref.total_ms);
        w.key("pooled_route_ms").value(pooled.total_ms);
        w.key("speedup").value(speedup);
        w.key("bit_identical").value(bit_identical);
        w.key("heap_pushes").value(ks.heap_pushes);
        w.key("heap_pops").value(ks.heap_pops);
        w.key("nodes_expanded").value(ks.nodes_expanded);
        w.key("edges_scanned").value(ks.edges_scanned);
        w.key("wavefront_peak").value(ks.wavefront_peak);
        w.key("allocations").value(ks.allocations);
        w.key("steady_allocations").value(ks.steady_allocations);
        w.key("gate_ok").value(route_kernel_gate_ok);
        w.end_object();
    }

    // Tier 4: parallel RR-graph construction. A fabric larger than any
    // routed sweep point (the graph is the flow's biggest single
    // allocation) is built serially and then on pools of growing size; the
    // content fingerprint proves every build is byte-identical.
    {
        core::ArchSpec arch;
        arch.width = arch.height = smoke ? 16 : 48;
        arch.channel_width = smoke ? 12 : 24;

        double serial_ms = 1e18;
        std::uint64_t serial_fp = 0;
        for (int r = 0; r < reps; ++r) {
            base::WallTimer timer;
            const core::RRGraph rr(arch);
            serial_ms = std::min(serial_ms, timer.elapsed_ms());
            serial_fp = rr.content_fingerprint();
        }

        w.key("rr_build").begin_array();
        for (unsigned t : thread_counts) {
            base::ThreadPool pool(t);
            double best_ms = 1e18;
            bool identical = true;
            std::size_t nodes = 0;
            std::size_t edges = 0;
            for (int r = 0; r < reps; ++r) {
                base::WallTimer timer;
                const core::RRGraph rr(arch, pool);
                best_ms = std::min(best_ms, timer.elapsed_ms());
                identical = identical && rr.content_fingerprint() == serial_fp;
                nodes = rr.num_nodes();
                edges = rr.num_edges();
            }
            const double speedup = serial_ms / best_ms;
            std::printf("rr_build %ux%u cw=%u (%zu nodes, %zu edges): %u threads: "
                        "%.1f ms (%.2fx vs serial %.1f ms), identical=%d\n",
                        arch.width, arch.height, arch.channel_width, nodes, edges, t,
                        best_ms, speedup, serial_ms, identical);
            w.begin_object();
            w.key("threads").value(std::uint64_t{t});
            w.key("fabric").value(std::to_string(arch.width) + "x" + std::to_string(arch.height));
            w.key("channel_width").value(std::uint64_t{arch.channel_width});
            w.key("nodes").value(std::uint64_t{nodes});
            w.key("edges").value(std::uint64_t{edges});
            w.key("wall_ms").value(best_ms);
            w.key("serial_ms").value(serial_ms);
            w.key("speedup_vs_serial").value(speedup);
            w.key("fingerprint_identical").value(identical);
            w.end_object();
        }
        w.end_array();
    }

    // Tier 5: FlowService artifact reuse. A seed grid runs cold on a fresh
    // service, then re-runs warm with ONLY a route-stage knob changed: the
    // warm grid must restore techmap/pack/place from the artifact store
    // (visible as cache_hit in the per-stage telemetry) and produce
    // bitstreams bit-identical to a cold compile of the same options.
    {
        const std::size_t bits = smoke ? 4 : 8;
        auto adder = asynclib::make_qdi_adder(bits);
        core::ArchSpec arch;
        arch.width = arch.height = smoke ? 10 : 14;
        arch.channel_width = smoke ? 12 : 14;

        const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
        auto make_jobs = [&](const cad::FlowOptions& opts) {
            std::vector<cad::FlowJob> jobs;
            for (std::uint64_t seed : seeds) {
                cad::FlowJob j;
                j.name = "qdi_adder_" + std::to_string(bits) + "_s" + std::to_string(seed);
                j.nl = &adder.nl;
                j.hints = &adder.hints;
                j.arch = arch;
                j.opts = opts;
                j.opts.seed = seed;
                jobs.push_back(std::move(j));
            }
            return jobs;
        };
        auto run_grid_ms = [](cad::FlowService& svc, std::vector<cad::FlowJob> jobs,
                              std::vector<const cad::FlowJobResult*>* out_results) {
            base::WallTimer t;
            *out_results = eval::run_grid(svc, std::move(jobs));
            return t.elapsed_ms();
        };

        cad::FlowOptions cold_opts;
        cad::FlowOptions warm_opts;
        warm_opts.route.astar_fac = 0.5;  // a route-stage knob, nothing upstream

        cad::FlowService svc;
        std::vector<const cad::FlowJobResult*> cold;
        const double cold_ms = run_grid_ms(svc, make_jobs(cold_opts), &cold);
        std::vector<const cad::FlowJobResult*> warm;
        const double warm_ms = run_grid_ms(svc, make_jobs(warm_opts), &warm);

        // Reference: the warm options compiled cold on a fresh service.
        cad::FlowService ref_svc;
        std::vector<const cad::FlowJobResult*> ref;
        (void)run_grid_ms(ref_svc, make_jobs(warm_opts), &ref);

        std::size_t upstream_hits = 0;
        std::size_t upstream_stages = 0;
        bool bit_identical = true;
        for (std::size_t i = 0; i < warm.size(); ++i) {
            for (const char* stage : {"techmap", "pack", "place"}) {
                const cad::StageReport* s = warm[i]->result.telemetry.stage(stage);
                ++upstream_stages;
                upstream_hits += (s && s->cache_hit == 1) ? 1u : 0u;
            }
            bit_identical = bit_identical && warm[i]->ok() && ref[i]->ok() &&
                            warm[i]->result.bits->serialize() ==
                                ref[i]->result.bits->serialize();
        }
        std::printf("flow_service warm sweep (route knob only): cold %.1f ms, warm "
                    "%.1f ms (%.2fx), upstream cache hits %zu/%zu, bit_identical=%d\n",
                    cold_ms, warm_ms, warm_ms > 0 ? cold_ms / warm_ms : 0.0,
                    upstream_hits, upstream_stages, bit_identical);

        w.key("flow_service").begin_object();
        w.key("jobs").value(std::uint64_t{seeds.size()});
        w.key("threads").value(std::uint64_t{svc.threads()});
        w.key("cold_grid_ms").value(cold_ms);
        w.key("warm_grid_ms").value(warm_ms);
        w.key("warm_speedup").value(warm_ms > 0 ? cold_ms / warm_ms : 0.0);
        w.key("upstream_cache_hits").value(std::uint64_t{upstream_hits});
        w.key("upstream_stages").value(std::uint64_t{upstream_stages});
        w.key("store_hits").value(svc.store().hits());
        w.key("store_misses").value(svc.store().misses());
        w.key("store_entries").value(std::uint64_t{svc.store().num_artifacts()});
        w.key("bit_identical_to_cold").value(bit_identical);
        w.end_object();
    }

    // Tier 6: the two-tier artifact cache. Two checks, both CI gates (a
    // violation makes the bench exit non-zero):
    //  (a) disk-warm restart — a service populates a cache directory, dies,
    //      and a fresh service over the same directory must restore every
    //      stage from disk and produce bit-identical bitstreams;
    //  (b) cache soak — the same grid under a tiny memory budget must never
    //      let the resident tier exceed its cap, must actually evict, and
    //      must still be bit-identical.
    bool cache_gate_ok = true;
    {
        const std::size_t bits = smoke ? 4 : 8;
        auto adder = asynclib::make_qdi_adder(bits);
        core::ArchSpec arch;
        arch.width = arch.height = smoke ? 10 : 14;
        arch.channel_width = smoke ? 12 : 14;

        namespace fs = std::filesystem;
        const fs::path cache_dir = "bench_artifact_cache";
        fs::remove_all(cache_dir);

        const std::vector<std::uint64_t> seeds{1, 2, 3};
        auto make_jobs = [&]() {
            std::vector<cad::FlowJob> jobs;
            for (std::uint64_t seed : seeds) {
                cad::FlowJob j;
                j.name = "qdi_adder_" + std::to_string(bits) + "_s" + std::to_string(seed);
                j.nl = &adder.nl;
                j.hints = &adder.hints;
                j.arch = arch;
                j.opts.seed = seed;
                jobs.push_back(std::move(j));
            }
            return jobs;
        };

        // (a) Cold service populates the directory...
        std::vector<base::BitVector> cold_bits;
        double cold_ms = 0.0;
        std::uint64_t disk_writes = 0;
        {
            cad::FlowServiceOptions so;
            so.artifact_cache_dir = cache_dir.string();
            cad::FlowService svc(so);
            base::WallTimer t;
            const auto results = eval::run_grid(svc, make_jobs());
            cold_ms = t.elapsed_ms();
            for (const auto* r : results) cold_bits.push_back(r->result.bits->serialize());
            disk_writes = svc.store().stats().disk_writes;
        }  // ...and dies here: only the blobs survive the "restart".

        double disk_warm_ms = 0.0;
        std::uint64_t disk_hits = 0;
        bool warm_bit_identical = true;
        bool nothing_recomputed = true;
        std::uint64_t stages_from_disk = 0;
        {
            cad::FlowServiceOptions so;
            so.artifact_cache_dir = cache_dir.string();
            cad::FlowService svc(so);
            base::WallTimer t;
            const auto results = eval::run_grid(svc, make_jobs());
            disk_warm_ms = t.elapsed_ms();
            for (std::size_t i = 0; i < results.size(); ++i) {
                warm_bit_identical = warm_bit_identical && results[i]->ok() &&
                                     results[i]->result.bits->serialize() == cold_bits[i];
                // Every stage must be a cache hit. Which tier served it is
                // schedule-dependent (an artifact one job restored from disk
                // serves its sibling jobs from memory), but with a fresh
                // service nothing can be a memory hit that was not first a
                // disk restore — so all-hits + disk_hits > 0 proves the
                // restart path.
                for (const auto& s : results[i]->result.telemetry.stages) {
                    nothing_recomputed = nothing_recomputed && s.cache_hit == 1;
                    if (s.metric("restored_from_disk")) ++stages_from_disk;
                }
            }
            disk_hits = svc.store().stats().disk_hits;
        }

        // (b) Cache soak: jobs run one at a time under a tight budget, the
        // resident tier is sampled after every job.
        const std::size_t budget = 16 * 1024;
        std::size_t max_resident = 0;
        std::uint64_t evictions = 0;
        bool soak_bit_identical = true;
        {
            cad::FlowServiceOptions so;
            so.artifact_memory_budget_bytes = budget;
            so.artifact_cache_dir = cache_dir.string();
            cad::FlowService svc(so);
            auto jobs = make_jobs();
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const auto id = svc.submit(std::move(jobs[i]));
                const cad::FlowJobResult& r = svc.wait(id);
                soak_bit_identical = soak_bit_identical && r.ok() &&
                                     r.result.bits->serialize() == cold_bits[i];
                max_resident = std::max(max_resident, svc.store().stats().resident_bytes);
            }
            evictions = svc.store().stats().evictions;
        }
        fs::remove_all(cache_dir);

        const bool cap_ok = max_resident <= budget;
        cache_gate_ok = warm_bit_identical && nothing_recomputed && disk_hits > 0 &&
                        soak_bit_identical && cap_ok && evictions > 0;
        std::printf("artifact_cache: cold %.1f ms, disk-warm restart %.1f ms (%.2fx), "
                    "%llu blobs written, %llu disk hits, warm_identical=%d "
                    "nothing_recomputed=%d; soak: budget %zu B, max resident %zu B, "
                    "%llu evictions, soak_identical=%d -> gate %s\n",
                    cold_ms, disk_warm_ms, disk_warm_ms > 0 ? cold_ms / disk_warm_ms : 0.0,
                    static_cast<unsigned long long>(disk_writes),
                    static_cast<unsigned long long>(disk_hits), warm_bit_identical,
                    nothing_recomputed, budget, max_resident,
                    static_cast<unsigned long long>(evictions), soak_bit_identical,
                    cache_gate_ok ? "ok" : "VIOLATED");

        w.key("artifact_cache").begin_object();
        w.key("jobs").value(std::uint64_t{seeds.size()});
        w.key("cold_grid_ms").value(cold_ms);
        w.key("disk_warm_grid_ms").value(disk_warm_ms);
        w.key("disk_warm_speedup").value(disk_warm_ms > 0 ? cold_ms / disk_warm_ms : 0.0);
        w.key("disk_writes").value(disk_writes);
        w.key("disk_hits").value(disk_hits);
        w.key("disk_warm_bit_identical").value(warm_bit_identical);
        w.key("nothing_recomputed").value(nothing_recomputed);
        w.key("stages_restored_from_disk").value(stages_from_disk);
        w.key("soak_budget_bytes").value(std::uint64_t{budget});
        w.key("soak_max_resident_bytes").value(std::uint64_t{max_resident});
        w.key("soak_cap_ok").value(cap_ok);
        w.key("soak_evictions").value(evictions);
        w.key("soak_bit_identical").value(soak_bit_identical);
        w.key("gate_ok").value(cache_gate_ok);
        w.end_object();
    }

    // Tier 7: placement engines. Two checks, both CI gates (a violation
    // makes the bench exit non-zero):
    //  (a) head-to-head on the largest sweep fabric — the analytical engine
    //      (solve + legalize + polish) must be >= 5x faster than the full
    //      anneal at equal-or-better bounding-box cost. Both engines are
    //      serial, so the ratio is meaningful even on the 1-core container;
    //      in --smoke the fabric is too small for the asymptotic speedup, so
    //      only the QoR half gates there.
    //  (b) a fabric size the annealer cannot finish inside the bench budget
    //      (10x the analytical wall-clock): the analytical engine must fit
    //      the budget while the annealer's projected full run — its first 10
    //      temperature rounds, scaled to the round count the head-to-head
    //      anneal actually needed — must blow it.
    bool placer_gate_ok = true;
    {
        const SweepPoint pt = smoke ? sweep.front() : SweepPoint{24, 24, 16};
        auto adder = asynclib::make_qdi_adder(pt.adder_bits);
        core::ArchSpec arch;
        arch.width = arch.height = pt.fabric;
        arch.channel_width = pt.channel_width;
        const auto md = cad::techmap(adder.nl, adder.hints);
        const auto pd = cad::pack(md, arch);

        struct PlaceRun {
            double ms = 1e18;
            cad::Placement pl;
        };
        auto time_place = [&](const cad::PackedDesign& pdx, const cad::MappedDesign& mdx,
                              const core::ArchSpec& archx, const cad::PlaceOptions& po,
                              int n_reps) {
            PlaceRun best;
            for (int r = 0; r < n_reps; ++r) {
                base::WallTimer t;
                auto pl = cad::place(pdx, mdx, archx, po);
                const double ms = t.elapsed_ms();
                if (ms < best.ms) {
                    best.ms = ms;
                    best.pl = std::move(pl);
                }
            }
            return best;
        };

        cad::PlaceOptions anneal_opts;
        anneal_opts.seed = 7;
        cad::PlaceOptions ana_opts = anneal_opts;
        ana_opts.algorithm = cad::PlaceAlgorithm::Analytical;

        const PlaceRun an = time_place(pd, md, arch, anneal_opts, reps);
        const PlaceRun ana = time_place(pd, md, arch, ana_opts, reps);
        const double speedup = ana.ms > 0 ? an.ms / ana.ms : 0.0;
        // Both gates are meaningful only on the full-size point: the smoke
        // fabric is too small for the solver's asymptotic advantage (or for
        // QoR parity with a fully converged anneal) to show.
        const bool qor_ok = smoke || ana.pl.final_cost <= an.pl.final_cost;
        const bool speed_ok = smoke || speedup >= 5.0;

        std::printf("placer: qdi_adder_%zu on %ux%u: anneal %.1f ms cost %.1f | "
                    "analytical %.1f ms cost %.1f (solver %llu iters, %d passes, "
                    "legalize max disp %llu) -> %.2fx, qor_ok=%d\n",
                    pt.adder_bits, pt.fabric, pt.fabric, an.ms, an.pl.final_cost, ana.ms,
                    ana.pl.final_cost,
                    static_cast<unsigned long long>(ana.pl.analytical.solver_iterations),
                    ana.pl.analytical.solver_passes,
                    static_cast<unsigned long long>(ana.pl.analytical.legalize.max_displacement),
                    speedup, qor_ok);

        // (b) the annealer-can't-finish fabric.
        const std::size_t giant_bits = smoke ? 16 : 40;
        const std::uint32_t giant_fabric = smoke ? 20 : 40;
        auto giant = asynclib::make_qdi_adder(giant_bits);
        core::ArchSpec garch;
        garch.width = garch.height = giant_fabric;
        garch.channel_width = 16;
        const auto gmd = cad::techmap(giant.nl, giant.hints);
        const auto gpd = cad::pack(gmd, garch);

        // Budget: five times the analytical wall — the same bar as the
        // head-to-head speed gate — so budget_ok certifies the annealer
        // cannot finish even one full schedule on this fabric in the time
        // the analytical engine finishes five runs.
        const PlaceRun gana = time_place(gpd, gmd, garch, ana_opts, reps);
        const double budget_ms = 5.0 * gana.ms;
        cad::PlaceOptions probe_opts = anneal_opts;
        probe_opts.max_rounds = 10;
        const PlaceRun gprobe = time_place(gpd, gmd, garch, probe_opts, reps);
        const int full_rounds = std::max(an.pl.anneal_rounds, 10);
        const double projected_anneal_ms =
            gprobe.ms * (static_cast<double>(full_rounds) / 10.0);
        const bool budget_ok =
            smoke || (gana.ms <= budget_ms && projected_anneal_ms > budget_ms);

        std::printf("placer: qdi_adder_%zu on %ux%u (budget %.1f ms): analytical %.1f ms "
                    "cost %.1f; anneal 10-round probe %.1f ms -> projected %.1f ms "
                    "(%d rounds) -> budget_ok=%d\n",
                    giant_bits, giant_fabric, giant_fabric, budget_ms, gana.ms,
                    gana.pl.final_cost, gprobe.ms, projected_anneal_ms, full_rounds,
                    budget_ok);

        placer_gate_ok = qor_ok && speed_ok && budget_ok;

        w.key("placer").begin_object();
        w.key("fabric").value(std::to_string(pt.fabric) + "x" + std::to_string(pt.fabric));
        w.key("clusters").value(std::uint64_t{pd.clusters.size()});
        w.key("anneal_ms").value(an.ms);
        w.key("anneal_cost").value(an.pl.final_cost);
        w.key("anneal_rounds").value(an.pl.anneal_rounds);
        w.key("analytical_ms").value(ana.ms);
        w.key("analytical_cost").value(ana.pl.final_cost);
        w.key("analytical_pre_legal_cost").value(ana.pl.analytical.pre_legal_cost);
        w.key("analytical_legalized_cost").value(ana.pl.analytical.legalized_cost);
        w.key("solver_iterations").value(ana.pl.analytical.solver_iterations);
        w.key("solver_passes").value(ana.pl.analytical.solver_passes);
        w.key("spread_passes").value(ana.pl.analytical.spread_passes);
        w.key("legalize_max_displacement")
            .value(ana.pl.analytical.legalize.max_displacement);
        w.key("legalize_avg_displacement")
            .value(ana.pl.analytical.legalize.avg_displacement);
        w.key("speedup").value(speedup);
        w.key("qor_ok").value(qor_ok);
        w.key("speed_ok").value(speed_ok);
        w.key("giant_fabric")
            .value(std::to_string(giant_fabric) + "x" + std::to_string(giant_fabric));
        w.key("giant_clusters").value(std::uint64_t{gpd.clusters.size()});
        w.key("giant_budget_ms").value(budget_ms);
        w.key("giant_analytical_ms").value(gana.ms);
        w.key("giant_analytical_cost").value(gana.pl.final_cost);
        w.key("giant_anneal_probe_ms").value(gprobe.ms);
        w.key("giant_anneal_projected_ms").value(projected_anneal_ms);
        w.key("budget_ok").value(budget_ok);
        w.key("gate_ok").value(placer_gate_ok);
        w.end_object();
    }

    // Tier 8: global-placement scaling — the multilevel V-cycle's reason to
    // exist. Subject: the *global* stages head-to-head. Each engine call
    // already produces a complete legal placement (legalized clusters +
    // refined pads); the driver's polish/detailed-refinement pipeline
    // downstream is byte-for-byte the same for both engines, so including
    // it would only dilute the comparison with shared work. Fixture: deep
    // WCHB FIFOs — cluster-dominated designs (a handful of I/Os, thousands
    // of clusters) where the flat engine's per-pass spreading schedule, not
    // the solve, bounds the wall (ROADMAP item 4). Three checks, all CI
    // gates (a violation makes the bench exit non-zero):
    //  (a) 60x60 head-to-head: the multilevel engine must be >= 3x faster
    //      than the flat analytical engine at <= +2% legalized cost. Both
    //      engines are strictly serial, so the ratio is meaningful on the
    //      1-core container; both costs are deterministic, so the QoR half
    //      of the gate is noise-free.
    //  (b) scaling envelope: at 100x100 (~2.1x the clusters) the multilevel
    //      wall must stay within 5x of its own 60x60 wall.
    //  (c) the flat engine must blow that envelope at 100x100: its
    //      projected wall — the measured wall scaled by the width ratio,
    //      because the spreading pass count still has to grow ~linearly
    //      with fabric width for displacement-bounded convergence — must
    //      exceed the budget. In practice even its unscaled measured wall
    //      does.
    // In --smoke the fixtures shrink to toys (the asymptotic gap cannot
    // show) and every gate is exempt; the tier still runs end to end.
    bool placer_scale_ok = true;
    {
        struct ScalePoint {
            std::size_t fifo_bits;
            std::size_t fifo_depth;
            std::uint32_t fabric;
        };
        const ScalePoint p60 = smoke ? ScalePoint{8, 12, 16} : ScalePoint{24, 140, 60};
        const ScalePoint p100 = smoke ? ScalePoint{8, 16, 20} : ScalePoint{24, 290, 100};

        struct EngineRun {
            double ms = 1e18;
            cad::AnalyticalResult res;
        };
        struct ScaleRun {
            std::size_t clusters = 0;
            std::size_t ios = 0;
            EngineRun flat;
            EngineRun multi;
        };
        auto measure = [&](const ScalePoint& sp) {
            auto fifo = asynclib::make_wchb_fifo(sp.fifo_bits, sp.fifo_depth);
            core::ArchSpec arch;
            arch.width = arch.height = sp.fabric;
            arch.channel_width = 16;
            const auto md = cad::techmap(fifo.nl, fifo.hints);
            const auto pd = cad::pack(md, arch);
            const cad::PlaceModel model(pd, md, arch);
            cad::PlaceOptions po;
            po.seed = 7;
            ScaleRun out;
            out.clusters = pd.clusters.size();
            out.ios = model.io_entity_ids.size();
            // Interleave the reps so both engines sample the same slice of
            // machine noise — the ratio is much steadier than with
            // back-to-back blocks.
            for (int r = 0; r < reps; ++r) {
                {
                    base::WallTimer t;
                    auto res = cad::place_analytical_global(model, po, po.seed);
                    const double ms = t.elapsed_ms();
                    if (ms < out.flat.ms) {
                        out.flat.ms = ms;
                        out.flat.res = std::move(res);
                    }
                }
                {
                    base::WallTimer t;
                    auto res = cad::place_multilevel_global(model, po, po.seed);
                    const double ms = t.elapsed_ms();
                    if (ms < out.multi.ms) {
                        out.multi.ms = ms;
                        out.multi.res = std::move(res);
                    }
                }
            }
            return out;
        };

        const ScaleRun a = measure(p60);
        const ScaleRun b = measure(p100);

        const double speedup60 = a.multi.ms > 0 ? a.flat.ms / a.multi.ms : 0.0;
        const double qor60 =
            a.flat.res.stats.legalized_cost > 0
                ? a.multi.res.stats.legalized_cost / a.flat.res.stats.legalized_cost
                : 0.0;
        const double qor100 =
            b.flat.res.stats.legalized_cost > 0
                ? b.multi.res.stats.legalized_cost / b.flat.res.stats.legalized_cost
                : 0.0;
        const double budget_ms = 5.0 * a.multi.ms;
        const double width_ratio =
            static_cast<double>(p100.fabric) / static_cast<double>(p60.fabric);
        const double flat100_projected_ms = b.flat.ms * width_ratio;
        const bool speed_ok = smoke || speedup60 >= 3.0;
        const bool qor_ok = smoke || qor60 <= 1.02;
        const bool envelope_ok = smoke || b.multi.ms <= budget_ms;
        const bool flat_blows_ok = smoke || flat100_projected_ms > budget_ms;
        placer_scale_ok = speed_ok && qor_ok && envelope_ok && flat_blows_ok;

        std::printf("placer_scale: wchb_fifo_%zux%zu on %ux%u (n=%zu, io=%zu): "
                    "flat %.1f ms cost %.1f | multilevel %.1f ms cost %.1f "
                    "(%zu levels) -> %.2fx, qor %.4f -> speed_ok=%d qor_ok=%d\n",
                    p60.fifo_bits, p60.fifo_depth, p60.fabric, p60.fabric, a.clusters,
                    a.ios, a.flat.ms, a.flat.res.stats.legalized_cost, a.multi.ms,
                    a.multi.res.stats.legalized_cost, a.multi.res.stats.levels.size(),
                    speedup60, qor60, speed_ok, qor_ok);
        std::printf("placer_scale: wchb_fifo_%zux%zu on %ux%u (n=%zu, budget %.1f ms): "
                    "multilevel %.1f ms cost %.1f qor %.4f | flat %.1f ms -> "
                    "projected %.1f ms -> envelope_ok=%d flat_blows_budget=%d\n",
                    p100.fifo_bits, p100.fifo_depth, p100.fabric, p100.fabric,
                    b.clusters, budget_ms, b.multi.ms,
                    b.multi.res.stats.legalized_cost, qor100, b.flat.ms,
                    flat100_projected_ms, envelope_ok, flat_blows_ok);

        w.key("placer_scale").begin_object();
        w.key("fixture_60").value("wchb_fifo_" + std::to_string(p60.fifo_bits) + "x" +
                                  std::to_string(p60.fifo_depth));
        w.key("fabric_60").value(std::to_string(p60.fabric) + "x" +
                                 std::to_string(p60.fabric));
        w.key("clusters_60").value(std::uint64_t{a.clusters});
        w.key("ios_60").value(std::uint64_t{a.ios});
        w.key("flat_ms_60").value(a.flat.ms);
        w.key("flat_cost_60").value(a.flat.res.stats.legalized_cost);
        w.key("multilevel_ms_60").value(a.multi.ms);
        w.key("multilevel_cost_60").value(a.multi.res.stats.legalized_cost);
        w.key("speedup_60").value(speedup60);
        w.key("qor_ratio_60").value(qor60);
        w.key("speed_ok").value(speed_ok);
        w.key("qor_ok").value(qor_ok);
        w.key("fixture_100").value("wchb_fifo_" + std::to_string(p100.fifo_bits) + "x" +
                                   std::to_string(p100.fifo_depth));
        w.key("fabric_100").value(std::to_string(p100.fabric) + "x" +
                                  std::to_string(p100.fabric));
        w.key("clusters_100").value(std::uint64_t{b.clusters});
        w.key("ios_100").value(std::uint64_t{b.ios});
        w.key("budget_ms").value(budget_ms);
        w.key("multilevel_ms_100").value(b.multi.ms);
        w.key("multilevel_cost_100").value(b.multi.res.stats.legalized_cost);
        w.key("qor_ratio_100").value(qor100);
        w.key("flat_ms_100").value(b.flat.ms);
        w.key("flat_projected_ms_100").value(flat100_projected_ms);
        w.key("envelope_ok").value(envelope_ok);
        w.key("flat_blows_budget").value(flat_blows_ok);
        // Per-level telemetry of the 100x100 V-cycle (coarsest first) — the
        // same LevelStats the place StageReport carries.
        w.key("levels_100").begin_array();
        for (const auto& lv : b.multi.res.stats.levels) {
            w.begin_object();
            w.key("nodes").value(lv.nodes);
            w.key("nets").value(lv.nets);
            w.key("solver_passes").value(lv.solver_passes);
            w.key("spread_passes").value(lv.spread_passes);
            w.key("solver_iterations").value(lv.solver_iterations);
            w.end_object();
        }
        w.end_array();
        w.key("gate_ok").value(placer_scale_ok);
        w.end_object();
    }

    // ---- flow_server: the socket front-end under concurrent clients -------
    //
    // An in-process FlowServer on a Unix socket, a deliberately small queue
    // bound, and C client threads each pushing J compiles through the wire.
    // Gates: every remote result byte-identical to an in-process run_flow of
    // the same job, backpressure observed (Busy responses > 0, queue depth
    // never above the bound), and the protocol clean (no errors). Reports
    // p50/p95/p99 submit->result latency and end-to-end throughput.
    bool flow_server_gate_ok = true;
    {
        const std::size_t n_clients = smoke ? 2 : 3;
        const std::size_t jobs_per_client = smoke ? 2 : 4;
        auto adder = asynclib::make_qdi_adder(4);
        core::ArchSpec arch;
        arch.width = arch.height = 10;
        arch.channel_width = 12;

        cad::FlowServerOptions so;
        so.unix_path = (std::filesystem::temp_directory_path() /
                        ("afpga_bench_" + std::to_string(::getpid()) + ".sock"))
                           .string();
        so.service.threads = 1;  // one worker: the queue must actually form
        so.max_pending = 2;
        so.retry_after_ms = 2;
        cad::FlowServer server(std::move(so));
        server.start();

        auto make_job = [&](std::uint64_t seed) {
            cad::RemoteJobSpec j;
            j.name = "bench_s" + std::to_string(seed);
            j.nl = &adder.nl;
            j.hints = &adder.hints;
            j.arch = arch;
            j.opts.seed = seed;
            return j;
        };

        // Backpressure probe (untimed): fill the paused queue to its bound,
        // demand a Busy bounce, then let the probes drain.
        {
            server.service().pause();
            cad::FlowClient probe = cad::FlowClient::connect_unix(server.unix_path(), "probe");
            std::vector<std::uint64_t> probe_ids;
            for (std::uint64_t s = 1; s <= 2; ++s) {
                const auto id = probe.try_submit(make_job(s));
                if (id) probe_ids.push_back(*id);
            }
            const bool bounced = !probe.try_submit(make_job(3)).has_value();
            if (!bounced) {
                std::fprintf(stderr, "cad_scaling: flow_server queue bound did not bounce\n");
                flow_server_gate_ok = false;
            }
            server.service().resume();
            for (const auto id : probe_ids) (void)probe.wait(id);
        }

        // Timed phase: every client runs submit -> wait back-to-back, riding
        // the Busy backoff exactly like afpga_client would.
        struct JobRecord {
            std::uint64_t seed = 0;
            double latency_ms = 0.0;
            std::vector<std::uint8_t> blob;
        };
        std::vector<std::vector<JobRecord>> per_client(n_clients);
        base::WallTimer phase_timer;
        {
            std::vector<std::thread> threads;
            for (std::size_t c = 0; c < n_clients; ++c) {
                threads.emplace_back([&, c] {
                    cad::FlowClient client =
                        cad::FlowClient::connect_unix(server.unix_path(), "bench_" + std::to_string(c));
                    for (std::size_t j = 0; j < jobs_per_client; ++j) {
                        const std::uint64_t seed = 100 + c * 10 + j;
                        base::WallTimer t;
                        const std::uint64_t id = client.submit(make_job(seed));
                        cad::RemoteFlowResult r = client.wait(id);
                        JobRecord rec;
                        rec.seed = seed;
                        rec.latency_ms = t.elapsed_ms();
                        rec.blob = std::move(r.result_blob);
                        per_client[c].push_back(std::move(rec));
                    }
                });
            }
            for (auto& t : threads) t.join();
        }
        const double phase_ms = phase_timer.elapsed_ms();
        server.drain();
        server.wait_drained();
        const cad::FlowServerStats st = server.stats();
        server.stop();

        // Bit-identity gate: replay every job in-process and compare blobs.
        bool bit_identical = true;
        std::vector<double> latencies;
        for (const auto& client_jobs : per_client) {
            for (const JobRecord& rec : client_jobs) {
                latencies.push_back(rec.latency_ms);
                cad::FlowOptions opts;
                opts.seed = rec.seed;
                const cad::FlowResult local = cad::run_flow(adder.nl, adder.hints, arch, opts);
                const auto local_blob = cad::ArtifactCodec<cad::BitstreamArtifact>::encode_blob(
                    cad::BitstreamArtifact{*local.bits, local.pad_names});
                if (rec.blob != local_blob) bit_identical = false;
            }
        }
        std::sort(latencies.begin(), latencies.end());
        auto pct = [&](double q) {
            const std::size_t i =
                static_cast<std::size_t>(q * static_cast<double>(latencies.size() - 1));
            return latencies[i];
        };
        const std::size_t jobs_total = latencies.size();
        const double throughput = static_cast<double>(jobs_total) / (phase_ms / 1000.0);

        const bool backpressure_seen =
            st.submits_rejected_busy > 0 && st.max_queue_depth_observed <= 2;
        flow_server_gate_ok =
            flow_server_gate_ok && bit_identical && backpressure_seen && st.protocol_errors == 0;

        std::printf("flow_server: %zu clients x %zu jobs: p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, "
                    "%.1f jobs/s, %llu busy bounces, peak queue %llu -> gate %s\n",
                    n_clients, jobs_per_client, pct(0.50), pct(0.95), pct(0.99), throughput,
                    static_cast<unsigned long long>(st.submits_rejected_busy),
                    static_cast<unsigned long long>(st.max_queue_depth_observed),
                    flow_server_gate_ok ? "ok" : "VIOLATED");

        w.key("flow_server").begin_object();
        w.key("clients").value(std::uint64_t{n_clients});
        w.key("jobs_per_client").value(std::uint64_t{jobs_per_client});
        w.key("jobs_total").value(std::uint64_t{jobs_total});
        w.key("max_pending").value(std::uint64_t{2});
        w.key("p50_ms").value(pct(0.50));
        w.key("p95_ms").value(pct(0.95));
        w.key("p99_ms").value(pct(0.99));
        w.key("throughput_jobs_per_s").value(throughput);
        w.key("busy_responses").value(st.submits_rejected_busy);
        w.key("submits_accepted").value(st.submits_accepted);
        w.key("results_streamed").value(st.results_streamed);
        w.key("max_queue_depth_observed").value(st.max_queue_depth_observed);
        w.key("max_outbound_bytes_observed").value(st.max_outbound_bytes_observed);
        w.key("protocol_errors").value(st.protocol_errors);
        w.key("bit_identical").value(bit_identical);
        w.key("gate_ok").value(flow_server_gate_ok);
        w.end_object();
    }

    w.end_object();

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cad_scaling: cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << w.str() << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    bool ok = true;
    if (!route_kernel_gate_ok) {
        std::fprintf(stderr, "cad_scaling: route_kernel gate violated (see above)\n");
        ok = false;
    }
    if (!cache_gate_ok) {
        std::fprintf(stderr, "cad_scaling: artifact-cache gate violated (see above)\n");
        ok = false;
    }
    if (!placer_gate_ok) {
        std::fprintf(stderr, "cad_scaling: placer gate violated (see above)\n");
        ok = false;
    }
    if (!placer_scale_ok) {
        std::fprintf(stderr, "cad_scaling: placer_scale gate violated (see above)\n");
        ok = false;
    }
    if (!flow_server_gate_ok) {
        std::fprintf(stderr, "cad_scaling: flow_server gate violated (see above)\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
