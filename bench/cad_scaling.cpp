// CAD flow scaling sweep: run the full techmap -> pack -> place -> route ->
// bitstream flow on generated designs across increasing fabric sizes, in both
// the optimized configuration (incremental place cost + incremental
// PathFinder) and the pre-refactor baseline (rescan evaluator + full rip-up),
// and emit BENCH_flow.json with per-stage wall times, router iterations,
// total wirelength and the end-to-end speedup per design.
//
// Usage: cad_scaling [--smoke] [--reps N] [--out FILE]
//   --smoke   only the smallest fabric, one rep (CI wiring check)
//   --reps N  repetitions per configuration, best time kept (default 2)
//   --out     output path (default BENCH_flow.json in the cwd)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "asynclib/adders.hpp"
#include "base/json.hpp"
#include "base/timer.hpp"
#include "cad/flow.hpp"

using namespace afpga;

namespace {

struct SweepPoint {
    std::size_t adder_bits;
    std::uint32_t fabric;         // width == height
    std::uint32_t channel_width;
};

struct RunResult {
    double total_ms = 1e18;
    cad::FlowResult fr;  // of the best rep
};

RunResult run_flow_best(const netlist::Netlist& nl, const asynclib::MappingHints& hints,
                        const core::ArchSpec& arch, bool incremental, int reps) {
    RunResult best;
    for (int r = 0; r < reps; ++r) {
        cad::FlowOptions opts;
        opts.seed = 7;
        opts.place.incremental = incremental;
        opts.route.incremental = incremental;
        base::WallTimer t;
        auto fr = cad::run_flow(nl, hints, arch, opts);
        const double ms = t.elapsed_ms();
        if (ms < best.total_ms) {
            best.total_ms = ms;
            best.fr = std::move(fr);
        }
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    int reps = 2;
    std::string out_path = "BENCH_flow.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: cad_scaling [--smoke] [--reps N] [--out FILE]\n");
            return 2;
        }
    }

    std::vector<SweepPoint> sweep{
        {4, 10, 12},
        {8, 14, 14},
        {16, 20, 16},
        {24, 24, 16},
    };
    if (smoke) {
        sweep.resize(1);
        reps = 1;
    }

    base::JsonWriter w;
    w.begin_object();
    w.key("bench").value("cad_scaling");
    w.key("reps").value(reps);
    w.key("designs").begin_array();

    for (const SweepPoint& pt : sweep) {
        auto adder = asynclib::make_qdi_adder(pt.adder_bits);
        core::ArchSpec arch;
        arch.width = pt.fabric;
        arch.height = pt.fabric;
        arch.channel_width = pt.channel_width;

        const RunResult opt = run_flow_best(adder.nl, adder.hints, arch, true, reps);
        const RunResult base = run_flow_best(adder.nl, adder.hints, arch, false, reps);
        const double speedup = base.total_ms / opt.total_ms;

        std::printf("qdi_adder_%zu on %ux%u cw=%u: optimized %.1f ms, baseline %.1f ms, "
                    "speedup %.2fx, route iters %d, wirelength %zu\n",
                    pt.adder_bits, pt.fabric, pt.fabric, pt.channel_width, opt.total_ms,
                    base.total_ms, speedup, opt.fr.routing.iterations,
                    opt.fr.routing.wirelength);

        w.begin_object();
        w.key("name").value("qdi_adder_" + std::to_string(pt.adder_bits));
        w.key("fabric").value(std::to_string(pt.fabric) + "x" + std::to_string(pt.fabric));
        w.key("channel_width").value(std::uint64_t{pt.channel_width});
        w.key("clusters").value(std::uint64_t{opt.fr.packed.clusters.size()});
        w.key("nets").value(std::uint64_t{opt.fr.routing.trees.size()});
        w.key("optimized_total_ms").value(opt.total_ms);
        w.key("baseline_total_ms").value(base.total_ms);
        w.key("speedup").value(speedup);
        w.key("route_iterations").value(opt.fr.routing.iterations);
        w.key("nets_rerouted").value(std::uint64_t{opt.fr.routing.nets_rerouted});
        w.key("wirelength").value(std::uint64_t{opt.fr.routing.wirelength});
        w.key("placement_cost").value(opt.fr.placement.final_cost);
        // Per-stage wall times and trajectories of the optimized flow.
        w.key("telemetry").raw(opt.fr.telemetry.to_json());
        w.end_object();
    }

    w.end_array();
    w.end_object();

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cad_scaling: cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << w.str() << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
