// CAD and simulator performance microbenchmarks (google-benchmark).
//
// Not a paper experiment — engineering due diligence: the tool must stay
// interactive at the design sizes the fabric supports.
#include <benchmark/benchmark.h>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "cad/flow.hpp"
#include "cad/route_search.hpp"
#include "sim/channels.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

using namespace afpga;

namespace {

core::ArchSpec bench_arch() {
    core::ArchSpec a = core::paper_arch();
    a.width = 12;
    a.height = 12;
    a.channel_width = 16;
    return a;
}

void BM_Techmap(benchmark::State& state) {
    auto adder = asynclib::make_qdi_adder(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto md = cad::techmap(adder.nl, adder.hints);
        benchmark::DoNotOptimize(md.les.size());
    }
}
BENCHMARK(BM_Techmap)->Arg(1)->Arg(4)->Arg(8);

// Second arg selects the placement engine (PlaceAlgorithm: 0 = anneal,
// 1 = analytical, 2 = race, 3 = multilevel) so perf trajectories cover
// every engine, not just the annealer.
void BM_PackPlace(benchmark::State& state) {
    auto adder = asynclib::make_qdi_adder(static_cast<std::size_t>(state.range(0)));
    const auto arch = bench_arch();
    const auto md = cad::techmap(adder.nl, adder.hints);
    for (auto _ : state) {
        auto pd = cad::pack(md, arch);
        cad::PlaceOptions opts;
        opts.seed = 7;
        opts.algorithm = static_cast<cad::PlaceAlgorithm>(state.range(1));
        auto pl = cad::place(pd, md, arch, opts);
        benchmark::DoNotOptimize(pl.final_cost);
    }
}
BENCHMARK(BM_PackPlace)
    ->ArgNames({"bits", "alg"})
    ->ArgsProduct({{2, 4}, {0, 1, 2, 3}});

void BM_FullFlow(benchmark::State& state) {
    auto adder = asynclib::make_qdi_adder(static_cast<std::size_t>(state.range(0)));
    const auto arch = bench_arch();
    for (auto _ : state) {
        auto fr = cad::run_flow(adder.nl, adder.hints, arch, {});
        benchmark::DoNotOptimize(fr.bits->num_enabled_edges());
    }
}
BENCHMARK(BM_FullFlow)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The negotiated-congestion search kernel in isolation: a congested
// cross-quadrant net mix on a 13x13 fabric, routed with the pooled-heap
// kernel (arg 0) or the retained pre-rework reference kernel (arg 1).
// Both produce bit-identical trees, so the delta is pure kernel overhead.
void BM_RouteSearch(benchmark::State& state) {
    core::ArchSpec a = core::paper_arch();
    a.width = 13;
    a.height = 13;
    a.channel_width = 8;
    const core::RRGraph rr(a);

    std::vector<cad::RouteRequest> reqs;
    auto add = [&](core::PlbCoord from, core::PlbCoord to) {
        cad::RouteRequest rq;
        rq.src_plb = from;
        cad::RouteRequest::Sink sk;
        sk.plb = to;
        rq.sinks.push_back(sk);
        reqs.push_back(std::move(rq));
    };
    // Long cross-fabric nets sharing the central channels force several
    // PathFinder iterations, so the steady-state path dominates.
    for (std::uint32_t i = 0; i < 11; ++i) {
        add({1, 1 + i}, {11, 11 - i});
        add({11, 1 + i}, {1, 11 - i});
    }

    cad::detail::set_use_reference_kernel(state.range(0) != 0);
    for (auto _ : state) {
        auto res = cad::route(rr, reqs);
        benchmark::DoNotOptimize(res.wirelength);
    }
    cad::detail::set_use_reference_kernel(false);
}
BENCHMARK(BM_RouteSearch)
    ->ArgNames({"reference"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_RRGraphBuild(benchmark::State& state) {
    core::ArchSpec a = core::paper_arch();
    a.width = static_cast<std::uint32_t>(state.range(0));
    a.height = a.width;
    for (auto _ : state) {
        core::RRGraph rr(a);
        benchmark::DoNotOptimize(rr.num_edges());
    }
}
BENCHMARK(BM_RRGraphBuild)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimTokens(benchmark::State& state) {
    auto adder = asynclib::make_qdi_adder(4);
    sim::Simulator sim(adder.nl);
    sim.run();
    sim::QdiCombIface iface;
    iface.inputs = adder.a;
    iface.inputs.insert(iface.inputs.end(), adder.b.begin(), adder.b.end());
    iface.inputs.push_back(adder.cin);
    iface.outputs = adder.sum;
    iface.outputs.push_back(adder.cout);
    iface.done = adder.done;
    std::uint64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::qdi_apply_token(sim, iface, v));
        v = (v + 1) & 0x1FF;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimTokens);

void BM_SimFifoStream(benchmark::State& state) {
    for (auto _ : state) {
        auto fifo = asynclib::make_wchb_fifo(4, 8);
        sim::Simulator sim(fifo.nl);
        sim.run();
        std::vector<std::uint64_t> tokens(64, 9);
        sim::DrStreamSource src(sim, fifo.in, fifo.ack_in, tokens, 50);
        sim::DrStreamSink sink(sim, fifo.out, fifo.ack_out, 50);
        src.start();
        sim.run(2'000'000'000);
        benchmark::DoNotOptimize(sink.received().size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SimFifoStream)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
