// Fig. 1 reproduction: the internal organisation of the PLB.
//
// Prints the PLB's component inventory (IM, 2 LEs, PDE), the IM crossbar
// dimensions and population for each topology, the configuration bit budget,
// the routing-network statistics of the default fabric, and demonstrates the
// paper's memory-element mechanism: a Muller C-element implemented as a
// looped LUT closed through the IM, verified by post-bitstream simulation.
#include <cstdio>

#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow.hpp"
#include "core/archspec.hpp"
#include "core/rrgraph.hpp"
#include "sim/simulator.hpp"

using namespace afpga;

namespace {

void print_plb_inventory(const core::ArchSpec& a) {
    base::TextTable t({"PLB component", "count", "parameters", "config bits"});
    const std::size_t le_bits = 64 + 64 + 4 + 2 + 2;
    t.add_row({"Logic Element (LUT7-3 + LUT2-1)", std::to_string(a.les_per_plb),
               "7 inputs, outputs O0/O1/O2 + LUT2 O3", std::to_string(le_bits) + " each"});
    t.add_row({"Interconnection Matrix", "1",
               std::to_string(a.im_num_sources()) + " sources x " +
                   std::to_string(a.im_num_sinks()) + " sinks",
               std::to_string(a.im_num_sinks() * a.im_select_bits())});
    t.add_row({"Programmable Delay Element", "1",
               std::to_string(a.pde_taps) + " taps x " + std::to_string(a.pde_quantum_ps) +
                   " ps",
               std::to_string(a.pde_tap_bits())});
    t.add_row({"PLB total", "",
               std::to_string(a.plb_inputs) + " inputs, " + std::to_string(a.plb_outputs) +
                   " outputs",
               std::to_string(a.plb_config_bits())});
    std::printf("%s\n", t.render().c_str());
}

void print_im_population(const core::ArchSpec& base_arch) {
    base::TextTable t({"IM topology", "populated crosspoints", "of", "fraction"});
    for (core::ImTopology topo :
         {core::ImTopology::FullCrossbar, core::ImTopology::Sparse50,
          core::ImTopology::Sparse25, core::ImTopology::NoFeedback}) {
        core::ArchSpec a = base_arch;
        a.im_topology = topo;
        std::size_t pop = 0;
        const std::size_t total =
            std::size_t{a.im_num_sources()} * a.im_num_sinks();
        for (std::uint32_t s = 0; s < a.im_num_sources(); ++s)
            for (std::uint32_t k = 0; k < a.im_num_sinks(); ++k)
                if (a.im_connects(s, k)) ++pop;
        t.add_row({to_string(topo), std::to_string(pop), std::to_string(total),
                   base::format_percent(static_cast<double>(pop) / static_cast<double>(total))});
    }
    std::printf("%s\n", t.render().c_str());
}

void print_routing_network(const core::ArchSpec& a) {
    const core::RRGraph rr(a);
    base::TextTable t({"routing network", "value"});
    t.add_row({"array", std::to_string(a.width) + " x " + std::to_string(a.height) + " PLBs"});
    t.add_row({"channel width", std::to_string(a.channel_width) + " tracks"});
    t.add_row({"wire segments", std::to_string(rr.num_wires())});
    t.add_row({"RR nodes", std::to_string(rr.num_nodes())});
    t.add_row({"programmable switches (RR edges)", std::to_string(rr.num_edges())});
    t.add_row({"avg wire fanout", base::format_double(rr.avg_wire_fanout(), 2)});
    t.add_row({"Fc_in / Fc_out", base::format_double(a.fc_in, 2) + " / " +
                                     base::format_double(a.fc_out, 2)});
    std::printf("%s\n", t.render().c_str());
}

/// The Section-3 claim: "memory elements are implemented by mapping looped
/// combinatorial logic using the interconnection matrix integrated into the
/// PLB". Push a bare C-element through the full flow and check join/hold
/// semantics on the circuit reconstructed from the bitstream.
void demonstrate_muller_via_im(const core::ArchSpec& arch) {
    netlist::Netlist nl("muller_demo");
    const netlist::NetId a = nl.add_input("a");
    const netlist::NetId b = nl.add_input("b");
    const netlist::NetId c = nl.add_cell(netlist::CellFunc::C, "c", {a, b});
    nl.add_output("c", c);

    const auto fr = cad::run_flow(nl, {}, arch, {});
    const auto design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();

    const netlist::NetId pa = design.nl.find_net("a");
    const netlist::NetId pb = design.nl.find_net("b");
    netlist::NetId pc;
    for (const auto& [name, net] : design.nl.primary_outputs())
        if (name == "c") pc = net;

    auto step = [&](netlist::Logic va, netlist::Logic vb) {
        sim.schedule_pi(pa, va);
        sim.schedule_pi(pb, vb);
        sim.run();
        return sim.value(pc);
    };
    const bool ok = step(netlist::Logic::T, netlist::Logic::F) == netlist::Logic::F &&
                    step(netlist::Logic::T, netlist::Logic::T) == netlist::Logic::T &&
                    step(netlist::Logic::F, netlist::Logic::T) == netlist::Logic::T &&
                    step(netlist::Logic::F, netlist::Logic::F) == netlist::Logic::F;

    // The loop must close inside one PLB: exactly one occupied PLB, and the
    // LE input listens to an LE output of the same PLB through the IM.
    const std::size_t occupied = fr.bits->occupied_plbs();
    std::printf("Muller C-element as looped LUT through the IM: %s "
                "(join/hold verified post-bitstream; %zu PLB occupied)\n\n",
                ok ? "PASS" : "FAIL", occupied);
}

}  // namespace

int main() {
    std::printf("=== Fig. 1: PLB internal organisation "
                "(IM + 2 LEs + PDE, island-style fabric) ===\n\n");
    const core::ArchSpec a = core::paper_arch();
    print_plb_inventory(a);
    print_im_population(a);
    print_routing_network(a);
    demonstrate_muller_via_im(a);
    return 0;
}
