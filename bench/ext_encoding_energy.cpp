// Extension experiment ext-C: what the choice of data encoding buys.
//
// Section 2: "it is possible to implement asynchronous logic with different
// protocols or data encoding ... These choices permit the implementation of
// a same design varying the electrical properties of the circuit, like
// speed, power-consumption or electromagnetic emission."
//
// We quantify the switching-activity side of that claim: the same 2-bit
// function (sum mod 4) is implemented dual-rail and 1-of-4, all 16 input
// symbol pairs are applied through full 4-phase cycles, and every net
// transition is counted (transitions ~ dynamic energy; fewer simultaneous
// edges ~ less EMI). A 1-of-4 digit fires ONE rail per two bits where
// dual-rail fires two — the multi-rail encoding the LE's extra outputs are
// there to serve.
#include <cstdio>

#include "asynclib/dualrail.hpp"
#include "asynclib/oneofn.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

using namespace afpga;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;

namespace {

std::uint64_t total_transitions(const sim::Simulator& sim) {
    std::uint64_t t = 0;
    for (NetId n : sim.netlist().net_ids()) t += sim.transitions(n);
    return t;
}

struct Report {
    std::size_t cells = 0;
    double transitions_per_token = 0;
    double data_wire_edges_per_token = 0;  // PI rails only (the channel cost)
    std::int64_t avg_cycle_ps = 0;
};

Report run_dual_rail() {
    Netlist nl("dr_add");
    const auto ins = asynclib::add_dual_rail_inputs(nl, "x", 4);  // two 2-bit operands
    const auto bit0 = TruthTable::from_function(4, [](std::uint32_t m) {
        return (((m & 3) + ((m >> 2) & 3)) & 1) != 0;
    });
    const auto bit1 = TruthTable::from_function(4, [](std::uint32_t m) {
        return (((m & 3) + ((m >> 2) & 3)) & 2) != 0;
    });
    auto res = asynclib::expand_dims(nl, {bit0, bit1}, ins, "f");
    const NetId done = asynclib::add_completion_detector(nl, res.outputs, "cd");
    nl.add_output("done", done);
    for (std::size_t o = 0; o < 2; ++o) {
        nl.add_output("o" + std::to_string(o) + ".t", res.outputs[o].t);
        nl.add_output("o" + std::to_string(o) + ".f", res.outputs[o].f);
    }
    sim::Simulator sim(nl);
    sim.run();
    sim::QdiCombIface iface{ins, res.outputs, done};
    const std::uint64_t t0 = total_transitions(sim);
    std::uint64_t pi_edges0 = 0;
    for (NetId pi : nl.primary_inputs()) pi_edges0 += sim.transitions(pi);
    const std::int64_t start = sim.now();
    int tokens = 0;
    for (std::uint64_t x = 0; x < 4; ++x)
        for (std::uint64_t y = 0; y < 4; ++y) {
            (void)sim::qdi_apply_token(sim, iface, x | (y << 2));
            ++tokens;
        }
    Report r;
    r.cells = nl.num_cells();
    r.transitions_per_token =
        static_cast<double>(total_transitions(sim) - t0) / tokens;
    std::uint64_t pi_edges = 0;
    for (NetId pi : nl.primary_inputs()) pi_edges += sim.transitions(pi);
    r.data_wire_edges_per_token = static_cast<double>(pi_edges - pi_edges0) / tokens;
    r.avg_cycle_ps = (sim.now() - start) / tokens;
    return r;
}

Report run_one_of_four() {
    Netlist nl("of4_add");
    const auto ins = asynclib::add_one_of_four_inputs(nl, "x", 2);
    const auto bit0 = TruthTable::from_function(4, [](std::uint32_t m) {
        return (((m & 3) + ((m >> 2) & 3)) & 1) != 0;
    });
    const auto bit1 = TruthTable::from_function(4, [](std::uint32_t m) {
        return (((m & 3) + ((m >> 2) & 3)) & 2) != 0;
    });
    auto res = asynclib::expand_one_of_four(nl, {bit0, bit1}, ins, "f");
    const NetId done = asynclib::add_of4_completion(nl, res.outputs, "cd");
    nl.add_output("done", done);
    for (int s = 0; s < 4; ++s)
        nl.add_output("o.r" + std::to_string(s),
                      res.outputs[0].rail[static_cast<std::size_t>(s)]);
    sim::Simulator sim(nl);
    sim.run();

    const std::uint64_t t0 = total_transitions(sim);
    std::uint64_t pi_edges0 = 0;
    for (NetId pi : nl.primary_inputs()) pi_edges0 += sim.transitions(pi);
    const std::int64_t start = sim.now();
    const NetId pdone = nl.find_net("cd.done");
    int tokens = 0;
    for (std::uint64_t x = 0; x < 4; ++x)
        for (std::uint64_t y = 0; y < 4; ++y) {
            sim.schedule_pi(ins[0].rail[x], Logic::T);
            sim.schedule_pi(ins[1].rail[y], Logic::T);
            sim.run_until(pdone, Logic::T, sim.now() + 10'000'000);
            sim.schedule_pi(ins[0].rail[x], Logic::F);
            sim.schedule_pi(ins[1].rail[y], Logic::F);
            sim.run_until(pdone, Logic::F, sim.now() + 10'000'000);
            ++tokens;
        }
    Report r;
    r.cells = nl.num_cells();
    r.transitions_per_token = static_cast<double>(total_transitions(sim) - t0) / tokens;
    std::uint64_t pi_edges = 0;
    for (NetId pi : nl.primary_inputs()) pi_edges += sim.transitions(pi);
    r.data_wire_edges_per_token = static_cast<double>(pi_edges - pi_edges0) / tokens;
    r.avg_cycle_ps = (sim.now() - start) / tokens;
    return r;
}

}  // namespace

int main() {
    std::printf("=== ext-C: encoding choice vs switching activity "
                "(2-bit add mod 4, 16 tokens, full 4-phase cycles) ===\n\n");
    const Report dr = run_dual_rail();
    const Report of4 = run_one_of_four();

    base::TextTable t({"encoding", "gates", "input-wire edges/token",
                       "total net transitions/token", "avg cycle (ps)"});
    t.add_row({"dual-rail (1-of-2 per bit)", std::to_string(dr.cells),
               base::format_double(dr.data_wire_edges_per_token, 1),
               base::format_double(dr.transitions_per_token, 1),
               std::to_string(dr.avg_cycle_ps)});
    t.add_row({"1-of-4 (per 2 bits)", std::to_string(of4.cells),
               base::format_double(of4.data_wire_edges_per_token, 1),
               base::format_double(of4.transitions_per_token, 1),
               std::to_string(of4.avg_cycle_ps)});
    std::printf("%s\n", t.render().c_str());

    std::printf("Shape: a 1-of-4 channel fires one rail per 2-bit symbol where\n");
    std::printf("dual-rail fires two — half the data-wire edges per token (%.1f vs\n",
                of4.data_wire_edges_per_token);
    std::printf("%.1f here), which is the power/EMI lever Section 2 describes. The\n",
                dr.data_wire_edges_per_token);
    std::printf("cost is minterm fan-in: same C-gate count, wider OR planes.\n");
    return 0;
}
