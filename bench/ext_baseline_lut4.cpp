// Extension experiment ext-B: the paper's motivation, quantified.
//
// "The use of synchronous FPGAs is possible but most of the FPGA resources
// are then unexploited" (Section 1, citing ref. [3]). We map the same
// asynchronous netlists onto a plain synchronous LUT4 island cell and
// compare against our fabric's LEs: cell counts, memory loops exposed to
// general routing (the hazard source a dedicated IM avoids), and truth-table
// bit utilisation.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow.hpp"
#include "eval/baseline.hpp"
#include "eval/metrics.hpp"

using namespace afpga;

namespace {

void row(base::TextTable& t, const std::string& name, const netlist::Netlist& nl,
         const asynclib::MappingHints& hints) {
    core::ArchSpec arch = core::paper_arch();
    arch.width = 12;
    arch.height = 12;
    arch.channel_width = 16;
    const auto fr = cad::run_flow(nl, hints, arch, {});
    const auto f = eval::filling_ratio(fr);
    const auto lut4 = eval::map_to_lut4(nl);
    // An LE provides two LUT6 halves; a CLB of the baseline provides 2 LUT4s.
    const double overhead = f.used_les
                                ? static_cast<double>(lut4.luts) /
                                      static_cast<double>(2 * f.used_les)
                                : 0.0;
    t.add_row({name, std::to_string(f.used_les), std::to_string(f.occupied_plbs),
               std::to_string(lut4.luts), std::to_string(lut4.clbs),
               std::to_string(lut4.luts_for_memory), std::to_string(lut4.luts_for_delay),
               std::to_string(lut4.feedback_nets),
               base::format_percent(lut4.bit_utilization),
               base::format_double(overhead, 2) + "x"});
}

}  // namespace

int main() {
    std::printf("=== ext-B: same circuits on a synchronous LUT4 island FPGA "
                "(ref. [3] scenario) ===\n\n");
    base::TextTable t({"design", "our LEs", "our PLBs", "LUT4 cells", "LUT4 CLBs",
                       "LUT4s for C-gates", "LUT4s for delays", "loops via routing",
                       "LUT4-bit util", "cells per LE-pair"});

    {
        auto d = asynclib::make_qdi_adder(1);
        row(t, "qdi-adder-1b", d.nl, d.hints);
    }
    {
        auto d = asynclib::make_qdi_adder(4);
        row(t, "qdi-adder-4b", d.nl, d.hints);
    }
    {
        auto d = asynclib::make_micropipeline_adder(4);
        row(t, "mp-adder-4b", d.nl, {});
    }
    {
        auto d = asynclib::make_wchb_fifo(4, 4);
        row(t, "wchb-fifo-4x4", d.nl, d.hints);
    }
    {
        auto d = asynclib::make_micropipeline_fifo(4, 4);
        row(t, "mp-fifo-4x4", d.nl, {});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Reading: on the LUT4 baseline every C-element is a looped LUT whose\n");
    std::printf("feedback crosses the general routing network (hazard-prone, slow) and\n");
    std::printf("matched delays burn whole LUTs as buffers; the dedicated PLB keeps\n");
    std::printf("loops inside the IM and delays inside the PDE. LUT4-bit utilisation\n");
    std::printf("shows how little of the provisioned truth-table storage async logic\n");
    std::printf("exploits on a synchronous cell — the paper's 'unexploited resources'.\n");
    return 0;
}
