// Extension experiment ext-B: the paper's motivation, quantified.
//
// "The use of synchronous FPGAs is possible but most of the FPGA resources
// are then unexploited" (Section 1, citing ref. [3]). We map the same
// asynchronous netlists onto a plain synchronous LUT4 island cell and
// compare against our fabric's LEs: cell counts, memory loops exposed to
// general routing (the hazard source a dedicated IM avoids), and truth-table
// bit utilisation.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow_service.hpp"
#include "eval/baseline.hpp"

using namespace afpga;

int main() {
    std::printf("=== ext-B: same circuits on a synchronous LUT4 island FPGA "
                "(ref. [3] scenario) ===\n\n");
    base::TextTable t({"design", "our LEs", "our PLBs", "LUT4 cells", "LUT4 CLBs",
                       "LUT4s for C-gates", "LUT4s for delays", "loops via routing",
                       "LUT4-bit util", "cells per LE-pair"});

    // Generate the design set, then hand the whole comparison grid to
    // eval::compare_designs: one FlowService compiles every design
    // concurrently against one shared RR graph.
    auto qdi1 = asynclib::make_qdi_adder(1);
    auto qdi4 = asynclib::make_qdi_adder(4);
    auto mp4 = asynclib::make_micropipeline_adder(4);
    auto wchb = asynclib::make_wchb_fifo(4, 4);
    auto mpf = asynclib::make_micropipeline_fifo(4, 4);
    const std::vector<eval::BaselineDesign> designs = {
        {"qdi-adder-1b", &qdi1.nl, &qdi1.hints},
        {"qdi-adder-4b", &qdi4.nl, &qdi4.hints},
        {"mp-adder-4b", &mp4.nl, nullptr},
        {"wchb-fifo-4x4", &wchb.nl, &wchb.hints},
        {"mp-fifo-4x4", &mpf.nl, nullptr},
    };

    core::ArchSpec arch = core::paper_arch();
    arch.width = 12;
    arch.height = 12;
    arch.channel_width = 16;

    cad::FlowService svc;
    for (const eval::BaselineComparison& c : eval::compare_designs(svc, designs, arch)) {
        t.add_row({c.design, std::to_string(c.our_les), std::to_string(c.our_plbs),
                   std::to_string(c.lut4.luts), std::to_string(c.lut4.clbs),
                   std::to_string(c.lut4.luts_for_memory),
                   std::to_string(c.lut4.luts_for_delay),
                   std::to_string(c.lut4.feedback_nets),
                   base::format_percent(c.lut4.bit_utilization),
                   base::format_double(c.overhead_factor, 2) + "x"});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Reading: on the LUT4 baseline every C-element is a looped LUT whose\n");
    std::printf("feedback crosses the general routing network (hazard-prone, slow) and\n");
    std::printf("matched delays burn whole LUTs as buffers; the dedicated PLB keeps\n");
    std::printf("loops inside the IM and delays inside the PDE. LUT4-bit utilisation\n");
    std::printf("shows how little of the provisioned truth-table storage async logic\n");
    std::printf("exploits on a synchronous cell — the paper's 'unexploited resources'.\n");
    return 0;
}
