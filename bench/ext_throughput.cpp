// Extension experiment ext-A: pipeline throughput by style.
//
// Streams tokens through WCHB (QDI) and micropipeline FIFOs of increasing
// depth — first at the netlist level, then post-route on the fabric (the
// circuit reconstructed from the bitstream, with routed wire delays) — and
// reports the steady-state token period. Asynchronous pipelines run at the
// speed of their local handshakes, so the period should stay roughly flat
// with depth in both styles, with the fabric adding IM/wire latency.
#include <cstdio>
#include <iterator>
#include <vector>

#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow_service.hpp"
#include "eval/sweep.hpp"
#include "sim/channels.hpp"
#include "sim/simulator.hpp"

using namespace afpga;

namespace {

constexpr std::size_t kBits = 4;
constexpr std::size_t kTokens = 32;

double wchb_period(sim::Simulator& sim, const std::vector<asynclib::DualRail>& in,
                   netlist::NetId ack_in, const std::vector<asynclib::DualRail>& out,
                   netlist::NetId ack_out) {
    std::vector<std::uint64_t> tokens(kTokens, 0b1010);
    for (std::size_t i = 0; i < tokens.size(); ++i) tokens[i] = i % 16;
    sim::DrStreamSource src(sim, in, ack_in, tokens, 50);
    sim::DrStreamSink sink(sim, out, ack_out, 50);
    src.start();
    sim.run(2'000'000'000);
    return sink.received().size() == kTokens ? sink.times().steady_period_ps() : -1.0;
}

double mp_period(sim::Simulator& sim, const std::vector<netlist::NetId>& in,
                 netlist::NetId req_in, netlist::NetId ack_in,
                 const std::vector<netlist::NetId>& out, netlist::NetId req_out,
                 netlist::NetId ack_out) {
    std::vector<std::uint64_t> tokens(kTokens, 0);
    for (std::size_t i = 0; i < tokens.size(); ++i) tokens[i] = i % 16;
    sim::BdStreamSource src(sim, in, req_in, ack_in, tokens, 50, 60);
    sim::BdStreamSink sink(sim, out, req_out, ack_out, 50);
    src.start();
    sim.run(2'000'000'000);
    return sink.received().size() == kTokens ? sink.times().steady_period_ps() : -1.0;
}

netlist::NetId po_net(const netlist::Netlist& nl, const std::string& name) {
    for (const auto& [n, net] : nl.primary_outputs())
        if (n == name) return net;
    base::fail("missing PO " + name);
}

}  // namespace

int main() {
    std::printf("=== ext-A: FIFO throughput by style and depth (%zu-bit, %zu tokens) ===\n\n",
                kBits, kTokens);
    base::TextTable t({"style", "depth", "netlist period (ps)", "post-route period (ps)",
                       "fabric overhead"});

    core::ArchSpec arch = core::paper_arch();
    arch.width = 12;
    arch.height = 12;
    arch.channel_width = 16;

    // Compile the whole depth x style grid as one FlowJob set on a
    // FlowService before any simulation: six concurrent flows over one
    // shared RR graph. The token-streaming measurements below stay serial
    // (the simulator is single-threaded by design).
    const std::size_t depths[] = {2, 4, 8};
    std::vector<asynclib::WchbFifo> wchb_fifos;
    std::vector<asynclib::MpFifo> mp_fifos;
    for (std::size_t depth : depths) {
        wchb_fifos.push_back(asynclib::make_wchb_fifo(kBits, depth));
        mp_fifos.push_back(asynclib::make_micropipeline_fifo(kBits, depth));
    }
    cad::FlowService svc;
    std::vector<cad::FlowJob> jobs;
    for (std::size_t i = 0; i < std::size(depths); ++i) {
        cad::FlowJob q;
        q.name = "wchb-x" + std::to_string(depths[i]);
        q.nl = &wchb_fifos[i].nl;
        q.hints = &wchb_fifos[i].hints;
        q.arch = arch;
        jobs.push_back(std::move(q));
        cad::FlowJob m;
        m.name = "mp-x" + std::to_string(depths[i]);
        m.nl = &mp_fifos[i].nl;
        m.arch = arch;
        jobs.push_back(std::move(m));
    }
    const auto results = eval::run_grid(svc, std::move(jobs));

    for (std::size_t di = 0; di < std::size(depths); ++di) {
        const std::size_t depth = depths[di];
        // --- WCHB (QDI) -----------------------------------------------------
        {
            const auto& fifo = wchb_fifos[di];
            sim::Simulator pre(fifo.nl);
            pre.run();
            const double p_pre =
                wchb_period(pre, fifo.in, fifo.ack_in, fifo.out, fifo.ack_out);

            const cad::FlowJobResult& job = *results[2 * di];
            base::check(job.ok(), "ext_throughput: flow failed for " + job.name + ": " +
                                      job.error);
            const auto& fr = job.result;
            const auto design = fr.elaborate();
            sim::Simulator post(design.nl);
            for (const auto& d : core::resolve_wire_delays(design))
                post.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
            post.run();
            std::vector<asynclib::DualRail> in;
            std::vector<asynclib::DualRail> out;
            for (std::size_t i = 0; i < kBits; ++i) {
                in.push_back({design.nl.find_net(base::bus_bit("in", i) + ".t"),
                              design.nl.find_net(base::bus_bit("in", i) + ".f")});
                out.push_back({po_net(design.nl, base::bus_bit("out", i) + ".t"),
                               po_net(design.nl, base::bus_bit("out", i) + ".f")});
            }
            const double p_post = wchb_period(post, in, po_net(design.nl, "ack_in"), out,
                                              design.nl.find_net("ack_out"));
            t.add_row({"QDI WCHB", std::to_string(depth), base::format_double(p_pre, 0),
                       base::format_double(p_post, 0),
                       p_pre > 0 ? base::format_double(p_post / p_pre, 2) + "x" : "-"});
        }
        // --- micropipeline ----------------------------------------------------
        {
            const auto& fifo = mp_fifos[di];
            sim::Simulator pre(fifo.nl);
            pre.run();
            const double p_pre = mp_period(pre, fifo.in, fifo.req_in, fifo.ack_in, fifo.out,
                                           fifo.req_out, fifo.ack_out);

            const cad::FlowJobResult& job = *results[2 * di + 1];
            base::check(job.ok(), "ext_throughput: flow failed for " + job.name + ": " +
                                      job.error);
            const auto& fr = job.result;
            const auto design = fr.elaborate();
            sim::Simulator post(design.nl);
            for (const auto& d : core::resolve_wire_delays(design))
                post.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
            post.run();
            std::vector<netlist::NetId> in;
            std::vector<netlist::NetId> out;
            for (std::size_t i = 0; i < kBits; ++i) {
                in.push_back(design.nl.find_net(base::bus_bit("in", i)));
                out.push_back(po_net(design.nl, base::bus_bit("out", i)));
            }
            const double p_post =
                mp_period(post, in, design.nl.find_net("req_in"), po_net(design.nl, "ack_in"),
                          out, po_net(design.nl, "req_out"), design.nl.find_net("ack_out"));
            t.add_row({"micropipeline", std::to_string(depth), base::format_double(p_pre, 0),
                       base::format_double(p_post, 0),
                       p_pre > 0 ? base::format_double(p_post / p_pre, 2) + "x" : "-"});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("(-1 = stream did not complete; period is mean steady-state token gap.)\n");
    std::printf("Expected shape: period ~ flat in depth; QDI pays completion-detection\n");
    std::printf("latency per stage, micropipeline pays the programmed matched delay.\n");
    return 0;
}
