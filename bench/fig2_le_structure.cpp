// Fig. 2 reproduction: the Logic Element (multi-output LUT7-3 + LUT2-1).
//
// Shows which asynchronous primitives fit a single LE and how many logic
// cells the same primitives cost on two conventional alternatives:
// a single-output LUT4 cell (the baseline of ref. [3]) and a single-output
// LUT6 cell. The LE's auxiliary outputs and LUT2 slot are what give the
// multi-rail encodings their filling advantage.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/dualrail.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/techmap.hpp"
#include "netlist/netlist.hpp"

using namespace afpga;
using netlist::CellFunc;
using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;

namespace {

/// Single-output LUT-k cells needed for a function (recursive Shannon).
std::size_t lutk_count(const TruthTable& tt, std::size_t k) {
    const TruthTable pruned = tt.prune_support(nullptr);
    if (pruned.arity() <= k) return 1;
    return lutk_count(pruned.cofactor(pruned.arity() - 1, false), k) +
           lutk_count(pruned.cofactor(pruned.arity() - 1, true), k) + 1;
}

struct PrimitiveRow {
    std::string name;
    Netlist nl;
    asynclib::MappingHints hints;
};

PrimitiveRow c_element(std::size_t n) {
    PrimitiveRow r;
    r.name = "Muller C" + std::to_string(n);
    std::vector<NetId> ins;
    for (std::size_t i = 0; i < n; ++i) ins.push_back(r.nl.add_input("i" + std::to_string(i)));
    r.nl.add_output("c", r.nl.add_cell(CellFunc::C, "c", ins));
    return r;
}

PrimitiveRow asymmetric_c() {
    PrimitiveRow r;
    r.name = "asymmetric C2+";
    const NetId a = r.nl.add_input("a");
    const NetId b = r.nl.add_input("b");
    r.nl.add_output("c", r.nl.add_cell(CellFunc::CAsym2P, "c", {a, b}));
    return r;
}

PrimitiveRow dual_rail_and() {
    // AND of two dual-rail bits: both rails + validity in one LE.
    PrimitiveRow r;
    r.name = "dual-rail AND + validity";
    const auto ins = asynclib::add_dual_rail_inputs(r.nl, "x", 2);
    const auto and_tt = TruthTable::from_bits(2, 0b1000);
    auto res = asynclib::expand_dims(r.nl, {and_tt}, ins, "f");
    asynclib::MappingHints h = res.hints;
    const NetId v = asynclib::add_validity(r.nl, res.outputs[0], "v", &h);
    r.nl.add_output("o.t", res.outputs[0].t);
    r.nl.add_output("o.f", res.outputs[0].f);
    r.nl.add_output("v", v);
    r.hints = h;
    return r;
}

PrimitiveRow wchb_bit() {
    PrimitiveRow r;
    r.name = "WCHB bit (2 rails + validity)";
    const auto ins = asynclib::add_dual_rail_inputs(r.nl, "x", 1);
    const NetId ack = r.nl.add_input("ack");
    auto st = asynclib::add_wchb_stage(r.nl, ins, ack, "st");
    r.nl.add_output("q.t", st.out[0].t);
    r.nl.add_output("q.f", st.out[0].f);
    r.nl.add_output("ack_prev", st.ack_to_prev);
    r.hints = st.hints;
    return r;
}

PrimitiveRow xor_maj_pair() {
    PrimitiveRow r;
    r.name = "XOR3 + MAJ3 (bundled FA core)";
    const NetId a = r.nl.add_input("a");
    const NetId b = r.nl.add_input("b");
    const NetId c = r.nl.add_input("c");
    const NetId s = r.nl.add_cell(CellFunc::Xor, "s", {a, b, c});
    const NetId co = r.nl.add_cell(CellFunc::Maj, "co", {a, b, c});
    r.nl.add_output("s", s);
    r.nl.add_output("co", co);
    r.hints.rail_pairs.emplace_back(s, co);
    return r;
}

PrimitiveRow xor7() {
    PrimitiveRow r;
    r.name = "XOR7 (7-input via O2 mux)";
    std::vector<NetId> ins;
    for (int i = 0; i < 7; ++i) ins.push_back(r.nl.add_input("i" + std::to_string(i)));
    r.nl.add_output("y", r.nl.add_cell(CellFunc::Xor, "y", ins));
    return r;
}

PrimitiveRow one_of_four_half() {
    // Half a 1-of-4 digit function: two of the four symbol rails in one LE.
    PrimitiveRow r;
    r.name = "1-of-4 digit half (2 rails)";
    const auto ins = asynclib::add_dual_rail_inputs(r.nl, "x", 2);
    const NetId r0 = r.nl.add_cell(CellFunc::C, "r0", {ins[0].f, ins[1].f});
    const NetId r1 = r.nl.add_cell(CellFunc::C, "r1", {ins[0].t, ins[1].f});
    r.nl.add_output("r0", r0);
    r.nl.add_output("r1", r1);
    r.hints.rail_pairs.emplace_back(r0, r1);
    return r;
}

}  // namespace

int main() {
    std::printf("=== Fig. 2: Logic Element structure (LUT7-3 + LUT2-1) ===\n\n");
    std::printf("LE model: halves A,B = LUT6 over shared i0..i5; O2 = i6 ? B : A;\n");
    std::printf("LUT2 (O3) over two of {O0,O1,O2} computes data validity.\n\n");

    base::TextTable t({"async primitive", "LEs", "LE outputs used", "LUT4 cells",
                       "LUT6 cells", "memory loop"});
    std::vector<PrimitiveRow> rows;
    rows.push_back(c_element(2));
    rows.push_back(c_element(3));
    rows.push_back(c_element(4));
    rows.push_back(asymmetric_c());
    rows.push_back(wchb_bit());
    rows.push_back(dual_rail_and());
    rows.push_back(one_of_four_half());
    rows.push_back(xor_maj_pair());
    rows.push_back(xor7());

    for (auto& row : rows) {
        const auto md = cad::techmap(row.nl, row.hints);
        std::size_t outputs = 0;
        bool memory = false;
        std::size_t lut4 = 0;
        std::size_t lut6 = 0;
        for (const auto& le : md.les) {
            outputs += le.used_outputs();
            for (const cad::LeFunc* f :
                 {le.a ? &*le.a : nullptr, le.b ? &*le.b : nullptr,
                  le.full7 ? &*le.full7 : nullptr, le.lut2 ? &*le.lut2 : nullptr}) {
                if (!f) continue;
                memory |= f->has_feedback;
                lut4 += lutk_count(f->tt, 4);
                lut6 += lutk_count(f->tt, 6);
            }
        }
        t.add_row({row.name, std::to_string(md.les.size()),
                   std::to_string(outputs) + "/" + std::to_string(4 * md.les.size()),
                   std::to_string(lut4), std::to_string(lut6), memory ? "yes (via IM)" : "no"});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Reading: one LE hosts a dual-rail function pair PLUS its validity\n");
    std::printf("(3 of 4 outputs — the QDI filling advantage); bundled-data logic\n");
    std::printf("uses 1-2 outputs; a 7-input function consumes the whole LE via O2.\n");
    return 0;
}
