// Fig. 3 reproduction: the 1-bit full adder in both demonstration styles —
// (a) micropipeline (bundled data, 4-phase) and (b) QDI (dual-rail DIMS,
// 4-phase) — pushed through the complete CAD flow onto the fabric, with the
// LE/PLB mapping printed (the paper's dashed boxes) and the implementation
// verified token-by-token on the circuit reconstructed from the bitstream.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

using namespace afpga;

namespace {

std::string func_label(const netlist::Netlist& src, const cad::LeFunc& f) {
    const netlist::CellId c = src.driver_of(f.output);
    std::string s = c.valid() ? src.cell(c).name : "?";
    if (f.has_feedback) s += "*";  // memory element (looped through the IM)
    return s;
}

void print_mapping(const netlist::Netlist& src, const cad::FlowResult& fr) {
    base::TextTable t({"PLB", "LE", "half A (O0)", "half B (O1)", "full7 (O2)", "LUT2 (O3)"});
    for (std::size_t ci = 0; ci < fr.packed.clusters.size(); ++ci) {
        const auto& cl = fr.packed.clusters[ci];
        const auto loc = fr.placement.cluster_loc[ci];
        const std::string plb =
            "(" + std::to_string(loc.x) + "," + std::to_string(loc.y) + ")";
        for (std::size_t slot = 0; slot < cl.le_indices.size(); ++slot) {
            const cad::LeInst& le = fr.mapped.les[cl.le_indices[slot]];
            t.add_row({plb, std::to_string(slot),
                       le.a ? func_label(src, *le.a) : "-",
                       le.b ? func_label(src, *le.b) : "-",
                       le.full7 ? func_label(src, *le.full7) : "-",
                       le.lut2 ? func_label(src, *le.lut2) : "-"});
        }
        if (cl.pde_index)
            t.add_row({plb, "PDE",
                       "delay=" + std::to_string(fr.bits->plb(loc).pde.delay_ps(fr.arch)) +
                           " ps",
                       "-", "-", "-"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(* = memory element: LUT looped through the IM)\n\n");
}

void run_qdi() {
    std::printf("--- Fig. 3b: QDI dual-rail DIMS full adder, 4-phase ---\n\n");
    auto adder = asynclib::make_qdi_adder(1);
    const auto h = adder.nl.histogram();
    std::printf("netlist: %zu cells (%zu C-gates, %zu OR) on %zu nets\n",
                adder.nl.num_cells(), h.count(netlist::CellFunc::C) ? h.at(netlist::CellFunc::C) : 0,
                h.count(netlist::CellFunc::Or) ? h.at(netlist::CellFunc::Or) : 0,
                adder.nl.num_nets());

    const auto fr = cad::run_flow(adder.nl, adder.hints, core::paper_arch(), {});
    print_mapping(adder.nl, fr);

    const auto design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();

    auto po_net = [&](const std::string& name) {
        for (const auto& [n, net] : design.nl.primary_outputs())
            if (n == name) return net;
        base::fail("missing PO " + name);
    };
    sim::QdiCombIface iface;
    iface.inputs = {{design.nl.find_net("a[0].t"), design.nl.find_net("a[0].f")},
                    {design.nl.find_net("b[0].t"), design.nl.find_net("b[0].f")},
                    {design.nl.find_net("cin.t"), design.nl.find_net("cin.f")}};
    iface.outputs = {{po_net("sum[0].t"), po_net("sum[0].f")},
                     {po_net("cout.t"), po_net("cout.f")}};
    iface.done = po_net("done");

    sim::DualRailChannelMonitor mon(sim, iface.outputs, iface.done, "qdi.out");
    int pass = 0;
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t got = sim::qdi_apply_token(sim, iface, v);
        const std::uint64_t want = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
        pass += (got == want);
    }
    std::printf("post-bitstream token check: %d/8 tokens correct, protocol %s\n",
                pass, mon.violations().empty() ? "clean" : "VIOLATED");
    std::printf("%s\n\n", eval::summarize(fr).c_str());
}

void run_micropipeline() {
    std::printf("--- Fig. 3a: micropipeline bundled-data full adder, 4-phase ---\n\n");
    auto adder = asynclib::make_micropipeline_adder(1);
    std::printf("netlist: %zu cells on %zu nets; matched delay (pre-route): %lld ps\n",
                adder.nl.num_cells(), adder.nl.num_nets(),
                static_cast<long long>(adder.matched_delay_ps));

    const auto fr = cad::run_flow(adder.nl, {}, core::paper_arch(), {});
    print_mapping(adder.nl, fr);

    const auto design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();

    auto po_net = [&](const std::string& name) {
        for (const auto& [n, net] : design.nl.primary_outputs())
            if (n == name) return net;
        base::fail("missing PO " + name);
    };
    sim::BundledStageIface iface;
    iface.data_in = {design.nl.find_net("a[0]"), design.nl.find_net("b[0]"),
                     design.nl.find_net("cin")};
    iface.req_in = design.nl.find_net("req_in");
    iface.ack_out = design.nl.find_net("ack_out");
    iface.data_out = {po_net("sum[0]"), po_net("cout")};
    iface.req_out = po_net("req_out");
    iface.ack_in = po_net("ack_in");

    sim::BundledChannelMonitor mon(sim, iface.data_out, iface.req_out, iface.ack_out, "mp.out");
    int pass = 0;
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t got = sim::bundled_apply_token(sim, iface, v, 200);
        const std::uint64_t want = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
        pass += (got == want);
    }
    std::printf("post-bitstream token check: %d/8 tokens correct, bundling %s\n",
                pass, mon.violations().empty() ? "respected" : "VIOLATED");
    std::printf("%s\n\n", eval::summarize(fr).c_str());
}

}  // namespace

int main() {
    std::printf("=== Fig. 3: 1-bit full adder in two asynchronous styles ===\n\n");
    run_micropipeline();
    run_qdi();
    return 0;
}
